//! Seeded, deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] describes *what can go wrong* on the wire: per-link drop
//! probability, duplication, delay spikes, and one-shot scheduled faults
//! ("crash node X on its Nth send"). All randomness flows from a single
//! seeded RNG owned by the runtime [`FaultState`], so the same plan + seed
//! reproduces the same fault sequence — which is what makes chaos tests
//! assertable rather than merely flaky.
//!
//! The fabric consults the plan at every `call`/`post`:
//!
//! * a dropped **request** looks to the caller like a timeout (the handler
//!   never ran),
//! * a dropped **reply** looks the same to the caller — but the handler DID
//!   run, which is exactly the ambiguity 2PC in-doubt recovery exists for,
//! * a **duplicated** message exercises participant idempotency,
//! * a **delay spike** stretches a link's one-way latency for one message,
//! * a **crashed** node black-holes all traffic to and from it without
//!   deregistering (its delivery thread survives for `restart`).

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Duration;

use polardbx_common::metrics::Counter;
use polardbx_common::{DcId, NodeId};

/// Probabilistic faults applied to one link (an ordered DC pair).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability a message (request, reply, or post) is dropped.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message suffers an extra [`LinkFaults::spike`] delay.
    pub delay_spike: f64,
    /// The extra delay added when a spike fires.
    pub spike: Duration,
}

impl LinkFaults {
    /// No faults.
    pub fn none() -> LinkFaults {
        LinkFaults::default()
    }

    /// Lossy link: drop probability only.
    pub fn lossy(drop: f64) -> LinkFaults {
        LinkFaults { drop, ..LinkFaults::default() }
    }

    /// Builder: set duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> LinkFaults {
        self.duplicate = p;
        self
    }

    /// Builder: set delay-spike probability and magnitude.
    pub fn with_delay_spike(mut self, p: f64, spike: Duration) -> LinkFaults {
        self.delay_spike = p;
        self.spike = spike;
        self
    }

    fn is_none(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.delay_spike == 0.0
    }
}

/// A fault scheduled to fire exactly once, keyed on a node's send count.
#[derive(Debug, Clone)]
pub struct OneShot {
    /// The node whose outgoing traffic triggers the fault.
    pub from: NodeId,
    /// Fire when this node initiates its Nth send (1-based, calls + posts).
    pub after_sends: u64,
    /// What happens.
    pub fault: OneShotFault,
}

/// The effect of a triggered [`OneShot`].
#[derive(Debug, Clone)]
pub enum OneShotFault {
    /// Crash a node (black-hole it; see [`crate::SimNet::crash`]). Crashing
    /// the *sending* node models a coordinator dying mid-protocol.
    Crash(NodeId),
    /// Drop the triggering message itself.
    DropNext,
}

/// A fault scheduled to fire exactly once, keyed on a node's durable-log
/// flush count (reported via [`crate::SimNet::note_flush`]). This is how
/// crashpoints like "die mid-group-flush" become schedulable: the Nth flush
/// is a deterministic point in a seeded run, unlike wall-clock timers.
#[derive(Debug, Clone)]
pub struct FlushShot {
    /// The node whose flushes are counted.
    pub node: NodeId,
    /// Fire when this node performs its Nth flush (1-based).
    pub after_flushes: u64,
    /// What happens. [`OneShotFault::Crash`] of the flushing node itself
    /// models power loss mid-flush (the triggering write must then fail).
    pub fault: OneShotFault,
}

/// A deterministic description of the faults to inject.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// RNG seed: same plan + same seed → same fault sequence.
    pub seed: u64,
    /// Human-readable schedule name, surfaced in harness reports (e.g.
    /// `sitcheck`'s witness output). Empty = unnamed.
    pub label: String,
    /// Faults applied to every link.
    pub all_links: LinkFaults,
    /// Faults applied only to links that cross a DC boundary (after
    /// `all_links`; the more specific setting wins).
    pub cross_dc: Option<LinkFaults>,
    /// Per-ordered-link overrides, most specific of all.
    pub per_link: Vec<((DcId, DcId), LinkFaults)>,
    /// Scheduled one-shot faults.
    pub one_shots: Vec<OneShot>,
    /// Scheduled flush-count-triggered faults.
    pub flush_shots: Vec<FlushShot>,
}

impl FaultPlan {
    /// A plan with no faults (useful as a base for builders).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            label: String::new(),
            all_links: LinkFaults::none(),
            cross_dc: None,
            per_link: Vec::new(),
            one_shots: Vec::new(),
            flush_shots: Vec::new(),
        }
    }

    /// Builder: name the schedule for harness reports.
    pub fn with_label(mut self, label: impl Into<String>) -> FaultPlan {
        self.label = label.into();
        self
    }

    /// Builder: faults on every link.
    pub fn with_all_links(mut self, f: LinkFaults) -> FaultPlan {
        self.all_links = f;
        self
    }

    /// Builder: faults on cross-DC links only.
    pub fn with_cross_dc(mut self, f: LinkFaults) -> FaultPlan {
        self.cross_dc = Some(f);
        self
    }

    /// Builder: faults on one ordered link.
    pub fn with_link(mut self, from: DcId, to: DcId, f: LinkFaults) -> FaultPlan {
        self.per_link.push(((from, to), f));
        self
    }

    /// Builder: schedule a one-shot fault.
    pub fn with_one_shot(mut self, one_shot: OneShot) -> FaultPlan {
        self.one_shots.push(one_shot);
        self
    }

    /// Builder: schedule a flush-count-triggered fault.
    pub fn with_flush_shot(mut self, shot: FlushShot) -> FaultPlan {
        self.flush_shots.push(shot);
        self
    }

    /// The faults in force on the ordered link `from → to`.
    pub fn link_faults(&self, from: DcId, to: DcId) -> LinkFaults {
        if let Some((_, f)) = self.per_link.iter().find(|((a, b), _)| *a == from && *b == to) {
            return *f;
        }
        if from != to {
            if let Some(f) = self.cross_dc {
                return f;
            }
        }
        self.all_links
    }
}

/// What the fault layer decided for one message on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LinkDecision {
    pub drop: bool,
    pub duplicate: bool,
    pub extra_delay: Option<Duration>,
}

/// Counters for injected faults, exported through `common::metrics` so the
/// chaos suite and benches can report what actually happened on the wire.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Synchronous requests dropped before reaching the handler.
    pub dropped_requests: Counter,
    /// Replies dropped after the handler ran (the 2PC-ambiguity case).
    pub dropped_replies: Counter,
    /// One-way posts dropped.
    pub dropped_posts: Counter,
    /// Synchronous calls whose handler ran twice.
    pub duplicated_calls: Counter,
    /// One-way posts enqueued twice.
    pub duplicated_posts: Counter,
    /// Messages that suffered an injected delay spike.
    pub delay_spikes: Counter,
    /// Messages black-holed because an endpoint was crashed.
    pub blackholed: Counter,
    /// One-shot faults that fired.
    pub one_shots_fired: Counter,
    /// Amnesia restarts: nodes brought back with volatile state dropped
    /// (see [`crate::SimNet::restart_amnesia`]).
    pub amnesia_restarts: Counter,
}

impl FaultStats {
    /// Human-readable one-line report.
    pub fn report(&self) -> String {
        format!(
            "drops: req={} reply={} post={} · dups: call={} post={} · spikes={} · blackholed={} · one-shots={} · amnesia-restarts={}",
            self.dropped_requests.get(),
            self.dropped_replies.get(),
            self.dropped_posts.get(),
            self.duplicated_calls.get(),
            self.duplicated_posts.get(),
            self.delay_spikes.get(),
            self.blackholed.get(),
            self.one_shots_fired.get(),
            self.amnesia_restarts.get(),
        )
    }

    /// Total messages the fault layer interfered with.
    pub fn total_injected(&self) -> u64 {
        self.dropped_requests.get()
            + self.dropped_replies.get()
            + self.dropped_posts.get()
            + self.duplicated_calls.get()
            + self.duplicated_posts.get()
            + self.delay_spikes.get()
            + self.blackholed.get()
    }

    /// Reset all counters (between chaos phases).
    pub fn reset(&self) {
        self.dropped_requests.reset();
        self.dropped_replies.reset();
        self.dropped_posts.reset();
        self.duplicated_calls.reset();
        self.duplicated_posts.reset();
        self.delay_spikes.reset();
        self.blackholed.reset();
        self.one_shots_fired.reset();
        self.amnesia_restarts.reset();
    }
}

/// Runtime state of an active plan: per-link message ordinals, per-node send
/// counts (for one-shot triggers), and which one-shots already fired.
///
/// Each fault decision is a pure function of `(seed, link, ordinal)` — the
/// ordinal being the message's position in its own link's stream — rather
/// than a draw from one shared RNG sequence. Concurrent traffic on *other*
/// links therefore cannot perturb a link's fault pattern, which keeps
/// same-seed replays identical even when thread interleaving differs.
pub(crate) struct FaultState {
    plan: FaultPlan,
    link_seq: Mutex<HashMap<(DcId, DcId), u64>>,
    sends_by_node: Mutex<HashMap<NodeId, u64>>,
    fired: Mutex<Vec<bool>>,
    flushes_by_node: Mutex<HashMap<NodeId, u64>>,
    flush_fired: Mutex<Vec<bool>>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        let fired = vec![false; plan.one_shots.len()];
        let flush_fired = vec![false; plan.flush_shots.len()];
        FaultState {
            plan,
            link_seq: Mutex::new(HashMap::new()),
            sends_by_node: Mutex::new(HashMap::new()),
            fired: Mutex::new(fired),
            flushes_by_node: Mutex::new(HashMap::new()),
            flush_fired: Mutex::new(flush_fired),
        }
    }

    /// Record a send by `from` and return any one-shot faults it triggers.
    pub(crate) fn on_send(&self, from: NodeId) -> Vec<OneShotFault> {
        if self.plan.one_shots.is_empty() {
            return Vec::new();
        }
        let count = {
            let mut sends = self.sends_by_node.lock();
            let c = sends.entry(from).or_insert(0);
            *c += 1;
            *c
        };
        let mut fired = self.fired.lock();
        let mut out = Vec::new();
        for (i, os) in self.plan.one_shots.iter().enumerate() {
            if !fired[i] && os.from == from && count >= os.after_sends {
                fired[i] = true;
                out.push(os.fault.clone());
            }
        }
        out
    }

    /// Record a durable-log flush by `node` and return any flush-shot
    /// faults it triggers.
    pub(crate) fn on_flush(&self, node: NodeId) -> Vec<OneShotFault> {
        if self.plan.flush_shots.is_empty() {
            return Vec::new();
        }
        let count = {
            let mut flushes = self.flushes_by_node.lock();
            let c = flushes.entry(node).or_insert(0);
            *c += 1;
            *c
        };
        let mut fired = self.flush_fired.lock();
        let mut out = Vec::new();
        for (i, fs) in self.plan.flush_shots.iter().enumerate() {
            if !fired[i] && fs.node == node && count >= fs.after_flushes {
                fired[i] = true;
                out.push(fs.fault.clone());
            }
        }
        out
    }

    /// Roll the dice for one message on `from_dc → to_dc`.
    pub(crate) fn decide(&self, from_dc: DcId, to_dc: DcId) -> LinkDecision {
        let f = self.plan.link_faults(from_dc, to_dc);
        if f.is_none() {
            return LinkDecision { drop: false, duplicate: false, extra_delay: None };
        }
        let seq = {
            let mut m = self.link_seq.lock();
            let c = m.entry((from_dc, to_dc)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        // Mix (seed, link, ordinal) into a per-message RNG. StdRng's
        // seed_from_u64 runs SplitMix64, so consecutive ordinals produce
        // well-scrambled, statistically independent draws.
        let mut h = self.plan.seed;
        h ^= from_dc.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = h.rotate_left(23) ^ to_dc.raw().wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(17) ^ seq.wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut rng = StdRng::seed_from_u64(h);
        let drop = f.drop > 0.0 && rng.gen_bool(f.drop);
        let duplicate = !drop && f.duplicate > 0.0 && rng.gen_bool(f.duplicate);
        let extra_delay = (!drop && f.delay_spike > 0.0 && rng.gen_bool(f.delay_spike))
            .then_some(f.spike);
        LinkDecision { drop, duplicate, extra_delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_faults_resolution_precedence() {
        let plan = FaultPlan::new(1)
            .with_all_links(LinkFaults::lossy(0.01))
            .with_cross_dc(LinkFaults::lossy(0.10))
            .with_link(DcId(1), DcId(3), LinkFaults::lossy(0.50));
        // intra-DC: all_links
        assert_eq!(plan.link_faults(DcId(1), DcId(1)).drop, 0.01);
        // cross-DC without override: cross_dc
        assert_eq!(plan.link_faults(DcId(1), DcId(2)).drop, 0.10);
        // specific link: per_link wins
        assert_eq!(plan.link_faults(DcId(1), DcId(3)).drop, 0.50);
        // ordered: reverse direction falls back to cross_dc
        assert_eq!(plan.link_faults(DcId(3), DcId(1)).drop, 0.10);
    }

    #[test]
    fn decisions_are_deterministic_for_same_seed() {
        let plan = || {
            FaultPlan::new(42).with_all_links(
                LinkFaults::lossy(0.3)
                    .with_duplicate(0.3)
                    .with_delay_spike(0.2, Duration::from_millis(5)),
            )
        };
        let a = FaultState::new(plan());
        let b = FaultState::new(plan());
        for _ in 0..500 {
            assert_eq!(a.decide(DcId(1), DcId(2)), b.decide(DcId(1), DcId(2)));
        }
    }

    #[test]
    fn link_streams_are_independent_of_interleaving() {
        // Traffic on another link must not perturb this link's pattern.
        let plan = || FaultPlan::new(5).with_all_links(LinkFaults::lossy(0.5));
        let quiet = FaultState::new(plan());
        let noisy = FaultState::new(plan());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..100 {
            a.push(quiet.decide(DcId(1), DcId(2)));
            if i % 3 == 0 {
                // Interleaved traffic on an unrelated link.
                let _ = noisy.decide(DcId(2), DcId(3));
            }
            b.push(noisy.decide(DcId(1), DcId(2)));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_diverges() {
        let a = FaultState::new(FaultPlan::new(1).with_all_links(LinkFaults::lossy(0.5)));
        let b = FaultState::new(FaultPlan::new(2).with_all_links(LinkFaults::lossy(0.5)));
        let seq = |s: &FaultState| -> Vec<bool> {
            (0..64).map(|_| s.decide(DcId(1), DcId(2)).drop).collect()
        };
        assert_ne!(seq(&a), seq(&b));
    }

    #[test]
    fn one_shot_fires_once_at_threshold() {
        let plan = FaultPlan::new(7).with_one_shot(OneShot {
            from: NodeId(9),
            after_sends: 3,
            fault: OneShotFault::Crash(NodeId(9)),
        });
        let st = FaultState::new(plan);
        assert!(st.on_send(NodeId(9)).is_empty()); // 1
        assert!(st.on_send(NodeId(1)).is_empty()); // other node
        assert!(st.on_send(NodeId(9)).is_empty()); // 2
        let fired = st.on_send(NodeId(9)); // 3
        assert!(matches!(fired.as_slice(), [OneShotFault::Crash(n)] if *n == NodeId(9)));
        assert!(st.on_send(NodeId(9)).is_empty(), "one-shot must not refire");
    }

    #[test]
    fn flush_shot_fires_once_at_threshold() {
        let plan = FaultPlan::new(7).with_flush_shot(FlushShot {
            node: NodeId(2),
            after_flushes: 2,
            fault: OneShotFault::Crash(NodeId(2)),
        });
        let st = FaultState::new(plan);
        assert!(st.on_flush(NodeId(2)).is_empty()); // 1
        assert!(st.on_flush(NodeId(1)).is_empty()); // other node
        let fired = st.on_flush(NodeId(2)); // 2
        assert!(matches!(fired.as_slice(), [OneShotFault::Crash(n)] if *n == NodeId(2)));
        assert!(st.on_flush(NodeId(2)).is_empty(), "flush shot must not refire");
        // Flush counting is independent of send counting.
        assert!(st.on_send(NodeId(2)).is_empty());
    }

    #[test]
    fn drop_rate_roughly_matches_probability() {
        let st = FaultState::new(FaultPlan::new(3).with_all_links(LinkFaults::lossy(0.25)));
        let drops = (0..10_000).filter(|_| st.decide(DcId(1), DcId(2)).drop).count();
        assert!((2_000..3_000).contains(&drops), "expected ~2500 drops, got {drops}");
    }

    #[test]
    fn stats_report_and_reset() {
        let s = FaultStats::default();
        s.dropped_requests.add(3);
        s.duplicated_posts.inc();
        assert_eq!(s.total_injected(), 4);
        assert!(s.report().contains("req=3"));
        s.reset();
        assert_eq!(s.total_injected(), 0);
    }
}
