//! The network fabric: node registry, RPC, one-way posts, partitions,
//! crashes, and seeded fault injection (see [`crate::fault`]).

use crossbeam::channel::{unbounded, Sender};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use polardbx_common::{DcId, Error, NodeId, Result};

use crate::fault::{FaultPlan, FaultState, FaultStats, OneShotFault};
use crate::latency::LatencyMatrix;

/// A service that can be attached to the network under a [`NodeId`].
///
/// `handle` services synchronous RPCs; `handle_oneway` services posted
/// messages (fire-and-forget, delivered in order by a per-node thread).
pub trait Handler<M: Send + 'static>: Send + Sync {
    /// Handle a synchronous request, producing a reply.
    fn handle(&self, from: NodeId, msg: M) -> M;

    /// Handle a one-way message. Default: ignore.
    fn handle_oneway(&self, from: NodeId, msg: M) {
        let _ = (from, msg);
    }
}

/// Per-link traffic counters.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Total synchronous calls made.
    pub calls: AtomicU64,
    /// Total one-way messages posted.
    pub posts: AtomicU64,
    /// Calls that crossed a datacenter boundary.
    pub cross_dc_calls: AtomicU64,
    /// Posts that crossed a datacenter boundary.
    pub cross_dc_posts: AtomicU64,
}

impl NetStats {
    /// Snapshot (calls, posts, cross_dc_calls, cross_dc_posts).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.calls.load(Ordering::Relaxed),
            self.posts.load(Ordering::Relaxed),
            self.cross_dc_calls.load(Ordering::Relaxed),
            self.cross_dc_posts.load(Ordering::Relaxed),
        )
    }
}

struct Registration<M: Send + 'static> {
    dc: DcId,
    service: Arc<dyn Handler<M>>,
    oneway_tx: Sender<(NodeId, M, Instant)>,
    delivery: Option<JoinHandle<()>>,
}

/// The in-process network. Generic over the message type `M`; protocol
/// crates instantiate it with their own enum of RPCs.
pub struct SimNet<M: Send + 'static> {
    latency: LatencyMatrix,
    nodes: RwLock<HashMap<NodeId, Registration<M>>>,
    partitions: RwLock<HashSet<(DcId, DcId)>>,
    crashed: Arc<RwLock<HashSet<NodeId>>>,
    faults: RwLock<Option<Arc<FaultState>>>,
    shutdown: Arc<AtomicBool>,
    /// Traffic counters (public so harnesses can report them).
    pub stats: NetStats,
    /// Injected-fault counters (shared with delivery threads).
    pub fault_stats: Arc<FaultStats>,
}

impl<M: Send + 'static> SimNet<M> {
    /// Create a fabric with the given latency model.
    pub fn new(latency: LatencyMatrix) -> Arc<SimNet<M>> {
        Arc::new(SimNet {
            latency,
            nodes: RwLock::new(HashMap::new()),
            partitions: RwLock::new(HashSet::new()),
            crashed: Arc::new(RwLock::new(HashSet::new())),
            faults: RwLock::new(None),
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: NetStats::default(),
            fault_stats: Arc::new(FaultStats::default()),
        })
    }

    /// Register `service` as `node` living in `dc`. Spawns the node's
    /// one-way delivery thread.
    pub fn register(&self, node: NodeId, dc: DcId, service: Arc<dyn Handler<M>>) {
        let (tx, rx) = unbounded::<(NodeId, M, Instant)>();
        let svc = Arc::clone(&service);
        let shutdown = Arc::clone(&self.shutdown);
        let crashed = Arc::clone(&self.crashed);
        let fault_stats = Arc::clone(&self.fault_stats);
        let delivery = std::thread::Builder::new()
            .name(format!("simnet-deliver-{node}"))
            .spawn(move || {
                while let Ok((from, msg, deliver_at)) = rx.recv() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    // Propagation delay, not serialization delay: messages
                    // posted close together arrive close together. Sleep
                    // only the remaining time until this message's arrival.
                    // lint:allow(determinism, "latency-model pacing: deliver_at ordering is seed-derived; the real clock only times the sleep")
                    let now = Instant::now();
                    if deliver_at > now {
                        std::thread::sleep(deliver_at - now);
                    }
                    // A crashed destination loses in-flight messages: the
                    // node stays registered (it can restart) but nothing
                    // reaches its handler while it is down.
                    if crashed.read().contains(&node) {
                        fault_stats.blackholed.inc();
                        continue;
                    }
                    svc.handle_oneway(from, msg);
                }
            })
            .expect("spawn delivery thread");
        self.nodes
            .write()
            .insert(node, Registration { dc, service, oneway_tx: tx, delivery: Some(delivery) });
    }

    /// Remove a node from the fabric (its delivery thread drains and exits).
    pub fn deregister(&self, node: NodeId) {
        // Take the registration out under the write lock, then release the
        // lock BEFORE joining: the delivery thread only exits once the real
        // sender inside the registration is dropped, and joining while other
        // fabric users are blocked on the lock would deadlock traffic.
        let reg = self.nodes.write().remove(&node);
        if let Some(mut reg) = reg {
            let handle = reg.delivery.take();
            // Dropping the registration drops its `oneway_tx`, closing the
            // channel and waking the delivery thread out of `recv`.
            drop(reg);
            if let Some(h) = handle {
                let _ = h.join();
            }
        }
    }

    /// Crash a node: all traffic to and from it is black-holed (calls time
    /// out, posts vanish) but it stays registered and keeps its delivery
    /// thread, so a restart can bring it back.
    ///
    /// Two restart flavors exist with distinct contracts:
    /// [`SimNet::restart_resume`] (the node's memory survived — a network
    /// hiccup, not a process death) and [`SimNet::restart_amnesia`] (the
    /// process died; only durable artifacts come back).
    pub fn crash(&self, node: NodeId) {
        self.crashed.write().insert(node);
    }

    /// Bring a crashed node back. Alias for [`SimNet::restart_resume`],
    /// kept for existing chaos tests; prefer the explicit names so a
    /// schedule states which crash model it exercises.
    pub fn restart(&self, node: NodeId) {
        self.restart_resume(node);
    }

    /// **Resume** restart: the node comes back with all volatile state
    /// intact, as if it had merely been unreachable. Messages lost while
    /// down stay lost. This models a network black-hole or a long GC pause
    /// — NOT a process death; nothing is recovered because nothing was
    /// forgotten.
    pub fn restart_resume(&self, node: NodeId) {
        self.crashed.write().remove(&node);
    }

    /// **Amnesia** restart: the node comes back having lost every byte of
    /// volatile state; only its durable artifacts (WAL sink contents up to
    /// the flushed horizon, possibly with a torn tail) survive.
    ///
    /// The fabric is generic over `M` and owns no node state, so the
    /// *harness* owns the amnesia contract: before calling this it must
    /// discard the old service, rebuild a fresh one from the durable sink
    /// (scan-and-truncate, redo replay, in-doubt re-adoption), and hand it
    /// to [`SimNet::register`] — re-registering a [`NodeId`] atomically
    /// replaces the old handler. Calling `restart_amnesia` while the old
    /// service is still registered violates the model: the "reborn" node
    /// would answer from remembered state.
    pub fn restart_amnesia(&self, node: NodeId) {
        self.crashed.write().remove(&node);
        self.fault_stats.amnesia_restarts.inc();
    }

    /// Is `node` currently crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.read().contains(&node)
    }

    /// Install a fault plan. Replaces any active plan; the plan's seeded RNG
    /// starts fresh, so installing the same plan twice replays the same
    /// fault sequence.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.faults.write() = Some(Arc::new(FaultState::new(plan)));
    }

    /// Remove the active fault plan (crashed nodes stay crashed).
    pub fn clear_fault_plan(&self) {
        *self.faults.write() = None;
    }

    /// Record a send by `from` against the active plan's one-shot schedule,
    /// applying any triggered faults. Returns true if the triggering message
    /// itself must be dropped.
    fn apply_one_shots(&self, from: NodeId) -> bool {
        let state = match &*self.faults.read() {
            Some(s) => Arc::clone(s),
            None => return false,
        };
        let mut drop_this = false;
        for fault in state.on_send(from) {
            self.fault_stats.one_shots_fired.inc();
            match fault {
                OneShotFault::Crash(node) => self.crash(node),
                OneShotFault::DropNext => drop_this = true,
            }
        }
        drop_this
    }

    /// Record a durable-log flush by `node` against the active plan's
    /// flush-shot schedule (see [`crate::fault::FlushShot`]), applying any
    /// triggered faults. Returns true when `node` is crashed after the
    /// triggers fire — the caller's sink must then FAIL the flush, because
    /// a node that died at its Nth flush never completed that flush.
    ///
    /// Durable sinks live above the fabric (the fabric carries messages,
    /// not disks), so sink wrappers call this once per write to make
    /// "crash at Nth flush" schedulable alongside the send-count one-shots.
    pub fn note_flush(&self, node: NodeId) -> bool {
        let state = self.faults.read().clone();
        if let Some(state) = state {
            for fault in state.on_flush(node) {
                self.fault_stats.one_shots_fired.inc();
                match fault {
                    OneShotFault::Crash(n) => self.crash(n),
                    // DropNext is send-scoped; on a flush it means "this
                    // flush is lost", which the return value conveys only
                    // for crashes — treat it as a no-op here.
                    OneShotFault::DropNext => {}
                }
            }
        }
        self.is_crashed(node)
    }

    /// Datacenter of a node, if registered.
    pub fn dc_of(&self, node: NodeId) -> Option<DcId> {
        self.nodes.read().get(&node).map(|r| r.dc)
    }

    /// Sever connectivity between two datacenters (both directions).
    pub fn partition(&self, a: DcId, b: DcId) {
        let mut p = self.partitions.write();
        p.insert((a, b));
        p.insert((b, a));
    }

    /// Restore connectivity between two datacenters.
    pub fn heal(&self, a: DcId, b: DcId) {
        let mut p = self.partitions.write();
        p.remove(&(a, b));
        p.remove(&(b, a));
    }

    fn check_link(&self, a: DcId, b: DcId) -> Result<()> {
        if self.partitions.read().contains(&(a, b)) {
            return Err(Error::Network { message: format!("partition between {a} and {b}") });
        }
        Ok(())
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyMatrix {
        &self.latency
    }

    /// Registered node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.read().keys().copied().collect()
    }

    /// Stop delivery threads. Called on teardown; nodes stay registered but
    /// one-way delivery halts.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let mut nodes = self.nodes.write();
        for (_, reg) in nodes.iter_mut() {
            // Closing the channel wakes the delivery thread.
            let (tx, _rx) = unbounded();
            reg.oneway_tx = tx;
        }
    }
}

impl<M: Send + Clone + 'static> SimNet<M> {
    /// Synchronous RPC from `from` to `to`: sleeps the one-way delay, runs
    /// the destination handler on the calling thread, sleeps the return
    /// delay, and returns the reply. Concurrency comes from concurrent
    /// callers, exactly like a thread-per-connection server.
    ///
    /// Under an active [`FaultPlan`] the request and reply legs are rolled
    /// independently: a dropped request means the handler never ran, while a
    /// dropped reply means it DID run but the caller cannot tell — both
    /// surface as [`Error::Timeout`], which is exactly the ambiguity 2PC
    /// in-doubt recovery must resolve. A crashed endpoint black-holes the
    /// call (also a timeout: a dead peer is indistinguishable from a slow
    /// one).
    pub fn call(&self, from: NodeId, to: NodeId, msg: M) -> Result<M> {
        let (from_dc, to_dc, service) = {
            let nodes = self.nodes.read();
            let from_dc = nodes
                .get(&from)
                .map(|r| r.dc)
                .ok_or_else(|| Error::Network { message: format!("unknown sender {from}") })?;
            let reg = nodes
                .get(&to)
                .ok_or_else(|| Error::Network { message: format!("unknown node {to}") })?;
            (from_dc, reg.dc, Arc::clone(&reg.service))
        };
        let drop_this = self.apply_one_shots(from);
        if self.is_crashed(from) || self.is_crashed(to) {
            self.fault_stats.blackholed.inc();
            return Err(Error::Timeout { what: format!("call {from} -> {to} (node down)") });
        }
        self.check_link(from_dc, to_dc)?;
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        if from_dc != to_dc {
            self.stats.cross_dc_calls.fetch_add(1, Ordering::Relaxed);
        }
        let faults = self.faults.read().clone();
        let req = faults.as_ref().map(|f| f.decide(from_dc, to_dc));
        let mut d1 = self.latency.one_way(from_dc, to_dc);
        if let Some(extra) = req.as_ref().and_then(|d| d.extra_delay) {
            self.fault_stats.delay_spikes.inc();
            d1 += extra;
        }
        if drop_this || req.as_ref().is_some_and(|d| d.drop) {
            // The caller still waits out its leg of the trip before
            // concluding the request vanished.
            self.fault_stats.dropped_requests.inc();
            if !d1.is_zero() {
                std::thread::sleep(d1);
            }
            return Err(Error::Timeout { what: format!("request {from} -> {to} lost") });
        }
        if !d1.is_zero() {
            std::thread::sleep(d1);
        }
        let reply = if req.as_ref().is_some_and(|d| d.duplicate) {
            // Deliver twice: exercises participant idempotency. The first
            // reply is discarded (the network has no slot for it).
            self.fault_stats.duplicated_calls.inc();
            let _ = service.handle(from, msg.clone());
            service.handle(from, msg)
        } else {
            service.handle(from, msg)
        };
        let rep = faults.as_ref().map(|f| f.decide(to_dc, from_dc));
        let mut d2 = self.latency.one_way(to_dc, from_dc);
        if let Some(extra) = rep.as_ref().and_then(|d| d.extra_delay) {
            self.fault_stats.delay_spikes.inc();
            d2 += extra;
        }
        if rep.as_ref().is_some_and(|d| d.drop) {
            self.fault_stats.dropped_replies.inc();
            if !d2.is_zero() {
                std::thread::sleep(d2);
            }
            return Err(Error::Timeout { what: format!("reply {to} -> {from} lost") });
        }
        if !d2.is_zero() {
            std::thread::sleep(d2);
        }
        if self.is_crashed(from) {
            // The caller died while the call was in flight; nobody is left
            // to observe the reply.
            self.fault_stats.blackholed.inc();
            return Err(Error::Timeout { what: format!("caller {from} crashed mid-call") });
        }
        Ok(reply)
    }

    /// Fire-and-forget message: enqueued to the destination's delivery
    /// thread, which applies the link delay then invokes `handle_oneway`.
    /// Messages from all senders to one destination are delivered in the
    /// order they were enqueued (FIFO per destination).
    ///
    /// Faults are silent here — a lost or duplicated post returns `Ok` just
    /// like a delivered one, because fire-and-forget senders get no
    /// acknowledgement in the first place.
    pub fn post(&self, from: NodeId, to: NodeId, msg: M) -> Result<()> {
        let (from_dc, to_dc, tx) = {
            let nodes = self.nodes.read();
            let from_dc = nodes
                .get(&from)
                .map(|r| r.dc)
                .ok_or_else(|| Error::Network { message: format!("unknown sender {from}") })?;
            let reg = nodes
                .get(&to)
                .ok_or_else(|| Error::Network { message: format!("unknown node {to}") })?;
            (from_dc, reg.dc, reg.oneway_tx.clone())
        };
        let drop_this = self.apply_one_shots(from);
        if self.is_crashed(from) || self.is_crashed(to) {
            self.fault_stats.blackholed.inc();
            return Ok(());
        }
        self.check_link(from_dc, to_dc)?;
        self.stats.posts.fetch_add(1, Ordering::Relaxed);
        if from_dc != to_dc {
            self.stats.cross_dc_posts.fetch_add(1, Ordering::Relaxed);
        }
        let dec = self.faults.read().as_ref().map(|f| f.decide(from_dc, to_dc));
        if drop_this || dec.as_ref().is_some_and(|d| d.drop) {
            self.fault_stats.dropped_posts.inc();
            return Ok(());
        }
        let mut delay = self.latency.one_way(from_dc, to_dc);
        if let Some(extra) = dec.as_ref().and_then(|d| d.extra_delay) {
            self.fault_stats.delay_spikes.inc();
            delay += extra;
        }
        // lint:allow(determinism, "latency-model pacing: delay is seed-derived; the real clock only anchors the arrival instant")
        let deliver_at = Instant::now() + delay;
        if dec.as_ref().is_some_and(|d| d.duplicate) {
            self.fault_stats.duplicated_posts.inc();
            let _ = tx.send((from, msg.clone(), deliver_at));
        }
        tx.send((from, msg, deliver_at))
            .map_err(|_| Error::Network { message: format!("node {to} shut down") })
    }
}

impl<M: Send + 'static> Drop for SimNet<M> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    struct Echo {
        received: AtomicU64,
    }

    impl Handler<u64> for Echo {
        fn handle(&self, _from: NodeId, msg: u64) -> u64 {
            msg + 1
        }
        fn handle_oneway(&self, _from: NodeId, msg: u64) {
            self.received.fetch_add(msg, Ordering::Relaxed);
        }
    }

    fn setup(lat: LatencyMatrix) -> (Arc<SimNet<u64>>, Arc<Echo>) {
        let net = SimNet::new(lat);
        let echo = Arc::new(Echo { received: AtomicU64::new(0) });
        net.register(NodeId(1), DcId(1), echo.clone());
        net.register(NodeId(2), DcId(2), echo.clone());
        (net, echo)
    }

    #[test]
    fn rpc_roundtrip() {
        let (net, _) = setup(LatencyMatrix::zero());
        assert_eq!(net.call(NodeId(1), NodeId(2), 41).unwrap(), 42);
        assert_eq!(net.stats.snapshot().0, 1);
        assert_eq!(net.stats.snapshot().2, 1); // cross-DC
    }

    #[test]
    fn rpc_latency_applied() {
        let (net, _) = setup(LatencyMatrix::uniform(Duration::from_millis(2)));
        let t0 = Instant::now();
        net.call(NodeId(1), NodeId(2), 0).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(4), "RTT not applied");
    }

    #[test]
    fn oneway_delivery() {
        let (net, echo) = setup(LatencyMatrix::zero());
        for i in 1..=10 {
            net.post(NodeId(1), NodeId(2), i).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while echo.received.load(Ordering::Relaxed) != 55 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(echo.received.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let (net, _) = setup(LatencyMatrix::zero());
        net.partition(DcId(1), DcId(2));
        assert!(matches!(
            net.call(NodeId(1), NodeId(2), 0),
            Err(Error::Network { .. })
        ));
        assert!(net.post(NodeId(1), NodeId(2), 0).is_err());
        net.heal(DcId(1), DcId(2));
        assert!(net.call(NodeId(1), NodeId(2), 0).is_ok());
    }

    #[test]
    fn unknown_node_errors() {
        let (net, _) = setup(LatencyMatrix::zero());
        assert!(net.call(NodeId(1), NodeId(99), 0).is_err());
        assert!(net.call(NodeId(99), NodeId(1), 0).is_err());
    }

    #[test]
    fn deregister_removes_node() {
        let (net, _) = setup(LatencyMatrix::zero());
        net.deregister(NodeId(2));
        assert!(net.call(NodeId(1), NodeId(2), 0).is_err());
        assert!(net.dc_of(NodeId(2)).is_none());
        assert_eq!(net.dc_of(NodeId(1)), Some(DcId(1)));
    }

    #[test]
    fn crashed_node_blackholes_and_restart_recovers() {
        let (net, echo) = setup(LatencyMatrix::zero());
        net.crash(NodeId(2));
        assert!(net.is_crashed(NodeId(2)));
        assert!(matches!(
            net.call(NodeId(1), NodeId(2), 0),
            Err(Error::Timeout { .. })
        ));
        // Posts vanish silently.
        net.post(NodeId(1), NodeId(2), 7).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(echo.received.load(Ordering::Relaxed), 0);
        assert!(net.fault_stats.blackholed.get() >= 2);
        // Restart: traffic flows again, lost messages stay lost.
        net.restart(NodeId(2));
        assert_eq!(net.call(NodeId(1), NodeId(2), 41).unwrap(), 42);
    }

    #[test]
    fn crashed_sender_cannot_call_out() {
        let (net, _) = setup(LatencyMatrix::zero());
        net.crash(NodeId(1));
        assert!(matches!(
            net.call(NodeId(1), NodeId(2), 0),
            Err(Error::Timeout { .. })
        ));
    }

    #[test]
    fn full_drop_plan_times_out_every_call() {
        use crate::fault::{FaultPlan, LinkFaults};
        let (net, _) = setup(LatencyMatrix::zero());
        net.set_fault_plan(FaultPlan::new(1).with_all_links(LinkFaults::lossy(1.0)));
        for _ in 0..5 {
            assert!(matches!(
                net.call(NodeId(1), NodeId(2), 0),
                Err(Error::Timeout { .. })
            ));
        }
        assert_eq!(net.fault_stats.dropped_requests.get(), 5);
        net.clear_fault_plan();
        assert!(net.call(NodeId(1), NodeId(2), 0).is_ok());
    }

    #[test]
    fn duplicate_plan_delivers_posts_twice() {
        use crate::fault::{FaultPlan, LinkFaults};
        let (net, echo) = setup(LatencyMatrix::zero());
        net.set_fault_plan(
            FaultPlan::new(1)
                .with_all_links(LinkFaults::none().with_duplicate(1.0)),
        );
        net.post(NodeId(1), NodeId(2), 10).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while echo.received.load(Ordering::Relaxed) != 20 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(echo.received.load(Ordering::Relaxed), 20, "post not duplicated");
        assert_eq!(net.fault_stats.duplicated_posts.get(), 1);
    }

    #[test]
    fn one_shot_crash_fires_on_nth_send() {
        use crate::fault::{FaultPlan, OneShot, OneShotFault};
        let (net, _) = setup(LatencyMatrix::zero());
        net.set_fault_plan(FaultPlan::new(1).with_one_shot(OneShot {
            from: NodeId(1),
            after_sends: 3,
            fault: OneShotFault::Crash(NodeId(1)),
        }));
        assert!(net.call(NodeId(1), NodeId(2), 0).is_ok());
        assert!(net.call(NodeId(1), NodeId(2), 0).is_ok());
        // Third send triggers the crash of the sender itself.
        assert!(matches!(
            net.call(NodeId(1), NodeId(2), 0),
            Err(Error::Timeout { .. })
        ));
        assert!(net.is_crashed(NodeId(1)));
        assert_eq!(net.fault_stats.one_shots_fired.get(), 1);
    }

    #[test]
    fn flush_shot_crashes_at_nth_flush_and_fails_that_flush() {
        use crate::fault::{FaultPlan, FlushShot, OneShotFault};
        let (net, _) = setup(LatencyMatrix::zero());
        net.set_fault_plan(FaultPlan::new(1).with_flush_shot(FlushShot {
            node: NodeId(2),
            after_flushes: 3,
            fault: OneShotFault::Crash(NodeId(2)),
        }));
        assert!(!net.note_flush(NodeId(2))); // 1
        assert!(!net.note_flush(NodeId(2))); // 2
        assert!(net.note_flush(NodeId(2)), "third flush must fail: node died at it");
        assert!(net.is_crashed(NodeId(2)));
        assert_eq!(net.fault_stats.one_shots_fired.get(), 1);
        // Once crashed, every further flush attempt fails too.
        assert!(net.note_flush(NodeId(2)));
    }

    #[test]
    fn restart_amnesia_counts_and_replaces_service() {
        let (net, old) = setup(LatencyMatrix::zero());
        net.crash(NodeId(2));
        assert!(net.call(NodeId(1), NodeId(2), 0).is_err());
        // The harness rebuilds a fresh service from durable artifacts and
        // re-registers it; the fabric swaps handlers atomically.
        let reborn = Arc::new(Echo { received: AtomicU64::new(0) });
        net.register(NodeId(2), DcId(2), reborn.clone());
        net.restart_amnesia(NodeId(2));
        assert_eq!(net.fault_stats.amnesia_restarts.get(), 1);
        assert_eq!(net.call(NodeId(1), NodeId(2), 41).unwrap(), 42);
        net.post(NodeId(1), NodeId(2), 7).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        while reborn.received.load(Ordering::Relaxed) != 7 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(reborn.received.load(Ordering::Relaxed), 7, "post reaches reborn service");
        assert_eq!(old.received.load(Ordering::Relaxed), 0, "old service stays silent");
    }

    #[test]
    fn same_seed_same_fault_sequence_on_fabric() {
        use crate::fault::{FaultPlan, LinkFaults};
        let outcomes = |seed: u64| -> Vec<bool> {
            let (net, _) = setup(LatencyMatrix::zero());
            net.set_fault_plan(
                FaultPlan::new(seed).with_all_links(LinkFaults::lossy(0.4)),
            );
            (0..50).map(|i| net.call(NodeId(1), NodeId(2), i).is_ok()).collect()
        };
        assert_eq!(outcomes(99), outcomes(99));
    }

    #[test]
    fn concurrent_calls_overlap() {
        // With a 5 ms one-way delay, 8 concurrent calls should take far less
        // than 8 * 10 ms if they truly overlap.
        let (net, _) = setup(LatencyMatrix::uniform(Duration::from_millis(5)));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let net = Arc::clone(&net);
                std::thread::spawn(move || net.call(NodeId(1), NodeId(2), 1).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
        assert!(t0.elapsed() < Duration::from_millis(60));
    }
}
