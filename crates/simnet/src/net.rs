//! The network fabric: node registry, RPC, one-way posts, partitions.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use polardbx_common::{DcId, Error, NodeId, Result};

use crate::latency::LatencyMatrix;

/// A service that can be attached to the network under a [`NodeId`].
///
/// `handle` services synchronous RPCs; `handle_oneway` services posted
/// messages (fire-and-forget, delivered in order by a per-node thread).
pub trait Handler<M: Send + 'static>: Send + Sync {
    /// Handle a synchronous request, producing a reply.
    fn handle(&self, from: NodeId, msg: M) -> M;

    /// Handle a one-way message. Default: ignore.
    fn handle_oneway(&self, from: NodeId, msg: M) {
        let _ = (from, msg);
    }
}

/// Per-link traffic counters.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Total synchronous calls made.
    pub calls: AtomicU64,
    /// Total one-way messages posted.
    pub posts: AtomicU64,
    /// Calls that crossed a datacenter boundary.
    pub cross_dc_calls: AtomicU64,
    /// Posts that crossed a datacenter boundary.
    pub cross_dc_posts: AtomicU64,
}

impl NetStats {
    /// Snapshot (calls, posts, cross_dc_calls, cross_dc_posts).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.calls.load(Ordering::Relaxed),
            self.posts.load(Ordering::Relaxed),
            self.cross_dc_calls.load(Ordering::Relaxed),
            self.cross_dc_posts.load(Ordering::Relaxed),
        )
    }
}

struct Registration<M: Send + 'static> {
    dc: DcId,
    service: Arc<dyn Handler<M>>,
    oneway_tx: Sender<(NodeId, M, Instant)>,
    delivery: Option<JoinHandle<()>>,
}

/// The in-process network. Generic over the message type `M`; protocol
/// crates instantiate it with their own enum of RPCs.
pub struct SimNet<M: Send + 'static> {
    latency: LatencyMatrix,
    nodes: RwLock<HashMap<NodeId, Registration<M>>>,
    partitions: RwLock<HashSet<(DcId, DcId)>>,
    shutdown: Arc<AtomicBool>,
    /// Traffic counters (public so harnesses can report them).
    pub stats: NetStats,
}

impl<M: Send + 'static> SimNet<M> {
    /// Create a fabric with the given latency model.
    pub fn new(latency: LatencyMatrix) -> Arc<SimNet<M>> {
        Arc::new(SimNet {
            latency,
            nodes: RwLock::new(HashMap::new()),
            partitions: RwLock::new(HashSet::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: NetStats::default(),
        })
    }

    /// Register `service` as `node` living in `dc`. Spawns the node's
    /// one-way delivery thread.
    pub fn register(&self, node: NodeId, dc: DcId, service: Arc<dyn Handler<M>>) {
        let (tx, rx) = unbounded::<(NodeId, M, Instant)>();
        let svc = Arc::clone(&service);
        let shutdown = Arc::clone(&self.shutdown);
        let delivery = std::thread::Builder::new()
            .name(format!("simnet-deliver-{node}"))
            .spawn(move || {
                while let Ok((from, msg, deliver_at)) = rx.recv() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    // Propagation delay, not serialization delay: messages
                    // posted close together arrive close together. Sleep
                    // only the remaining time until this message's arrival.
                    let now = Instant::now();
                    if deliver_at > now {
                        std::thread::sleep(deliver_at - now);
                    }
                    svc.handle_oneway(from, msg);
                }
            })
            .expect("spawn delivery thread");
        self.nodes
            .write()
            .insert(node, Registration { dc, service, oneway_tx: tx, delivery: Some(delivery) });
    }

    /// Remove a node from the fabric (its delivery thread drains and exits).
    pub fn deregister(&self, node: NodeId) {
        if let Some(mut reg) = self.nodes.write().remove(&node) {
            drop(reg.oneway_tx.clone());
            // Dropping the Registration drops the sender, closing the channel.
            if let Some(h) = reg.delivery.take() {
                drop(reg);
                let _ = h.join();
            }
        }
    }

    /// Datacenter of a node, if registered.
    pub fn dc_of(&self, node: NodeId) -> Option<DcId> {
        self.nodes.read().get(&node).map(|r| r.dc)
    }

    /// Sever connectivity between two datacenters (both directions).
    pub fn partition(&self, a: DcId, b: DcId) {
        let mut p = self.partitions.write();
        p.insert((a, b));
        p.insert((b, a));
    }

    /// Restore connectivity between two datacenters.
    pub fn heal(&self, a: DcId, b: DcId) {
        let mut p = self.partitions.write();
        p.remove(&(a, b));
        p.remove(&(b, a));
    }

    fn check_link(&self, a: DcId, b: DcId) -> Result<()> {
        if self.partitions.read().contains(&(a, b)) {
            return Err(Error::Network { message: format!("partition between {a} and {b}") });
        }
        Ok(())
    }

    /// Synchronous RPC from `from` to `to`: sleeps the one-way delay, runs
    /// the destination handler on the calling thread, sleeps the return
    /// delay, and returns the reply. Concurrency comes from concurrent
    /// callers, exactly like a thread-per-connection server.
    pub fn call(&self, from: NodeId, to: NodeId, msg: M) -> Result<M> {
        let (from_dc, to_dc, service) = {
            let nodes = self.nodes.read();
            let from_dc = nodes
                .get(&from)
                .map(|r| r.dc)
                .ok_or_else(|| Error::Network { message: format!("unknown sender {from}") })?;
            let reg = nodes
                .get(&to)
                .ok_or_else(|| Error::Network { message: format!("unknown node {to}") })?;
            (from_dc, reg.dc, Arc::clone(&reg.service))
        };
        self.check_link(from_dc, to_dc)?;
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        if from_dc != to_dc {
            self.stats.cross_dc_calls.fetch_add(1, Ordering::Relaxed);
        }
        let d1 = self.latency.one_way(from_dc, to_dc);
        if !d1.is_zero() {
            std::thread::sleep(d1);
        }
        let reply = service.handle(from, msg);
        let d2 = self.latency.one_way(to_dc, from_dc);
        if !d2.is_zero() {
            std::thread::sleep(d2);
        }
        Ok(reply)
    }

    /// Fire-and-forget message: enqueued to the destination's delivery
    /// thread, which applies the link delay then invokes `handle_oneway`.
    /// Messages from all senders to one destination are delivered in the
    /// order they were enqueued (FIFO per destination).
    pub fn post(&self, from: NodeId, to: NodeId, msg: M) -> Result<()> {
        let (from_dc, to_dc, tx) = {
            let nodes = self.nodes.read();
            let from_dc = nodes
                .get(&from)
                .map(|r| r.dc)
                .ok_or_else(|| Error::Network { message: format!("unknown sender {from}") })?;
            let reg = nodes
                .get(&to)
                .ok_or_else(|| Error::Network { message: format!("unknown node {to}") })?;
            (from_dc, reg.dc, reg.oneway_tx.clone())
        };
        self.check_link(from_dc, to_dc)?;
        self.stats.posts.fetch_add(1, Ordering::Relaxed);
        if from_dc != to_dc {
            self.stats.cross_dc_posts.fetch_add(1, Ordering::Relaxed);
        }
        let deliver_at = Instant::now() + self.latency.one_way(from_dc, to_dc);
        tx.send((from, msg, deliver_at))
            .map_err(|_| Error::Network { message: format!("node {to} shut down") })
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyMatrix {
        &self.latency
    }

    /// Registered node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.read().keys().copied().collect()
    }

    /// Stop delivery threads. Called on teardown; nodes stay registered but
    /// one-way delivery halts.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let mut nodes = self.nodes.write();
        for (_, reg) in nodes.iter_mut() {
            // Closing the channel wakes the delivery thread.
            let (tx, _rx) = unbounded();
            reg.oneway_tx = tx;
        }
    }
}

impl<M: Send + 'static> Drop for SimNet<M> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    struct Echo {
        received: AtomicU64,
    }

    impl Handler<u64> for Echo {
        fn handle(&self, _from: NodeId, msg: u64) -> u64 {
            msg + 1
        }
        fn handle_oneway(&self, _from: NodeId, msg: u64) {
            self.received.fetch_add(msg, Ordering::Relaxed);
        }
    }

    fn setup(lat: LatencyMatrix) -> (Arc<SimNet<u64>>, Arc<Echo>) {
        let net = SimNet::new(lat);
        let echo = Arc::new(Echo { received: AtomicU64::new(0) });
        net.register(NodeId(1), DcId(1), echo.clone());
        net.register(NodeId(2), DcId(2), echo.clone());
        (net, echo)
    }

    #[test]
    fn rpc_roundtrip() {
        let (net, _) = setup(LatencyMatrix::zero());
        assert_eq!(net.call(NodeId(1), NodeId(2), 41).unwrap(), 42);
        assert_eq!(net.stats.snapshot().0, 1);
        assert_eq!(net.stats.snapshot().2, 1); // cross-DC
    }

    #[test]
    fn rpc_latency_applied() {
        let (net, _) = setup(LatencyMatrix::uniform(Duration::from_millis(2)));
        let t0 = Instant::now();
        net.call(NodeId(1), NodeId(2), 0).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(4), "RTT not applied");
    }

    #[test]
    fn oneway_delivery() {
        let (net, echo) = setup(LatencyMatrix::zero());
        for i in 1..=10 {
            net.post(NodeId(1), NodeId(2), i).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while echo.received.load(Ordering::Relaxed) != 55 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(echo.received.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let (net, _) = setup(LatencyMatrix::zero());
        net.partition(DcId(1), DcId(2));
        assert!(matches!(
            net.call(NodeId(1), NodeId(2), 0),
            Err(Error::Network { .. })
        ));
        assert!(net.post(NodeId(1), NodeId(2), 0).is_err());
        net.heal(DcId(1), DcId(2));
        assert!(net.call(NodeId(1), NodeId(2), 0).is_ok());
    }

    #[test]
    fn unknown_node_errors() {
        let (net, _) = setup(LatencyMatrix::zero());
        assert!(net.call(NodeId(1), NodeId(99), 0).is_err());
        assert!(net.call(NodeId(99), NodeId(1), 0).is_err());
    }

    #[test]
    fn deregister_removes_node() {
        let (net, _) = setup(LatencyMatrix::zero());
        net.deregister(NodeId(2));
        assert!(net.call(NodeId(1), NodeId(2), 0).is_err());
        assert!(net.dc_of(NodeId(2)).is_none());
        assert_eq!(net.dc_of(NodeId(1)), Some(DcId(1)));
    }

    #[test]
    fn concurrent_calls_overlap() {
        // With a 5 ms one-way delay, 8 concurrent calls should take far less
        // than 8 * 10 ms if they truly overlap.
        let (net, _) = setup(LatencyMatrix::uniform(Duration::from_millis(5)));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let net = Arc::clone(&net);
                std::thread::spawn(move || net.call(NodeId(1), NodeId(2), 1).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
        assert!(t0.elapsed() < Duration::from_millis(60));
    }
}
