//! TPC-H-lite: schema, generator and all 22 query shapes (Fig 9b, Fig 10).
//!
//! The schema is the standard eight tables with trimmed column sets; dates
//! are integers (days since 1992-01-01, 0..2557). Queries whose official
//! text requires subqueries/outer joins are rewritten to join/aggregate
//! equivalents with the same operator mix — each substitution is noted on
//! the query. Absolute results differ from dbgen; the *shape* (which
//! operators dominate, how selective the filters are) is preserved, which
//! is what the MPP and column-index comparisons measure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use polardbx::{PolarDbx, Session};
use polardbx_common::{DcId, Key, Result, Row, Value};
use polardbx_txn::WireWriteOp;

/// Scale knob: rows = SF × base (lineitem base = 60 000).
#[derive(Debug, Clone, Copy)]
pub struct ScaleFactor(pub f64);

impl ScaleFactor {
    fn rows(&self, base: u64) -> i64 {
        ((base as f64) * self.0).max(1.0) as i64
    }
}

const NATIONS: [&str; 25] = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY",
    "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO",
    "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA",
    "UNITED KINGDOM", "UNITED STATES",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const TYPES: [&str; 6] = [
    "PROMO BRUSHED", "PROMO PLATED", "ECONOMY ANODIZED", "STANDARD POLISHED",
    "MEDIUM BURNISHED", "LARGE BRUSHED",
];
const CONTAINERS: [&str; 5] = ["SM CASE", "MED BOX", "LG DRUM", "JUMBO PKG", "WRAP BAG"];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];

/// Create the eight tables (orders + lineitem share a table group so the
/// partition-wise join of Q12 stays local, §II-B).
pub fn create_schema(s: &Session, shards: u32) -> Result<()> {
    let ddl = [
        "CREATE TABLE region (r_regionkey BIGINT NOT NULL, r_name VARCHAR(16), \
         PRIMARY KEY (r_regionkey)) PARTITION BY HASH(r_regionkey) PARTITIONS 1"
            .to_string(),
        "CREATE TABLE nation (n_nationkey BIGINT NOT NULL, n_name VARCHAR(16), \
         n_regionkey BIGINT, PRIMARY KEY (n_nationkey)) \
         PARTITION BY HASH(n_nationkey) PARTITIONS 1"
            .to_string(),
        format!(
            "CREATE TABLE supplier (s_suppkey BIGINT NOT NULL, s_name VARCHAR(24), \
             s_nationkey BIGINT, s_acctbal DOUBLE, PRIMARY KEY (s_suppkey)) \
             PARTITION BY HASH(s_suppkey) PARTITIONS {shards}"
        ),
        format!(
            "CREATE TABLE customer (c_custkey BIGINT NOT NULL, c_name VARCHAR(24), \
             c_nationkey BIGINT, c_mktsegment VARCHAR(16), c_acctbal DOUBLE, \
             PRIMARY KEY (c_custkey)) PARTITION BY HASH(c_custkey) PARTITIONS {shards}"
        ),
        format!(
            "CREATE TABLE part (p_partkey BIGINT NOT NULL, p_name VARCHAR(32), \
             p_brand VARCHAR(12), p_type VARCHAR(24), p_size BIGINT, \
             p_container VARCHAR(12), p_retailprice DOUBLE, PRIMARY KEY (p_partkey)) \
             PARTITION BY HASH(p_partkey) PARTITIONS {shards}"
        ),
        format!(
            "CREATE TABLE partsupp (ps_partkey BIGINT NOT NULL, ps_suppkey BIGINT NOT NULL, \
             ps_availqty BIGINT, ps_supplycost DOUBLE, PRIMARY KEY (ps_partkey, ps_suppkey)) \
             PARTITION BY HASH(ps_partkey) PARTITIONS {shards}"
        ),
        format!(
            "CREATE TABLE orders (o_orderkey BIGINT NOT NULL, o_custkey BIGINT, \
             o_orderstatus VARCHAR(2), o_totalprice DOUBLE, o_orderdate BIGINT, \
             o_orderpriority VARCHAR(16), o_shippriority BIGINT, \
             PRIMARY KEY (o_orderkey)) \
             PARTITION BY HASH(o_orderkey) PARTITIONS {shards} TABLEGROUP tpch_ol"
        ),
        format!(
            "CREATE TABLE lineitem (l_orderkey BIGINT NOT NULL, l_partkey BIGINT, \
             l_suppkey BIGINT, l_linenumber BIGINT NOT NULL, l_quantity BIGINT, \
             l_extendedprice DOUBLE, l_discount DOUBLE, l_tax DOUBLE, \
             l_returnflag VARCHAR(2), l_linestatus VARCHAR(2), l_shipdate BIGINT, \
             l_commitdate BIGINT, l_receiptdate BIGINT, l_shipmode VARCHAR(12), \
             PRIMARY KEY (l_orderkey, l_linenumber)) \
             PARTITION BY HASH(l_orderkey) PARTITIONS {shards} TABLEGROUP tpch_ol"
        ),
    ];
    for d in &ddl {
        s.execute(d)?;
    }
    Ok(())
}

fn pick<'a>(rng: &mut StdRng, xs: &'a [&str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// Batched loader through the coordinator.
struct Loader<'a> {
    session: &'a Session,
    writes: usize,
}

impl<'a> Loader<'a> {
    fn new(session: &'a Session) -> Loader<'a> {
        Loader { session, writes: 0 }
    }

    fn load(&mut self, table: &str, pk: &[Value], row: Row) -> Result<()> {
        let (stid, dn) = self.session.route(table, pk)?;
        let coord = self.session.coordinator();
        let mut txn = coord.begin();
        txn.write(dn, stid, Key::encode(pk), WireWriteOp::Insert(row))?;
        txn.commit()?;
        self.writes += 1;
        Ok(())
    }
}

/// Generate and load data at `sf`; returns the lineitem row count.
pub fn load(db: &PolarDbx, sf: ScaleFactor, seed: u64) -> Result<i64> {
    let s = db.connect(DcId(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut loader = Loader::new(&s);

    for (i, r) in REGIONS.iter().enumerate() {
        loader.load(
            "region",
            &[Value::Int(i as i64)],
            Row::new(vec![Value::Int(i as i64), Value::str(*r)]),
        )?;
    }
    for (i, n) in NATIONS.iter().enumerate() {
        loader.load(
            "nation",
            &[Value::Int(i as i64)],
            Row::new(vec![Value::Int(i as i64), Value::str(*n), Value::Int((i % 5) as i64)]),
        )?;
    }
    let suppliers = sf.rows(100);
    for i in 0..suppliers {
        loader.load(
            "supplier",
            &[Value::Int(i)],
            Row::new(vec![
                Value::Int(i),
                Value::Str(format!("Supplier#{i:09}")),
                Value::Int(rng.gen_range(0..25)),
                Value::Double(rng.gen_range(-999.0..9999.0)),
            ]),
        )?;
    }
    let customers = sf.rows(1500);
    for i in 0..customers {
        loader.load(
            "customer",
            &[Value::Int(i)],
            Row::new(vec![
                Value::Int(i),
                Value::Str(format!("Customer#{i:09}")),
                Value::Int(rng.gen_range(0..25)),
                Value::str(pick(&mut rng, &SEGMENTS)),
                Value::Double(rng.gen_range(-999.0..9999.0)),
            ]),
        )?;
    }
    let parts = sf.rows(2000);
    for i in 0..parts {
        let ty = pick(&mut rng, &TYPES).to_string();
        loader.load(
            "part",
            &[Value::Int(i)],
            Row::new(vec![
                Value::Int(i),
                Value::Str(format!("part {} {}", pick(&mut rng, &["green", "red", "forest", "blue", "ivory"]), i)),
                Value::Str(format!("Brand#{}{}", rng.gen_range(1..6), rng.gen_range(1..6))),
                Value::Str(ty),
                Value::Int(rng.gen_range(1..51)),
                Value::str(pick(&mut rng, &CONTAINERS)),
                Value::Double(rng.gen_range(900.0..2000.0)),
            ]),
        )?;
        // partsupp: 2 suppliers per part (trimmed from 4); dedupe when the
        // supplier pool is tiny.
        let mut seen_supp = Vec::new();
        for k in 0..2 {
            let supp = (i * 7 + k * 13) % suppliers.max(1);
            if seen_supp.contains(&supp) {
                continue;
            }
            seen_supp.push(supp);
            loader.load(
                "partsupp",
                &[Value::Int(i), Value::Int(supp)],
                Row::new(vec![
                    Value::Int(i),
                    Value::Int(supp),
                    Value::Int(rng.gen_range(1..10_000)),
                    Value::Double(rng.gen_range(1.0..1000.0)),
                ]),
            )?;
        }
    }
    let orders = sf.rows(15_000);
    let mut lineitems = 0i64;
    for o in 0..orders {
        let odate = rng.gen_range(0..2557i64);
        let nlines = rng.gen_range(1..=7i64);
        loader.load(
            "orders",
            &[Value::Int(o)],
            Row::new(vec![
                Value::Int(o),
                Value::Int(rng.gen_range(0..customers.max(1))),
                Value::str(if rng.gen_bool(0.5) { "F" } else { "O" }),
                Value::Double(rng.gen_range(1000.0..400_000.0)),
                Value::Int(odate),
                Value::str(pick(&mut rng, &PRIORITIES)),
                Value::Int(0),
            ]),
        )?;
        for ln in 0..nlines {
            let ship = odate + rng.gen_range(1..122);
            let commit = odate + rng.gen_range(30..91);
            let receipt = ship + rng.gen_range(1..31);
            loader.load(
                "lineitem",
                &[Value::Int(o), Value::Int(ln)],
                Row::new(vec![
                    Value::Int(o),
                    Value::Int(rng.gen_range(0..parts.max(1))),
                    Value::Int(rng.gen_range(0..suppliers.max(1))),
                    Value::Int(ln),
                    Value::Int(rng.gen_range(1..51)),
                    Value::Double(rng.gen_range(900.0..100_000.0)),
                    Value::Double(rng.gen_range(0.0..0.11)),
                    Value::Double(rng.gen_range(0.0..0.09)),
                    Value::str(pick(&mut rng, &RETURN_FLAGS)),
                    Value::str(if rng.gen_bool(0.5) { "F" } else { "O" }),
                    Value::Int(ship),
                    Value::Int(commit),
                    Value::Int(receipt),
                    Value::str(pick(&mut rng, &SHIPMODES)),
                ]),
            )?;
            lineitems += 1;
        }
    }
    // Feed the optimizer's statistics.
    db.gms().record_rows("lineitem", lineitems);
    db.gms().record_rows("orders", orders);
    db.gms().record_rows("customer", customers);
    db.gms().record_rows("part", parts);
    db.gms().record_rows("partsupp", parts * 2);
    db.gms().record_rows("supplier", suppliers);
    db.gms().record_rows("nation", 25);
    db.gms().record_rows("region", 5);
    Ok(lineitems)
}

/// The 22 query shapes. Rewrites versus the official text are noted inline.
pub fn query_sql(q: usize) -> &'static str {
    match q {
        1 => "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
              SUM(l_extendedprice) AS sum_base, \
              SUM(l_extendedprice * (1 - l_discount)) AS sum_disc, \
              AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, COUNT(*) AS n \
              FROM lineitem WHERE l_shipdate <= 2450 \
              GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
        // Q2: min-cost-supplier correlation dropped; the 5-way dimension
        // join + selective part filter is kept.
        2 => "SELECT s_acctbal, s_name, n_name, p_partkey \
              FROM part JOIN partsupp ON p_partkey = ps_partkey \
              JOIN supplier ON ps_suppkey = s_suppkey \
              JOIN nation ON s_nationkey = n_nationkey \
              JOIN region ON n_regionkey = r_regionkey \
              WHERE p_size = 15 AND r_name = 'EUROPE' \
              ORDER BY s_acctbal DESC LIMIT 100",
        3 => "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
              o_orderdate, o_shippriority \
              FROM customer JOIN orders ON c_custkey = o_custkey \
              JOIN lineitem ON l_orderkey = o_orderkey \
              WHERE c_mktsegment = 'BUILDING' AND o_orderdate < 1100 AND l_shipdate > 1100 \
              GROUP BY l_orderkey, o_orderdate, o_shippriority \
              ORDER BY revenue DESC LIMIT 10",
        // Q4: EXISTS rewritten as join + COUNT(DISTINCT o_orderkey).
        4 => "SELECT o_orderpriority, COUNT(DISTINCT o_orderkey) AS order_count \
              FROM orders JOIN lineitem ON l_orderkey = o_orderkey \
              WHERE o_orderdate >= 800 AND o_orderdate < 892 \
              AND l_commitdate < l_receiptdate \
              GROUP BY o_orderpriority ORDER BY o_orderpriority",
        5 => "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM customer JOIN orders ON c_custkey = o_custkey \
              JOIN lineitem ON l_orderkey = o_orderkey \
              JOIN supplier ON l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
              JOIN nation ON s_nationkey = n_nationkey \
              JOIN region ON n_regionkey = r_regionkey \
              WHERE r_name = 'ASIA' AND o_orderdate >= 730 AND o_orderdate < 1095 \
              GROUP BY n_name ORDER BY revenue DESC",
        6 => "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
              WHERE l_shipdate >= 730 AND l_shipdate < 1095 \
              AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        // Q7: the two-nation volume query; YEAR() becomes integer division.
        7 => "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
              l_shipdate / 365 AS l_year, \
              SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM supplier JOIN lineitem ON s_suppkey = l_suppkey \
              JOIN orders ON o_orderkey = l_orderkey \
              JOIN customer ON c_custkey = o_custkey \
              JOIN nation n1 ON s_nationkey = n1.n_nationkey \
              JOIN nation n2 ON c_nationkey = n2.n_nationkey \
              WHERE (n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') \
              OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE') \
              GROUP BY n1.n_name, n2.n_name, l_shipdate / 365 \
              ORDER BY supp_nation, cust_nation, l_year",
        // Q8: national market share via CASE over the join (outer query
        // flattened).
        8 => "SELECT o_orderdate / 365 AS o_year, \
              SUM(CASE WHEN n2.n_name = 'BRAZIL' \
                  THEN l_extendedprice * (1 - l_discount) ELSE 0 END) \
              / SUM(l_extendedprice * (1 - l_discount)) AS mkt_share \
              FROM part JOIN lineitem ON p_partkey = l_partkey \
              JOIN supplier ON l_suppkey = s_suppkey \
              JOIN orders ON l_orderkey = o_orderkey \
              JOIN customer ON o_custkey = c_custkey \
              JOIN nation n1 ON c_nationkey = n1.n_nationkey \
              JOIN nation n2 ON s_nationkey = n2.n_nationkey \
              JOIN region ON n1.n_regionkey = r_regionkey \
              WHERE r_name = 'AMERICA' AND p_size < 26 \
              GROUP BY o_orderdate / 365 ORDER BY o_year",
        9 => "SELECT n_name, o_orderdate / 365 AS o_year, \
              SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS profit \
              FROM part JOIN lineitem ON p_partkey = l_partkey \
              JOIN supplier ON l_suppkey = s_suppkey \
              JOIN partsupp ON ps_partkey = l_partkey AND ps_suppkey = l_suppkey \
              JOIN orders ON o_orderkey = l_orderkey \
              JOIN nation ON s_nationkey = n_nationkey \
              WHERE p_name LIKE '%green%' \
              GROUP BY n_name, o_orderdate / 365 ORDER BY n_name, o_year DESC",
        10 => "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
               c_acctbal, n_name \
               FROM customer JOIN orders ON c_custkey = o_custkey \
               JOIN lineitem ON l_orderkey = o_orderkey \
               JOIN nation ON c_nationkey = n_nationkey \
               WHERE o_orderdate >= 800 AND o_orderdate < 892 AND l_returnflag = 'R' \
               GROUP BY c_custkey, c_name, c_acctbal, n_name \
               ORDER BY revenue DESC LIMIT 20",
        // Q11: the global-fraction HAVING dropped; top partsupp values kept.
        11 => "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS val \
               FROM partsupp JOIN supplier ON ps_suppkey = s_suppkey \
               JOIN nation ON s_nationkey = n_nationkey \
               WHERE n_name = 'GERMANY' \
               GROUP BY ps_partkey ORDER BY val DESC LIMIT 100",
        12 => "SELECT l_shipmode, \
               SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' \
                   THEN 1 ELSE 0 END) AS high_line, \
               SUM(CASE WHEN o_orderpriority != '1-URGENT' AND o_orderpriority != '2-HIGH' \
                   THEN 1 ELSE 0 END) AS low_line \
               FROM orders JOIN lineitem ON o_orderkey = l_orderkey \
               WHERE l_shipmode IN ('MAIL', 'SHIP') AND l_commitdate < l_receiptdate \
               AND l_shipdate < l_commitdate AND l_receiptdate >= 730 AND l_receiptdate < 1095 \
               GROUP BY l_shipmode ORDER BY l_shipmode",
        // Q13: LEFT JOIN distribution replaced by inner-join counts.
        13 => "SELECT c_custkey, COUNT(*) AS c_count \
               FROM customer JOIN orders ON c_custkey = o_custkey \
               GROUP BY c_custkey ORDER BY c_count DESC LIMIT 100",
        14 => "SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%' \
               THEN l_extendedprice * (1 - l_discount) ELSE 0 END) \
               / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue \
               FROM lineitem JOIN part ON l_partkey = p_partkey \
               WHERE l_shipdate >= 900 AND l_shipdate < 931",
        // Q15: the max-revenue view becomes ORDER BY … LIMIT 1 over the
        // same aggregation joined to supplier.
        15 => "SELECT s_suppkey, s_name, SUM(l_extendedprice * (1 - l_discount)) AS total_rev \
               FROM lineitem JOIN supplier ON l_suppkey = s_suppkey \
               WHERE l_shipdate >= 900 AND l_shipdate < 990 \
               GROUP BY s_suppkey, s_name ORDER BY total_rev DESC LIMIT 1",
        // Q16: NOT EXISTS on blacklisted suppliers dropped.
        16 => "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt \
               FROM partsupp JOIN part ON p_partkey = ps_partkey \
               WHERE p_brand != 'Brand#45' AND p_size IN (1, 9, 14, 19, 23, 36, 45, 49) \
               GROUP BY p_brand, p_type, p_size \
               ORDER BY supplier_cnt DESC, p_brand LIMIT 50",
        // Q17: the correlated AVG(quantity) subquery becomes a fixed
        // quantity threshold.
        17 => "SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly \
               FROM lineitem JOIN part ON p_partkey = l_partkey \
               WHERE p_brand = 'Brand#23' AND p_container = 'MED BOX' AND l_quantity < 5",
        18 => "SELECT c_custkey, o_orderkey, SUM(l_quantity) AS total_qty \
               FROM customer JOIN orders ON c_custkey = o_custkey \
               JOIN lineitem ON o_orderkey = l_orderkey \
               GROUP BY c_custkey, o_orderkey HAVING SUM(l_quantity) > 150 \
               ORDER BY total_qty DESC LIMIT 100",
        19 => "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
               FROM lineitem JOIN part ON p_partkey = l_partkey \
               WHERE (p_container = 'SM CASE' AND l_quantity BETWEEN 1 AND 11 \
                      AND p_size BETWEEN 1 AND 5) \
               OR (p_container = 'MED BOX' AND l_quantity BETWEEN 10 AND 20 \
                   AND p_size BETWEEN 1 AND 10) \
               OR (p_container = 'LG DRUM' AND l_quantity BETWEEN 20 AND 30 \
                   AND p_size BETWEEN 1 AND 15)",
        // Q20: the nested IN-subquery chain flattened into the same joins.
        20 => "SELECT s_name, COUNT(*) AS eligible \
               FROM supplier JOIN partsupp ON s_suppkey = ps_suppkey \
               JOIN part ON ps_partkey = p_partkey \
               WHERE p_name LIKE 'forest%' AND ps_availqty > 1000 \
               GROUP BY s_name ORDER BY s_name LIMIT 50",
        // Q21: the double EXISTS / NOT EXISTS on sibling lineitems dropped;
        // the wait-detection filter and 4-way join kept.
        21 => "SELECT s_name, COUNT(*) AS numwait \
               FROM supplier JOIN lineitem ON s_suppkey = l_suppkey \
               JOIN orders ON o_orderkey = l_orderkey \
               JOIN nation ON s_nationkey = n_nationkey \
               WHERE o_orderstatus = 'F' AND l_receiptdate > l_commitdate \
               AND n_name = 'SAUDI ARABIA' \
               GROUP BY s_name ORDER BY numwait DESC LIMIT 100",
        // Q22: country-code membership via nation keys; NOT EXISTS dropped.
        22 => "SELECT c_nationkey, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal \
               FROM customer \
               WHERE c_acctbal > 0 AND c_nationkey IN (13, 31, 23, 29, 30, 18, 17) \
               GROUP BY c_nationkey ORDER BY c_nationkey",
        _ => panic!("TPC-H has queries 1..=22, got {q}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx::ClusterConfig;

    fn tiny_db() -> PolarDbx {
        let db = PolarDbx::build(ClusterConfig { dns: 2, ..Default::default() }).unwrap();
        let s = db.connect(DcId(1));
        create_schema(&s, 4).unwrap();
        load(&db, ScaleFactor(0.002), 42).unwrap();
        db
    }

    #[test]
    fn schema_and_load() {
        let db = tiny_db();
        assert_eq!(db.count_rows("region").unwrap(), 5);
        assert_eq!(db.count_rows("nation").unwrap(), 25);
        assert!(db.count_rows("lineitem").unwrap() > 50);
        assert!(db.count_rows("orders").unwrap() >= 30);
        db.shutdown();
    }

    #[test]
    fn all_22_queries_parse_plan_and_execute() {
        let db = tiny_db();
        let s = db.connect(DcId(1));
        for q in 1..=22 {
            let sql = query_sql(q);
            let rows = s
                .query(sql)
                .unwrap_or_else(|e| panic!("Q{q} failed: {e}\nSQL: {sql}"));
            // Aggregation-only queries yield exactly one row; the rest may
            // legitimately be empty at this tiny scale.
            if matches!(q, 6 | 14 | 17 | 19) {
                assert_eq!(rows.len(), 1, "Q{q} must yield a single aggregate row");
            }
        }
        db.shutdown();
    }

    #[test]
    fn q1_aggregates_are_consistent() {
        let db = tiny_db();
        let s = db.connect(DcId(1));
        let rows = s.query(query_sql(1)).unwrap();
        assert!(!rows.is_empty());
        let mut total_n = 0i64;
        for r in &rows {
            // COUNT(*) is the last column; AVG × COUNT ≈ SUM.
            let n = r.get(7).unwrap().as_int().unwrap();
            let sum_qty = r.get(2).unwrap().as_double().unwrap();
            let avg_qty = r.get(5).unwrap().as_double().unwrap();
            assert!((avg_qty * n as f64 - sum_qty).abs() < 1e-6);
            total_n += n;
        }
        // All groups together cover the filtered rows.
        let all = s
            .query("SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= 2450")
            .unwrap();
        assert_eq!(all[0].get(0).unwrap().as_int().unwrap(), total_n);
        db.shutdown();
    }

    #[test]
    fn deterministic_generation() {
        let db1 = tiny_db();
        let db2 = tiny_db();
        assert_eq!(
            db1.count_rows("lineitem").unwrap(),
            db2.count_rows("lineitem").unwrap()
        );
        db1.shutdown();
        db2.shutdown();
    }
}
