//! Sysbench OLTP workloads over the transaction coordinator.
//!
//! The drivers operate directly on [`polardbx_txn::Coordinator`] (no SQL
//! parsing on the hot path) so Fig 7 measures clock-scheme costs, not the
//! parser. "A transaction in oltp-write-only includes deletes, inserts and
//! index updates to different rows. While the transaction in
//! oltp-read-only consists of ten point reads and another four range
//! queries. Data access follows a random distribution" (§VII-A).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use polardbx_common::{Key, NodeId, Result, Row, TableId, Value};
use polardbx_txn::{Coordinator, WireWriteOp};

/// Table layout: `sbtest(id BIGINT PK, k INT, c CHAR(120), pad CHAR(60))`.
#[derive(Debug, Clone)]
pub struct SysbenchConfig {
    /// Logical rows per table.
    pub rows: i64,
    /// The sbtest table id (shard tables derived per DN by the router fn).
    pub table: TableId,
    /// Payload size of the `c` column.
    pub payload: usize,
}

impl Default for SysbenchConfig {
    fn default() -> Self {
        SysbenchConfig { rows: 10_000, table: TableId(77), payload: 120 }
    }
}

/// Maps a row id to the DN + engine-level shard table holding it. The
/// benches provide this from GMS routing or a fixed hash.
pub type RouteFn = dyn Fn(i64) -> (TableId, NodeId) + Send + Sync;

/// Build the canonical sbtest row.
pub fn sbtest_row(cfg: &SysbenchConfig, id: i64, rng: &mut StdRng) -> Row {
    let k: i64 = rng.gen_range(0..cfg.rows);
    Row::new(vec![
        Value::Int(id),
        Value::Int(k),
        Value::Str("c".repeat(cfg.payload)),
        Value::Str("p".repeat(cfg.payload / 2)),
    ])
}

/// Primary key of row `id`.
pub fn pk(id: i64) -> Key {
    Key::encode(&[Value::Int(id)])
}

/// Seed `rows` rows through `route` (one transaction per batch of 64).
pub fn seed(
    cfg: &SysbenchConfig,
    coord: &Coordinator,
    route: &RouteFn,
    seed: u64,
) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut txn = coord.begin();
    for id in 0..cfg.rows {
        let (table, dn) = route(id);
        txn.write(dn, table, pk(id), WireWriteOp::Insert(sbtest_row(cfg, id, &mut rng)))?;
        if id % 64 == 63 {
            txn.commit()?;
            txn = coord.begin();
        }
    }
    txn.commit()?;
    Ok(())
}

/// One `oltp-point-select` operation.
pub fn point_select(
    cfg: &SysbenchConfig,
    coord: &Coordinator,
    route: &RouteFn,
    rng: &mut StdRng,
) -> Result<()> {
    let id = rng.gen_range(0..cfg.rows);
    let (table, dn) = route(id);
    coord.read_autocommit(dn, table, &pk(id))?;
    Ok(())
}

/// One `oltp-read-only` transaction: ten point reads + four range queries.
pub fn read_only(
    cfg: &SysbenchConfig,
    coord: &Coordinator,
    route: &RouteFn,
    rng: &mut StdRng,
) -> Result<()> {
    let mut txn = coord.begin();
    for _ in 0..10 {
        let id = rng.gen_range(0..cfg.rows);
        let (table, dn) = route(id);
        txn.read(dn, table, &pk(id))?;
    }
    for _ in 0..4 {
        let lo = rng.gen_range(0..cfg.rows.saturating_sub(100).max(1));
        let (table, dn) = route(lo);
        txn.scan(dn, table, Some(pk(lo)), Some(pk(lo + 100)))?;
    }
    txn.commit()?;
    Ok(())
}

/// One `oltp-write-only` transaction: a delete, an insert (re-insert of the
/// deleted id, keeping the table stable) and two index-style updates on
/// other rows — "deletes, inserts and index updates to different rows".
pub fn write_only(
    cfg: &SysbenchConfig,
    coord: &Coordinator,
    route: &RouteFn,
    rng: &mut StdRng,
) -> Result<()> {
    let del_id = rng.gen_range(0..cfg.rows);
    let upd1 = rng.gen_range(0..cfg.rows);
    let upd2 = rng.gen_range(0..cfg.rows);
    let mut txn = coord.begin();
    let (t_del, dn_del) = route(del_id);
    txn.write(dn_del, t_del, pk(del_id), WireWriteOp::Delete)?;
    txn.write(
        dn_del,
        t_del,
        pk(del_id),
        WireWriteOp::Update(sbtest_row(cfg, del_id, rng)),
    )?;
    for id in [upd1, upd2] {
        let (t, dn) = route(id);
        txn.write(dn, t, pk(id), WireWriteOp::Update(sbtest_row(cfg, id, rng)))?;
    }
    txn.commit()?;
    Ok(())
}

/// One `oltp-read-write` transaction: the read-only body plus the
/// write-only body under one commit.
pub fn read_write(
    cfg: &SysbenchConfig,
    coord: &Coordinator,
    route: &RouteFn,
    rng: &mut StdRng,
) -> Result<()> {
    let mut txn = coord.begin();
    for _ in 0..4 {
        let id = rng.gen_range(0..cfg.rows);
        let (table, dn) = route(id);
        txn.read(dn, table, &pk(id))?;
    }
    for _ in 0..2 {
        let id = rng.gen_range(0..cfg.rows);
        let (table, dn) = route(id);
        txn.write(dn, table, pk(id), WireWriteOp::Update(sbtest_row(cfg, id, rng)))?;
    }
    txn.commit()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{DcId, IdGenerator, TenantId};
    use polardbx_hlc::Hlc;
    use polardbx_simnet::{Handler, LatencyMatrix, SimNet};
    use polardbx_storage::StorageEngine;
    use polardbx_txn::{DnService, TxnMsg};
    use std::sync::Arc;

    struct CnStub;
    impl Handler<TxnMsg> for CnStub {
        fn handle(&self, _f: polardbx_common::NodeId, m: TxnMsg) -> TxnMsg {
            m
        }
    }

    fn world() -> (Coordinator, Vec<Arc<DnService>>, SysbenchConfig) {
        let net = SimNet::new(LatencyMatrix::zero());
        let cfg = SysbenchConfig { rows: 500, ..Default::default() };
        let mut dns = Vec::new();
        for i in 1..=3u64 {
            let engine = StorageEngine::in_memory();
            // One shard table per DN.
            engine.create_table(TableId(cfg.table.raw() * 10 + i), TenantId(1));
            let dn = DnService::new(NodeId(i), engine, Hlc::new());
            net.register(NodeId(i), DcId(i), dn.clone() as Arc<dyn Handler<TxnMsg>>);
            dns.push(dn);
        }
        net.register(NodeId(9), DcId(1), Arc::new(CnStub));
        let coord =
            Coordinator::new(NodeId(9), net, Hlc::new(), Arc::new(IdGenerator::new()));
        (coord, dns, cfg)
    }

    fn route_for(cfg: &SysbenchConfig) -> Box<RouteFn> {
        let base = cfg.table.raw() * 10;
        Box::new(move |id: i64| {
            let dn = 1 + (id as u64 % 3);
            (TableId(base + dn), NodeId(dn))
        })
    }

    #[test]
    fn seed_then_mixed_workload() {
        let (coord, dns, cfg) = world();
        let route = route_for(&cfg);
        seed(&cfg, &coord, &route, 42).unwrap();
        let total: usize = dns
            .iter()
            .enumerate()
            .map(|(i, dn)| {
                dn.engine
                    .count_rows(TableId(cfg.table.raw() * 10 + i as u64 + 1), u64::MAX)
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 500);

        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            point_select(&cfg, &coord, &route, &mut rng).unwrap();
            read_only(&cfg, &coord, &route, &mut rng).unwrap();
            write_only(&cfg, &coord, &route, &mut rng).unwrap();
            read_write(&cfg, &coord, &route, &mut rng).unwrap();
        }
        // Write-only keeps the row population stable (delete + re-insert).
        let total_after: usize = dns
            .iter()
            .enumerate()
            .map(|(i, dn)| {
                dn.engine
                    .count_rows(TableId(cfg.table.raw() * 10 + i as u64 + 1), u64::MAX)
                    .unwrap()
            })
            .sum();
        assert_eq!(total_after, 500);
    }

    #[test]
    fn deterministic_rows() {
        let cfg = SysbenchConfig::default();
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(sbtest_row(&cfg, 5, &mut a), sbtest_row(&cfg, 5, &mut b));
    }
}
