//! The paper's evaluation workloads, scaled for a laptop (§VII).
//!
//! * [`sysbench`] — the Sysbench OLTP suite used for Fig 7 (cross-DC
//!   transactions) and Fig 8 (elasticity): `oltp-point-select`,
//!   `oltp-read-only` (ten point reads + four range queries),
//!   `oltp-write-only` (deletes, inserts and index updates on different
//!   rows) and `oltp-read-write`.
//! * [`tpcc`] — TPC-C-lite: warehouses/districts/customers/orders with the
//!   NewOrder + Payment mix; tpmC is NewOrder commits per minute (Fig 9).
//! * [`tpch`] — TPC-H-lite: the eight-table schema, a seeded generator,
//!   and all 22 query *shapes* expressed in the supported SQL subset
//!   (Fig 9b / Fig 10). Queries whose original text needs subqueries are
//!   rewritten join/aggregate equivalents that preserve the operator mix;
//!   each deviation is documented on the query constant.

pub mod sysbench;
pub mod tpcc;
pub mod tpch;
