//! TPC-C-lite: the transactional side of the HTAP experiment (Fig 9).
//!
//! A scaled-down TPC-C with the NewOrder + Payment mix over the classic
//! schema (warehouse, district, customer, stock, item, orders,
//! order_line). tpmC — NewOrder commits per minute — is the metric whose
//! stability under concurrent TPC-H load Fig 9(a) tracks.

use rand::rngs::StdRng;
use rand::Rng;

use polardbx::{PolarDbx, Session};
use polardbx_common::{Key, NodeId, Result, Row, TableId, Value};
use polardbx_txn::{DistTxn, WireWriteOp};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: i64,
    /// Districts per warehouse (TPC-C fixes 10; configurable for speed).
    pub districts: i64,
    /// Customers per district.
    pub customers: i64,
    /// Item catalog size.
    pub items: i64,
    /// Partition every cc_* table by its warehouse column alone (one
    /// partition group per warehouse) instead of the classic composite
    /// hash. Composite hashing scatters a warehouse's rows across DNs, so
    /// even warehouse-local transactions pay 2PC; warehouse partitioning
    /// gives the adaptive placer partitions it can actually colocate.
    pub by_warehouse: bool,
    /// Probability that a worker's transaction targets its *home*
    /// warehouse (the `*_at` entry points) instead of a uniformly random
    /// one. High affinity + `by_warehouse` is the skewed mix of the
    /// placement experiment.
    pub home_affinity: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 2,
            districts: 4,
            customers: 30,
            items: 100,
            by_warehouse: false,
            home_affinity: 0.0,
        }
    }
}

impl TpccConfig {
    /// The skewed warehouse-affinity configuration of the placement bench:
    /// warehouse-pure partitions, workers glued to home warehouses.
    pub fn skewed(warehouses: i64) -> TpccConfig {
        TpccConfig {
            warehouses,
            districts: 2,
            customers: 20,
            items: 50,
            by_warehouse: true,
            home_affinity: 0.9,
        }
    }
}

/// The TPC-C-lite driver.
pub struct TpccDriver {
    cfg: TpccConfig,
}

impl TpccDriver {
    /// Create the schema and load initial data.
    pub fn setup(db: &PolarDbx, cfg: TpccConfig) -> Result<TpccDriver> {
        let s = db.connect(polardbx_common::DcId(1));
        // `by_warehouse`: hash on the warehouse column with one partition
        // per warehouse — same single-column hash in every table, so a
        // warehouse's partitions form a colocatable group.
        let w_shards = cfg.warehouses.max(1) as u32;
        let pb = |bw_col: &str, classic: &str| {
            if cfg.by_warehouse {
                format!("PARTITION BY HASH({bw_col}) PARTITIONS {w_shards}")
            } else {
                format!("PARTITION BY HASH({classic}) PARTITIONS 4")
            }
        };
        s.execute(&format!(
            "CREATE TABLE cc_warehouse (w_id BIGINT NOT NULL, w_ytd DOUBLE, \
             PRIMARY KEY (w_id)) {}",
            pb("w_id", "w_id")
        ))?;
        s.execute(&format!(
            "CREATE TABLE cc_district (d_w_id BIGINT NOT NULL, d_id BIGINT NOT NULL, \
             d_next_o_id BIGINT, d_ytd DOUBLE, PRIMARY KEY (d_w_id, d_id)) {}",
            pb("d_w_id", "d_w_id, d_id")
        ))?;
        s.execute(&format!(
            "CREATE TABLE cc_customer (c_w_id BIGINT NOT NULL, c_d_id BIGINT NOT NULL, \
             c_id BIGINT NOT NULL, c_balance DOUBLE, c_ytd_payment DOUBLE, \
             PRIMARY KEY (c_w_id, c_d_id, c_id)) {}",
            pb("c_w_id", "c_w_id, c_d_id, c_id")
        ))?;
        s.execute(
            "CREATE TABLE cc_item (i_id BIGINT NOT NULL, i_price DOUBLE, i_name VARCHAR(24), \
             PRIMARY KEY (i_id)) PARTITION BY HASH(i_id) PARTITIONS 4",
        )?;
        s.execute(&format!(
            "CREATE TABLE cc_stock (s_w_id BIGINT NOT NULL, s_i_id BIGINT NOT NULL, \
             s_quantity BIGINT, PRIMARY KEY (s_w_id, s_i_id)) {}",
            pb("s_w_id", "s_w_id, s_i_id")
        ))?;
        s.execute(&format!(
            "CREATE TABLE cc_orders (o_w_id BIGINT NOT NULL, o_d_id BIGINT NOT NULL, \
             o_id BIGINT NOT NULL, o_c_id BIGINT, o_entry_d BIGINT, o_ol_cnt BIGINT, \
             PRIMARY KEY (o_w_id, o_d_id, o_id)) {}",
            pb("o_w_id", "o_w_id, o_d_id, o_id")
        ))?;
        s.execute(&format!(
            "CREATE TABLE cc_order_line (ol_w_id BIGINT NOT NULL, ol_d_id BIGINT NOT NULL, \
             ol_o_id BIGINT NOT NULL, ol_number BIGINT NOT NULL, ol_i_id BIGINT, \
             ol_quantity BIGINT, ol_amount DOUBLE, \
             PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number)) {}",
            pb("ol_w_id", "ol_w_id, ol_d_id, ol_o_id")
        ))?;

        // Load through the coordinator (no SQL on the hot path). Loading
        // routes *unfenced*: bulk transactions touch far more partitions
        // than the commit-time pin budget, and no re-home runs during
        // setup.
        let coord = s.coordinator();
        let mut txn = coord.begin();
        let mut writes = 0usize;
        let push = |txn: &mut polardbx_txn::DistTxn<'_>,
                        writes: &mut usize,
                        table: &str,
                        pk: &[Value],
                        row: Row|
         -> Result<()> {
            let rv: &[Value] =
                if cfg.by_warehouse && table != "cc_item" { &pk[..1] } else { pk };
            let (stid, dn) = s.route(table, rv)?;
            txn.write(dn, stid, Key::encode(pk), WireWriteOp::Insert(row))?;
            *writes += 1;
            Ok(())
        };
        for w in 0..cfg.warehouses {
            push(
                &mut txn,
                &mut writes,
                "cc_warehouse",
                &[Value::Int(w)],
                Row::new(vec![Value::Int(w), Value::Double(0.0)]),
            )?;
            for d in 0..cfg.districts {
                push(
                    &mut txn,
                    &mut writes,
                    "cc_district",
                    &[Value::Int(w), Value::Int(d)],
                    Row::new(vec![
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(1),
                        Value::Double(0.0),
                    ]),
                )?;
                for c in 0..cfg.customers {
                    push(
                        &mut txn,
                        &mut writes,
                        "cc_customer",
                        &[Value::Int(w), Value::Int(d), Value::Int(c)],
                        Row::new(vec![
                            Value::Int(w),
                            Value::Int(d),
                            Value::Int(c),
                            Value::Double(100.0),
                            Value::Double(0.0),
                        ]),
                    )?;
                    if writes > 96 {
                        txn.commit()?;
                        txn = coord.begin();
                        writes = 0;
                    }
                }
            }
            for i in 0..cfg.items {
                push(
                    &mut txn,
                    &mut writes,
                    "cc_stock",
                    &[Value::Int(w), Value::Int(i)],
                    Row::new(vec![Value::Int(w), Value::Int(i), Value::Int(1000)]),
                )?;
                if writes > 96 {
                    txn.commit()?;
                    txn = coord.begin();
                    writes = 0;
                }
            }
        }
        for i in 0..cfg.items {
            push(
                &mut txn,
                &mut writes,
                "cc_item",
                &[Value::Int(i)],
                Row::new(vec![
                    Value::Int(i),
                    Value::Double(1.0 + (i % 100) as f64),
                    Value::Str(format!("item-{i}")),
                ]),
            )?;
            if writes > 96 {
                txn.commit()?;
                txn = coord.begin();
                writes = 0;
            }
        }
        txn.commit()?;
        db.gms().record_rows("cc_order_line", 0);
        Ok(TpccDriver { cfg })
    }

    /// Partition-key values to route by: the warehouse column alone under
    /// `by_warehouse` (cc_item keeps its own key).
    fn route_vals<'v>(&self, table: &str, pk: &'v [Value]) -> &'v [Value] {
        if self.cfg.by_warehouse && table != "cc_item" {
            &pk[..1]
        } else {
            pk
        }
    }

    /// Route a read (no epoch pin — read-only partitions don't fence).
    fn route_read(&self, s: &Session, table: &str, pk: &[Value]) -> Result<(TableId, NodeId)> {
        s.route(table, self.route_vals(table, pk))
    }

    /// Route a write and pin the shard's routing epoch on the transaction,
    /// so a concurrent re-home aborts the commit retryably instead of
    /// letting it land on the old home.
    fn route_write(
        &self,
        s: &Session,
        txn: &mut DistTxn<'_>,
        table: &str,
        pk: &[Value],
    ) -> Result<(TableId, NodeId)> {
        let (stid, dn, epoch) = s.route_fenced(table, self.route_vals(table, pk))?;
        txn.pin_epoch(stid, epoch)?;
        Ok((stid, dn))
    }

    /// Pick a warehouse: the home one with probability `home_affinity`,
    /// uniform otherwise.
    fn pick_warehouse(&self, rng: &mut StdRng, home: i64) -> i64 {
        if self.cfg.home_affinity > 0.0 && rng.gen_bool(self.cfg.home_affinity) {
            home.rem_euclid(self.cfg.warehouses.max(1))
        } else {
            rng.gen_range(0..self.cfg.warehouses)
        }
    }

    /// One NewOrder transaction. Returns Err on conflict (caller retries
    /// or counts an abort).
    pub fn new_order(&self, s: &Session, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(0..self.cfg.warehouses);
        self.new_order_at(s, rng, w)
    }

    /// NewOrder pinned to warehouse `w` (placement bench workers keep a
    /// home warehouse; see [`TpccDriver::transaction_from`]).
    pub fn new_order_at(&self, s: &Session, rng: &mut StdRng, w: i64) -> Result<()> {
        let d = rng.gen_range(0..self.cfg.districts);
        let c = rng.gen_range(0..self.cfg.customers);
        let coord = s.coordinator();
        let mut txn = coord.begin();

        // District: fetch + bump next order id (the contention point).
        let dpk = [Value::Int(w), Value::Int(d)];
        let (d_tid, d_dn) = self.route_write(s, &mut txn, "cc_district", &dpk)?;
        let drow = txn
            .read(d_dn, d_tid, &Key::encode(&dpk))?
            .ok_or(polardbx_common::Error::KeyNotFound)?;
        let o_id = drow.get(2)?.as_int()?;
        let mut new_d = drow.clone();
        new_d.set(2, Value::Int(o_id + 1))?;
        txn.write(d_dn, d_tid, Key::encode(&dpk), WireWriteOp::Update(new_d))?;

        // Order header.
        let ol_cnt = rng.gen_range(5..=15i64);
        let opk = [Value::Int(w), Value::Int(d), Value::Int(o_id)];
        let (o_tid, o_dn) = self.route_write(s, &mut txn, "cc_orders", &opk)?;
        txn.write(
            o_dn,
            o_tid,
            Key::encode(&opk),
            WireWriteOp::Insert(Row::new(vec![
                Value::Int(w),
                Value::Int(d),
                Value::Int(o_id),
                Value::Int(c),
                Value::Int(rng.gen_range(0..2557)),
                Value::Int(ol_cnt),
            ])),
        )?;

        // Order lines: read item price, decrement stock, insert line.
        for ol in 0..ol_cnt {
            let item = rng.gen_range(0..self.cfg.items);
            let ipk = [Value::Int(item)];
            let (i_tid, i_dn) = self.route_read(s, "cc_item", &ipk)?;
            let irow = txn
                .read(i_dn, i_tid, &Key::encode(&ipk))?
                .ok_or(polardbx_common::Error::KeyNotFound)?;
            let price = irow.get(1)?.as_double()?;
            let qty = rng.gen_range(1..=10i64);

            let spk = [Value::Int(w), Value::Int(item)];
            let (s_tid, s_dn) = self.route_write(s, &mut txn, "cc_stock", &spk)?;
            let srow = txn
                .read(s_dn, s_tid, &Key::encode(&spk))?
                .ok_or(polardbx_common::Error::KeyNotFound)?;
            let mut new_s = srow.clone();
            let have = srow.get(2)?.as_int()?;
            new_s.set(2, Value::Int(if have > qty { have - qty } else { have + 91 }))?;
            txn.write(s_dn, s_tid, Key::encode(&spk), WireWriteOp::Update(new_s))?;

            let lpk = [Value::Int(w), Value::Int(d), Value::Int(o_id), Value::Int(ol)];
            let (l_tid, l_dn) = self.route_write(s, &mut txn, "cc_order_line", &lpk)?;
            txn.write(
                l_dn,
                l_tid,
                Key::encode(&lpk),
                WireWriteOp::Insert(Row::new(vec![
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(o_id),
                    Value::Int(ol),
                    Value::Int(item),
                    Value::Int(qty),
                    Value::Double(price * qty as f64),
                ])),
            )?;
        }
        txn.commit()?;
        Ok(())
    }

    /// One Payment transaction.
    pub fn payment(&self, s: &Session, rng: &mut StdRng) -> Result<()> {
        let w = rng.gen_range(0..self.cfg.warehouses);
        self.payment_at(s, rng, w)
    }

    /// Payment pinned to warehouse `w`.
    pub fn payment_at(&self, s: &Session, rng: &mut StdRng, w: i64) -> Result<()> {
        let d = rng.gen_range(0..self.cfg.districts);
        let c = rng.gen_range(0..self.cfg.customers);
        let amount = rng.gen_range(1.0..500.0);
        let coord = s.coordinator();
        let mut txn = coord.begin();

        let wpk = [Value::Int(w)];
        let (w_tid, w_dn) = self.route_write(s, &mut txn, "cc_warehouse", &wpk)?;
        let wrow = txn
            .read(w_dn, w_tid, &Key::encode(&wpk))?
            .ok_or(polardbx_common::Error::KeyNotFound)?;
        let mut new_w = wrow.clone();
        new_w.set(1, Value::Double(wrow.get(1)?.as_double()? + amount))?;
        txn.write(w_dn, w_tid, Key::encode(&wpk), WireWriteOp::Update(new_w))?;

        let dpk = [Value::Int(w), Value::Int(d)];
        let (d_tid, d_dn) = self.route_write(s, &mut txn, "cc_district", &dpk)?;
        let drow = txn
            .read(d_dn, d_tid, &Key::encode(&dpk))?
            .ok_or(polardbx_common::Error::KeyNotFound)?;
        let mut new_d = drow.clone();
        new_d.set(3, Value::Double(drow.get(3)?.as_double()? + amount))?;
        txn.write(d_dn, d_tid, Key::encode(&dpk), WireWriteOp::Update(new_d))?;

        let cpk = [Value::Int(w), Value::Int(d), Value::Int(c)];
        let (c_tid, c_dn) = self.route_write(s, &mut txn, "cc_customer", &cpk)?;
        let crow = txn
            .read(c_dn, c_tid, &Key::encode(&cpk))?
            .ok_or(polardbx_common::Error::KeyNotFound)?;
        let mut new_c = crow.clone();
        new_c.set(3, Value::Double(crow.get(3)?.as_double()? - amount))?;
        new_c.set(4, Value::Double(crow.get(4)?.as_double()? + amount))?;
        txn.write(c_dn, c_tid, Key::encode(&cpk), WireWriteOp::Update(new_c))?;

        txn.commit()?;
        Ok(())
    }

    /// The standard mix: ~45 % NewOrder, ~43 % Payment, rest reads.
    /// Returns true when the transaction counted toward tpmC (NewOrder).
    pub fn transaction(&self, s: &Session, rng: &mut StdRng) -> Result<bool> {
        let w = rng.gen_range(0..self.cfg.warehouses);
        self.transaction_from(s, rng, w)
    }

    /// The standard mix driven by a worker whose home warehouse is `home`:
    /// with probability `home_affinity` the transaction targets `home`,
    /// else a uniform warehouse. `transaction` delegates here with a
    /// uniformly random home, which degenerates to the classic mix.
    pub fn transaction_from(&self, s: &Session, rng: &mut StdRng, home: i64) -> Result<bool> {
        let dice = rng.gen_range(0..100);
        let w = self.pick_warehouse(rng, home);
        if dice < 45 {
            self.new_order_at(s, rng, w)?;
            Ok(true)
        } else if dice < 88 {
            self.payment_at(s, rng, w)?;
            Ok(false)
        } else {
            // Order-status style read.
            let d = rng.gen_range(0..self.cfg.districts);
            let c = rng.gen_range(0..self.cfg.customers);
            let cpk = [Value::Int(w), Value::Int(d), Value::Int(c)];
            let (c_tid, c_dn) = self.route_read(s, "cc_customer", &cpk)?;
            s.coordinator().read_autocommit(c_dn, c_tid, &Key::encode(&cpk))?;
            Ok(false)
        }
    }

    /// Driver config.
    pub fn config(&self) -> &TpccConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx::ClusterConfig;
    use rand::SeedableRng;

    #[test]
    fn setup_and_run_mix() {
        let db = PolarDbx::build(ClusterConfig { dns: 2, ..Default::default() }).unwrap();
        let driver = TpccDriver::setup(&db, TpccConfig::default()).unwrap();
        let s = db.connect(polardbx_common::DcId(1));
        let mut rng = StdRng::seed_from_u64(11);
        let mut new_orders = 0;
        let mut attempts = 0;
        while new_orders < 5 && attempts < 200 {
            attempts += 1;
            match driver.transaction(&s, &mut rng) {
                Ok(true) => new_orders += 1,
                Ok(false) => {}
                Err(e) if e.is_retryable() => {}
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(new_orders >= 5, "NewOrders must commit");
        // Orders and lines landed.
        assert!(db.count_rows("cc_orders").unwrap() >= 5);
        assert!(db.count_rows("cc_order_line").unwrap() >= 25);
        db.shutdown();
    }

    #[test]
    fn skewed_mix_runs_warehouse_pure() {
        // by_warehouse partitioning + home affinity: the placement-bench
        // configuration must execute the full mix with fenced routing.
        let db = PolarDbx::build(ClusterConfig { dns: 2, ..Default::default() }).unwrap();
        let driver = TpccDriver::setup(&db, TpccConfig::skewed(4)).unwrap();
        let s = db.connect(polardbx_common::DcId(1));
        let mut rng = StdRng::seed_from_u64(7);
        let mut new_orders = 0;
        for _ in 0..120 {
            match driver.transaction_from(&s, &mut rng, 1) {
                Ok(true) => new_orders += 1,
                Ok(false) => {}
                Err(e) if e.is_retryable() => {}
                Err(e) => panic!("unexpected: {e}"),
            }
            if new_orders >= 5 {
                break;
            }
        }
        assert!(new_orders >= 5, "NewOrders must commit under skewed config");
        assert!(db.count_rows("cc_orders").unwrap() >= 5);
        db.shutdown();
    }

    #[test]
    fn money_conservation_under_payments() {
        let db = PolarDbx::build(ClusterConfig { dns: 2, ..Default::default() }).unwrap();
        let cfg =
            TpccConfig { warehouses: 1, districts: 2, customers: 5, items: 10, ..Default::default() };
        let driver = TpccDriver::setup(&db, cfg.clone()).unwrap();
        let s = db.connect(polardbx_common::DcId(1));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let _ = driver.payment(&s, &mut rng);
        }
        // Sum of warehouse ytd equals sum of customer ytd_payment.
        let w = s.query("SELECT SUM(w_ytd) FROM cc_warehouse").unwrap();
        let c = s.query("SELECT SUM(c_ytd_payment) FROM cc_customer").unwrap();
        let wy = w[0].get(0).unwrap().as_double().unwrap();
        let cy = c[0].get(0).unwrap().as_double().unwrap();
        assert!((wy - cy).abs() < 1e-6, "w_ytd {wy} != c_ytd {cy}");
        db.shutdown();
    }
}
