//! Mini-transactions: the unit of atomic redo application.
//!
//! §III: "A transaction is divided into multiple mini-transactions (MTR),
//! which are a group of contiguous redo log entries." An MTR's records are
//! encoded contiguously; its LSN range is `[start_lsn, end_lsn)` where the
//! length is the encoded byte length (LSN is a byte offset, as in InnoDB).

use bytes::{Bytes, BytesMut};

use polardbx_common::{Lsn, Result};

use crate::record::RedoPayload;

/// A mini-transaction: an atomic group of redo records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mtr {
    records: Vec<RedoPayload>,
}

impl Mtr {
    /// An MTR from records. Panics on empty input — an empty MTR has no
    /// LSN footprint and would corrupt offset arithmetic.
    pub fn new(records: Vec<RedoPayload>) -> Mtr {
        assert!(!records.is_empty(), "MTR must contain at least one record");
        Mtr { records }
    }

    /// Single-record MTR, the common case: each statement's change is "up
    /// to a few hundreds of bytes" (§III).
    pub fn single(record: RedoPayload) -> Mtr {
        Mtr { records: vec![record] }
    }

    /// The records.
    pub fn records(&self) -> &[RedoPayload] {
        &self.records
    }

    /// Encoded length in bytes = the LSN span this MTR occupies.
    pub fn encoded_len(&self) -> usize {
        self.records.iter().map(RedoPayload::encoded_len).sum()
    }

    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        for r in &self.records {
            r.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Decode an MTR from `bytes` (whole buffer = one MTR).
    pub fn decode(bytes: Bytes) -> Result<Mtr> {
        Ok(Mtr { records: RedoPayload::decode_all(bytes)? })
    }

    /// The LSN range `[at, at + len)` this MTR would occupy if appended at
    /// `at`.
    pub fn lsn_range(&self, at: Lsn) -> (Lsn, Lsn) {
        (at, at.advance(self.encoded_len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use polardbx_common::{Key, TableId, TrxId, Value};

    fn sample() -> Mtr {
        Mtr::new(vec![
            RedoPayload::Insert {
                trx: TrxId(1),
                table: TableId(1),
                key: Key::encode(&[Value::Int(1)]),
                row: Bytes::from_static(b"abc"),
            },
            RedoPayload::TxnCommit { trx: TrxId(1), commit_ts: 5 },
        ])
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let enc = m.encode();
        assert_eq!(enc.len(), m.encoded_len());
        assert_eq!(Mtr::decode(enc).unwrap(), m);
    }

    #[test]
    fn lsn_range_spans_encoded_len() {
        let m = sample();
        let (s, e) = m.lsn_range(Lsn(100));
        assert_eq!(s, Lsn(100));
        assert_eq!(e, Lsn(100 + m.encoded_len() as u64));
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_mtr_panics() {
        let _ = Mtr::new(vec![]);
    }
}
