//! Logical redo record payloads and their binary codec.
//!
//! Records are *logical* (row-level) rather than InnoDB's physical page
//! deltas: the reproduction's storage engine is versioned-row based, so
//! row-level redo carries exactly the information RO replicas and Paxos
//! followers need to replay. The codec is hand-rolled little-endian with
//! length prefixes — no external serialization dependency.

use bytes::{Buf, BufMut, Bytes};

use polardbx_common::{Error, Key, Lsn, Result, TableId, TenantId, TrxId};

/// A single redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedoPayload {
    /// Insert `row` (pre-encoded) at `key` in `table` by `trx`.
    Insert { trx: TrxId, table: TableId, key: Key, row: Bytes },
    /// Replace the row at `key` with `row`.
    Update { trx: TrxId, table: TableId, key: Key, row: Bytes },
    /// Delete the row at `key`.
    Delete { trx: TrxId, table: TableId, key: Key },
    /// Transaction entered the PREPARED state (2PC first phase).
    TxnPrepare { trx: TrxId, prepare_ts: u64 },
    /// Transaction committed with `commit_ts`.
    TxnCommit { trx: TrxId, commit_ts: u64 },
    /// Transaction rolled back.
    TxnAbort { trx: TrxId },
    /// Checkpoint: pages dirtied before `upto` have been flushed.
    Checkpoint { upto: Lsn },
    /// Tenant ownership marker used by PolarDB-MT recovery to divide log
    /// entries by tenant (§V: logs are replayed per-tenant in parallel).
    TenantMark { tenant: TenantId },
}

const TAG_INSERT: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_PREPARE: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_ABORT: u8 = 6;
const TAG_CHECKPOINT: u8 = 7;
const TAG_TENANT: u8 = 8;

impl RedoPayload {
    /// Serialize into `out`. Layout: `tag:u8` then tag-specific fields,
    /// byte strings length-prefixed with `u32`. Generic over the output
    /// cursor so the epoch pipeline can encode straight into a reused
    /// `Vec<u8>` arena without an intermediate `BytesMut` allocation.
    pub fn encode<B: BufMut>(&self, out: &mut B) {
        match self {
            RedoPayload::Insert { trx, table, key, row } => {
                out.put_u8(TAG_INSERT);
                out.put_u64_le(trx.raw());
                out.put_u64_le(table.raw());
                put_bytes(out, key.as_bytes());
                put_bytes(out, row);
            }
            RedoPayload::Update { trx, table, key, row } => {
                out.put_u8(TAG_UPDATE);
                out.put_u64_le(trx.raw());
                out.put_u64_le(table.raw());
                put_bytes(out, key.as_bytes());
                put_bytes(out, row);
            }
            RedoPayload::Delete { trx, table, key } => {
                out.put_u8(TAG_DELETE);
                out.put_u64_le(trx.raw());
                out.put_u64_le(table.raw());
                put_bytes(out, key.as_bytes());
            }
            RedoPayload::TxnPrepare { trx, prepare_ts } => {
                out.put_u8(TAG_PREPARE);
                out.put_u64_le(trx.raw());
                out.put_u64_le(*prepare_ts);
            }
            RedoPayload::TxnCommit { trx, commit_ts } => {
                out.put_u8(TAG_COMMIT);
                out.put_u64_le(trx.raw());
                out.put_u64_le(*commit_ts);
            }
            RedoPayload::TxnAbort { trx } => {
                out.put_u8(TAG_ABORT);
                out.put_u64_le(trx.raw());
            }
            RedoPayload::Checkpoint { upto } => {
                out.put_u8(TAG_CHECKPOINT);
                out.put_u64_le(upto.raw());
            }
            RedoPayload::TenantMark { tenant } => {
                out.put_u8(TAG_TENANT);
                out.put_u64_le(tenant.raw());
            }
        }
    }

    /// Serialized length in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            RedoPayload::Insert { key, row, .. } | RedoPayload::Update { key, row, .. } => {
                16 + 4 + key.len() + 4 + row.len()
            }
            RedoPayload::Delete { key, .. } => 16 + 4 + key.len(),
            RedoPayload::TxnPrepare { .. } | RedoPayload::TxnCommit { .. } => 16,
            RedoPayload::TxnAbort { .. } | RedoPayload::Checkpoint { .. }
            | RedoPayload::TenantMark { .. } => 8,
        }
    }

    /// Decode one record from the front of `buf`, consuming it.
    pub fn decode(buf: &mut Bytes) -> Result<RedoPayload> {
        if buf.is_empty() {
            return Err(Error::storage("empty redo buffer"));
        }
        let tag = buf.get_u8();
        let rec = match tag {
            TAG_INSERT | TAG_UPDATE => {
                let trx = TrxId(get_u64(buf)?);
                let table = TableId(get_u64(buf)?);
                let key = Key(get_bytes(buf)?.to_vec());
                let row = get_bytes(buf)?;
                if tag == TAG_INSERT {
                    RedoPayload::Insert { trx, table, key, row }
                } else {
                    RedoPayload::Update { trx, table, key, row }
                }
            }
            TAG_DELETE => {
                let trx = TrxId(get_u64(buf)?);
                let table = TableId(get_u64(buf)?);
                let key = Key(get_bytes(buf)?.to_vec());
                RedoPayload::Delete { trx, table, key }
            }
            TAG_PREPARE => RedoPayload::TxnPrepare {
                trx: TrxId(get_u64(buf)?),
                prepare_ts: get_u64(buf)?,
            },
            TAG_COMMIT => RedoPayload::TxnCommit {
                trx: TrxId(get_u64(buf)?),
                commit_ts: get_u64(buf)?,
            },
            TAG_ABORT => RedoPayload::TxnAbort { trx: TrxId(get_u64(buf)?) },
            TAG_CHECKPOINT => RedoPayload::Checkpoint { upto: Lsn(get_u64(buf)?) },
            TAG_TENANT => RedoPayload::TenantMark { tenant: TenantId(get_u64(buf)?) },
            other => return Err(Error::storage(format!("bad redo tag {other}"))),
        };
        Ok(rec)
    }

    /// Decode a whole buffer into records.
    pub fn decode_all(mut buf: Bytes) -> Result<Vec<RedoPayload>> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            out.push(RedoPayload::decode(&mut buf)?);
        }
        Ok(out)
    }

    /// The table this record touches, if any (used by the column index's
    /// log-capture filter, §VI-E).
    pub fn table(&self) -> Option<TableId> {
        match self {
            RedoPayload::Insert { table, .. }
            | RedoPayload::Update { table, .. }
            | RedoPayload::Delete { table, .. } => Some(*table),
            _ => None,
        }
    }
}

fn put_bytes<B: BufMut>(out: &mut B, b: &[u8]) {
    out.put_u32_le(b.len() as u32);
    out.put_slice(b);
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(Error::storage("truncated redo record"));
    }
    Ok(buf.get_u64_le())
}

fn get_bytes(buf: &mut Bytes) -> Result<Bytes> {
    if buf.remaining() < 4 {
        return Err(Error::storage("truncated redo record"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(Error::storage("truncated redo payload"));
    }
    Ok(buf.copy_to_bytes(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use polardbx_common::Value;

    fn samples() -> Vec<RedoPayload> {
        vec![
            RedoPayload::Insert {
                trx: TrxId(9),
                table: TableId(3),
                key: Key::encode(&[Value::Int(42)]),
                row: Bytes::from_static(b"rowdata"),
            },
            RedoPayload::Update {
                trx: TrxId(9),
                table: TableId(3),
                key: Key::encode(&[Value::Int(42)]),
                row: Bytes::from_static(b"newdata"),
            },
            RedoPayload::Delete {
                trx: TrxId(10),
                table: TableId(4),
                key: Key::encode(&[Value::str("k")]),
            },
            RedoPayload::TxnPrepare { trx: TrxId(9), prepare_ts: 777 },
            RedoPayload::TxnCommit { trx: TrxId(9), commit_ts: 778 },
            RedoPayload::TxnAbort { trx: TrxId(10) },
            RedoPayload::Checkpoint { upto: Lsn(1024) },
            RedoPayload::TenantMark { tenant: TenantId(5) },
        ]
    }

    #[test]
    fn roundtrip_each_variant() {
        for rec in samples() {
            let mut buf = BytesMut::new();
            rec.encode(&mut buf);
            assert_eq!(buf.len(), rec.encoded_len(), "encoded_len mismatch for {rec:?}");
            let mut bytes = buf.freeze();
            let back = RedoPayload::decode(&mut bytes).unwrap();
            assert_eq!(back, rec);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn roundtrip_stream() {
        let recs = samples();
        let mut buf = BytesMut::new();
        for r in &recs {
            r.encode(&mut buf);
        }
        let back = RedoPayload::decode_all(buf.freeze()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn truncated_buffer_errors() {
        let mut buf = BytesMut::new();
        samples()[0].encode(&mut buf);
        let full = buf.freeze();
        for cut in [1, 5, full.len() - 1] {
            let mut trunc = full.slice(0..cut);
            assert!(RedoPayload::decode(&mut trunc).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tag_errors() {
        let mut b = Bytes::from_static(&[0xEE, 0, 0, 0]);
        assert!(RedoPayload::decode(&mut b).is_err());
    }

    #[test]
    fn table_accessor() {
        assert_eq!(samples()[0].table(), Some(TableId(3)));
        assert_eq!(samples()[6].table(), None);
    }
}
