//! Redo log (WAL) infrastructure shared by the DN storage engine and the
//! Paxos replication layer (§II-C and §III of the paper).
//!
//! The log is modelled on InnoDB's: a byte stream addressed by LSN, written
//! in *mini-transactions* (MTRs) — groups of contiguous redo records that
//! apply atomically. For cross-DC replication the stream is framed into
//! `MLOG_PAXOS` batches: a 64-byte control record carrying epoch, index,
//! LSN range and checksum, followed by up to 16 KB of batched MTR payload
//! (§III "Pipelining and Batching").
//!
//! Modules:
//! * [`record`] — logical redo payloads with a compact binary codec,
//! * [`mtr`] — mini-transactions and their LSN ranges,
//! * [`frame`] — `MLOG_PAXOS` batch framing with checksum verification,
//! * [`buffer`] — the in-memory log buffer with group flush to a sink,
//! * [`group_commit`] — leader/follower flush coalescing for concurrent
//!   committers (InnoDB group commit),
//! * [`epoch`] — the epoch-pipelined commit path (STAR-style): commit
//!   decisions decouple from durability acks, sealed epochs persist as one
//!   batch each, early-released writes stay invisible until their epoch's
//!   durability horizon,
//! * [`recovery`] — crash-recovery scanning: longest-valid-prefix discovery
//!   over torn frame and record streams (scan-and-truncate).

pub mod buffer;
pub mod epoch;
pub mod frame;
pub mod group_commit;
pub mod mtr;
pub mod record;
pub mod recovery;

pub use buffer::{LogBuffer, LogSink, VecSink};
pub use epoch::{
    EpochConfig, EpochListener, EpochMetrics, EpochPipeline, EpochSink, EpochTicket,
    LocalEpochSink, NullListener,
};
pub use frame::{FrameBatcher, FrameError, PaxosFrame, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};
pub use group_commit::{GroupCommitter, WalMetrics};
pub use mtr::Mtr;
pub use record::RedoPayload;
pub use recovery::{scan_frames, scan_records, FrameScan, RecordScan};
