//! Crash-recovery scanning: durable-horizon discovery over a redo stream.
//!
//! A crashed node restarts with nothing but its durable log artifacts. The
//! tail of that log may be *torn*: the final write was in flight when power
//! cut, so an un-fsynced suffix is missing and the last piece that did land
//! may be corrupt. Recovery therefore never trusts the raw byte length —
//! it scans from the front, validates every unit, and truncates the log to
//! the longest valid prefix (InnoDB's scan-and-truncate).
//!
//! Two stream shapes exist in this system:
//!
//! * **Frame streams** (Paxos sinks): a sequence of `MLOG_PAXOS` frames,
//!   each with a 64-byte checksummed header. [`scan_frames`] validates
//!   magic, length and FNV-1a checksum per frame, so both truncation *and*
//!   corruption of the tail are detected.
//! * **Record streams** (local DN sinks): raw concatenated [`RedoPayload`]
//!   encodings with no checksums. [`scan_records`] can only detect
//!   *structural* damage (a record cut mid-field or an invalid tag); this
//!   matches the model — local sink writes are atomic per flush, so a torn
//!   tail is a truncation at a flush boundary or inside the final flush.
//!
//! Both scanners return the longest valid prefix and never panic on
//! arbitrary input.

use bytes::Bytes;

use polardbx_common::Lsn;

use crate::frame::{FrameError, PaxosFrame};
use crate::record::RedoPayload;

/// Result of scanning a frame stream ([`scan_frames`]).
#[derive(Debug, Clone)]
pub struct FrameScan {
    /// Frames of the longest valid prefix, in stream order.
    pub frames: Vec<PaxosFrame>,
    /// Byte length of that prefix (`valid_len <= input.len()`).
    pub valid_len: usize,
    /// Why the scan stopped before the end of the input, if it did. `None`
    /// means the stream ended exactly on a frame boundary (clean tail).
    pub torn: Option<FrameError>,
}

impl FrameScan {
    /// The durable horizon: one past the last LSN covered by a valid frame.
    /// `None` when no frame survived the scan.
    pub fn durable_lsn(&self) -> Option<Lsn> {
        self.frames.last().map(|f| f.lsn_end)
    }
}

/// Scan a byte stream of `MLOG_PAXOS` frames, recovering the longest valid
/// prefix. Stops at the first frame that fails to decode (truncated header,
/// bad magic, bad length, checksum mismatch) and reports the reason.
pub fn scan_frames(input: &[u8]) -> FrameScan {
    let mut buf = Bytes::copy_from_slice(input);
    let mut frames = Vec::new();
    let mut valid_len = 0usize;
    let torn = loop {
        if buf.is_empty() {
            break None;
        }
        match PaxosFrame::decode(&mut buf) {
            Ok(f) => {
                valid_len += f.wire_len();
                frames.push(f);
            }
            Err(e) => break Some(e),
        }
    };
    FrameScan { frames, valid_len, torn }
}

/// Result of scanning a raw record stream ([`scan_records`]).
#[derive(Debug, Clone)]
pub struct RecordScan {
    /// Records of the longest valid prefix, in stream order.
    pub records: Vec<RedoPayload>,
    /// Byte length of that prefix.
    pub valid_len: usize,
    /// True when the scan stopped before the end of the input — the tail
    /// beyond `valid_len` is torn and must be truncated away.
    pub torn: bool,
}

impl RecordScan {
    /// The durable horizon for a stream whose first byte sits at `base`.
    pub fn durable_lsn(&self, base: Lsn) -> Lsn {
        base.advance(self.valid_len as u64)
    }
}

/// Scan a raw concatenated [`RedoPayload`] stream, recovering the longest
/// valid prefix. A record cut mid-field or carrying an unknown tag ends the
/// scan; everything before it is kept.
pub fn scan_records(input: &[u8]) -> RecordScan {
    let all = Bytes::copy_from_slice(input);
    let mut buf = all.clone();
    let mut records = Vec::new();
    let mut valid_len = 0usize;
    loop {
        if buf.is_empty() {
            return RecordScan { records, valid_len, torn: false };
        }
        let before = buf.len();
        match RedoPayload::decode(&mut buf) {
            Ok(r) => {
                valid_len += before - buf.len();
                records.push(r);
            }
            Err(_) => return RecordScan { records, valid_len, torn: true },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{LogBuffer, VecSink};
    use crate::frame::{FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};
    use crate::mtr::Mtr;
    use bytes::BytesMut;
    use polardbx_common::{Key, TableId, TrxId, Value};

    fn mtr(n: i64, payload_size: usize) -> Mtr {
        Mtr::single(RedoPayload::Insert {
            trx: TrxId(1),
            table: TableId(1),
            key: Key::encode(&[Value::Int(n)]),
            row: Bytes::from(vec![0xA5u8; payload_size]),
        })
    }

    fn frame_stream(frames: &[PaxosFrame]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in frames {
            out.extend_from_slice(&f.encode());
        }
        out
    }

    fn three_frames() -> Vec<PaxosFrame> {
        let f1 = PaxosFrame::from_mtrs(1, 0, Lsn(0), &[mtr(1, 100), mtr(2, 50)]);
        let f2 = PaxosFrame::from_mtrs(1, 1, f1.lsn_end, &[mtr(3, 80)]);
        let f3 = PaxosFrame::from_mtrs(1, 2, f2.lsn_end, &[mtr(4, 200), mtr(5, 10)]);
        vec![f1, f2, f3]
    }

    #[test]
    fn clean_stream_scans_fully() {
        let frames = three_frames();
        let wire = frame_stream(&frames);
        let scan = scan_frames(&wire);
        assert_eq!(scan.frames, frames);
        assert_eq!(scan.valid_len, wire.len());
        assert!(scan.torn.is_none());
        assert_eq!(scan.durable_lsn(), Some(frames[2].lsn_end));
    }

    #[test]
    fn empty_stream_is_clean_and_empty() {
        let scan = scan_frames(&[]);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.torn.is_none());
        assert_eq!(scan.durable_lsn(), None);
    }

    #[test]
    fn zero_length_payload_frame_roundtrips_through_scan() {
        // A heartbeat-style frame with no MTRs: payload empty, lsn_end ==
        // lsn_start. The codec and scanner must both accept it.
        let empty = PaxosFrame::from_mtrs(2, 5, Lsn(777), &[]);
        assert_eq!(empty.payload.len(), 0);
        assert_eq!(empty.lsn_end, empty.lsn_start);
        let follow = PaxosFrame::from_mtrs(2, 6, Lsn(777), &[mtr(1, 40)]);
        let wire = frame_stream(&[empty.clone(), follow.clone()]);
        let scan = scan_frames(&wire);
        assert_eq!(scan.frames, vec![empty, follow.clone()]);
        assert!(scan.torn.is_none());
        assert_eq!(scan.durable_lsn(), Some(follow.lsn_end));
    }

    #[test]
    fn exactly_16kb_payload_frame_is_accepted() {
        // Build an MTR whose encoding is exactly MAX_FRAME_PAYLOAD bytes:
        // Insert overhead = tag(1) + trx(8) + table(8) + keylen(4) + key +
        // rowlen(4) + row.
        let key = Key::encode(&[Value::Int(1)]);
        let overhead = 1 + 8 + 8 + 4 + key.len() + 4;
        let m = Mtr::single(RedoPayload::Insert {
            trx: TrxId(1),
            table: TableId(1),
            key,
            row: Bytes::from(vec![0x5Au8; MAX_FRAME_PAYLOAD - overhead]),
        });
        assert_eq!(m.encoded_len(), MAX_FRAME_PAYLOAD);
        let f = PaxosFrame::from_mtrs(1, 0, Lsn(0), std::slice::from_ref(&m));
        assert_eq!(f.payload.len(), MAX_FRAME_PAYLOAD);
        let wire = frame_stream(std::slice::from_ref(&f));
        let scan = scan_frames(&wire);
        assert_eq!(scan.frames, vec![f]);
        assert_eq!(scan.valid_len, FRAME_HEADER_LEN + MAX_FRAME_PAYLOAD);
        assert!(scan.torn.is_none());
    }

    #[test]
    fn over_16kb_length_field_rejected_not_panicked() {
        // Hand-craft a header claiming a payload over the cap; the scanner
        // must stop with BadLength, not attempt a huge read.
        use bytes::BufMut;
        let mut buf = BytesMut::new();
        buf.put_u32_le(0x4D_50_58_53);
        buf.put_u32_le((MAX_FRAME_PAYLOAD + 1) as u32);
        buf.resize(FRAME_HEADER_LEN, 0);
        buf.extend_from_slice(&[0u8; 32]);
        let scan = scan_frames(&buf);
        assert!(scan.frames.is_empty());
        assert!(matches!(scan.torn, Some(FrameError::BadLength(_))));
    }

    #[test]
    fn torn_tail_at_every_byte_offset_recovers_longest_prefix() {
        // Truncate the stream at every byte offset inside the final frame;
        // the scanner must always return exactly the first two frames and
        // never panic.
        let frames = three_frames();
        let wire = frame_stream(&frames);
        let boundary = frames[0].wire_len() + frames[1].wire_len();
        for cut in 0..frames[2].wire_len() {
            let prefix = &wire[..boundary + cut];
            let scan = scan_frames(prefix);
            assert_eq!(scan.frames.len(), 2, "cut at +{cut}");
            assert_eq!(scan.valid_len, boundary, "cut at +{cut}");
            assert_eq!(scan.torn.is_some(), cut > 0, "cut at +{cut}");
            assert_eq!(scan.durable_lsn(), Some(frames[1].lsn_end));
        }
    }

    #[test]
    fn corrupt_tail_frame_detected_by_checksum() {
        let frames = three_frames();
        let mut wire = frame_stream(&frames);
        let boundary = frames[0].wire_len() + frames[1].wire_len();
        // Flip a payload byte of the final frame.
        let n = wire.len();
        wire[n - 1] ^= 0xFF;
        let scan = scan_frames(&wire);
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.valid_len, boundary);
        assert!(matches!(scan.torn, Some(FrameError::ChecksumMismatch { .. })));
    }

    #[test]
    fn corrupt_middle_frame_stops_scan_there() {
        let frames = three_frames();
        let mut wire = frame_stream(&frames);
        // Flip a byte in frame 2's payload.
        let off = frames[0].wire_len() + FRAME_HEADER_LEN + 5;
        wire[off] ^= 0x10;
        let scan = scan_frames(&wire);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, frames[0].wire_len());
        assert!(matches!(scan.torn, Some(FrameError::ChecksumMismatch { .. })));
    }

    #[test]
    fn bad_magic_in_tail_stops_scan() {
        let frames = three_frames();
        let mut wire = frame_stream(&frames);
        let off = frames[0].wire_len() + frames[1].wire_len();
        wire[off] ^= 0x1;
        let scan = scan_frames(&wire);
        assert_eq!(scan.frames.len(), 2);
        assert!(matches!(scan.torn, Some(FrameError::BadMagic(_))));
    }

    fn record_stream(recs: &[RedoPayload]) -> Vec<u8> {
        let mut buf = BytesMut::new();
        for r in recs {
            r.encode(&mut buf);
        }
        buf.to_vec()
    }

    fn sample_records() -> Vec<RedoPayload> {
        vec![
            RedoPayload::Insert {
                trx: TrxId(7),
                table: TableId(1),
                key: Key::encode(&[Value::Int(1)]),
                row: Bytes::from_static(b"balance=100"),
            },
            RedoPayload::TxnPrepare { trx: TrxId(7), prepare_ts: 41 },
            RedoPayload::TxnCommit { trx: TrxId(7), commit_ts: 42 },
        ]
    }

    #[test]
    fn record_scan_clean_stream() {
        let recs = sample_records();
        let wire = record_stream(&recs);
        let scan = scan_records(&wire);
        assert_eq!(scan.records, recs);
        assert_eq!(scan.valid_len, wire.len());
        assert!(!scan.torn);
        assert_eq!(scan.durable_lsn(Lsn(100)), Lsn(100 + wire.len() as u64));
    }

    #[test]
    fn record_torn_tail_at_every_byte_offset() {
        let recs = sample_records();
        let wire = record_stream(&recs);
        let last_len = recs[2].encoded_len();
        let boundary = wire.len() - last_len;
        for cut in 0..last_len {
            let scan = scan_records(&wire[..boundary + cut]);
            assert_eq!(scan.records.len(), 2, "cut at +{cut}");
            assert_eq!(scan.valid_len, boundary, "cut at +{cut}");
            assert_eq!(scan.torn, cut > 0, "cut at +{cut}");
        }
    }

    #[test]
    fn record_bad_tag_stops_scan() {
        let recs = sample_records();
        let mut wire = record_stream(&recs);
        let boundary = wire.len() - recs[2].encoded_len();
        wire[boundary] = 0xEE;
        let scan = scan_records(&wire);
        assert_eq!(scan.records.len(), 2);
        assert!(scan.torn);
    }

    #[test]
    fn sink_crash_helpers_model_torn_tails() {
        // Write three MTRs through a LogBuffer in two flushes, then model a
        // crash that tore the second flush mid-record.
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink.clone());
        buf.append(&mtr(1, 20));
        buf.flush().unwrap();
        buf.append(&mtr(2, 20));
        buf.append(&mtr(3, 20));
        buf.flush().unwrap();
        let full = sink.contiguous();
        let end = sink.end_lsn();
        assert_eq!(end.raw(), full.len() as u64);

        // Tear 5 bytes off the durable tail.
        sink.truncate_to(end.raw().checked_sub(5).map(Lsn).unwrap());
        let torn = sink.contiguous();
        assert_eq!(torn.len(), full.len() - 5);
        assert_eq!(&torn[..], &full[..full.len() - 5]);
        let scan = scan_records(&torn);
        assert_eq!(scan.records.len(), 2, "third record was torn");
        assert!(scan.torn);

        // Truncate the sink to the valid horizon: scan of what remains is
        // clean, and the tiling invariant still holds.
        sink.truncate_to(Lsn(scan.valid_len as u64));
        let clean = scan_records(&sink.contiguous());
        assert!(!clean.torn);
        assert_eq!(clean.records.len(), 2);
    }

    #[test]
    fn paxos_sink_frame_stream_scans_and_truncates() {
        // A Paxos sink keys each write by the frame's MTR-space lsn_start
        // while storing the (longer) wire encoding, so the byte-tiling
        // helpers don't apply; frame_stream/truncate_frames_to do.
        use crate::buffer::LogSink;
        let sink = VecSink::new();
        let frames = three_frames();
        for f in &frames {
            sink.write(f.lsn_start, f.encode()).unwrap();
        }
        // A retransmitted duplicate of the middle frame must not appear
        // twice in the assembled stream.
        sink.write(frames[1].lsn_start, frames[1].encode()).unwrap();
        let scan = scan_frames(&sink.frame_stream());
        assert_eq!(scan.frames, frames);
        assert!(scan.torn.is_none());

        sink.corrupt_tail(2);
        let scan = scan_frames(&sink.frame_stream());
        assert_eq!(scan.frames.len(), 2);
        assert!(matches!(scan.torn, Some(FrameError::ChecksumMismatch { .. })));

        // Scan-and-truncate drops the torn frame whole; what remains is
        // clean and ends at the durable horizon.
        sink.truncate_frames_to(scan.durable_lsn().unwrap());
        let clean = scan_frames(&sink.frame_stream());
        assert_eq!(clean.frames, frames[..2]);
        assert!(clean.torn.is_none());
        assert_eq!(clean.durable_lsn(), Some(frames[1].lsn_end));
    }

    #[test]
    fn sink_corrupt_tail_flips_a_byte() {
        let sink = VecSink::new();
        let f = PaxosFrame::from_mtrs(1, 0, Lsn(0), &[mtr(1, 64)]);
        use crate::buffer::LogSink;
        sink.write(Lsn(0), f.encode()).unwrap();
        sink.corrupt_tail(0);
        let scan = scan_frames(&sink.contiguous());
        assert!(scan.frames.is_empty());
        assert!(matches!(scan.torn, Some(FrameError::ChecksumMismatch { .. })));
    }
}
