//! In-memory log buffer with group flush to a sink.
//!
//! The RW node appends MTRs here; a flush pushes everything unflushed to the
//! durable sink (PolarFS in the full system) and returns the durable LSN.
//! Appends are serialized by a mutex — in InnoDB terms this is the log mutex
//! protecting `log_sys` — while flushes batch all pending bytes (group
//! commit).

use parking_lot::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use polardbx_common::{Lsn, Result};

use crate::mtr::Mtr;

/// Destination for flushed log bytes. PolarFS volumes implement this; tests
/// use [`VecSink`].
pub trait LogSink: Send + Sync {
    /// Persist `bytes`, which begin at `at`. Must be atomic per call.
    fn write(&self, at: Lsn, bytes: Bytes) -> Result<()>;
}

/// An in-memory sink capturing everything, for tests and RO-replica feeds.
#[derive(Debug, Default)]
pub struct VecSink {
    inner: Mutex<Vec<(Lsn, Bytes)>>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Arc<VecSink> {
        Arc::new(VecSink::default())
    }

    /// Snapshot of all writes.
    pub fn writes(&self) -> Vec<(Lsn, Bytes)> {
        self.inner.lock().clone()
    }

    /// Concatenated contiguous content, verifying offsets tile correctly.
    /// Writes are sorted by offset first: concurrent flushes may land out
    /// of order (each call is atomic, offsets never overlap).
    pub fn contiguous(&self) -> Vec<u8> {
        let mut writes = self.inner.lock().clone();
        writes.sort_by_key(|(at, _)| *at);
        let mut out = Vec::new();
        let mut next = writes.first().map(|(l, _)| *l).unwrap_or(Lsn::ZERO);
        for (at, bytes) in writes.iter() {
            assert_eq!(*at, next, "sink writes must tile the LSN space");
            out.extend_from_slice(bytes);
            next = at.advance(bytes.len() as u64);
        }
        out
    }
}

impl LogSink for VecSink {
    fn write(&self, at: Lsn, bytes: Bytes) -> Result<()> {
        self.inner.lock().push((at, bytes));
        Ok(())
    }
}

struct BufferState {
    /// Next LSN to assign.
    head: Lsn,
    /// All bytes appended but not yet flushed.
    pending: Vec<u8>,
    /// LSN of the first pending byte.
    pending_start: Lsn,
    /// Highest LSN known durable in the sink.
    flushed: Lsn,
}

/// The log buffer. `append` assigns LSNs; `flush` makes them durable.
pub struct LogBuffer {
    state: Mutex<BufferState>,
    sink: Arc<dyn LogSink>,
}

impl LogBuffer {
    /// A buffer writing to `sink`, starting at LSN 0.
    pub fn new(sink: Arc<dyn LogSink>) -> Arc<LogBuffer> {
        Self::starting_at(sink, Lsn::ZERO)
    }

    /// A buffer starting at an arbitrary LSN (recovery).
    pub fn starting_at(sink: Arc<dyn LogSink>, at: Lsn) -> Arc<LogBuffer> {
        Arc::new(LogBuffer {
            state: Mutex::new(BufferState {
                head: at,
                pending: Vec::new(),
                pending_start: at,
                flushed: at,
            }),
            sink,
        })
    }

    /// Append an MTR; returns its `[start, end)` LSN range. The bytes are
    /// buffered, not yet durable.
    pub fn append(&self, mtr: &Mtr) -> (Lsn, Lsn) {
        let encoded = mtr.encode();
        let mut st = self.state.lock();
        let start = st.head;
        let end = start.advance(encoded.len() as u64);
        st.pending.extend_from_slice(&encoded);
        st.head = end;
        (start, end)
    }

    /// Flush all pending bytes to the sink; returns the new durable LSN.
    pub fn flush(&self) -> Result<Lsn> {
        let (at, bytes) = {
            let mut st = self.state.lock();
            if st.pending.is_empty() {
                return Ok(st.flushed);
            }
            let at = st.pending_start;
            let bytes = Bytes::from(std::mem::take(&mut st.pending));
            st.pending_start = at.advance(bytes.len() as u64);
            (at, bytes)
        };
        // Sink I/O happens outside the lock; a concurrent flush of later
        // bytes is ordered by sink offset, and our single-writer callers
        // (the log writer thread) flush serially anyway.
        self.sink.write(at, bytes.clone())?;
        let mut st = self.state.lock();
        let end = at.advance(bytes.len() as u64);
        if end > st.flushed {
            st.flushed = end;
        }
        Ok(st.flushed)
    }

    /// Append then immediately flush (write-through), returning the MTR's
    /// range. Used by single-node setups without a group-commit thread.
    pub fn append_sync(&self, mtr: &Mtr) -> Result<(Lsn, Lsn)> {
        let range = self.append(mtr);
        self.flush()?;
        Ok(range)
    }

    /// Next LSN to be assigned.
    pub fn head(&self) -> Lsn {
        self.state.lock().head
    }

    /// Highest durable LSN.
    pub fn flushed(&self) -> Lsn {
        self.state.lock().flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RedoPayload;
    use polardbx_common::{Key, TableId, TrxId, Value};

    fn mtr(n: i64) -> Mtr {
        Mtr::single(RedoPayload::Insert {
            trx: TrxId(1),
            table: TableId(1),
            key: Key::encode(&[Value::Int(n)]),
            row: Bytes::from(vec![7u8; 16]),
        })
    }

    #[test]
    fn append_assigns_contiguous_ranges() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink);
        let (s1, e1) = buf.append(&mtr(1));
        let (s2, e2) = buf.append(&mtr(2));
        assert_eq!(s1, Lsn::ZERO);
        assert_eq!(e1, s2);
        assert!(e2 > e1);
        assert_eq!(buf.head(), e2);
    }

    #[test]
    fn flush_makes_bytes_durable_and_idempotent() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink.clone());
        buf.append(&mtr(1));
        buf.append(&mtr(2));
        let d = buf.flush().unwrap();
        assert_eq!(d, buf.head());
        assert_eq!(buf.flushed(), d);
        // No new appends: second flush is a no-op.
        let d2 = buf.flush().unwrap();
        assert_eq!(d2, d);
        assert_eq!(sink.writes().len(), 1, "group flush batches both MTRs");
        // Content round-trips.
        let content = sink.contiguous();
        let records = RedoPayload::decode_all(Bytes::from(content)).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn concurrent_appends_never_overlap() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink);
        let mut handles = vec![];
        for t in 0..4 {
            let buf = Arc::clone(&buf);
            handles.push(std::thread::spawn(move || {
                (0..200).map(|i| buf.append(&mtr(t * 1000 + i))).collect::<Vec<_>>()
            }));
        }
        let mut ranges: Vec<(Lsn, Lsn)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "ranges overlap: {w:?}");
        }
        // Ranges tile with no holes either.
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn starting_at_resumes_offsets() {
        let sink = VecSink::new();
        let buf = LogBuffer::starting_at(sink, Lsn(5000));
        let (s, _) = buf.append(&mtr(1));
        assert_eq!(s, Lsn(5000));
        assert_eq!(buf.flushed(), Lsn(5000));
    }

    #[test]
    fn append_sync_is_durable() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink.clone());
        let (_, e) = buf.append_sync(&mtr(9)).unwrap();
        assert_eq!(buf.flushed(), e);
        assert_eq!(sink.writes().len(), 1);
    }
}
