//! In-memory log buffer with group flush to a sink.
//!
//! The RW node appends MTRs here; a flush pushes everything unflushed to the
//! durable sink (PolarFS in the full system) and returns the durable LSN.
//! Appends are serialized by a mutex — in InnoDB terms this is the log mutex
//! protecting `log_sys` — while flushes batch all pending bytes (group
//! commit).

use parking_lot::Mutex;
use std::sync::Arc;

use bytes::Bytes;
use polardbx_common::{Lsn, Result};

use crate::mtr::Mtr;

/// Destination for flushed log bytes. PolarFS volumes implement this; tests
/// use [`VecSink`].
pub trait LogSink: Send + Sync {
    /// Persist `bytes`, which begin at `at`. Must be atomic per call.
    fn write(&self, at: Lsn, bytes: Bytes) -> Result<()>;

    /// Discard every durable write starting at or beyond `keep` (whole
    /// writes — frame-keyed sinks drop whole frames). Replicas call this
    /// when abandoning a log suffix (deposed-leader cleanup, a leader
    /// fencing an un-acked epoch, a follower truncating a conflict tail)
    /// so crash recovery's scan cannot resurrect abandoned entries. The
    /// default is a no-op for sinks that never host a replica log.
    fn truncate(&self, _keep: Lsn) {}
}

/// An in-memory sink capturing everything, for tests and RO-replica feeds.
#[derive(Debug, Default)]
pub struct VecSink {
    inner: Mutex<Vec<(Lsn, Bytes)>>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Arc<VecSink> {
        Arc::new(VecSink::default())
    }

    /// Snapshot of all writes.
    pub fn writes(&self) -> Vec<(Lsn, Bytes)> {
        self.inner.lock().clone()
    }

    /// Copy of the byte range `[from, to)`, assembled from whichever writes
    /// overlap it. Unlike [`VecSink::contiguous`] this never concatenates
    /// the whole log — shipping the tail of a long-lived log stays
    /// proportional to the tail, not the log's lifetime.
    ///
    /// Panics if the range is not fully covered by sink writes.
    pub fn range(&self, from: Lsn, to: Lsn) -> Vec<u8> {
        assert!(to >= from, "range end before start");
        let len = (to.raw() - from.raw()) as usize;
        let mut out = vec![0u8; len];
        let mut covered = 0usize;
        for (at, bytes) in self.inner.lock().iter() {
            let (ws, we) = (at.raw(), at.raw() + bytes.len() as u64);
            let s = ws.max(from.raw());
            let e = we.min(to.raw());
            if s < e {
                out[(s - from.raw()) as usize..(e - from.raw()) as usize]
                    .copy_from_slice(&bytes[(s - ws) as usize..(e - ws) as usize]);
                covered += (e - s) as usize;
            }
        }
        assert_eq!(covered, len, "sink range [{from:?}, {to:?}) not fully covered");
        out
    }

    /// One past the highest byte this sink holds ([`Lsn::ZERO`] if empty).
    pub fn end_lsn(&self) -> Lsn {
        self.inner
            .lock()
            .iter()
            .map(|(at, bytes)| at.advance(bytes.len() as u64))
            .max()
            .unwrap_or(Lsn::ZERO)
    }

    /// Crash-model truncation: drop every byte at or beyond `keep`. A write
    /// straddling the cut keeps only its prefix, so the tiling invariant
    /// checked by [`VecSink::contiguous`] survives. Recovery uses this both
    /// to simulate an un-fsynced suffix being lost and to discard a torn
    /// tail after scan-and-truncate.
    pub fn truncate_to(&self, keep: Lsn) {
        let mut inner = self.inner.lock();
        inner.retain(|(at, _)| *at < keep);
        for (at, bytes) in inner.iter_mut() {
            let end = at.advance(bytes.len() as u64);
            if end > keep {
                *bytes = bytes.slice(0..(keep.raw() - at.raw()) as usize);
            }
        }
    }

    /// Crash-model corruption: XOR-flip the byte `back` positions from the
    /// sink's end (`back = 0` is the final byte). Models a torn final
    /// sector whose contents landed scrambled; a checksummed frame stream
    /// detects this, a raw record stream may only see structural damage.
    /// No-op on an empty sink; saturates to the last write's first byte.
    pub fn corrupt_tail(&self, back: usize) {
        let mut inner = self.inner.lock();
        let Some((_, bytes)) =
            inner.iter_mut().max_by_key(|(at, bytes)| at.advance(bytes.len() as u64))
        else {
            return;
        };
        if bytes.is_empty() {
            return;
        }
        let mut v = bytes.to_vec();
        let idx = v.len().saturating_sub(1 + back);
        v[idx] ^= 0xFF;
        *bytes = Bytes::from(v);
    }

    /// Concatenated frame-stream content. Paxos sinks key each write by
    /// the frame's MTR-space `lsn_start` while storing the wire encoding
    /// (64-byte header + payload), so writes are ordered and
    /// non-overlapping in LSN space but do *not* tile byte-for-byte the
    /// way a record sink does. This sorts by offset, de-duplicates
    /// retransmitted frames (same offset written twice keeps the last),
    /// and concatenates — the shape [`crate::scan_frames`] expects.
    pub fn frame_stream(&self) -> Vec<u8> {
        let mut writes = self.inner.lock().clone();
        // Stable sort: same-offset duplicates keep insertion order, so the
        // `pop` below retains the most recent write at each offset.
        writes.sort_by_key(|(at, _)| *at);
        let mut dedup: Vec<(Lsn, Bytes)> = Vec::with_capacity(writes.len());
        for w in writes {
            if dedup.last().map(|(at, _)| *at) == Some(w.0) {
                dedup.pop();
            }
            dedup.push(w);
        }
        let mut out = Vec::new();
        for (_, bytes) in dedup.iter() {
            out.extend_from_slice(bytes);
        }
        out
    }

    /// Frame-aware truncation: drop every write at or beyond `keep`
    /// (an MTR-space LSN). Frames are written whole — one write per
    /// frame — so unlike [`VecSink::truncate_to`] no write is ever
    /// split; the torn tail identified by [`crate::scan_frames`] is
    /// discarded as complete frames.
    pub fn truncate_frames_to(&self, keep: Lsn) {
        self.inner.lock().retain(|(at, _)| *at < keep);
    }

    /// Concatenated contiguous content, verifying offsets tile correctly.
    /// Writes are sorted by offset first: concurrent flushes may land out
    /// of order (each call is atomic, offsets never overlap).
    pub fn contiguous(&self) -> Vec<u8> {
        let mut writes = self.inner.lock().clone();
        writes.sort_by_key(|(at, _)| *at);
        let mut out = Vec::new();
        let mut next = writes.first().map(|(l, _)| *l).unwrap_or(Lsn::ZERO);
        for (at, bytes) in writes.iter() {
            assert_eq!(*at, next, "sink writes must tile the LSN space");
            out.extend_from_slice(bytes);
            next = at.advance(bytes.len() as u64);
        }
        out
    }
}

impl LogSink for VecSink {
    fn write(&self, at: Lsn, bytes: Bytes) -> Result<()> {
        self.inner.lock().push((at, bytes));
        Ok(())
    }

    fn truncate(&self, keep: Lsn) {
        self.truncate_frames_to(keep)
    }
}

struct BufferState {
    /// Next LSN to assign.
    head: Lsn,
    /// All bytes appended but not yet flushed.
    pending: Vec<u8>,
    /// LSN of the first pending byte.
    pending_start: Lsn,
    /// Highest LSN known durable in the sink.
    flushed: Lsn,
}

/// The log buffer. `append` assigns LSNs; `flush` makes them durable.
pub struct LogBuffer {
    state: Mutex<BufferState>,
    sink: Arc<dyn LogSink>,
}

impl LogBuffer {
    /// A buffer writing to `sink`, starting at LSN 0.
    pub fn new(sink: Arc<dyn LogSink>) -> Arc<LogBuffer> {
        Self::starting_at(sink, Lsn::ZERO)
    }

    /// A buffer starting at an arbitrary LSN (recovery).
    pub fn starting_at(sink: Arc<dyn LogSink>, at: Lsn) -> Arc<LogBuffer> {
        Arc::new(LogBuffer {
            state: Mutex::new(BufferState {
                head: at,
                pending: Vec::new(),
                pending_start: at,
                flushed: at,
            }),
            sink,
        })
    }

    /// Append an MTR; returns its `[start, end)` LSN range. The bytes are
    /// buffered, not yet durable.
    pub fn append(&self, mtr: &Mtr) -> (Lsn, Lsn) {
        let encoded = mtr.encode();
        let mut st = self.state.lock();
        let start = st.head;
        let end = start.advance(encoded.len() as u64);
        st.pending.extend_from_slice(&encoded);
        st.head = end;
        (start, end)
    }

    /// Append a batch of MTRs contiguously under one lock acquisition;
    /// returns the `[start, end)` range covering the whole batch. The
    /// group committer uses this so a transaction's redo plus its commit
    /// record occupy one contiguous run even under concurrent committers.
    pub fn append_batch(&self, mtrs: &[Mtr]) -> (Lsn, Lsn) {
        let mut encoded = Vec::with_capacity(mtrs.iter().map(Mtr::encoded_len).sum());
        for m in mtrs {
            encoded.extend_from_slice(&m.encode());
        }
        let mut st = self.state.lock();
        let start = st.head;
        let end = start.advance(encoded.len() as u64);
        st.pending.extend_from_slice(&encoded);
        st.head = end;
        (start, end)
    }

    /// Append already-encoded record bytes contiguously; returns the
    /// `[start, end)` range. The epoch pipeline uses this to hand a whole
    /// sealed epoch (records pre-encoded into its arena buffer) to the
    /// log in one memcpy, with no per-record re-encoding.
    pub fn append_raw(&self, bytes: &[u8]) -> (Lsn, Lsn) {
        let mut st = self.state.lock();
        let start = st.head;
        let end = start.advance(bytes.len() as u64);
        st.pending.extend_from_slice(bytes);
        st.head = end;
        (start, end)
    }

    /// Flush all pending bytes to the sink; returns the new durable LSN.
    ///
    /// The sink write happens under the state lock: concurrent flushers
    /// (every committer calls `append_sync`) must not let a later chunk
    /// land — and advance `flushed` — while an earlier chunk is still in
    /// flight, or readers of `flushed` would observe a hole in the sink.
    /// Serializing flushes is group commit's ordering anyway.
    pub fn flush(&self) -> Result<Lsn> {
        let mut st = self.state.lock();
        if st.pending.is_empty() {
            return Ok(st.flushed);
        }
        let at = st.pending_start;
        let bytes = Bytes::from(std::mem::take(&mut st.pending));
        st.pending_start = at.advance(bytes.len() as u64);
        // lint:allow(guard_blocking, "hole-free invariant: sink write stays under state so flushed never runs ahead of the sink")
        self.sink.write(at, bytes.clone())?;
        let end = at.advance(bytes.len() as u64);
        if end > st.flushed {
            st.flushed = end;
        }
        Ok(st.flushed)
    }

    /// Append then immediately flush (write-through), returning the MTR's
    /// range. Used by single-node setups without a group-commit thread.
    pub fn append_sync(&self, mtr: &Mtr) -> Result<(Lsn, Lsn)> {
        let range = self.append(mtr);
        self.flush()?;
        Ok(range)
    }

    /// Next LSN to be assigned.
    pub fn head(&self) -> Lsn {
        self.state.lock().head
    }

    /// Highest durable LSN.
    pub fn flushed(&self) -> Lsn {
        self.state.lock().flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RedoPayload;
    use polardbx_common::{Key, TableId, TrxId, Value};

    fn mtr(n: i64) -> Mtr {
        Mtr::single(RedoPayload::Insert {
            trx: TrxId(1),
            table: TableId(1),
            key: Key::encode(&[Value::Int(n)]),
            row: Bytes::from(vec![7u8; 16]),
        })
    }

    #[test]
    fn append_assigns_contiguous_ranges() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink);
        let (s1, e1) = buf.append(&mtr(1));
        let (s2, e2) = buf.append(&mtr(2));
        assert_eq!(s1, Lsn::ZERO);
        assert_eq!(e1, s2);
        assert!(e2 > e1);
        assert_eq!(buf.head(), e2);
    }

    #[test]
    fn flush_makes_bytes_durable_and_idempotent() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink.clone());
        buf.append(&mtr(1));
        buf.append(&mtr(2));
        let d = buf.flush().unwrap();
        assert_eq!(d, buf.head());
        assert_eq!(buf.flushed(), d);
        // No new appends: second flush is a no-op.
        let d2 = buf.flush().unwrap();
        assert_eq!(d2, d);
        assert_eq!(sink.writes().len(), 1, "group flush batches both MTRs");
        // Content round-trips.
        let content = sink.contiguous();
        let records = RedoPayload::decode_all(Bytes::from(content)).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn concurrent_appends_never_overlap() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink);
        let mut handles = vec![];
        for t in 0..4 {
            let buf = Arc::clone(&buf);
            handles.push(std::thread::spawn(move || {
                (0..200).map(|i| buf.append(&mtr(t * 1000 + i))).collect::<Vec<_>>()
            }));
        }
        let mut ranges: Vec<(Lsn, Lsn)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "ranges overlap: {w:?}");
        }
        // Ranges tile with no holes either.
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn range_slices_across_write_boundaries() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink.clone());
        for i in 0..5 {
            buf.append_sync(&mtr(i)).unwrap();
        }
        let whole = sink.contiguous();
        let head = buf.head().raw();
        // Ranges aligned and unaligned to write boundaries all match the
        // full concatenation.
        for (from, to) in [(0, head), (0, 10), (3, 40), (head - 7, head)] {
            assert_eq!(
                sink.range(Lsn(from), Lsn(to)),
                whole[from as usize..to as usize],
                "range [{from}, {to})"
            );
        }
        assert!(sink.range(Lsn(head), Lsn(head)).is_empty());
    }

    #[test]
    #[should_panic(expected = "not fully covered")]
    fn range_panics_past_written_content() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink.clone());
        buf.append_sync(&mtr(1)).unwrap();
        let head = buf.head();
        sink.range(head, head.advance(8));
    }

    #[test]
    fn concurrent_flushes_never_expose_sink_holes() {
        // Committers call `append_sync` from many threads while a reader
        // (the shipper) snapshots `flushed()` and slices the contiguous
        // sink up to it. If a later flush could land before an earlier one
        // (the old outside-the-lock sink write), the reader would observe
        // `flushed` past a hole and `contiguous` would fail its tiling
        // assert.
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink.clone());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let (sink, buf, stop) = (sink.clone(), Arc::clone(&buf), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let flushed = buf.flushed().raw() as usize;
                    let content = sink.contiguous();
                    assert!(content.len() >= flushed, "flushed past sink contents");
                }
            })
        };
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let buf = Arc::clone(&buf);
                std::thread::spawn(move || {
                    for i in 0..300 {
                        buf.append_sync(&mtr(t * 1000 + i)).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(buf.flushed(), buf.head());
        assert_eq!(sink.contiguous().len() as u64, buf.head().raw());
    }

    #[test]
    fn starting_at_resumes_offsets() {
        let sink = VecSink::new();
        let buf = LogBuffer::starting_at(sink, Lsn(5000));
        let (s, _) = buf.append(&mtr(1));
        assert_eq!(s, Lsn(5000));
        assert_eq!(buf.flushed(), Lsn(5000));
    }

    #[test]
    fn append_sync_is_durable() {
        let sink = VecSink::new();
        let buf = LogBuffer::new(sink.clone());
        let (_, e) = buf.append_sync(&mtr(9)).unwrap();
        assert_eq!(buf.flushed(), e);
        assert_eq!(sink.writes().len(), 1);
    }
}
