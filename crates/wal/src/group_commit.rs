//! Group commit: coalesce concurrent durability requests into one flush.
//!
//! The seed engine paid one synchronous [`LogBuffer::flush`] per
//! transaction — N concurrent committers cost N sink writes, serialized
//! under the log mutex. InnoDB (and hence the paper's DN, §III-B) instead
//! runs *group commit*: the first committer to reach the flush point
//! becomes the **flush leader** and writes everything pending — including
//! the redo of committers that arrived while it held the flush — while the
//! **followers** park until the durable LSN covers their batch's end.
//!
//! Protocol (leader/follower over one condvar):
//!
//! 1. A committer appends its MTR batch (one contiguous run) and notes the
//!    batch end LSN `e`.
//! 2. If `durable >= e`, someone else's flush already covered it — done.
//! 3. If no flush is in flight, the committer becomes leader: it releases
//!    the group lock, performs one [`LogBuffer::flush`] (which drains
//!    *every* pending byte, not just its own), publishes the new durable
//!    LSN, and wakes all followers.
//! 4. Otherwise it parks on the condvar; the current leader's flush either
//!    covers `e` (appended before the flush drained the buffer) or the
//!    committer retries from step 2 — becoming the next leader at most
//!    once.
//!
//! Invariants: `durable` never exceeds [`LogBuffer::flushed`] (it is only
//! ever set from a flush's return value, and the sink write happens under
//! the buffer's state lock — the PR 2 hole-free guarantee), and every
//! committer returns only once its own end LSN is durable or the sink
//! reported an error for a flush era that included it.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use polardbx_common::time::Timer;

use polardbx_common::metrics::{Counter, Histogram, ValueHistogram};
use polardbx_common::{Error, Lsn, Result};

use crate::buffer::LogBuffer;
use crate::mtr::Mtr;

/// Group-commit observability: how well concurrent committers coalesce.
#[derive(Debug, Default)]
pub struct WalMetrics {
    /// Durability requests served (one per commit/abort/prepare batch).
    pub commits: Counter,
    /// Sink flushes actually performed (leaders only).
    pub flushes: Counter,
    /// Committers sharing each flush (1 = no grouping happened).
    pub group_size: ValueHistogram,
    /// Time followers spent parked waiting for a leader's flush.
    pub wait_for_leader: Histogram,
}

impl WalMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Arc<WalMetrics> {
        Arc::new(WalMetrics::default())
    }

    /// Flushes per durability request — the headline group-commit ratio
    /// (1.0 means no grouping; 1/N means N committers per sink write).
    pub fn flushes_per_commit(&self) -> f64 {
        let c = self.commits.get();
        if c == 0 {
            return 0.0;
        }
        self.flushes.get() as f64 / c as f64
    }

    /// One-line summary for harness output.
    pub fn report(&self) -> String {
        format!(
            "commits={} · flushes={} ({:.3} flushes/commit) · group size: mean={:.1} p95={} max={} · follower wait: mean={:?} p95={:?}",
            self.commits.get(),
            self.flushes.get(),
            self.flushes_per_commit(),
            self.group_size.mean(),
            self.group_size.percentile(0.95),
            self.group_size.max(),
            self.wait_for_leader.mean(),
            self.wait_for_leader.percentile(0.95),
        )
    }

    /// Reset all counters and histograms (between bench rounds).
    pub fn reset(&self) {
        self.commits.reset();
        self.flushes.reset();
        self.group_size.reset();
        // Histogram has no reset; follower-wait carries over, which only
        // matters for pretty-printing, not for the ratios the bench gates on.
    }
}

struct GcState {
    /// A leader's flush is in flight.
    flushing: bool,
    /// Durable LSN as published by the last completed flush.
    durable: Lsn,
    /// End LSNs of batches appended but not yet known durable (leader
    /// counts how many a flush released → group-size histogram).
    waiting: Vec<Lsn>,
    /// Bumped when a flush fails; waiters that enrolled under an older
    /// era give up instead of spinning on a broken sink.
    error_era: u64,
    /// The most recent flush failure. `Arc`'d so every waiter of the
    /// failed era shares one allocation — waking 64 followers costs 64
    /// refcount bumps, not 64 deep clones of the error's strings.
    /// Callers still match on the kind through [`Error::Shared`]'s
    /// `is_retryable`/`Display` forwarding.
    last_error: Option<Arc<Error>>,
}

/// Coalesces concurrent `make_durable` calls into shared flushes.
pub struct GroupCommitter {
    log: Arc<LogBuffer>,
    st: Mutex<GcState>,
    cv: Condvar,
    /// Group-commit metrics (shared so harnesses can report them).
    pub metrics: Arc<WalMetrics>,
}

impl GroupCommitter {
    /// Wrap a log buffer.
    pub fn new(log: Arc<LogBuffer>) -> Arc<GroupCommitter> {
        Arc::new(GroupCommitter {
            st: Mutex::new(GcState {
                flushing: false,
                durable: log.flushed(),
                waiting: Vec::new(),
                error_era: 0,
                last_error: None,
            }),
            cv: Condvar::new(),
            log,
            metrics: WalMetrics::new(),
        })
    }

    /// The underlying log buffer.
    pub fn log(&self) -> &Arc<LogBuffer> {
        &self.log
    }

    /// Append `mtrs` as one contiguous run and block until the run is
    /// durable (leader/follower group flush). Returns the batch end LSN.
    pub fn commit(&self, mtrs: &[Mtr]) -> Result<Lsn> {
        if mtrs.is_empty() {
            return Ok(self.log.flushed());
        }
        let (_, end) = self.log.append_batch(mtrs);
        self.metrics.commits.inc();
        let enrolled_at = Timer::start();
        let mut parked = false;
        let mut st = self.st.lock();
        let my_era = st.error_era;
        st.waiting.push(end);
        loop {
            if st.durable >= end {
                if parked {
                    self.metrics.wait_for_leader.record(enrolled_at.elapsed());
                }
                return Ok(end);
            }
            if st.error_era != my_era {
                // A flush failed while this batch was pending; its bytes
                // may or may not have reached the sink — report the error.
                let err = match &st.last_error {
                    Some(shared) => Error::Shared(Arc::clone(shared)),
                    None => Error::Storage { message: "group flush failed".into() },
                };
                st.waiting.retain(|&e| e != end);
                return Err(err);
            }
            if !st.flushing {
                // Become the flush leader.
                st.flushing = true;
                drop(st);
                let res = self.log.flush();
                st = self.st.lock();
                st.flushing = false;
                match res {
                    Ok(d) => {
                        if d > st.durable {
                            st.durable = d;
                        }
                        let before = st.waiting.len();
                        st.waiting.retain(|&e| e > d);
                        let released = (before - st.waiting.len()) as u64;
                        self.metrics.flushes.inc();
                        if released > 0 {
                            self.metrics.group_size.record(released);
                        }
                    }
                    Err(e) => {
                        st.error_era += 1;
                        st.last_error = Some(Arc::new(e));
                    }
                }
                self.cv.notify_all();
            } else {
                parked = true;
                self.cv.wait(&mut st);
            }
        }
    }

    /// Highest durable LSN as seen by the group committer.
    pub fn durable(&self) -> Lsn {
        self.st.lock().durable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{LogSink, VecSink};
    use crate::record::RedoPayload;
    use bytes::Bytes;
    use parking_lot::Mutex as PlMutex;
    use polardbx_common::{Key, TableId, TrxId, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn mtr(n: i64) -> Mtr {
        Mtr::single(RedoPayload::Insert {
            trx: TrxId(n as u64),
            table: TableId(1),
            key: Key::encode(&[Value::Int(n)]),
            row: Bytes::from(vec![7u8; 16]),
        })
    }

    fn commit_mtrs(n: i64) -> Vec<Mtr> {
        vec![mtr(n), Mtr::single(RedoPayload::TxnCommit { trx: TrxId(n as u64), commit_ts: n as u64 })]
    }

    #[test]
    fn single_committer_is_durable() {
        let sink = VecSink::new();
        let gc = GroupCommitter::new(LogBuffer::new(sink.clone()));
        let end = gc.commit(&commit_mtrs(1)).unwrap();
        assert_eq!(gc.log().flushed(), end);
        assert_eq!(gc.durable(), end);
        assert_eq!(gc.metrics.commits.get(), 1);
        assert_eq!(gc.metrics.flushes.get(), 1);
    }

    #[test]
    fn empty_batch_is_noop() {
        let sink = VecSink::new();
        let gc = GroupCommitter::new(LogBuffer::new(sink.clone()));
        gc.commit(&[]).unwrap();
        assert!(sink.writes().is_empty());
        assert_eq!(gc.metrics.commits.get(), 0);
    }

    /// Wraps a sink with a per-write busy-wait, modelling fsync cost. With
    /// an instant sink there is no window for followers to pile up and
    /// every committer leads its own flush — which is correct, but makes
    /// grouping unobservable in a test.
    struct SlowSink {
        inner: Arc<VecSink>,
        delay: std::time::Duration,
    }

    impl LogSink for SlowSink {
        fn write(&self, at: Lsn, bytes: Bytes) -> polardbx_common::Result<()> {
            let t0 = Timer::start();
            while t0.elapsed() < self.delay {
                std::hint::spin_loop();
            }
            self.inner.write(at, bytes)
        }
    }

    #[test]
    fn concurrent_committers_share_flushes() {
        let sink = VecSink::new();
        let slow = Arc::new(SlowSink { inner: sink.clone(), delay: std::time::Duration::from_micros(200) });
        let gc = GroupCommitter::new(LogBuffer::new(slow));
        const THREADS: i64 = 8;
        const PER: i64 = 50;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let gc = Arc::clone(&gc);
                s.spawn(move || {
                    for i in 0..PER {
                        gc.commit(&commit_mtrs(t * 1000 + i)).unwrap();
                    }
                });
            }
        });
        let commits = (THREADS * PER) as u64;
        assert_eq!(gc.metrics.commits.get(), commits);
        assert_eq!(gc.log().flushed(), gc.log().head());
        // Grouping must have happened: strictly fewer flushes than commits
        // (with 8 threads hammering, some flushes cover several batches).
        assert!(
            gc.metrics.flushes.get() < commits,
            "no grouping: {} flushes for {commits} commits",
            gc.metrics.flushes.get()
        );
        // Group sizes sum to the commits released.
        assert_eq!(gc.metrics.group_size.sum(), commits);
        // The full content round-trips: every record present exactly once.
        let records = RedoPayload::decode_all(Bytes::from(sink.contiguous())).unwrap();
        assert_eq!(records.len() as u64, commits * 2);
    }

    #[test]
    fn flushed_never_passes_sink_hole_under_group_commit() {
        // Extends the PR 2 WAL-race regression through the group committer:
        // a reader snapshots `flushed` and asserts the sink tiles up to it.
        let sink = VecSink::new();
        let gc = GroupCommitter::new(LogBuffer::new(sink.clone()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let (sink, gc, stop) = (sink.clone(), Arc::clone(&gc), Arc::clone(&stop));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let flushed = gc.log().flushed().raw() as usize;
                    let content = sink.contiguous();
                    assert!(content.len() >= flushed, "flushed past sink contents");
                }
            })
        };
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let gc = Arc::clone(&gc);
                s.spawn(move || {
                    for i in 0..200 {
                        gc.commit(&commit_mtrs(t * 1000 + i)).unwrap();
                    }
                });
            }
        });
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(gc.log().flushed(), gc.log().head());
    }

    /// A sink that fails every write after the first `ok_writes`.
    struct FlakySink {
        inner: Arc<VecSink>,
        ok_writes: u64,
        seen: AtomicU64,
    }

    impl LogSink for FlakySink {
        fn write(&self, at: Lsn, bytes: Bytes) -> polardbx_common::Result<()> {
            if self.seen.fetch_add(1, Ordering::SeqCst) >= self.ok_writes {
                return Err(Error::Storage { message: "sink broken".into() });
            }
            self.inner.write(at, bytes)
        }
    }

    #[test]
    fn flush_failure_propagates_to_all_waiters() {
        let flaky = Arc::new(FlakySink {
            inner: VecSink::new(),
            ok_writes: 0,
            seen: AtomicU64::new(0),
        });
        let gc = GroupCommitter::new(LogBuffer::new(flaky));
        let errs = PlMutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let gc = Arc::clone(&gc);
                let errs = &errs;
                s.spawn(move || {
                    let r = gc.commit(&commit_mtrs(t));
                    errs.lock().push(r.err());
                });
            }
        });
        let errs = errs.into_inner();
        assert!(errs.iter().all(|e| e.is_some()), "every waiter must see the failure");
        for e in errs.into_iter().flatten() {
            // Followers of a failed era share one Arc'd error (a refcount
            // bump per waiter); only an era's leader holds the original.
            assert!(
                matches!(&e, Error::Shared(_) | Error::Storage { .. }),
                "unexpected error shape: {e:?}"
            );
            assert!(e.to_string().contains("sink broken"), "{e}");
        }
    }
}
