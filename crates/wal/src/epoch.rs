//! Epoch-pipelined commit path (STAR-style, ROADMAP item 5).
//!
//! Group commit (PR 3) amortizes *flushes* across concurrent committers,
//! but a single committer still pays one full durability round — local
//! fsync or Paxos replication RTT — per transaction, because the commit
//! *decision* and the durability *acknowledgment* are welded together.
//! The epoch pipeline decouples them:
//!
//! * every committing transaction encodes its redo (data records + the
//!   commit record) into the **open epoch**, a reused `Vec<u8>` arena, and
//!   receives a *ticket* (the epoch's sequence number);
//! * the transaction's write locks are released and its versions stamped
//!   **immediately** (early lock release) — later transactions may read
//!   and overwrite the stamped versions without waiting;
//! * a background flusher **seals** epochs (on a size bound, or as soon as
//!   the previous flush returns) and persists each sealed epoch with one
//!   [`EpochSink::persist`] call — one fsync / one replication round for
//!   the whole epoch;
//! * no client ack escapes until the transaction's epoch is durable: the
//!   committer (or a pipelined harvester) blocks in
//!   [`EpochPipeline::wait_ticket`], and the storage engine consults the
//!   same stability watermark before letting an external read observe a
//!   committed-but-unacked version.
//!
//! **Torn epochs roll back wholesale.** If a persist fails (lost quorum,
//! sink error), the failed epoch *and every epoch behind it* (they may
//! have read its early-released writes) are failed together: the listener
//! rolls their transactions back, ticket holders get one shared
//! [`Error::Shared`] clone each, and the pipeline resets for new work.
//! Crash recovery needs no new machinery: an epoch is a plain
//! concatenation of the same records the serial path writes, so replay
//! classifies a torn epoch's transactions by the presence of their commit
//! records — absent means presumed abort, exactly as before.
//!
//! The submit path is allocation-free in steady state: epoch buffers are
//! recycled through a pool with their capacity preserved, and records are
//! encoded straight into the arena (`RedoPayload::encode` is generic over
//! the output cursor).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use polardbx_common::metrics::{Counter, ValueHistogram};
use polardbx_common::{Error, Lsn, Result, TrxId};

/// Durability provider for sealed epochs: one call persists one epoch.
pub trait EpochSink: Send + Sync {
    /// Persist `bytes` (concatenated redo records) and return the durable
    /// end LSN. `cuts` lists the record-aligned byte offsets at which the
    /// payload may be split into wire frames (each cut is the *end* of a
    /// submission); sinks that frame the stream (Paxos) must cut only at
    /// these offsets so followers apply whole records.
    fn persist(&self, bytes: &[u8], cuts: &[usize]) -> Result<Lsn>;
}

/// Callbacks into the storage engine at epoch resolution.
pub trait EpochListener: Send + Sync {
    /// `txns` reached their durability horizon: clear their unstable flag
    /// so gated external reads and participant acks may proceed.
    fn epoch_stable(&self, txns: &[TrxId], end_lsn: Lsn);

    /// `txns` belong to a failed (torn) epoch: roll their early-released
    /// commits back wholesale (presumed abort).
    fn epoch_failed(&self, txns: &[TrxId], err: &Error);
}

/// A no-op listener for sinks tested without an engine.
pub struct NullListener;

impl EpochListener for NullListener {
    fn epoch_stable(&self, _txns: &[TrxId], _end_lsn: Lsn) {}
    fn epoch_failed(&self, _txns: &[TrxId], _err: &Error) {}
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct EpochConfig {
    /// Seal the open epoch once its arena reaches this size.
    pub max_epoch_bytes: usize,
    /// Sealed epochs allowed to queue behind the in-flight persist before
    /// submitters block (bounded pipeline depth).
    pub max_in_flight: usize,
    /// Idle tick: how long the flusher sleeps when there is nothing to
    /// seal or persist.
    pub tick: Duration,
}

impl Default for EpochConfig {
    fn default() -> EpochConfig {
        EpochConfig {
            max_epoch_bytes: 64 * 1024,
            max_in_flight: 4,
            tick: Duration::from_millis(1),
        }
    }
}

/// Ticket identifying the epoch a submission landed in.
pub type EpochTicket = u64;

/// One epoch's arena: records, owning transactions, frame cut points.
struct EpochBuf {
    seq: u64,
    buf: Vec<u8>,
    txns: Vec<TrxId>,
    cuts: Vec<usize>,
}

impl EpochBuf {
    fn new(seq: u64, cap: usize) -> EpochBuf {
        EpochBuf { seq, buf: Vec::with_capacity(cap), txns: Vec::new(), cuts: Vec::new() }
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Clear for reuse, keeping every allocation.
    fn reset(&mut self, seq: u64) {
        self.seq = seq;
        self.buf.clear();
        self.txns.clear();
        self.cuts.clear();
    }
}

/// One failed seal range: epochs `lo..=hi` resolved with `err`.
struct FailedRange {
    lo: u64,
    hi: u64,
    err: Arc<Error>,
}

struct PipeState {
    open: EpochBuf,
    sealed: VecDeque<EpochBuf>,
    /// Recycled arenas (capacity preserved across epochs).
    pool: Vec<EpochBuf>,
    next_seq: u64,
    /// Every epoch `<= resolved_seq` is resolved (durable or failed).
    resolved_seq: u64,
    /// Seq of the epoch the flusher is persisting right now, if any.
    /// Tracked so [`EpochPipeline::barrier`] covers in-flight work: the
    /// flusher pops an epoch off `sealed` before calling persist, so
    /// neither `open` nor `sealed` accounts for it.
    persisting: Option<u64>,
    /// Durable horizon reported by the sink.
    durable: Lsn,
    /// Recent failures, newest last (bounded; failures are rare).
    failures: Vec<FailedRange>,
    /// Highest epoch seq whose failure record was evicted from the
    /// bounded `failures` list. A resolved ticket at or below this mark
    /// has an unknowable outcome and must not be reported durable.
    failures_evicted_hi: u64,
    stopping: bool,
}

/// Counters and distributions for the epoch pipeline.
#[derive(Default)]
pub struct EpochMetrics {
    /// Epochs persisted.
    pub epochs: Counter,
    /// Transactions committed through the pipeline.
    pub txns: Counter,
    /// Payload bytes persisted.
    pub bytes: Counter,
    /// Transactions per sealed epoch.
    pub epoch_txns: ValueHistogram,
    /// Failed persists (each fails a whole epoch suffix).
    pub failures: Counter,
}

impl EpochMetrics {
    /// Mean transactions amortized per persist call.
    pub fn txns_per_epoch(&self) -> f64 {
        let e = self.epochs.get();
        if e == 0 {
            return 0.0;
        }
        self.txns.get() as f64 / e as f64
    }

    /// One-line summary for benches.
    pub fn report(&self) -> String {
        format!(
            "epochs={} txns={} txns/epoch={:.1} (p95={}) bytes={} failures={}",
            self.epochs.get(),
            self.txns.get(),
            self.txns_per_epoch(),
            self.epoch_txns.percentile(0.95),
            self.bytes.get(),
            self.failures.get(),
        )
    }
}

/// The always-on epoch pipeline. See the module docs for the protocol.
pub struct EpochPipeline {
    st: Mutex<PipeState>,
    /// Wakes the flusher (new work) and backpressured submitters.
    work: Condvar,
    /// Wakes ticket waiters on epoch resolution.
    resolved: Condvar,
    sink: Arc<dyn EpochSink>,
    listener: Arc<dyn EpochListener>,
    cfg: EpochConfig,
    /// Pipeline observability, shared with benches.
    pub metrics: Arc<EpochMetrics>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl EpochPipeline {
    /// Build the pipeline and start its flusher thread.
    pub fn start(
        sink: Arc<dyn EpochSink>,
        listener: Arc<dyn EpochListener>,
        cfg: EpochConfig,
    ) -> Arc<EpochPipeline> {
        let cap = cfg.max_epoch_bytes + 4096;
        let pipeline = Arc::new(EpochPipeline {
            st: Mutex::new(PipeState {
                open: EpochBuf::new(1, cap),
                sealed: VecDeque::new(),
                pool: Vec::new(),
                next_seq: 2,
                resolved_seq: 0,
                persisting: None,
                durable: Lsn::ZERO,
                failures: Vec::new(),
                failures_evicted_hi: 0,
                stopping: false,
            }),
            work: Condvar::new(),
            resolved: Condvar::new(),
            sink,
            listener,
            cfg,
            metrics: Arc::new(EpochMetrics::default()),
            flusher: Mutex::new(None),
        });
        let runner = Arc::clone(&pipeline);
        let handle = std::thread::Builder::new()
            .name("epoch-flusher".into())
            .spawn(move || runner.run_flusher());
        match handle {
            Ok(h) => *pipeline.flusher.lock() = Some(h),
            Err(e) => panic!("spawning epoch flusher: {e}"),
        }
        pipeline
    }

    /// Append one submission (all of a transaction's redo records,
    /// pre-ordered, ending with its decision record) to the open epoch.
    /// `txn` is `Some` for commits that were early-released and must be
    /// tracked to stability; prepare/abort/marker submissions pass `None`.
    ///
    /// The returned ticket resolves through [`EpochPipeline::wait_ticket`].
    // lint:hotpath
    pub fn submit<F: FnOnce(&mut Vec<u8>)>(
        &self,
        txn: Option<TrxId>,
        encode: F,
    ) -> Result<EpochTicket> {
        let mut st = self.st.lock();
        // Backpressure: the pipeline is full when the open epoch hit its
        // size bound and the sealed queue is at depth.
        while st.open.buf.len() >= self.cfg.max_epoch_bytes {
            if st.sealed.len() < self.cfg.max_in_flight {
                self.seal_open(&mut st);
                self.work.notify_all();
                break;
            }
            if st.stopping {
                return Err(Error::storage("epoch pipeline stopped"));
            }
            self.work.wait(&mut st);
        }
        if st.stopping {
            return Err(Error::storage("epoch pipeline stopped"));
        }
        let seq = st.open.seq;
        encode(&mut st.open.buf);
        let end = st.open.buf.len();
        st.open.cuts.push(end);
        if let Some(t) = txn {
            st.open.txns.push(t);
        }
        self.work.notify_all();
        Ok(seq)
    }

    /// Block until `ticket`'s epoch is resolved; `Ok(durable_lsn)` when it
    /// persisted, the epoch's shared error when it failed.
    // lint:hotpath
    pub fn wait_ticket(&self, ticket: EpochTicket, timeout: Duration) -> Result<Lsn> {
        let mut st = self.st.lock();
        // lint:allow(determinism, "Condvar::wait_until needs an Instant deadline; bounded by the caller's timeout")
        let deadline = std::time::Instant::now() + timeout;
        while st.resolved_seq < ticket {
            if self.resolved.wait_until(&mut st, deadline).timed_out() {
                return Err(Error::Timeout { what: format!("epoch {ticket} durability") });
            }
        }
        for f in st.failures.iter().rev() {
            if ticket >= f.lo && ticket <= f.hi {
                return Err(Error::Shared(Arc::clone(&f.err)));
            }
        }
        // A waiter that wakes after its ticket's failure record was
        // evicted from the bounded list cannot tell failure from success.
        // Never guess durable: an evicted *failed* range reported Ok here
        // would present a rolled-back commit as durable.
        if ticket <= st.failures_evicted_hi {
            return Err(Error::storage(format!(
                "epoch {ticket} outcome unknown: its resolution record was evicted"
            )));
        }
        Ok(st.durable)
    }

    /// Submit and wait in one step: the synchronous commit path (and the
    /// prepare/abort/marker path, which must not ack before durability).
    pub fn submit_sync<F: FnOnce(&mut Vec<u8>)>(
        &self,
        txn: Option<TrxId>,
        timeout: Duration,
        encode: F,
    ) -> Result<Lsn> {
        let ticket = self.submit(txn, encode)?;
        self.wait_ticket(ticket, timeout)
    }

    /// Wait until everything submitted so far is resolved. Covers the
    /// open epoch, the sealed queue, *and* the epoch the flusher is
    /// persisting right now (which sits in neither).
    pub fn barrier(&self, timeout: Duration) -> Result<Lsn> {
        let upto = {
            let st = self.st.lock();
            let mut upto = st.resolved_seq;
            if let Some(seq) = st.persisting {
                upto = upto.max(seq);
            }
            if let Some(b) = st.sealed.back() {
                upto = upto.max(b.seq);
            }
            if !st.open.is_empty() {
                upto = upto.max(st.open.seq);
            }
            upto
        };
        self.wait_ticket(upto, timeout)
    }

    /// Durable horizon (end LSN of the last persisted epoch).
    pub fn durable_lsn(&self) -> Lsn {
        self.st.lock().durable
    }

    /// Stop the flusher after draining already-submitted epochs.
    pub fn stop(&self) {
        {
            let mut st = self.st.lock();
            st.stopping = true;
            self.work.notify_all();
        }
        let handle = self.flusher.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Move the open epoch to the sealed queue and start a fresh one from
    /// the pool. Caller holds the state lock.
    fn seal_open(&self, st: &mut PipeState) {
        let seq = st.next_seq;
        st.next_seq += 1;
        let mut fresh = match st.pool.pop() {
            Some(mut b) => {
                b.reset(seq);
                b
            }
            None => EpochBuf::new(seq, self.cfg.max_epoch_bytes + 4096),
        };
        std::mem::swap(&mut st.open, &mut fresh);
        st.sealed.push_back(fresh);
    }

    fn run_flusher(&self) {
        loop {
            let job = {
                let mut st = self.st.lock();
                loop {
                    if let Some(b) = st.sealed.pop_front() {
                        st.persisting = Some(b.seq);
                        break Some(b);
                    }
                    if !st.open.is_empty() {
                        // The previous persist returned (or the first
                        // submission landed on an idle pipeline): seal
                        // immediately — the flush itself is the tick.
                        self.seal_open(&mut st);
                        continue;
                    }
                    if st.stopping {
                        break None;
                    }
                    // lint:allow(determinism, "idle tick: Condvar::wait_until needs an Instant deadline; bounded by cfg.tick")
                    let tick = std::time::Instant::now() + self.cfg.tick;
                    let _ = self.work.wait_until(&mut st, tick);
                }
            };
            let Some(buf) = job else { return };
            match self.sink.persist(&buf.buf, &buf.cuts) {
                Ok(end) => self.settle_ok(buf, end),
                Err(e) => self.settle_failed(buf, e),
            }
        }
    }

    /// A sealed epoch persisted: publish stability, then resolve tickets.
    fn settle_ok(&self, buf: EpochBuf, end: Lsn) {
        self.metrics.epochs.inc();
        self.metrics.txns.add(buf.txns.len() as u64);
        self.metrics.bytes.add(buf.buf.len() as u64);
        self.metrics.epoch_txns.record(buf.txns.len() as u64);
        // Stability first: a ticket holder acks the instant it wakes, and
        // its client's next read must not be gated on a stale flag.
        self.listener.epoch_stable(&buf.txns, end);
        let mut st = self.st.lock();
        st.resolved_seq = buf.seq;
        st.persisting = None;
        if end > st.durable {
            st.durable = end;
        }
        self.recycle(&mut st, buf);
        self.resolved.notify_all();
        self.work.notify_all();
    }

    /// A persist failed: fail the whole in-flight suffix (the epochs
    /// behind it may have read its early-released writes), roll the
    /// transactions back, then resolve tickets with one shared error.
    fn settle_failed(&self, buf: EpochBuf, err: Error) {
        self.metrics.failures.inc();
        let shared = Arc::new(err);
        let victims: Vec<EpochBuf> = {
            let mut st = self.st.lock();
            let mut v = vec![buf];
            while let Some(b) = st.sealed.pop_front() {
                v.push(b);
            }
            if !st.open.is_empty() {
                self.seal_open(&mut st);
                if let Some(b) = st.sealed.pop_front() {
                    v.push(b);
                }
            }
            v
        };
        let lo = victims.first().map(|b| b.seq).unwrap_or(0);
        let hi = victims.last().map(|b| b.seq).unwrap_or(lo);
        // Roll back outside the lock: the listener takes engine locks, and
        // gated readers keep waiting until the demotions land.
        for v in &victims {
            self.listener.epoch_failed(&v.txns, &shared);
        }
        let mut st = self.st.lock();
        st.failures.push(FailedRange { lo, hi, err: shared });
        if st.failures.len() > 64 {
            let evicted = st.failures.remove(0);
            st.failures_evicted_hi = st.failures_evicted_hi.max(evicted.hi);
        }
        st.resolved_seq = hi.max(st.resolved_seq);
        st.persisting = None;
        for v in victims {
            self.recycle(&mut st, v);
        }
        self.resolved.notify_all();
        self.work.notify_all();
    }

    fn recycle(&self, st: &mut PipeState, mut buf: EpochBuf) {
        if st.pool.len() < self.cfg.max_in_flight + 2 {
            buf.reset(0);
            st.pool.push(buf);
        }
    }
}

impl Drop for EpochPipeline {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Local-durability epoch sink: one [`crate::LogBuffer`] append + flush
/// per sealed epoch. Byte-compatible with the serial per-transaction path
/// (an epoch is the same record stream, batched), so recovery, log
/// shipping and RO replicas need no changes.
pub struct LocalEpochSink {
    log: Arc<crate::LogBuffer>,
}

impl LocalEpochSink {
    /// Wrap a log buffer (usually the engine's existing one).
    pub fn new(log: Arc<crate::LogBuffer>) -> Arc<LocalEpochSink> {
        Arc::new(LocalEpochSink { log })
    }
}

impl EpochSink for LocalEpochSink {
    fn persist(&self, bytes: &[u8], _cuts: &[usize]) -> Result<Lsn> {
        let (_, end) = self.log.append_raw(bytes);
        let flushed = self.log.flush()?;
        debug_assert!(flushed >= end, "flush horizon must cover the epoch");
        Ok(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::VecSink;
    use crate::record::RedoPayload;
    use crate::{LogBuffer, LogSink, Mtr};
    use bytes::Bytes;
    use polardbx_common::{Key, TableId, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn record(n: i64) -> RedoPayload {
        RedoPayload::Insert {
            trx: TrxId(n as u64),
            table: TableId(1),
            key: Key::encode(&[Value::Int(n)]),
            row: Bytes::from(vec![7u8; 16]),
        }
    }

    fn commit_record(n: u64) -> RedoPayload {
        RedoPayload::TxnCommit { trx: TrxId(n), commit_ts: n * 10 }
    }

    struct Tracking {
        stable: Mutex<Vec<TrxId>>,
        failed: Mutex<Vec<TrxId>>,
    }

    impl Tracking {
        fn new() -> Arc<Tracking> {
            Arc::new(Tracking { stable: Mutex::new(Vec::new()), failed: Mutex::new(Vec::new()) })
        }
    }

    impl EpochListener for Tracking {
        fn epoch_stable(&self, txns: &[TrxId], _end: Lsn) {
            self.stable.lock().extend_from_slice(txns);
        }
        fn epoch_failed(&self, txns: &[TrxId], _err: &Error) {
            self.failed.lock().extend_from_slice(txns);
        }
    }

    #[test]
    fn epoch_stream_is_byte_identical_to_serial_appends() {
        // Serial path: append_sync per MTR.
        let serial_sink = VecSink::new();
        let serial = LogBuffer::new(serial_sink.clone());
        // Epoch path: same records through the pipeline.
        let epoch_sink = VecSink::new();
        let log = LogBuffer::new(epoch_sink.clone());
        let pipe =
            EpochPipeline::start(LocalEpochSink::new(log), Tracking::new(), EpochConfig::default());

        for n in 0..20u64 {
            let recs = vec![record(n as i64), commit_record(n)];
            serial.append_sync(&Mtr::new(recs.clone())).unwrap();
            pipe.submit_sync(Some(TrxId(n)), Duration::from_secs(5), |buf| {
                for r in &recs {
                    r.encode(buf);
                }
            })
            .unwrap();
        }
        pipe.barrier(Duration::from_secs(5)).unwrap();
        assert_eq!(serial_sink.contiguous(), epoch_sink.contiguous());
        assert_eq!(pipe.durable_lsn(), serial.flushed());
    }

    #[test]
    fn pipelined_tickets_resolve_in_order_and_amortize_flushes() {
        let sink = VecSink::new();
        let log = LogBuffer::new(sink.clone());
        let tracking = Tracking::new();
        let pipe = EpochPipeline::start(
            LocalEpochSink::new(log),
            Arc::clone(&tracking) as Arc<dyn EpochListener>,
            EpochConfig::default(),
        );
        let tickets: Vec<EpochTicket> = (0..100u64)
            .map(|n| {
                pipe.submit(Some(TrxId(n)), |buf| {
                    record(n as i64).encode(buf);
                    commit_record(n).encode(buf);
                })
                .unwrap()
            })
            .collect();
        for (i, w) in tickets.windows(2).enumerate() {
            assert!(w[0] <= w[1], "tickets must be monotone at {i}");
        }
        for t in &tickets {
            pipe.wait_ticket(*t, Duration::from_secs(5)).unwrap();
        }
        assert_eq!(tracking.stable.lock().len(), 100);
        assert!(tracking.failed.lock().is_empty());
        let epochs = pipe.metrics.epochs.get();
        assert!((1..=100).contains(&epochs), "pipelining batched {epochs} epochs");
        // Every record made it to the sink, contiguously.
        let records = RedoPayload::decode_all(Bytes::from(sink.contiguous())).unwrap();
        assert_eq!(records.len(), 200);
    }

    /// A sink that fails every write after the first `ok` epochs.
    struct FailingSink {
        ok: AtomicU64,
        inner: Arc<VecSink>,
    }

    impl EpochSink for FailingSink {
        fn persist(&self, bytes: &[u8], _cuts: &[usize]) -> Result<Lsn> {
            if self.ok.fetch_sub(1, Ordering::SeqCst) == 0 {
                self.ok.store(0, Ordering::SeqCst);
                return Err(Error::NoQuorum { acks: 1, needed: 2 });
            }
            let at = self.inner.end_lsn();
            self.inner.write(at, Bytes::copy_from_slice(bytes))?;
            Ok(at.advance(bytes.len() as u64))
        }
    }

    #[test]
    fn failed_epoch_fails_the_whole_suffix_and_pipeline_recovers() {
        let tracking = Tracking::new();
        let sink = Arc::new(FailingSink { ok: AtomicU64::new(1), inner: VecSink::new() });
        let pipe = EpochPipeline::start(
            Arc::clone(&sink) as Arc<dyn EpochSink>,
            Arc::clone(&tracking) as Arc<dyn EpochListener>,
            EpochConfig { tick: Duration::from_millis(1), ..EpochConfig::default() },
        );
        // First submission persists.
        pipe.submit_sync(Some(TrxId(1)), Duration::from_secs(5), |b| commit_record(1).encode(b))
            .unwrap();
        // The next epoch fails; its waiters all get the shared error.
        let t2 = pipe.submit(Some(TrxId(2)), |b| commit_record(2).encode(b)).unwrap();
        let t3 = pipe.submit(Some(TrxId(3)), |b| commit_record(3).encode(b)).unwrap();
        let e2 = pipe.wait_ticket(t2, Duration::from_secs(5)).unwrap_err();
        assert!(matches!(e2, Error::Shared(_)), "shared error, got {e2:?}");
        assert!(!e2.is_retryable(), "NoQuorum is not blind-retryable: {e2}");
        let e3 = pipe.wait_ticket(t3, Duration::from_secs(5)).unwrap_err();
        assert_eq!(e2, e3, "every waiter of the failed range shares one error");
        let failed = tracking.failed.lock().clone();
        assert!(failed.contains(&TrxId(2)) && failed.contains(&TrxId(3)), "{failed:?}");
        // The pipeline reset: new submissions persist again.
        sink.ok.store(5, Ordering::SeqCst);
        pipe.submit_sync(Some(TrxId(4)), Duration::from_secs(5), |b| commit_record(4).encode(b))
            .unwrap();
        assert!(tracking.stable.lock().contains(&TrxId(4)));
    }

    #[test]
    fn size_bound_seals_and_backpressure_holds_submitters() {
        let sink = VecSink::new();
        let log = LogBuffer::new(sink);
        let pipe = EpochPipeline::start(
            LocalEpochSink::new(log),
            Tracking::new(),
            EpochConfig {
                max_epoch_bytes: 256,
                max_in_flight: 2,
                tick: Duration::from_millis(1),
            },
        );
        for n in 0..200u64 {
            pipe.submit_sync(Some(TrxId(n)), Duration::from_secs(5), |b| {
                record(n as i64).encode(b);
                commit_record(n).encode(b);
            })
            .unwrap();
        }
        assert!(pipe.metrics.epochs.get() >= 2, "size bound must have sealed epochs");
    }

    #[test]
    fn barrier_covers_the_in_flight_epoch() {
        // The flusher pops an epoch off `sealed` before persisting it, so
        // a barrier issued mid-persist sees open and sealed both empty.
        // It must still wait for the in-flight epoch rather than return
        // the stale resolved horizon.
        struct GatedSink {
            release: Arc<(Mutex<bool>, Condvar)>,
            inner: Arc<VecSink>,
        }
        impl EpochSink for GatedSink {
            fn persist(&self, bytes: &[u8], _cuts: &[usize]) -> Result<Lsn> {
                let (lock, cv) = &*self.release;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
                let at = self.inner.end_lsn();
                self.inner.write(at, Bytes::copy_from_slice(bytes))?;
                Ok(at.advance(bytes.len() as u64))
            }
        }
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let sink =
            Arc::new(GatedSink { release: Arc::clone(&release), inner: VecSink::new() });
        let pipe = EpochPipeline::start(sink, Tracking::new(), EpochConfig::default());
        let t = pipe.submit(Some(TrxId(1)), |b| commit_record(1).encode(b)).unwrap();
        // Give the flusher time to seal and enter the gated persist.
        std::thread::sleep(Duration::from_millis(20));
        let barrier = {
            let pipe = Arc::clone(&pipe);
            std::thread::spawn(move || pipe.barrier(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(!barrier.is_finished(), "barrier resolved while the epoch was in flight");
        {
            let (lock, cv) = &*release;
            *lock.lock() = true;
            cv.notify_all();
        }
        let lsn = barrier.join().unwrap().unwrap();
        assert!(lsn > Lsn::ZERO, "barrier must report the in-flight epoch's horizon");
        pipe.wait_ticket(t, Duration::from_secs(1)).unwrap();
    }

    #[test]
    fn evicted_failure_record_never_reports_durable() {
        // A waiter that wakes only after its epoch's failure record was
        // pruned from the bounded list must get an "outcome unknown"
        // error, not a silent Ok presenting a rolled-back commit as
        // durable.
        struct AlwaysFail;
        impl EpochSink for AlwaysFail {
            fn persist(&self, _bytes: &[u8], _cuts: &[usize]) -> Result<Lsn> {
                Err(Error::NoQuorum { acks: 1, needed: 2 })
            }
        }
        let pipe = EpochPipeline::start(
            Arc::new(AlwaysFail),
            Tracking::new(),
            EpochConfig { tick: Duration::from_millis(1), ..EpochConfig::default() },
        );
        let stale = pipe.submit(Some(TrxId(1)), |b| commit_record(1).encode(b)).unwrap();
        let first = pipe.wait_ticket(stale, Duration::from_secs(5)).unwrap_err();
        assert!(matches!(first, Error::Shared(_)), "got {first:?}");
        // 70 later failures evict the stale ticket's failure range.
        for n in 0..70u64 {
            let t = pipe
                .submit(Some(TrxId(n + 2)), |b| commit_record(n + 2).encode(b))
                .unwrap();
            assert!(pipe.wait_ticket(t, Duration::from_secs(5)).is_err());
        }
        let late = pipe.wait_ticket(stale, Duration::from_secs(5)).unwrap_err();
        assert!(
            format!("{late}").contains("outcome unknown"),
            "late waiter must not be told durable or failed-with-someone-else's-error: {late}"
        );
    }

    #[test]
    fn stop_drains_submitted_work() {
        let sink = VecSink::new();
        let log = LogBuffer::new(sink.clone());
        let pipe =
            EpochPipeline::start(LocalEpochSink::new(log), Tracking::new(), EpochConfig::default());
        let t = pipe.submit(Some(TrxId(1)), |b| commit_record(1).encode(b)).unwrap();
        pipe.stop();
        // The sealed work still resolved before the flusher exited.
        pipe.wait_ticket(t, Duration::from_secs(1)).unwrap();
        assert!(!sink.contiguous().is_empty());
        // Post-stop submissions fail typed.
        assert!(pipe.submit(None, |b| commit_record(2).encode(b)).is_err());
    }
}
