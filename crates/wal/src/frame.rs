//! `MLOG_PAXOS` framing (§III "Pipelining and Batching").
//!
//! To carry Paxos metadata inside the redo stream, the paper adds a special
//! 64-byte record type: "This entry is 64 bytes and contains metadata like
//! epoch, index, LSN range of redo log entries, and checksum. … multiple
//! MTRs are batched in a single MLOG_PAXOS (maximum 16 KB) to enlarge the
//! payload." This module implements exactly that frame.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use polardbx_common::Lsn;

use crate::mtr::Mtr;

/// Fixed header length of an `MLOG_PAXOS` record: 64 bytes, as in the paper.
pub const FRAME_HEADER_LEN: usize = 64;
/// Maximum batched payload per frame: 16 KB, as in the paper.
pub const MAX_FRAME_PAYLOAD: usize = 16 * 1024;

const MAGIC: u32 = 0x4D_50_58_53; // "MPXS"

/// Frame decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than a header.
    Truncated,
    /// Bad magic number.
    BadMagic(u32),
    /// Checksum mismatch — payload corrupted in flight.
    ChecksumMismatch { expected: u64, actual: u64 },
    /// Payload length in header exceeds buffer or the 16 KB cap.
    BadLength(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#x}"),
            FrameError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: expected {expected:#x}, got {actual:#x}")
            }
            FrameError::BadLength(l) => write!(f, "bad payload length {l}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One `MLOG_PAXOS` batch: Paxos metadata plus batched MTR payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaxosFrame {
    /// Leader's election epoch (term).
    pub epoch: u64,
    /// Position of this frame in the leader's log of frames.
    pub index: u64,
    /// First LSN covered by the batched payload.
    pub lsn_start: Lsn,
    /// One past the last LSN covered.
    pub lsn_end: Lsn,
    /// The batched MTR bytes (concatenated encodings).
    pub payload: Bytes,
}

impl PaxosFrame {
    /// Frame a batch of MTRs starting at `lsn_start` under `epoch`/`index`.
    ///
    /// Panics if the combined payload exceeds [`MAX_FRAME_PAYLOAD`]; the
    /// batcher ([`FrameBatcher`]) never lets that happen.
    pub fn from_mtrs(epoch: u64, index: u64, lsn_start: Lsn, mtrs: &[Mtr]) -> PaxosFrame {
        let mut payload = BytesMut::new();
        for m in mtrs {
            payload.extend_from_slice(&m.encode());
        }
        assert!(payload.len() <= MAX_FRAME_PAYLOAD, "frame payload over 16KB");
        let lsn_end = lsn_start.advance(payload.len() as u64);
        PaxosFrame { epoch, index, lsn_start, lsn_end, payload: payload.freeze() }
    }

    /// Serialize: 64-byte header + payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_u64_le(self.epoch);
        buf.put_u64_le(self.index);
        buf.put_u64_le(self.lsn_start.raw());
        buf.put_u64_le(self.lsn_end.raw());
        buf.put_u64_le(checksum(&self.payload));
        // Reserved padding out to 64 bytes (mirrors the paper's fixed size).
        buf.resize(FRAME_HEADER_LEN, 0);
        buf.extend_from_slice(&self.payload);
        buf.freeze()
    }

    /// Parse one frame from the front of `buf`, consuming it.
    pub fn decode(buf: &mut Bytes) -> Result<PaxosFrame, FrameError> {
        if buf.len() < FRAME_HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        let mut header = buf.slice(0..FRAME_HEADER_LEN);
        let magic = header.get_u32_le();
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let payload_len = header.get_u32_le() as usize;
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::BadLength(payload_len));
        }
        let epoch = header.get_u64_le();
        let index = header.get_u64_le();
        let lsn_start = Lsn(header.get_u64_le());
        let lsn_end = Lsn(header.get_u64_le());
        let expected = header.get_u64_le();
        if buf.len() < FRAME_HEADER_LEN + payload_len {
            return Err(FrameError::Truncated);
        }
        buf.advance(FRAME_HEADER_LEN);
        let payload = buf.copy_to_bytes(payload_len);
        let actual = checksum(&payload);
        if actual != expected {
            return Err(FrameError::ChecksumMismatch { expected, actual });
        }
        Ok(PaxosFrame { epoch, index, lsn_start, lsn_end, payload })
    }

    /// Total wire size.
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER_LEN + self.payload.len()
    }
}

/// FNV-1a 64-bit checksum over the payload.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Accumulates MTRs into frames, cutting a new frame when the 16 KB payload
/// cap would be exceeded. This is the leader-side batching that "greatly
/// improves the log replication throughput" (§III).
#[derive(Debug)]
pub struct FrameBatcher {
    epoch: u64,
    next_index: u64,
    next_lsn: Lsn,
    pending: Vec<Mtr>,
    pending_bytes: usize,
}

impl FrameBatcher {
    /// Start batching at `lsn` under `epoch`, with frame indexes from
    /// `first_index`.
    pub fn new(epoch: u64, first_index: u64, lsn: Lsn) -> FrameBatcher {
        FrameBatcher {
            epoch,
            next_index: first_index,
            next_lsn: lsn,
            pending: Vec::new(),
            pending_bytes: 0,
        }
    }

    /// Add an MTR; returns a completed frame if the cap forced a cut.
    /// Oversized single MTRs (> 16 KB) get a dedicated frame each... they
    /// cannot occur from our record types but are handled by flushing first.
    pub fn push(&mut self, mtr: Mtr) -> Option<PaxosFrame> {
        let len = mtr.encoded_len();
        let mut cut = None;
        if self.pending_bytes + len > MAX_FRAME_PAYLOAD && !self.pending.is_empty() {
            cut = self.flush();
        }
        self.pending.push(mtr);
        self.pending_bytes += len;
        cut
    }

    /// Emit the pending batch as a frame (None if empty).
    pub fn flush(&mut self) -> Option<PaxosFrame> {
        if self.pending.is_empty() {
            return None;
        }
        let frame =
            PaxosFrame::from_mtrs(self.epoch, self.next_index, self.next_lsn, &self.pending);
        self.next_index += 1;
        self.next_lsn = frame.lsn_end;
        self.pending.clear();
        self.pending_bytes = 0;
        Some(frame)
    }

    /// Next LSN to be assigned (after everything batched so far).
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn.advance(self.pending_bytes as u64)
    }

    /// Index the next cut frame will carry.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Change epoch after a re-election; frame indexes continue.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RedoPayload;
    use polardbx_common::{Key, TableId, TrxId, Value};

    fn mtr(n: i64, payload_size: usize) -> Mtr {
        Mtr::single(RedoPayload::Insert {
            trx: TrxId(1),
            table: TableId(1),
            key: Key::encode(&[Value::Int(n)]),
            row: Bytes::from(vec![0u8; payload_size]),
        })
    }

    #[test]
    fn frame_roundtrip() {
        let f = PaxosFrame::from_mtrs(3, 7, Lsn(1000), &[mtr(1, 100), mtr(2, 50)]);
        let mut wire = f.encode();
        assert_eq!(wire.len(), f.wire_len());
        let back = PaxosFrame::decode(&mut wire).unwrap();
        assert_eq!(back, f);
        assert!(wire.is_empty());
        // LSN range covers the payload bytes.
        assert_eq!(back.lsn_end.raw() - back.lsn_start.raw(), back.payload.len() as u64);
    }

    #[test]
    fn corrupted_payload_detected() {
        let f = PaxosFrame::from_mtrs(1, 1, Lsn(0), &[mtr(1, 64)]);
        let wire = f.encode();
        let mut corrupted = wire.to_vec();
        let n = corrupted.len();
        corrupted[n - 1] ^= 0xFF;
        let mut b = Bytes::from(corrupted);
        assert!(matches!(
            PaxosFrame::decode(&mut b),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let mut wire = PaxosFrame::from_mtrs(1, 1, Lsn(0), &[mtr(1, 8)]).encode().to_vec();
        wire[0] ^= 0x1;
        let mut b = Bytes::from(wire);
        assert!(matches!(PaxosFrame::decode(&mut b), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn truncated_detected() {
        let wire = PaxosFrame::from_mtrs(1, 1, Lsn(0), &[mtr(1, 128)]).encode();
        let mut short = wire.slice(0..FRAME_HEADER_LEN + 3);
        assert_eq!(PaxosFrame::decode(&mut short), Err(FrameError::Truncated));
        let mut tiny = wire.slice(0..10);
        assert_eq!(PaxosFrame::decode(&mut tiny), Err(FrameError::Truncated));
    }

    #[test]
    fn batcher_cuts_at_16kb() {
        let mut b = FrameBatcher::new(1, 0, Lsn(0));
        let mut frames = Vec::new();
        // ~1 KB MTRs: 16 of them fit (just under with headers), the 17th cuts.
        for i in 0..40 {
            if let Some(f) = b.push(mtr(i, 1000)) {
                frames.push(f);
            }
        }
        if let Some(f) = b.flush() {
            frames.push(f);
        }
        assert!(frames.len() >= 2, "cap must force multiple frames");
        for f in &frames {
            assert!(f.payload.len() <= MAX_FRAME_PAYLOAD);
        }
        // Frames tile the LSN space contiguously with ascending indexes.
        for w in frames.windows(2) {
            assert_eq!(w[0].lsn_end, w[1].lsn_start);
            assert_eq!(w[0].index + 1, w[1].index);
        }
        // Everything decodes back to the original records.
        let total_mtr_bytes: usize = (0..40).map(|i| mtr(i, 1000).encoded_len()).sum();
        let framed_bytes: usize = frames.iter().map(|f| f.payload.len()).sum();
        assert_eq!(total_mtr_bytes, framed_bytes);
    }

    #[test]
    fn batcher_flush_empty_is_none() {
        let mut b = FrameBatcher::new(1, 0, Lsn(0));
        assert!(b.flush().is_none());
        assert_eq!(b.next_index(), 0);
    }

    #[test]
    fn batching_amortizes_header_overhead() {
        // The design claim behind MLOG_PAXOS batching: one 64-byte header
        // per 16 KB instead of per few-hundred-byte MTR.
        let mtrs: Vec<Mtr> = (0..64).map(|i| mtr(i, 200)).collect();
        let mut batched = FrameBatcher::new(1, 0, Lsn(0));
        let mut batched_wire = 0usize;
        for m in mtrs.iter().cloned() {
            if let Some(f) = batched.push(m) {
                batched_wire += f.wire_len();
            }
        }
        if let Some(f) = batched.flush() {
            batched_wire += f.wire_len();
        }
        let per_mtr_wire: usize = mtrs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                PaxosFrame::from_mtrs(1, i as u64, Lsn(0), std::slice::from_ref(m)).wire_len()
            })
            .sum();
        assert!(
            batched_wire < per_mtr_wire,
            "batched {batched_wire} should beat per-MTR {per_mtr_wire}"
        );
    }
}
