//! PolarDB-X: the assembled system (§II of the paper).
//!
//! This crate wires the substrate crates into the paper's CN-DN-SN
//! architecture and exposes the user-facing API:
//!
//! ```text
//!   clients → LoadBalancer → CN (parse/plan/route/2PC/HTAP exec)
//!                              → DN (PolarDB engines, RW + RO replicas)
//!                                 → SN (PolarFS volumes)
//!             GMS (catalog, placement, statistics, background tasks)
//! ```
//!
//! * [`gms`] — the Global Meta Service: catalog with hash partitioning,
//!   table groups and global/local indexes (§II-B), shard placement,
//!   statistics, and the migration planner used during scale-out (§V).
//! * [`durability`] — plugs the X-Paxos group in as the DN durability path
//!   for cross-DC deployments (§III).
//! * [`provider`] — the executor's view of the cluster: partitioned scans
//!   over DN shards, RO-replica routing, column-index snapshots (§VI).
//! * [`cluster`] — the `PolarDbx` facade: build a cluster, connect
//!   sessions through the locality-aware load balancer, execute SQL.
//! * [`hotspot`] — anti-hotspot tooling: skew detection, shard split,
//!   hot-key isolation (§VIII).
//! * [`traffic`] — automated traffic control: anomaly detection over query
//!   fingerprints and concurrency limiting (§VIII).

pub mod cluster;
pub mod durability;
pub mod gms;
pub mod hotspot;
pub mod provider;
pub mod traffic;

pub use cluster::{ClusterConfig, PlacerConfig, PolarDbx, Session};
pub use gms::Gms;
pub use provider::ClusterProvider;
