//! The Global Meta Service (§II-A).
//!
//! "The GMS is the control plane of PolarDB-X. It manages the system's
//! metadata, such as cluster membership, catalog tables, table/index
//! partition rules, locations of shards, and statistics. … it schedules
//! data redistribution according to the load."

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use polardbx_common::{
    Error, IdGenerator, NodeId, Result, Row, TableId, TableSchema, TenantId, TenantMeta,
    TenantQuotas, Value,
};
use polardbx_optimizer::{Statistics, TableStats};
use polardbx_placement::EpochMap;
use polardbx_txn::RoutingFence;

/// Derive the engine-level table id for one shard of a logical table.
/// Engines store each shard as its own table; 10 000 shards per table is
/// the address-space bound (far above the paper's configurations).
pub fn shard_table_id(table: TableId, shard: u32) -> TableId {
    TableId(table.raw() * 10_000 + shard as u64)
}

/// Catalog + placement + statistics.
pub struct Gms {
    tables: RwLock<HashMap<String, TableSchema>>,
    /// (logical table, shard) → DN node hosting it.
    placement: RwLock<HashMap<(TableId, u32), NodeId>>,
    /// Table-group → anchor table placements (shared shard placement).
    group_anchor: RwLock<HashMap<String, TableId>>,
    stats: RwLock<Statistics>,
    table_ids: IdGenerator,
    /// Auto-increment sequences for implicit primary keys.
    sequences: RwLock<HashMap<TableId, Arc<IdGenerator>>>,
    dns: RwLock<Vec<NodeId>>,
    /// Routing epochs per shard table: the fence that keeps live-traffic
    /// re-homes from split-braining (see `polardbx-placement`).
    epochs: Arc<EpochMap>,
    /// Front-door tenant catalog: the wire handshake names a tenant, the
    /// admission controller enforces its quotas.
    tenants: RwLock<HashMap<TenantId, TenantMeta>>,
    tenant_ids: IdGenerator,
}

impl Gms {
    /// Empty metadata service.
    pub fn new() -> Arc<Gms> {
        Arc::new(Gms {
            tables: RwLock::new(HashMap::new()),
            placement: RwLock::new(HashMap::new()),
            group_anchor: RwLock::new(HashMap::new()),
            stats: RwLock::new(Statistics::new()),
            table_ids: IdGenerator::new(),
            sequences: RwLock::new(HashMap::new()),
            dns: RwLock::new(Vec::new()),
            epochs: Arc::new(EpochMap::new()),
            tenants: RwLock::new(HashMap::new()),
            tenant_ids: IdGenerator::new(),
        })
    }

    /// Register a front-door tenant with its admission quotas; returns the
    /// allocated tenant id (the wire handshake carries its raw value).
    pub fn register_tenant(&self, name: &str, quotas: TenantQuotas) -> TenantId {
        let id = TenantId(self.tenant_ids.next_id());
        let meta = TenantMeta { id, name: name.to_string(), quotas };
        self.tenants.write().insert(id, meta);
        id
    }

    /// Update a registered tenant's quotas (DBA knob; the front door
    /// re-reads them on the tenant's next handshake).
    pub fn set_tenant_quotas(&self, id: TenantId, quotas: TenantQuotas) -> Result<()> {
        match self.tenants.write().get_mut(&id) {
            Some(meta) => {
                meta.quotas = quotas;
                Ok(())
            }
            None => Err(Error::invalid(format!("unknown tenant {id}"))),
        }
    }

    /// Tenant catalog lookup.
    pub fn tenant(&self, id: TenantId) -> Option<TenantMeta> {
        self.tenants.read().get(&id).cloned()
    }

    /// All registered tenants.
    pub fn tenants(&self) -> Vec<TenantMeta> {
        let mut v: Vec<TenantMeta> = self.tenants.read().values().cloned().collect();
        v.sort_by_key(|t| t.id);
        v
    }

    /// Register a DN node.
    pub fn register_dn(&self, dn: NodeId) {
        let mut dns = self.dns.write();
        if !dns.contains(&dn) {
            dns.push(dn);
        }
    }

    /// All registered DNs.
    pub fn dns(&self) -> Vec<NodeId> {
        self.dns.read().clone()
    }

    /// Allocate a fresh logical table id.
    pub fn next_table_id(&self) -> TableId {
        TableId(self.table_ids.next_id())
    }

    /// Install a table schema and place its shards. Members of a table
    /// group land shard-for-shard on the same DNs ("the shards in a
    /// partition group are always located on the same DN", §II-B); other
    /// tables round-robin across DNs.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let name = schema.name.clone();
        if self.tables.read().contains_key(&name) {
            return Err(Error::Schema { message: format!("table {name} already exists") });
        }
        let dns = self.dns();
        if dns.is_empty() {
            return Err(Error::Schema { message: "no DN registered".into() });
        }
        let shards = schema.partition.shard_count();
        // Table-group-aware placement.
        let anchor_placement: Option<Vec<NodeId>> = schema.table_group.as_ref().and_then(|g| {
            let anchors = self.group_anchor.read();
            anchors.get(g).map(|&anchor| {
                let placement = self.placement.read();
                (0..shards)
                    .map(|s| placement.get(&(anchor, s)).copied().unwrap_or(dns[0]))
                    .collect()
            })
        });
        {
            let mut placement = self.placement.write();
            for s in 0..shards {
                let dn = match &anchor_placement {
                    Some(v) => v[s as usize],
                    None => dns[(schema.id.raw() as usize + s as usize) % dns.len()],
                };
                placement.insert((schema.id, s), dn);
            }
        }
        if let Some(g) = &schema.table_group {
            self.group_anchor.write().entry(g.clone()).or_insert(schema.id);
        }
        if schema.implicit_pk {
            self.sequences.write().insert(schema.id, Arc::new(IdGenerator::new()));
        }
        self.stats.write().set(
            &name,
            TableStats { rows: 0, avg_row_bytes: 100, ..Default::default() },
        );
        self.tables.write().insert(name, schema);
        Ok(())
    }

    /// Look up a schema by name.
    pub fn table(&self, name: &str) -> Result<TableSchema> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or(Error::UnknownTable { name: name.into() })
    }

    /// Replace a schema (DDL like CREATE INDEX).
    pub fn update_table(&self, schema: TableSchema) {
        self.tables.write().insert(schema.name.clone(), schema);
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// DN hosting a shard.
    pub fn shard_dn(&self, table: TableId, shard: u32) -> Result<NodeId> {
        self.placement
            .read()
            .get(&(table, shard))
            .copied()
            .ok_or(Error::Schema { message: format!("unplaced shard {table}/{shard}") })
    }

    /// Move a shard to another DN (anti-hotspot rebalancing).
    pub fn move_shard(&self, table: TableId, shard: u32, to: NodeId) {
        self.placement.write().insert((table, shard), to);
    }

    /// Next implicit-PK value for a table.
    pub fn next_sequence(&self, table: TableId) -> Result<i64> {
        self.sequences
            .read()
            .get(&table)
            .map(|g| g.next_id() as i64)
            .ok_or(Error::Schema { message: format!("{table} has no sequence") })
    }

    /// Current statistics snapshot.
    pub fn statistics(&self) -> Statistics {
        self.stats.read().clone()
    }

    /// Bump a table's row-count estimate by `delta` rows.
    pub fn record_rows(&self, name: &str, delta: i64) {
        let mut stats = self.stats.write();
        let mut ts = stats.get(name);
        ts.rows = (ts.rows as i64 + delta).max(0) as u64;
        stats.set(name, ts);
    }

    /// Mark a table as covered by a column index (feeds the optimizer's
    /// row/column choice, §VI-E).
    pub fn set_column_index(&self, name: &str, enabled: bool) {
        let mut stats = self.stats.write();
        let mut ts = stats.get(name);
        ts.has_column_index = enabled;
        stats.set(name, ts);
    }

    /// Record a secondary index on `columns` in the statistics (used by the
    /// advisor to skip already-indexed columns).
    pub fn record_index(&self, name: &str, columns: &[String]) {
        let mut stats = self.stats.write();
        let mut ts = stats.get(name);
        for c in columns {
            ts.indexed_columns.insert(c.clone());
        }
        stats.set(name, ts);
    }

    /// Shard-level load distribution of a table (row counts supplied by the
    /// caller); used by the migration planner and anti-hotspot checks.
    pub fn plan_rebalance(
        &self,
        table: TableId,
        shard_loads: &[(u32, u64)],
        target_dns: &[NodeId],
    ) -> Vec<(u32, NodeId)> {
        // Greedy: biggest shards to least-loaded target.
        let mut loads: HashMap<NodeId, u64> =
            target_dns.iter().map(|&d| (d, 0)).collect();
        let mut shards: Vec<(u32, u64)> = shard_loads.to_vec();
        shards.sort_by_key(|s| std::cmp::Reverse(s.1));
        let mut plan = Vec::new();
        for (shard, load) in shards {
            let (&dn, _) = loads.iter().min_by_key(|(_, &l)| l).expect("targets");
            loads.insert(dn, loads[&dn] + load);
            let current = self.shard_dn(table, shard).ok();
            if current != Some(dn) {
                plan.push((shard, dn));
            }
        }
        plan
    }

    /// Encode the full row key a SQL value-tuple produces (for routing).
    pub fn route_row(&self, schema: &TableSchema, row: &Row) -> Result<(u32, NodeId)> {
        let shard = schema.shard_of(row)?;
        Ok((shard, self.shard_dn(schema.id, shard)?))
    }

    /// Route by explicit partition-key values.
    pub fn route_key(&self, schema: &TableSchema, values: &[Value]) -> Result<(u32, NodeId)> {
        let shard = schema.shard_of_key(values);
        Ok((shard, self.shard_dn(schema.id, shard)?))
    }

    /// The routing-epoch table. Coordinators install it as their
    /// [`polardbx_txn::RoutingFence`]; the re-home executor freezes/bumps
    /// through it.
    pub fn epochs(&self) -> &Arc<EpochMap> {
        &self.epochs
    }

    /// Route a row and capture the shard's routing epoch for commit-time
    /// validation. Bounces retryably while the shard is frozen for a
    /// cutover — the caller retries and lands on the new home.
    pub fn route_row_fenced(
        &self,
        schema: &TableSchema,
        row: &Row,
    ) -> Result<(u32, NodeId, u64)> {
        let (shard, dn) = self.route_row(schema, row)?;
        let (dn, epoch) = self.fence_shard(schema.id, shard, dn)?;
        Ok((shard, dn, epoch))
    }

    /// [`Gms::route_row_fenced`] by explicit partition-key values.
    pub fn route_key_fenced(
        &self,
        schema: &TableSchema,
        values: &[Value],
    ) -> Result<(u32, NodeId, u64)> {
        let (shard, dn) = self.route_key(schema, values)?;
        let (dn, epoch) = self.fence_shard(schema.id, shard, dn)?;
        Ok((shard, dn, epoch))
    }

    /// [`Gms::shard_dn`] with routing-epoch capture, for callers that
    /// already know the shard (UPDATE/DELETE re-route their matched rows'
    /// shards fenced so each write pins an epoch).
    pub fn shard_dn_fenced(&self, table: TableId, shard: u32) -> Result<(NodeId, u64)> {
        let dn = self.shard_dn(table, shard)?;
        self.fence_shard(table, shard, dn)
    }

    fn fence_shard(&self, table: TableId, shard: u32, dn: NodeId) -> Result<(NodeId, u64)> {
        let stid = shard_table_id(table, shard);
        // Read order matters: epoch, frozen?, home, epoch-unchanged?. A
        // cutover bumps the epoch at freeze time and stays frozen until
        // after the home has moved, so any cutover overlapping this
        // sequence either trips the frozen check or changes the epoch
        // between the two reads — a torn (old home, new epoch) pair can
        // never be returned, only a retryable bounce.
        let epoch = self.epochs.epoch_of(stid);
        if self.epochs.is_frozen(stid) {
            return Err(Error::Throttled { rule: format!("rehome-freeze:{stid}") });
        }
        let dn = self.shard_dn(table, shard).unwrap_or(dn);
        if self.epochs.epoch_of(stid) != epoch {
            return Err(Error::Throttled { rule: format!("routing-epoch-moved:{stid}") });
        }
        Ok((dn, epoch))
    }
}

impl polardbx_sql::plan::SchemaProvider for Gms {
    fn table_columns(&self, table: &str) -> Result<Vec<String>> {
        let schema = self.table(table)?;
        Ok(schema
            .columns
            .iter()
            .take(schema.visible_arity())
            .map(|c| c.name.clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{ColumnDef, DataType};

    fn schema(gms: &Gms, name: &str, shards: u32, group: Option<&str>) -> TableSchema {
        let id = gms.next_table_id();
        let mut s = TableSchema::hash_on_pk(
            id,
            name,
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("v", DataType::Str),
            ],
            vec!["id".into()],
            shards,
        )
        .unwrap();
        if let Some(g) = group {
            s = s.in_table_group(g);
        }
        s
    }

    fn gms_with_dns(n: u64) -> Arc<Gms> {
        let gms = Gms::new();
        for i in 1..=n {
            gms.register_dn(NodeId(i));
        }
        gms
    }

    #[test]
    fn create_and_lookup() {
        let gms = gms_with_dns(2);
        gms.create_table(schema(&gms, "t1", 4, None)).unwrap();
        let t = gms.table("t1").unwrap();
        assert_eq!(t.partition.shard_count(), 4);
        assert!(gms.create_table(schema(&gms, "t1", 4, None)).is_err(), "duplicate");
        assert!(gms.table("nope").is_err());
    }

    #[test]
    fn shards_spread_across_dns() {
        let gms = gms_with_dns(3);
        gms.create_table(schema(&gms, "t1", 6, None)).unwrap();
        let t = gms.table("t1").unwrap();
        let mut dns: Vec<NodeId> =
            (0..6).map(|s| gms.shard_dn(t.id, s).unwrap()).collect();
        dns.sort();
        dns.dedup();
        assert_eq!(dns.len(), 3, "all DNs used");
    }

    #[test]
    fn table_group_members_colocate() {
        let gms = gms_with_dns(3);
        gms.create_table(schema(&gms, "orders", 6, Some("g1"))).unwrap();
        gms.create_table(schema(&gms, "lineitem", 6, Some("g1"))).unwrap();
        let a = gms.table("orders").unwrap();
        let b = gms.table("lineitem").unwrap();
        for s in 0..6 {
            assert_eq!(
                gms.shard_dn(a.id, s).unwrap(),
                gms.shard_dn(b.id, s).unwrap(),
                "partition group must colocate shard {s}"
            );
        }
    }

    #[test]
    fn routing_is_stable() {
        let gms = gms_with_dns(2);
        gms.create_table(schema(&gms, "t", 8, None)).unwrap();
        let t = gms.table("t").unwrap();
        let row = Row::new(vec![Value::Int(42), Value::str("x")]);
        let (s1, d1) = gms.route_row(&t, &row).unwrap();
        let (s2, d2) = gms.route_key(&t, &[Value::Int(42)]).unwrap();
        assert_eq!((s1, d1), (s2, d2));
    }

    #[test]
    fn fenced_routes_bounce_while_frozen() {
        let gms = gms_with_dns(2);
        gms.create_table(schema(&gms, "t", 2, None)).unwrap();
        let t = gms.table("t").unwrap();
        let row = Row::new(vec![Value::Int(1), Value::str("x")]);
        let (shard, _, e1) = gms.route_row_fenced(&t, &row).unwrap();
        let stid = shard_table_id(t.id, shard);
        gms.epochs().freeze(stid);
        assert!(gms.route_row_fenced(&t, &row).unwrap_err().is_retryable());
        assert!(gms.shard_dn_fenced(t.id, shard).unwrap_err().is_retryable());
        gms.epochs().unfreeze(stid);
        let (_, e2) = gms.shard_dn_fenced(t.id, shard).unwrap();
        assert!(e2 > e1, "freeze must have bumped the epoch ({e1} -> {e2})");
    }

    #[test]
    fn sequences_for_implicit_pk() {
        let gms = gms_with_dns(1);
        let id = gms.next_table_id();
        let s = TableSchema::hash_on_pk(
            id,
            "nopk",
            vec![ColumnDef::new("v", DataType::Str)],
            vec![],
            2,
        )
        .unwrap();
        gms.create_table(s).unwrap();
        let a = gms.next_sequence(id).unwrap();
        let b = gms.next_sequence(id).unwrap();
        assert!(b > a);
    }

    #[test]
    fn stats_track_row_counts_and_indexes() {
        let gms = gms_with_dns(1);
        gms.create_table(schema(&gms, "t", 2, None)).unwrap();
        gms.record_rows("t", 500);
        gms.record_rows("t", -100);
        assert_eq!(gms.statistics().get("t").rows, 400);
        gms.set_column_index("t", true);
        assert!(gms.statistics().get("t").has_column_index);
        gms.record_index("t", &["v".into()]);
        assert!(gms.statistics().get("t").indexed_columns.contains("v"));
    }

    #[test]
    fn rebalance_plan_balances() {
        let gms = gms_with_dns(2);
        gms.create_table(schema(&gms, "t", 4, None)).unwrap();
        let t = gms.table("t").unwrap();
        // All load on two shards; plan across two DNs must split them.
        let plan = gms.plan_rebalance(
            t.id,
            &[(0, 1000), (1, 1000), (2, 10), (3, 10)],
            &[NodeId(1), NodeId(2)],
        );
        // Apply and verify both heavy shards land on different DNs.
        for (shard, dn) in &plan {
            gms.move_shard(t.id, *shard, *dn);
        }
        assert_ne!(
            gms.shard_dn(t.id, 0).unwrap(),
            gms.shard_dn(t.id, 1).unwrap(),
            "heavy shards must separate"
        );
    }

    #[test]
    fn schema_provider_hides_implicit_pk() {
        use polardbx_sql::plan::SchemaProvider;
        let gms = gms_with_dns(1);
        let id = gms.next_table_id();
        let s = TableSchema::hash_on_pk(
            id,
            "nopk",
            vec![ColumnDef::new("v", DataType::Str)],
            vec![],
            1,
        )
        .unwrap();
        gms.create_table(s).unwrap();
        assert_eq!(gms.table_columns("nopk").unwrap(), vec!["v".to_string()]);
    }

    #[test]
    fn tenant_catalog_register_lookup_update() {
        let gms = gms_with_dns(1);
        let a = gms.register_tenant("alpha", TenantQuotas::rate_limited(100.0, 10.0));
        let b = gms.register_tenant("beta", TenantQuotas::unlimited());
        assert_ne!(a, b);
        let meta = gms.tenant(a).unwrap();
        assert_eq!(meta.name, "alpha");
        assert_eq!(meta.quotas.rate_per_sec, 100.0);
        assert!(gms.tenant(TenantId(999)).is_none());
        gms.set_tenant_quotas(a, TenantQuotas::rate_limited(7.0, 2.0)).unwrap();
        assert_eq!(gms.tenant(a).unwrap().quotas.rate_per_sec, 7.0);
        assert!(gms.set_tenant_quotas(TenantId(999), TenantQuotas::unlimited()).is_err());
        let names: Vec<String> = gms.tenants().into_iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["alpha".to_string(), "beta".to_string()]);
    }

    #[test]
    fn shard_table_ids_unique() {
        let a = shard_table_id(TableId(1), 0);
        let b = shard_table_id(TableId(1), 1);
        let c = shard_table_id(TableId(2), 0);
        assert!(a != b && b != c && a != c);
    }
}
