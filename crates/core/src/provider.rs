//! The executor's view of the cluster: partitioned scans over DN shards.

use std::collections::HashMap;
use std::sync::Arc;

use polardbx_columnar::{ColumnIndex, ColumnSnapshot};
use polardbx_common::{Result, Row};
use polardbx_executor::TableProvider;
use polardbx_storage::StorageEngine;

use crate::gms::{shard_table_id, Gms};

/// A snapshot-consistent provider over a set of DN engines (the RW engines
/// for in-place execution, or RO-replica engines when AP traffic is
/// rerouted, §VI-A). One provider serves one query.
pub struct ClusterProvider {
    gms: Arc<Gms>,
    engines: HashMap<polardbx_common::NodeId, Arc<StorageEngine>>,
    snapshot_ts: u64,
    column_indexes: HashMap<String, Arc<ColumnIndex>>,
}

impl ClusterProvider {
    /// Build a provider reading `engines` at `snapshot_ts`.
    pub fn new(
        gms: Arc<Gms>,
        engines: HashMap<polardbx_common::NodeId, Arc<StorageEngine>>,
        snapshot_ts: u64,
    ) -> ClusterProvider {
        ClusterProvider { gms, engines, snapshot_ts, column_indexes: HashMap::new() }
    }

    /// Attach column indexes (table name → index) for the columnar path.
    pub fn with_column_indexes(
        mut self,
        indexes: HashMap<String, Arc<ColumnIndex>>,
    ) -> ClusterProvider {
        self.column_indexes = indexes;
        self
    }

    /// The provider's snapshot timestamp.
    pub fn snapshot_ts(&self) -> u64 {
        self.snapshot_ts
    }
}

impl TableProvider for ClusterProvider {
    fn partitions(&self, table: &str) -> usize {
        self.gms
            .table(table)
            .map(|s| s.partition.shard_count() as usize)
            .unwrap_or(0)
    }

    fn scan_partition(&self, table: &str, partition: usize) -> Result<Vec<Row>> {
        let schema = self.gms.table(table)?;
        let shard = partition as u32;
        let dn = self.gms.shard_dn(schema.id, shard)?;
        let engine = self
            .engines
            .get(&dn)
            .ok_or_else(|| polardbx_common::Error::execution(format!("no engine for {dn}")))?;
        let stid = shard_table_id(schema.id, shard);
        let rows = engine.scan_table(stid, self.snapshot_ts)?;
        // Hide the implicit primary key from SQL-visible output.
        let visible = schema.visible_arity();
        Ok(rows
            .into_iter()
            .map(|(_, row)| {
                if row.arity() > visible {
                    Row::new(row.into_values().into_iter().take(visible).collect())
                } else {
                    row
                }
            })
            .collect())
    }

    fn columnar(&self, table: &str) -> Option<ColumnSnapshot> {
        let index = self.column_indexes.get(table)?;
        // §VI-E: with delayed maintenance "AP queries run on the version of
        // snapshot subject to the column index".
        let ts = self.snapshot_ts.min(index.version());
        Some(index.snapshot(ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{ColumnDef, DataType, NodeId, TableSchema, TenantId, TrxId, Value};
    use polardbx_storage::WriteOp;

    fn setup() -> (Arc<Gms>, HashMap<NodeId, Arc<StorageEngine>>, TableSchema) {
        let gms = Gms::new();
        gms.register_dn(NodeId(1));
        gms.register_dn(NodeId(2));
        let id = gms.next_table_id();
        let schema = TableSchema::hash_on_pk(
            id,
            "t",
            vec![
                ColumnDef::new("id", DataType::Int).not_null(),
                ColumnDef::new("v", DataType::Int),
            ],
            vec!["id".into()],
            4,
        )
        .unwrap();
        gms.create_table(schema.clone()).unwrap();
        let mut engines = HashMap::new();
        for n in [NodeId(1), NodeId(2)] {
            engines.insert(n, StorageEngine::in_memory());
        }
        // Register every shard table on its placed engine and insert one row
        // per shard, committed at ts 10.
        for shard in 0..4 {
            let dn = gms.shard_dn(schema.id, shard).unwrap();
            let stid = shard_table_id(schema.id, shard);
            let engine = &engines[&dn];
            engine.create_table(stid, TenantId(1));
            let trx = TrxId(100 + shard as u64);
            engine.begin(trx, 0);
            engine
                .write(
                    trx,
                    stid,
                    polardbx_common::Key::encode(&[Value::Int(shard as i64)]),
                    WriteOp::Insert(polardbx_common::Row::new(vec![
                        Value::Int(shard as i64),
                        Value::Int(7),
                    ])),
                )
                .unwrap();
            engine.commit(trx, 10).unwrap();
        }
        (gms, engines, schema)
    }

    #[test]
    fn partitions_follow_catalog() {
        let (gms, engines, _schema) = setup();
        let p = ClusterProvider::new(Arc::clone(&gms), engines, 100);
        assert_eq!(polardbx_executor::TableProvider::partitions(&p, "t"), 4);
        assert_eq!(polardbx_executor::TableProvider::partitions(&p, "nope"), 0);
    }

    #[test]
    fn scan_respects_snapshot() {
        let (gms, engines, _schema) = setup();
        let fresh = ClusterProvider::new(Arc::clone(&gms), engines.clone(), 100);
        let stale = ClusterProvider::new(Arc::clone(&gms), engines, 5);
        use polardbx_executor::TableProvider;
        let all: usize =
            (0..4).map(|s| fresh.scan_partition("t", s).unwrap().len()).sum();
        assert_eq!(all, 4);
        let none: usize =
            (0..4).map(|s| stale.scan_partition("t", s).unwrap().len()).sum();
        assert_eq!(none, 0, "snapshot before commits sees nothing");
    }

    #[test]
    fn columnar_snapshot_lags_to_index_version() {
        use polardbx_columnar::ColumnIndex;
        use polardbx_executor::TableProvider;
        let (gms, engines, _schema) = setup();
        let index = ColumnIndex::new(vec![DataType::Int, DataType::Int]);
        index
            .apply_put(
                TrxId(1),
                50,
                polardbx_common::Key::encode(&[Value::Int(1)]),
                &polardbx_common::Row::new(vec![Value::Int(1), Value::Int(1)]),
            )
            .unwrap();
        let mut indexes = HashMap::new();
        indexes.insert("t".to_string(), index);
        // Snapshot far ahead of the index version clamps down to it (§VI-E:
        // delayed maintenance → AP runs at the index's version).
        let p = ClusterProvider::new(gms, engines, 1_000_000).with_column_indexes(indexes);
        let snap = p.columnar("t").unwrap();
        assert_eq!(snap.ts, 50);
        assert_eq!(snap.len(), 1);
        assert!(p.columnar("other").is_none());
    }
}
