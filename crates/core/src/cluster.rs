//! The `PolarDbx` facade: build a cluster, connect, execute SQL.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use polardbx_columnar::ColumnIndex;
use polardbx_common::{
    ColumnDef, DcId, Error, IdGenerator, IndexDef, IndexKind, Key, NodeId, PartitionSpec,
    Result, Row, TableSchema, TenantId, Value,
};
use polardbx_executor::memory::Reservation;
use polardbx_executor::{
    execute_plan, ExecCtx, JobClass, MemoryManager, MppExecutor, TableProvider,
    WorkloadManager,
};
use polardbx_executor::scheduler::{run_with_demotion, TickState};
use polardbx_hlc::Hlc;
use polardbx_optimizer::{classify_with_threshold, optimize_with_stats, WorkloadClass};
use polardbx_simnet::{Handler, LatencyMatrix, SimNet};
use polardbx_mt::{RehomeConfig, RehomeExecutor};
use polardbx_placement::{plan as placement_plan, CoAccessSketch, PlannerConfig};
use polardbx_sql::ast::{self, IndexPlacement, Statement};
use polardbx_sql::expr::Expr;
use polardbx_storage::RwNode;
use polardbx_txn::{Coordinator, DnService, TxnMetrics, TxnMsg, WireWriteOp};

use crate::gms::{shard_table_id, Gms};
use crate::provider::ClusterProvider;
use crate::traffic::TrafficControl;

/// Cluster shape.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of datacenters.
    pub dcs: u32,
    /// CN servers per datacenter.
    pub cns_per_dc: u32,
    /// Total DN instances (assigned to DCs round-robin).
    pub dns: u32,
    /// RO replicas per DN.
    pub ros_per_dn: u32,
    /// Default shard count for `CREATE TABLE` without `PARTITION BY`.
    pub default_shards: u32,
    /// Network latency model.
    pub latency: LatencyMatrix,
    /// MPP degree for AP queries (tasks across the CN fleet).
    pub mpp_workers: usize,
    /// Estimated-cost threshold above which a query classifies AP and runs
    /// on the vectorized MPP path. Downsized harnesses lower it so their
    /// analytic mix still exercises AP routing at bench scale.
    pub ap_threshold: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            dcs: 1,
            cns_per_dc: 2,
            dns: 2,
            ros_per_dn: 0,
            default_shards: 8,
            latency: LatencyMatrix::zero(),
            mpp_workers: 4,
            ap_threshold: polardbx_optimizer::DEFAULT_AP_THRESHOLD,
        }
    }
}

/// Adaptive-placer knobs (see [`PolarDbx::start_placer`]).
#[derive(Debug, Clone, Copy)]
pub struct PlacerConfig {
    /// How often the placer snapshots the sketch and plans.
    pub interval: Duration,
    /// Affinity-clustering knobs.
    pub planner: PlannerConfig,
    /// Cutover throttle (min gap between moves, per-pass cap).
    pub rehome: RehomeConfig,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            interval: Duration::from_millis(200),
            planner: PlannerConfig::default(),
            rehome: RehomeConfig::default(),
        }
    }
}

/// One DN instance: a PolarDB (RW node + optional RO replicas) plus its
/// transaction participant service.
pub struct Dn {
    /// DN node id on the fabric.
    pub id: NodeId,
    /// Datacenter.
    pub dc: DcId,
    /// The PolarDB instance (engine + RO replication).
    pub rw: Arc<RwNode>,
    /// The participant service.
    pub service: Arc<DnService>,
}

struct Inner {
    config: ClusterConfig,
    gms: Arc<Gms>,
    /// Owning handle keeps the fabric's delivery threads alive.
    #[allow(dead_code)]
    net: Arc<SimNet<TxnMsg>>,
    cns: Vec<Arc<CnNode>>,
    dns: HashMap<NodeId, Arc<Dn>>,
    /// Logical-table-name → hidden GSI table names.
    gsi_tables: RwLock<HashMap<String, Vec<String>>>,
    column_indexes: RwLock<HashMap<String, Arc<ColumnIndex>>>,
    /// CN-side workload pools (shared fleet-wide: the host has one CPU
    /// domain; per-CN pools would oversubscribe it meaninglessly).
    workload: Arc<WorkloadManager>,
    /// TP/AP memory regions with preemption (§VI-D).
    memory: Arc<MemoryManager>,
    traffic: TrafficControl,
    /// Route AP queries to RO replicas when available (§VI-A).
    htap_ro: AtomicBool,
    shipper_stop: Arc<AtomicBool>,
    /// Cluster-wide transaction counters (shared by every CN coordinator,
    /// so 1PC/2PC fractions aggregate across the fleet).
    txn_metrics: Arc<TxnMetrics>,
    /// Commit-time co-access sketch feeding the adaptive placer.
    sketch: Arc<CoAccessSketch>,
    placer_stop: Arc<AtomicBool>,
}

/// A compute node: coordinator + clock.
pub struct CnNode {
    /// Node id on the fabric.
    pub id: NodeId,
    /// Datacenter.
    pub dc: DcId,
    /// The transaction coordinator.
    pub coordinator: Coordinator,
}

struct CnStub;
impl Handler<TxnMsg> for CnStub {
    fn handle(&self, _from: NodeId, m: TxnMsg) -> TxnMsg {
        m
    }
}

/// The cluster handle.
#[derive(Clone)]
pub struct PolarDbx {
    inner: Arc<Inner>,
}

impl PolarDbx {
    /// Build a cluster.
    pub fn build(config: ClusterConfig) -> Result<PolarDbx> {
        assert!(config.dcs >= 1 && config.dns >= 1 && config.cns_per_dc >= 1);
        let net = SimNet::new(config.latency.clone());
        let gms = Gms::new();
        let trx_ids = Arc::new(IdGenerator::new());

        let mut dns = HashMap::new();
        for i in 0..config.dns {
            let id = NodeId(1000 + i as u64);
            let dc = DcId(1 + (i % config.dcs) as u64);
            let rw = RwNode::new(id);
            for _ in 0..config.ros_per_dn {
                rw.add_ro();
            }
            let service = DnService::new(id, Arc::clone(&rw.engine), Hlc::new());
            net.register(id, dc, service.clone() as Arc<dyn Handler<TxnMsg>>);
            gms.register_dn(id);
            dns.insert(id, Arc::new(Dn { id, dc, rw, service }));
        }

        let txn_metrics = Arc::new(TxnMetrics::new());
        let sketch = Arc::new(CoAccessSketch::new());
        let mut cns = Vec::new();
        for dc_i in 0..config.dcs {
            for c in 0..config.cns_per_dc {
                let id = NodeId(1 + (dc_i * config.cns_per_dc + c) as u64);
                let dc = DcId(1 + dc_i as u64);
                net.register(id, dc, Arc::new(CnStub));
                let coordinator =
                    Coordinator::new(id, Arc::clone(&net), Hlc::new(), Arc::clone(&trx_ids))
                        .with_metrics(Arc::clone(&txn_metrics))
                        .with_fence(Arc::clone(gms.epochs()) as _)
                        .with_observer(Arc::clone(&sketch) as _);
                cns.push(Arc::new(CnNode { id, dc, coordinator }));
            }
        }

        let shipper_stop = Arc::new(AtomicBool::new(false));
        let inner = Arc::new(Inner {
            config,
            gms,
            net,
            cns,
            dns,
            gsi_tables: RwLock::new(HashMap::new()),
            column_indexes: RwLock::new(HashMap::new()),
            workload: WorkloadManager::with_defaults(),
            memory: MemoryManager::with_defaults(),
            traffic: TrafficControl::new(),
            htap_ro: AtomicBool::new(true),
            shipper_stop: Arc::clone(&shipper_stop),
            txn_metrics,
            sketch,
            placer_stop: Arc::new(AtomicBool::new(false)),
        });
        // Background shipper: RW → RO redo + column-index capture.
        {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("polardbx-shipper".into())
                .spawn(move || {
                    while !inner.shipper_stop.load(Ordering::Relaxed) {
                        for dn in inner.dns.values() {
                            dn.rw.ship();
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                })
                .expect("spawn shipper");
        }
        Ok(PolarDbx { inner })
    }

    /// Build with defaults.
    pub fn quickstart() -> Result<PolarDbx> {
        PolarDbx::build(ClusterConfig::default())
    }

    /// Connect a session. The load balancer is locality-aware: it picks a
    /// CN in the client's datacenter, spilling to other DCs only when the
    /// local ones are absent (§II-A).
    pub fn connect(&self, client_dc: DcId) -> Session {
        let cn = self
            .inner
            .cns
            .iter()
            .find(|c| c.dc == client_dc)
            .or_else(|| self.inner.cns.first())
            .expect("cluster has CNs")
            .clone();
        Session { inner: Arc::clone(&self.inner), cn }
    }

    /// Connect to a specific CN by fleet index (wraps around). The front
    /// door uses this to spread wire connections round-robin across the CN
    /// fleet instead of pinning every client to one coordinator.
    pub fn connect_nth(&self, n: usize) -> Session {
        let cns = &self.inner.cns;
        let cn = Arc::clone(&cns[n % cns.len()]);
        Session { inner: Arc::clone(&self.inner), cn }
    }

    /// Register a front-door tenant (name + admission quotas) in the GMS
    /// tenant catalog; returns the id wire clients handshake with.
    pub fn register_tenant(
        &self,
        name: &str,
        quotas: polardbx_common::TenantQuotas,
    ) -> TenantId {
        self.inner.gms.register_tenant(name, quotas)
    }

    /// The metadata service.
    pub fn gms(&self) -> &Arc<Gms> {
        &self.inner.gms
    }

    /// DN handles (benchmarks and tests).
    pub fn dns(&self) -> Vec<Arc<Dn>> {
        self.inner.dns.values().cloned().collect()
    }

    /// The shared CN workload manager.
    pub fn workload(&self) -> &Arc<WorkloadManager> {
        &self.inner.workload
    }

    /// The traffic controller.
    pub fn traffic(&self) -> &TrafficControl {
        &self.inner.traffic
    }

    /// The CN memory manager (TP/AP regions, §VI-D).
    pub fn memory(&self) -> &Arc<MemoryManager> {
        &self.inner.memory
    }

    /// Toggle routing of AP queries to RO replicas.
    pub fn set_htap_ro(&self, enabled: bool) {
        self.inner.htap_ro.store(enabled, Ordering::Relaxed);
    }

    /// Add `n` RO replicas to every DN ("add RO nodes to scale read
    /// throughput in minutes" — here instantly, data is shared).
    pub fn add_ros(&self, n: u32) {
        for dn in self.inner.dns.values() {
            for _ in 0..n {
                dn.rw.add_ro();
            }
        }
    }

    /// Ship pending redo to all RO replicas synchronously (tests and
    /// admin). Waits briefly first so asynchronously posted 2PC phase-two
    /// commit records land in the DN logs before shipping.
    pub fn ship_now(&self) {
        for _ in 0..10 {
            if self.inner.dns.values().all(|dn| !dn.rw.engine.has_active_txns()) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(2));
        for dn in self.inner.dns.values() {
            dn.rw.ship();
        }
    }

    /// Build an in-memory column index over `table` from its current
    /// contents, and keep it maintained from future commits (§VI-E).
    pub fn enable_column_index(&self, table: &str) -> Result<()> {
        let schema = self.inner.gms.table(table)?;
        let types: Vec<_> = schema
            .columns
            .iter()
            .take(schema.visible_arity())
            .map(|c| c.ty)
            .collect();
        let index = ColumnIndex::new(types);
        // Initial build: scan every shard at "now".
        let session = self.connect(DcId(1));
        let ts = session.cn.coordinator.clock().now().raw();
        for shard in 0..schema.partition.shard_count() {
            let dn_id = self.inner.gms.shard_dn(schema.id, shard)?;
            let dn = &self.inner.dns[&dn_id];
            let stid = shard_table_id(schema.id, shard);
            for (key, row) in dn.rw.engine.scan_table(stid, ts)? {
                let visible =
                    Row::new(row.into_values().into_iter().take(schema.visible_arity()).collect());
                index.apply_put(polardbx_common::TrxId(0), ts, key, &visible)?;
            }
        }
        self.inner.column_indexes.write().insert(table.to_string(), Arc::clone(&index));
        self.inner.gms.set_column_index(table, true);
        Ok(())
    }

    /// Stop background threads (drop hygiene for long test suites).
    pub fn shutdown(&self) {
        self.inner.shipper_stop.store(true, Ordering::Relaxed);
        self.inner.placer_stop.store(true, Ordering::Relaxed);
    }

    /// Cluster-wide transaction counters (shared by all CN coordinators).
    pub fn txn_metrics(&self) -> &Arc<TxnMetrics> {
        &self.inner.txn_metrics
    }

    /// The commit-time co-access sketch (benchmarks inspect/reset it
    /// between phases).
    pub fn sketch(&self) -> &Arc<CoAccessSketch> {
        &self.inner.sketch
    }

    /// Move one shard of `table` to another DN — the anti-hotspot
    /// rebalancing primitive of §VIII ("we can migrate shards to achieve a
    /// balanced state between DNs"). Like tenant transfer, the shard's
    /// store moves by reference over shared storage: zero rows copied.
    pub fn move_shard(&self, table: &str, shard: u32, dest: NodeId) -> Result<()> {
        let schema = self.inner.gms.table(table)?;
        let src_id = self.inner.gms.shard_dn(schema.id, shard)?;
        if src_id == dest {
            return Ok(());
        }
        let src = self
            .inner
            .dns
            .get(&src_id)
            .ok_or_else(|| Error::invalid("unknown source DN"))?;
        let dst = self
            .inner
            .dns
            .get(&dest)
            .ok_or_else(|| Error::invalid("unknown destination DN"))?;
        // Drain the source briefly (engine-wide, like tenant transfer).
        let deadline = polardbx_common::time::mono_now() + Duration::from_secs(2);
        while src.rw.engine.has_active_txns() {
            if polardbx_common::time::mono_now() > deadline {
                return Err(Error::Timeout { what: "draining source DN".into() });
            }
            std::thread::yield_now();
        }
        let stid = shard_table_id(schema.id, shard);
        let tenant = TenantId(schema.id.raw());
        src.rw.engine.pool.flush_tenant(tenant, None)?;
        let store = src
            .rw
            .detach_table(stid)
            .ok_or_else(|| Error::invalid("shard store missing on source"))?;
        dst.rw.attach_table(stid, store, tenant);
        self.inner.gms.move_shard(schema.id, shard, dest);
        Ok(())
    }

    /// Re-home one shard under **live traffic** — the adaptive-placement
    /// cutover. Unlike [`PolarDbx::move_shard`] (which drains the whole
    /// source engine and fails under continuous load), this freezes only
    /// the one shard's routing epoch:
    ///
    /// 1. freeze + epoch bump — new routes and stale-pinned commits bounce
    ///    with a retryable error,
    /// 2. drain the shard's commit gate (in-flight fenced commits finish),
    /// 3. drain the source engine's in-flight write sets on the shard —
    ///    phase-two Commit messages are *posted* asynchronously, so a
    ///    committed write set can outlive the commit gate; detaching
    ///    before it applies would strand the write,
    /// 4. flush + detach the shard store, attach at the destination (by
    ///    reference over shared storage — zero rows copied), raise the
    ///    destination clock past the source so moved versions stay in the
    ///    destination's timestamp past,
    /// 5. update placement, unfreeze.
    ///
    /// Returns how long the shard's traffic was paused.
    pub fn rehome_shard(&self, table: &str, shard: u32, dest: NodeId) -> Result<Duration> {
        let schema = self.inner.gms.table(table)?;
        self.rehome_shard_by_id(schema.id, shard, dest)
    }

    /// [`PolarDbx::rehome_shard`] by logical table id (the placer works on
    /// ids, not names).
    pub fn rehome_shard_by_id(
        &self,
        table: polardbx_common::TableId,
        shard: u32,
        dest: NodeId,
    ) -> Result<Duration> {
        // lint:allow(fence_completeness, migration source lookup, not DML routing: the cutover freezes the epoch before touching data, and a racing re-home serializes behind the same freeze)
        let src_id = self.inner.gms.shard_dn(table, shard)?;
        if src_id == dest {
            return Ok(Duration::ZERO);
        }
        let src = self
            .inner
            .dns
            .get(&src_id)
            .ok_or_else(|| Error::invalid("unknown source DN"))?;
        let dst = self
            .inner
            .dns
            .get(&dest)
            .ok_or_else(|| Error::invalid("unknown destination DN"))?;
        let stid = shard_table_id(table, shard);
        let epochs = self.inner.gms.epochs();
        let t0 = polardbx_common::time::mono_now();
        epochs.freeze(stid);
        // Engine-level write freeze on top of the routing freeze: a write
        // already past routing when the epoch froze would otherwise install
        // an intent between the drain below and the detach, stranding it
        // inside the moved store.
        src.rw.engine.freeze_writes(stid);
        // The cutover body runs in a closure so every exit — success or any
        // error, including `?` propagation — flows through the single
        // unfreeze below. A shard left frozen bounces every fenced route
        // and commit retryably forever: a permanent livelock.
        let cutover = || -> Result<()> {
            if !epochs.drain(stid, Duration::from_secs(2)) {
                return Err(Error::Timeout { what: "draining shard commit gate".into() });
            }
            // Async phase-two tail: wait for posted Commit/Abort deliveries
            // to consume every in-flight write set on this shard table.
            let deadline = polardbx_common::time::mono_now() + Duration::from_secs(2);
            while src.rw.engine.has_active_writes_on(stid) {
                if polardbx_common::time::mono_now() > deadline {
                    return Err(Error::Timeout { what: "draining shard write sets".into() });
                }
                std::thread::yield_now();
            }
            let tenant = TenantId(table.raw());
            src.rw.engine.pool.flush_tenant(tenant, None)?;
            // Writes are frozen and the drain passed, but the flush spans
            // time: re-verify nothing slipped in right before the detach.
            if src.rw.engine.has_active_writes_on(stid) {
                return Err(Error::Timeout { what: "late write set on shard".into() });
            }
            let store = src
                .rw
                .detach_table(stid)
                .ok_or_else(|| Error::invalid("shard store missing on source"))?;
            dst.rw.attach_table(stid, store, tenant);
            // Commit timestamps at the new home must stay above every
            // version the shard carries (the source's clock may run ahead).
            dst.service.clock.update(src.service.clock.now());
            self.inner.gms.move_shard(table, shard, dest);
            Ok(())
        };
        let result = cutover();
        src.rw.engine.unfreeze_writes(stid);
        epochs.unfreeze(stid);
        result.map(|()| polardbx_common::time::mono_now() - t0)
    }

    /// Start the adaptive placer: a background thread that periodically
    /// snapshots the co-access sketch, plans affinity moves, and applies
    /// them through the throttled re-home executor. Stops on
    /// [`PolarDbx::shutdown`].
    pub fn start_placer(&self, cfg: PlacerConfig) {
        // The thread holds only a Weak handle: a strong clone would keep
        // `Inner` alive forever, making the Drop-based stop unreachable —
        // a cluster dropped without shutdown() would leak the thread and
        // all cluster state for the process lifetime.
        let weak = Arc::downgrade(&self.inner);
        let stop = Arc::clone(&self.inner.placer_stop);
        std::thread::Builder::new()
            .name("polardbx-placer".into())
            .spawn(move || {
                let executor = RehomeExecutor::new(cfg.rehome);
                let mut next = polardbx_common::time::mono_now() + cfg.interval;
                while !stop.load(Ordering::Relaxed) {
                    if polardbx_common::time::mono_now() < next {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    next = polardbx_common::time::mono_now() + cfg.interval;
                    // Upgrade per pass and drop the strong handle at the end
                    // of the pass; the cluster going away ends the thread.
                    let Some(inner) = weak.upgrade() else { break };
                    let db = PolarDbx { inner };
                    let mut snap = db.inner.sketch.snapshot();
                    // Tumbling window: plan on this interval's traffic only.
                    // Without the reset, counts from cold placements distort
                    // the balance cap indefinitely.
                    db.inner.sketch.reset();
                    // Sketch homes are commit-time observations and can mix
                    // pre- and post-cutover values inside one window; a plan
                    // built on a stale home proposes moves toward a DN the
                    // partition already left — oscillation. Placement is the
                    // truth: re-resolve every home before planning.
                    snap.parts.retain_mut(|p| {
                        let table = polardbx_common::TableId(p.part / 10_000);
                        let shard = (p.part % 10_000) as u32;
                        // lint:allow(fence_completeness, planning-only home resolution: staleness merely proposes a worse move, and the executed cutover re-checks under its own epoch freeze)
                        match db.inner.gms.shard_dn(table, shard) {
                            Ok(dn) => {
                                p.home = dn;
                                true
                            }
                            Err(_) => false, // shard dropped since observed
                        }
                    });
                    let moves = placement_plan(&snap, &cfg.planner);
                    if moves.is_empty() {
                        continue;
                    }
                    executor.execute(&moves, |mv| {
                        // Shard-table ids encode (table, shard); see
                        // `gms::shard_table_id`.
                        let table = polardbx_common::TableId(mv.part / 10_000);
                        let shard = (mv.part % 10_000) as u32;
                        // The sketch home may lag a move executed after the
                        // snapshot was taken; placement is the truth.
                        // lint:allow(fence_completeness, no-op-move check before a re-home: a stale read at worst skips or repeats a move attempt, and the cutover itself is epoch-fenced)
                        if db.inner.gms.shard_dn(table, shard)? == mv.to {
                            return Ok(Duration::ZERO);
                        }
                        let pause = db.rehome_shard_by_id(table, shard, mv.to)?;
                        db.inner.txn_metrics.rehomes_applied.inc();
                        Ok(pause)
                    });
                }
            })
            .expect("spawn placer");
    }

    /// Balance a table's shards across all DNs by current row counts
    /// (the GMS background-rebalance task of §II-A). Returns the number of
    /// shards moved.
    pub fn rebalance(&self, table: &str) -> Result<usize> {
        let schema = self.inner.gms.table(table)?;
        let mut loads = Vec::new();
        for shard in 0..schema.partition.shard_count() {
            let dn = self.inner.gms.shard_dn(schema.id, shard)?;
            let rows = self.inner.dns[&dn]
                .rw
                .engine
                .count_rows(shard_table_id(schema.id, shard), u64::MAX)
                .unwrap_or(0) as u64;
            loads.push((shard, rows));
        }
        let targets: Vec<NodeId> = self.inner.dns.keys().copied().collect();
        let plan = self.inner.gms.plan_rebalance(schema.id, &loads, &targets);
        let mut moved = 0;
        for (shard, dest) in plan {
            self.move_shard(table, shard, dest)?;
            moved += 1;
        }
        Ok(moved)
    }

    /// Build a snapshot provider over the RW engines, optionally exposing
    /// the registered column indexes — benchmark harnesses drive the
    /// executor directly through this.
    pub fn provider(&self, columnar: bool) -> crate::provider::ClusterProvider {
        let session = self.connect(DcId(1));
        let snapshot_ts = session.cn.coordinator.clock().now().raw();
        let engines: HashMap<NodeId, Arc<polardbx_storage::StorageEngine>> = self
            .inner
            .dns
            .iter()
            .map(|(&id, dn)| (id, Arc::clone(&dn.rw.engine)))
            .collect();
        let mut p = crate::provider::ClusterProvider::new(
            Arc::clone(&self.inner.gms),
            engines,
            snapshot_ts,
        );
        if columnar {
            p = p.with_column_indexes(self.inner.column_indexes.read().clone());
        }
        p
    }

    /// Total committed row count across shards of `table` (admin helper).
    pub fn count_rows(&self, table: &str) -> Result<usize> {
        let schema = self.inner.gms.table(table)?;
        let mut n = 0;
        for shard in 0..schema.partition.shard_count() {
            let dn_id = self.inner.gms.shard_dn(schema.id, shard)?;
            let dn = &self.inner.dns[&dn_id];
            n += dn.rw.engine.count_rows(shard_table_id(schema.id, shard), u64::MAX)?;
        }
        Ok(n)
    }
}

/// A client session bound to one CN.
pub struct Session {
    inner: Arc<Inner>,
    cn: Arc<CnNode>,
}

impl Session {
    /// The CN this session landed on (load-balancer tests).
    pub fn cn_id(&self) -> NodeId {
        self.cn.id
    }

    /// The CN's datacenter.
    pub fn cn_dc(&self) -> DcId {
        self.cn.dc
    }

    /// Direct access to the CN's transaction coordinator — benchmark
    /// drivers use it to bypass SQL parsing on hot paths.
    pub fn coordinator(&self) -> &Coordinator {
        &self.cn.coordinator
    }

    /// Route a primary-key tuple of `table` to its (shard-table id, DN).
    pub fn route(
        &self,
        table: &str,
        pk: &[Value],
    ) -> Result<(polardbx_common::TableId, NodeId)> {
        let schema = self.inner.gms.table(table)?;
        let (shard, dn) = self.inner.gms.route_key(&schema, pk)?;
        Ok((shard_table_id(schema.id, shard), dn))
    }

    /// Like [`Session::route`], but also captures the shard's routing
    /// epoch for commit-time fencing, and bounces retryably while the
    /// shard is frozen for a re-home cutover. Drivers pin the returned
    /// epoch on their transaction (`DistTxn::pin_epoch`) before writing.
    pub fn route_fenced(
        &self,
        table: &str,
        pk: &[Value],
    ) -> Result<(polardbx_common::TableId, NodeId, u64)> {
        let schema = self.inner.gms.table(table)?;
        let (shard, dn, epoch) = self.inner.gms.route_key_fenced(&schema, pk)?;
        Ok((shard_table_id(schema.id, shard), dn, epoch))
    }

    /// Execute a DDL/DML statement; returns affected row count.
    pub fn execute(&self, sql: &str) -> Result<u64> {
        let stmt = polardbx_sql::parse(sql)?;
        self.execute_statement(sql, &stmt)
    }

    /// Execute an already-parsed DDL/DML statement. The front door's
    /// prepared-statement path parses once at PREPARE and replays the AST
    /// here on every EXECUTE; `sql` is the original text, used only for
    /// traffic-control fingerprinting.
    pub fn execute_statement(&self, sql: &str, stmt: &Statement) -> Result<u64> {
        let _permit = self.inner.traffic.admit(sql)?;
        match stmt {
            Statement::CreateTable(ct) => self.create_table(ct.clone()).map(|_| 0),
            Statement::CreateIndex(ci) => self.create_index(ci.clone()).map(|_| 0),
            // DML retries the whole statement on a re-home bounce: the
            // retry re-routes and lands on the shard's new home.
            Statement::Insert(ins) => self.retry_dml(|| self.insert(ins)),
            Statement::Update(u) => self.retry_dml(|| self.update(u)),
            Statement::Delete(d) => self.retry_dml(|| self.delete(d)),
            Statement::Select(_) => {
                Err(Error::invalid("use query() for SELECT statements"))
            }
        }
    }

    /// Execute a SELECT; returns result rows.
    pub fn query(&self, sql: &str) -> Result<Vec<Row>> {
        self.query_classified(sql).map(|(rows, _)| rows)
    }

    /// EXPLAIN: parse and plan a SELECT without executing it, returning
    /// the optimized operator tree, the TP/AP classification, and the
    /// row-store vs column-index choice per scanned table (§VI-B/E).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let Statement::Select(sel) = polardbx_sql::parse(sql)? else {
            return Err(Error::invalid("EXPLAIN supports SELECT only"));
        };
        let stats = self.inner.gms.statistics();
        let plan = optimize_with_stats(
            polardbx_sql::build_plan(&sel, self.inner.gms.as_ref())?,
            &stats,
        );
        let class = classify_with_threshold(&plan, &stats, self.inner.config.ap_threshold);
        let cost = polardbx_optimizer::estimate(&plan, &stats);
        let mut out = String::new();
        out.push_str(&format!(
            "class: {class:?} (est. cost {:.0}, rows {:.0})\n",
            cost.total(),
            cost.rows_out
        ));
        for table in plan.tables() {
            let choice = polardbx_optimizer::choose_storage(&plan, &table, &stats);
            out.push_str(&format!("scan {table}: {choice:?}\n"));
        }
        out.push_str(&plan.explain());
        Ok(out)
    }

    /// Execute a SELECT and report how the optimizer classified it.
    pub fn query_classified(&self, sql: &str) -> Result<(Vec<Row>, WorkloadClass)> {
        let Statement::Select(sel) = polardbx_sql::parse(sql)? else {
            return Err(Error::invalid("query() only accepts SELECT"));
        };
        self.query_statement(sql, &sel)
    }

    /// Execute an already-parsed SELECT (the front door's parse-once
    /// path); `sql` is the original text, used only for traffic-control
    /// fingerprinting.
    pub fn query_statement(
        &self,
        sql: &str,
        sel: &polardbx_sql::ast::Select,
    ) -> Result<(Vec<Row>, WorkloadClass)> {
        let _permit = self.inner.traffic.admit(sql)?;
        let stats = self.inner.gms.statistics();
        let plan = polardbx_sql::build_plan(sel, self.inner.gms.as_ref())?;
        let plan = optimize_with_stats(plan, &stats);
        let class = classify_with_threshold(&plan, &stats, self.inner.config.ap_threshold);
        let rows = self.run_plan(plan, class)?;
        Ok((rows, class))
    }

    fn run_plan(
        &self,
        plan: polardbx_sql::LogicalPlan,
        class: WorkloadClass,
    ) -> Result<Vec<Row>> {
        // Reserve working memory from the class's region before executing
        // (§VI-D): TP reservations may preempt AP headroom; an AP query that
        // cannot reserve fails with a retryable error instead of thrashing.
        let stats = self.inner.gms.statistics();
        let est = polardbx_optimizer::estimate(&plan, &stats);
        // Working-set proxy: rows the operators touch, not just output rows.
        let bytes = ((est.cpu as usize).saturating_mul(8)).clamp(4 << 10, 64 << 20);
        let _reservation = match class {
            WorkloadClass::Tp => Reservation::tp(Arc::clone(&self.inner.memory), bytes)?,
            WorkloadClass::Ap => Reservation::ap(Arc::clone(&self.inner.memory), bytes)?,
        };
        let snapshot_ts = self.cn.coordinator.clock().now().raw();
        let provider: Arc<dyn TableProvider> =
            Arc::new(self.build_provider(class, snapshot_ts));
        let inner = Arc::clone(&self.inner);
        match class {
            WorkloadClass::Tp => {
                // TP pool with a slice; overruns demote to AP, then slow
                // (§VI-D's misclassification recovery).
                let plan = Arc::new(plan);
                let mgr = Arc::clone(&inner.workload);
                let (result, _pool) =
                    run_with_demotion(&mgr, JobClass::Tp, move |deadline, governor| {
                        let ctx = ExecCtx::with_ticks(TickState::new(governor, deadline));
                        match execute_plan(&plan, provider.as_ref(), &ctx) {
                            Err(Error::Throttled { .. }) => None, // slice expired
                            other => Some(other),
                        }
                    });
                result
            }
            WorkloadClass::Ap => {
                // The MPP engine borrows morsel workers from the CN's own
                // persistent pools, so concurrent AP queries share workers
                // (under the AP governor) instead of each spawning threads.
                let mpp = MppExecutor::with_pool(
                    inner.config.mpp_workers,
                    Arc::clone(&inner.workload),
                );
                let governor = inner.workload.governor_for(JobClass::Ap);
                let plan = plan.clone();
                let mgr = Arc::clone(&inner.workload);
                mgr.run(JobClass::Ap, move || {
                    let ctx = ExecCtx::with_ticks(TickState::new(governor, None));
                    mpp.execute(&plan, &provider, &ctx)
                })
            }
        }
    }

    fn build_provider(&self, class: WorkloadClass, snapshot_ts: u64) -> ClusterProvider {
        // AP queries read RO replicas when present and HTAP routing is on;
        // TP (and AP without replicas) reads the RW engines.
        let use_ro = class == WorkloadClass::Ap
            && self.inner.htap_ro.load(Ordering::Relaxed)
            && self.inner.dns.values().any(|d| !d.rw.ros().is_empty());
        let engines: HashMap<NodeId, Arc<polardbx_storage::StorageEngine>> = self
            .inner
            .dns
            .iter()
            .map(|(&id, dn)| {
                let engine = if use_ro {
                    match dn.rw.ros().first() {
                        Some(ro) => {
                            // Session consistency (§II-C): the read carries
                            // the RW's current LSN as a token; the replica
                            // must catch up to it before serving. Take the
                            // token BEFORE shipping: ship() synchronously
                            // applies everything flushed at call time, so
                            // the wait then succeeds immediately instead of
                            // chasing commits that landed between ship()
                            // and the token snapshot.
                            let token = dn.rw.session_token();
                            dn.rw.ship();
                            let _ = ro.wait_for(token, Duration::from_millis(200));
                            Arc::clone(&ro.engine)
                        }
                        None => Arc::clone(&dn.rw.engine),
                    }
                } else {
                    Arc::clone(&dn.rw.engine)
                };
                (id, engine)
            })
            .collect();
        let indexes = self.inner.column_indexes.read().clone();
        ClusterProvider::new(Arc::clone(&self.inner.gms), engines, snapshot_ts)
            .with_column_indexes(indexes)
    }

    // ------------------------------------------------------------------- DDL

    fn create_table(&self, ct: ast::CreateTable) -> Result<()> {
        let id = self.inner.gms.next_table_id();
        let columns: Vec<ColumnDef> = ct
            .columns
            .iter()
            .map(|(n, t, nn)| {
                let mut c = ColumnDef::new(n.clone(), *t);
                if *nn {
                    c = c.not_null();
                }
                c
            })
            .collect();
        let mut schema = match &ct.partition {
            Some((cols, shards)) => TableSchema::new(
                id,
                &ct.name,
                columns,
                ct.primary_key.clone(),
                PartitionSpec::Hash { columns: cols.clone(), shards: *shards },
            )?,
            None => TableSchema::hash_on_pk(
                id,
                &ct.name,
                columns,
                ct.primary_key.clone(),
                self.inner.config.default_shards,
            )?,
        };
        if let Some(g) = &ct.table_group {
            schema = schema.in_table_group(g.clone());
        }
        self.inner.gms.create_table(schema.clone())?;
        // Create the shard tables on their DNs (and RO mirrors).
        for shard in 0..schema.partition.shard_count() {
            let dn_id = self.inner.gms.shard_dn(schema.id, shard)?;
            let dn = &self.inner.dns[&dn_id];
            dn.rw.create_table(shard_table_id(schema.id, shard), TenantId(schema.id.raw()));
        }
        Ok(())
    }

    fn create_index(&self, ci: ast::CreateIndex) -> Result<()> {
        let mut schema = self.inner.gms.table(&ci.table)?;
        let kind = match ci.placement {
            IndexPlacement::Local => IndexKind::Local,
            IndexPlacement::Global => IndexKind::GlobalNonClustered,
            IndexPlacement::GlobalClustered => IndexKind::GlobalClustered,
        };
        schema = schema.with_index(IndexDef {
            name: ci.name.clone(),
            columns: ci.columns.clone(),
            kind,
            unique: ci.unique,
        })?;
        self.inner.gms.record_index(&ci.table, &ci.columns);

        if matches!(kind, IndexKind::GlobalNonClustered | IndexKind::GlobalClustered) {
            // Global index = hidden table partitioned by the indexed
            // columns (§II-B). Schema: indexed cols + pk cols (+ the rest
            // when clustered).
            let hidden_name = format!("__gsi_{}_{}", ci.table, ci.name);
            let mut cols: Vec<ColumnDef> = Vec::new();
            for c in &ci.columns {
                let i = schema.column_index(c)?;
                cols.push(schema.columns[i].clone());
            }
            let pk_names: Vec<String> =
                schema.primary_key.iter().map(|&i| schema.columns[i].name.clone()).collect();
            for &i in &schema.primary_key {
                if !ci.columns.contains(&schema.columns[i].name) {
                    cols.push(schema.columns[i].clone());
                }
            }
            if kind == IndexKind::GlobalClustered {
                for c in &schema.columns {
                    if !cols.iter().any(|x| x.name == c.name) {
                        cols.push(c.clone());
                    }
                }
            }
            let hidden_id = self.inner.gms.next_table_id();
            let hidden = TableSchema::new(
                hidden_id,
                &hidden_name,
                cols,
                // Index rows are keyed by indexed cols + pk for uniqueness.
                ci.columns.iter().chain(pk_names.iter()).cloned().collect(),
                PartitionSpec::Hash {
                    columns: ci.columns.clone(),
                    shards: schema.partition.shard_count(),
                },
            )?;
            self.inner.gms.create_table(hidden.clone())?;
            for shard in 0..hidden.partition.shard_count() {
                // lint:allow(fence_completeness, DDL provisioning of the just-created hidden index table: nothing can re-home a shard that has no data yet, and GSI writes go through write_gsi_row's fenced route)
                let dn_id = self.inner.gms.shard_dn(hidden.id, shard)?;
                let dn = &self.inner.dns[&dn_id];
                dn.rw.create_table(
                    shard_table_id(hidden.id, shard),
                    TenantId(hidden.id.raw()),
                );
            }
            self.inner
                .gsi_tables
                .write()
                .entry(ci.table.clone())
                .or_default()
                .push(hidden_name.clone());
            // Backfill from existing rows.
            let ts = self.cn.coordinator.clock().now().raw();
            for shard in 0..schema.partition.shard_count() {
                // lint:allow(fence_completeness, backfill scan routing is read-only: the index rows it produces are written through write_gsi_row's fenced route, so a racing re-home fails the DDL retryably instead of losing writes)
                let dn_id = self.inner.gms.shard_dn(schema.id, shard)?;
                let dn = &self.inner.dns[&dn_id];
                for (_, row) in
                    dn.rw.engine.scan_table(shard_table_id(schema.id, shard), ts)?
                {
                    self.write_gsi_row(&hidden, &schema, &ci.columns, &row, false)?;
                }
            }
        }
        self.inner.gms.update_table(schema);
        Ok(())
    }

    fn gsi_row(
        &self,
        hidden: &TableSchema,
        base: &TableSchema,
        base_row: &Row,
    ) -> Result<Row> {
        let mut vals = Vec::with_capacity(hidden.arity());
        for c in &hidden.columns {
            let i = base.column_index(&c.name)?;
            vals.push(base_row.get(i)?.clone());
        }
        Ok(Row::new(vals))
    }

    fn write_gsi_row(
        &self,
        hidden: &TableSchema,
        base: &TableSchema,
        _index_cols: &[String],
        base_row: &Row,
        delete: bool,
    ) -> Result<()> {
        let idx_row = self.gsi_row(hidden, base, base_row)?;
        let key = hidden.pk_of(&idx_row)?;
        self.retry_dml(|| {
            let (shard, dn, epoch) = self.inner.gms.route_row_fenced(hidden, &idx_row)?;
            let stid = shard_table_id(hidden.id, shard);
            let mut txn = self.cn.coordinator.begin();
            txn.pin_epoch(stid, epoch)?;
            if delete {
                txn.write(dn, stid, key.clone(), WireWriteOp::Delete)?;
            } else {
                txn.write(dn, stid, key.clone(), WireWriteOp::Update(idx_row.clone()))?;
            }
            txn.commit()?;
            Ok(())
        })
    }

    // ------------------------------------------------------------------- DML

    /// Run one DML statement, retrying it wholesale while it bounces off
    /// a re-home cutover (`Throttled`: a frozen shard at route or write
    /// time, a pinned routing epoch that moved by commit time, or a store
    /// detached between routing and execution — the DN remaps that
    /// retryably too). Each retry re-routes from scratch and lands on the
    /// new home. Bounded: a cutover pauses a shard for milliseconds, so a
    /// statement still bouncing at the deadline surfaces the error.
    fn retry_dml<T>(&self, mut f: impl FnMut() -> Result<T>) -> Result<T> {
        let deadline = polardbx_common::time::mono_now() + Duration::from_secs(10);
        loop {
            match f() {
                Err(Error::Throttled { .. })
                    if polardbx_common::time::mono_now() < deadline =>
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => return other,
            }
        }
    }

    fn insert(&self, ins: &ast::Insert) -> Result<u64> {
        let schema = self.inner.gms.table(&ins.table)?;
        let visible: Vec<String> = schema
            .columns
            .iter()
            .take(schema.visible_arity())
            .map(|c| c.name.clone())
            .collect();
        let positions: Vec<usize> = match &ins.columns {
            None => (0..visible.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| schema.column_index(c))
                .collect::<Result<_>>()?,
        };
        let gsis = self.gsi_schemas(&ins.table)?;
        let mut txn = self.cn.coordinator.begin();
        let mut count = 0u64;
        for value_exprs in &ins.values {
            if value_exprs.len() != positions.len() {
                return Err(Error::Schema {
                    message: format!(
                        "INSERT arity {} vs column list {}",
                        value_exprs.len(),
                        positions.len()
                    ),
                });
            }
            let mut vals = vec![Value::Null; schema.arity()];
            for (expr, &pos) in value_exprs.iter().zip(&positions) {
                vals[pos] = expr.eval(&Row::empty())?;
            }
            if schema.implicit_pk {
                let seq = self.inner.gms.next_sequence(schema.id)?;
                vals[schema.arity() - 1] = Value::Int(seq);
            }
            let row = Row::new(vals);
            schema.validate_row(&row)?;
            let key = schema.pk_of(&row)?;
            // Fenced routing: pin each written shard's routing epoch on the
            // transaction so a re-home cutover racing this statement aborts
            // the commit retryably instead of stranding the write on the
            // detached old home (a silently lost update).
            let (shard, dn, epoch) = self.inner.gms.route_row_fenced(&schema, &row)?;
            let stid = shard_table_id(schema.id, shard);
            txn.pin_epoch(stid, epoch)?;
            txn.write(dn, stid, key, WireWriteOp::Insert(row.clone()))?;
            // Maintain global indexes in the same distributed transaction
            // (§II-B: "updated in a single distributed transaction").
            for hidden in &gsis {
                let idx_row = self.gsi_row(hidden, &schema, &row)?;
                let (ishard, idn, iepoch) =
                    self.inner.gms.route_row_fenced(hidden, &idx_row)?;
                let ikey = hidden.pk_of(&idx_row)?;
                let istid = shard_table_id(hidden.id, ishard);
                txn.pin_epoch(istid, iepoch)?;
                txn.write(idn, istid, ikey, WireWriteOp::Insert(idx_row))?;
            }
            count += 1;
        }
        txn.commit()?;
        self.inner.gms.record_rows(&ins.table, count as i64);
        self.capture_column_index(&ins.table)?;
        Ok(count)
    }

    fn gsi_schemas(&self, table: &str) -> Result<Vec<TableSchema>> {
        let names = self.inner.gsi_tables.read().get(table).cloned().unwrap_or_default();
        names.iter().map(|n| self.inner.gms.table(n)).collect()
    }

    /// Find rows matching a predicate, returning (shard, key, full row).
    fn find_matches(
        &self,
        schema: &TableSchema,
        predicate: &Option<Expr>,
    ) -> Result<Vec<(u32, Key, Row)>> {
        // Fast path: pk-equality predicates route to one shard.
        let resolved = match predicate {
            Some(p) => {
                let names: Vec<String> =
                    schema.columns.iter().map(|c| c.name.clone()).collect();
                Some(p.resolve(&names)?)
            }
            None => None,
        };
        let ts = self.cn.coordinator.clock().now().raw();
        let mut out = Vec::new();
        let mut txn = self.cn.coordinator.begin();
        for shard in 0..schema.partition.shard_count() {
            let dn = self.inner.gms.shard_dn(schema.id, shard)?;
            let rows =
                txn.scan(dn, shard_table_id(schema.id, shard), None, None)?;
            let _ = ts;
            for (key, row) in rows {
                let keep = match &resolved {
                    Some(p) => p.eval_bool(&row)?,
                    None => true,
                };
                if keep {
                    out.push((shard, key, row));
                }
            }
        }
        txn.abort();
        Ok(out)
    }

    fn update(&self, u: &ast::Update) -> Result<u64> {
        let schema = self.inner.gms.table(&u.table)?;
        let gsis = self.gsi_schemas(&u.table)?;
        let names: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
        let assignments: Vec<(usize, Expr)> = u
            .assignments
            .iter()
            .map(|(c, e)| Ok((schema.column_index(c)?, e.resolve(&names)?)))
            .collect::<Result<_>>()?;
        let matches = self.find_matches(&schema, &u.predicate)?;
        let mut txn = self.cn.coordinator.begin();
        let count = matches.len() as u64;
        for (shard, key, old_row) in matches {
            let mut new_row = old_row.clone();
            for (idx, expr) in &assignments {
                new_row.set(*idx, expr.eval(&old_row)?)?;
            }
            schema.validate_row(&new_row)?;
            // Fenced re-route of the matched shard: the write pins the
            // routing epoch so a racing re-home aborts the commit retryably
            // instead of losing the update on the detached old home.
            let (dn, epoch) = self.inner.gms.shard_dn_fenced(schema.id, shard)?;
            let stid = shard_table_id(schema.id, shard);
            txn.pin_epoch(stid, epoch)?;
            txn.write(dn, stid, key, WireWriteOp::Update(new_row.clone()))?;
            for hidden in &gsis {
                // Replace the index entry when it changed.
                let old_idx = self.gsi_row(hidden, &schema, &old_row)?;
                let new_idx = self.gsi_row(hidden, &schema, &new_row)?;
                if old_idx != new_idx {
                    let (os, od, oepoch) =
                        self.inner.gms.route_row_fenced(hidden, &old_idx)?;
                    let ostid = shard_table_id(hidden.id, os);
                    txn.pin_epoch(ostid, oepoch)?;
                    txn.write(od, ostid, hidden.pk_of(&old_idx)?, WireWriteOp::Delete)?;
                    let (ns, nd, nepoch) =
                        self.inner.gms.route_row_fenced(hidden, &new_idx)?;
                    let nstid = shard_table_id(hidden.id, ns);
                    txn.pin_epoch(nstid, nepoch)?;
                    txn.write(
                        nd,
                        nstid,
                        hidden.pk_of(&new_idx)?,
                        WireWriteOp::Update(new_idx),
                    )?;
                }
            }
        }
        txn.commit()?;
        self.capture_column_index(&u.table)?;
        Ok(count)
    }

    fn delete(&self, d: &ast::Delete) -> Result<u64> {
        let schema = self.inner.gms.table(&d.table)?;
        let gsis = self.gsi_schemas(&d.table)?;
        let matches = self.find_matches(&schema, &d.predicate)?;
        let mut txn = self.cn.coordinator.begin();
        let count = matches.len() as u64;
        for (shard, key, old_row) in matches {
            let (dn, epoch) = self.inner.gms.shard_dn_fenced(schema.id, shard)?;
            let stid = shard_table_id(schema.id, shard);
            txn.pin_epoch(stid, epoch)?;
            txn.write(dn, stid, key, WireWriteOp::Delete)?;
            for hidden in &gsis {
                let old_idx = self.gsi_row(hidden, &schema, &old_row)?;
                let (os, od, oepoch) =
                    self.inner.gms.route_row_fenced(hidden, &old_idx)?;
                let ostid = shard_table_id(hidden.id, os);
                txn.pin_epoch(ostid, oepoch)?;
                txn.write(od, ostid, hidden.pk_of(&old_idx)?, WireWriteOp::Delete)?;
            }
        }
        txn.commit()?;
        self.inner.gms.record_rows(&d.table, -(count as i64));
        self.capture_column_index(&d.table)?;
        Ok(count)
    }

    /// Refresh the column index after DML (simple strategy: incremental
    /// rebuild only of the touched table when an index exists; the
    /// maintainer path in `polardbx-columnar` covers log-capture, this
    /// keeps the cluster-level index fresh without tailing every log).
    fn capture_column_index(&self, table: &str) -> Result<()> {
        let index = self.inner.column_indexes.read().get(table).cloned();
        let Some(_) = index else { return Ok(()) };
        // Rebuild-on-write is wasteful; drop and lazily rebuild instead.
        self.inner.column_indexes.write().remove(table);
        let this = PolarDbx { inner: Arc::clone(&self.inner) };
        this.enable_column_index(table)
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.shipper_stop.store(true, Ordering::Relaxed);
        self.placer_stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> PolarDbx {
        PolarDbx::build(ClusterConfig { dns: 3, default_shards: 6, ..Default::default() })
            .unwrap()
    }

    #[test]
    fn ddl_dml_query_roundtrip() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute(
            "CREATE TABLE accounts (id BIGINT NOT NULL, name VARCHAR(32), balance DOUBLE, \
             PRIMARY KEY (id)) PARTITION BY HASH(id) PARTITIONS 6",
        )
        .unwrap();
        let n = s
            .execute(
                "INSERT INTO accounts (id, name, balance) VALUES \
                 (1, 'alice', 100.0), (2, 'bob', 50.0), (3, 'carol', 75.0)",
            )
            .unwrap();
        assert_eq!(n, 3);
        let rows = s.query("SELECT name FROM accounts WHERE id = 2").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).unwrap(), &Value::str("bob"));
        // Aggregate across shards.
        let rows = s.query("SELECT COUNT(*), SUM(balance) FROM accounts").unwrap();
        assert_eq!(rows[0].get(0).unwrap(), &Value::Int(3));
        assert_eq!(rows[0].get(1).unwrap(), &Value::Double(225.0));
        db.shutdown();
    }

    #[test]
    fn update_and_delete() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute("CREATE TABLE t (id BIGINT NOT NULL, v INT, PRIMARY KEY (id))").unwrap();
        s.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)").unwrap();
        let n = s.execute("UPDATE t SET v = v + 1 WHERE id >= 2").unwrap();
        assert_eq!(n, 2);
        let rows = s.query("SELECT v FROM t WHERE id = 3").unwrap();
        assert_eq!(rows[0].get(0).unwrap(), &Value::Int(31));
        let n = s.execute("DELETE FROM t WHERE v = 21").unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.count_rows("t").unwrap(), 2);
        db.shutdown();
    }

    #[test]
    fn implicit_pk_assigned() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute("CREATE TABLE logs (msg VARCHAR(64))").unwrap();
        s.execute("INSERT INTO logs (msg) VALUES ('a'), ('b'), ('c')").unwrap();
        assert_eq!(db.count_rows("logs").unwrap(), 3);
        let rows = s.query("SELECT COUNT(*) FROM logs").unwrap();
        assert_eq!(rows[0].get(0).unwrap(), &Value::Int(3));
        db.shutdown();
    }

    #[test]
    fn duplicate_pk_rejected_atomically() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute("CREATE TABLE t (id BIGINT NOT NULL, v INT, PRIMARY KEY (id))").unwrap();
        s.execute("INSERT INTO t (id, v) VALUES (1, 10)").unwrap();
        // Multi-row insert with a duplicate aborts entirely.
        let err = s.execute("INSERT INTO t (id, v) VALUES (5, 50), (1, 99)").unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. } | Error::PrepareRejected { .. }));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(db.count_rows("t").unwrap(), 1, "atomic abort");
        db.shutdown();
    }

    #[test]
    fn global_index_maintained_in_same_txn() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute("CREATE TABLE orders (id BIGINT NOT NULL, cust INT, PRIMARY KEY (id))")
            .unwrap();
        s.execute("INSERT INTO orders (id, cust) VALUES (1, 7), (2, 7), (3, 9)").unwrap();
        s.execute("CREATE GLOBAL INDEX by_cust ON orders (cust)").unwrap();
        // Backfill populated the hidden table.
        assert_eq!(db.count_rows("__gsi_orders_by_cust").unwrap(), 3);
        // New inserts maintain it.
        s.execute("INSERT INTO orders (id, cust) VALUES (4, 9)").unwrap();
        assert_eq!(db.count_rows("__gsi_orders_by_cust").unwrap(), 4);
        // Updates to the indexed column move the entry.
        s.execute("UPDATE orders SET cust = 8 WHERE id = 1").unwrap();
        let rows = s.query("SELECT cust FROM __gsi_orders_by_cust WHERE cust = 8").unwrap();
        assert_eq!(rows.len(), 1);
        // Deletes remove it.
        s.execute("DELETE FROM orders WHERE id = 2").unwrap();
        assert_eq!(db.count_rows("__gsi_orders_by_cust").unwrap(), 3);
        db.shutdown();
    }

    #[test]
    fn rehome_shard_under_live_traffic() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute(
            "CREATE TABLE t (id BIGINT NOT NULL, v INT, PRIMARY KEY (id)) \
             PARTITION BY HASH(id) PARTITIONS 4",
        )
        .unwrap();
        for i in 0..40 {
            s.execute(&format!("INSERT INTO t (id, v) VALUES ({i}, {i})")).unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let s2 = db.connect(DcId(1));
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> (u64, Option<Error>) {
                let mut applied = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let attempt = (|| -> Result<()> {
                        let (stid, dn, epoch) =
                            s2.route_fenced("t", &[Value::Int(0)])?;
                        let mut txn = s2.coordinator().begin();
                        txn.pin_epoch(stid, epoch)?;
                        txn.write(
                            dn,
                            stid,
                            polardbx_common::Key::encode(&[Value::Int(0)]),
                            WireWriteOp::Update(Row::new(vec![
                                Value::Int(0),
                                Value::Int(applied as i64),
                            ])),
                        )?;
                        txn.commit()?;
                        Ok(())
                    })();
                    match attempt {
                        Ok(()) => applied += 1,
                        Err(e) if e.is_retryable() => {}
                        Err(e) => return (applied, Some(e)),
                    }
                }
                (applied, None)
            })
        };
        // Move every shard to a different DN while the writer hammers.
        let schema = db.gms().table("t").unwrap();
        let dns: Vec<NodeId> = db.gms().dns();
        for shard in 0..4u32 {
            let cur = db.gms().shard_dn(schema.id, shard).unwrap();
            let dest = *dns.iter().find(|&&d| d != cur).unwrap();
            let pause = db.rehome_shard("t", shard, dest).unwrap();
            assert!(pause < Duration::from_secs(2), "cutover pause bounded");
            assert_eq!(db.gms().shard_dn(schema.id, shard).unwrap(), dest);
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        let (applied, fatal) = writer.join().unwrap();
        assert!(fatal.is_none(), "writer hit non-retryable error: {fatal:?}");
        assert!(applied > 0, "writer made progress across cutovers");
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(db.count_rows("t").unwrap(), 40, "no rows lost or duplicated");
        db.shutdown();
    }

    /// The SQL DML path (not the explicit fenced-driver API above) under a
    /// live re-home: every acked `UPDATE v = v + 1` must survive the
    /// cutovers. Before DML routed fenced, a statement could land on the
    /// old home inside the drain-to-detach window and be silently lost —
    /// acked to the client, stamped nowhere.
    #[test]
    fn sql_dml_survives_rehome_without_lost_updates() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute(
            "CREATE TABLE t (id BIGINT NOT NULL, v INT, PRIMARY KEY (id)) \
             PARTITION BY HASH(id) PARTITIONS 4",
        )
        .unwrap();
        for i in 0..8 {
            s.execute(&format!("INSERT INTO t (id, v) VALUES ({i}, 0)")).unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let s2 = db.connect(DcId(1));
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> (u64, Option<Error>) {
                let mut applied = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match s2.execute("UPDATE t SET v = v + 1 WHERE id = 0") {
                        Ok(1) => applied += 1,
                        Ok(n) => {
                            return (applied, Some(Error::invalid(format!("matched {n} rows"))))
                        }
                        Err(e) if e.is_retryable() => {}
                        Err(e) => return (applied, Some(e)),
                    }
                }
                (applied, None)
            })
        };
        let schema = db.gms().table("t").unwrap();
        let dns: Vec<NodeId> = db.gms().dns();
        for _round in 0..2 {
            for shard in 0..4u32 {
                let cur = db.gms().shard_dn(schema.id, shard).unwrap();
                let dest = *dns.iter().find(|&&d| d != cur).unwrap();
                // A drain can time out retryably under the hammering writer.
                for attempt in 0.. {
                    match db.rehome_shard("t", shard, dest) {
                        Ok(_) => break,
                        Err(_) if attempt < 20 => {
                            std::thread::sleep(Duration::from_millis(2))
                        }
                        Err(e) => panic!("rehome never succeeded: {e:?}"),
                    }
                }
                assert_eq!(db.gms().shard_dn(schema.id, shard).unwrap(), dest);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        stop.store(true, Ordering::Relaxed);
        let (applied, fatal) = writer.join().unwrap();
        assert!(fatal.is_none(), "SQL writer hit non-retryable error: {fatal:?}");
        assert!(applied > 0, "writer made progress across cutovers");
        let rows = s.query("SELECT v FROM t WHERE id = 0").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get(0).unwrap(),
            &Value::Int(applied as i64),
            "every acked UPDATE must survive the re-homes (no lost updates)"
        );
        db.shutdown();
    }

    #[test]
    fn placer_converts_cross_dn_txns_to_one_phase() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute(
            "CREATE TABLE p (id BIGINT NOT NULL, v INT, PRIMARY KEY (id)) \
             PARTITION BY HASH(id) PARTITIONS 6",
        )
        .unwrap();
        for i in 0..12 {
            s.execute(&format!("INSERT INTO p (id, v) VALUES ({i}, 0)")).unwrap();
        }
        // Pick two ids whose shards live on different DNs.
        let (a, b) = (0..12i64)
            .flat_map(|x| (0..12i64).map(move |y| (x, y)))
            .find(|&(x, y)| {
                x != y
                    && s.route("p", &[Value::Int(x)]).unwrap().1
                        != s.route("p", &[Value::Int(y)]).unwrap().1
            })
            .expect("some pair crosses DNs");
        db.start_placer(PlacerConfig {
            interval: Duration::from_millis(20),
            planner: PlannerConfig { max_moves: 4, min_edge_weight: 4, balance_slack: 10.0 },
            rehome: RehomeConfig {
                min_gap: Duration::from_millis(5),
                max_per_pass: 2,
            },
        });
        let metrics = Arc::clone(db.txn_metrics());
        let commit_pair = |val: i64| -> Result<bool> {
            let before_1pc = metrics.one_phase_commits.get();
            let (ta, da, ea) = s.route_fenced("p", &[Value::Int(a)])?;
            let (tb, dbn, eb) = s.route_fenced("p", &[Value::Int(b)])?;
            let mut txn = s.coordinator().begin();
            txn.pin_epoch(ta, ea)?;
            txn.pin_epoch(tb, eb)?;
            txn.write(
                da,
                ta,
                polardbx_common::Key::encode(&[Value::Int(a)]),
                WireWriteOp::Update(Row::new(vec![Value::Int(a), Value::Int(val)])),
            )?;
            txn.write(
                dbn,
                tb,
                polardbx_common::Key::encode(&[Value::Int(b)]),
                WireWriteOp::Update(Row::new(vec![Value::Int(b), Value::Int(val)])),
            )?;
            txn.commit()?;
            Ok(metrics.one_phase_commits.get() > before_1pc)
        };
        let deadline = polardbx_common::time::mono_now() + Duration::from_secs(20);
        let mut converged = false;
        let mut i = 0i64;
        while polardbx_common::time::mono_now() < deadline {
            i += 1;
            match commit_pair(i) {
                Ok(true) if metrics.rehomes_applied.get() > 0 => {
                    converged = true;
                    break;
                }
                Ok(_) => {}
                Err(e) => assert!(e.is_retryable(), "unexpected error: {e:?}"),
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            converged,
            "placer failed to colocate the hot pair (rehomes={}, 1pc={}, 2pc={})",
            metrics.rehomes_applied.get(),
            metrics.one_phase_commits.get(),
            metrics.two_phase_commits.get(),
        );
        db.shutdown();
    }

    #[test]
    fn load_balancer_prefers_local_cn() {
        let db = PolarDbx::build(ClusterConfig {
            dcs: 3,
            cns_per_dc: 2,
            dns: 3,
            ..Default::default()
        })
        .unwrap();
        for dc in 1..=3u64 {
            let s = db.connect(DcId(dc));
            assert_eq!(s.cn_dc(), DcId(dc), "locality-aware routing");
        }
        // Unknown DC falls back to any CN.
        let s = db.connect(DcId(99));
        assert!(s.cn_dc().raw() >= 1);
        db.shutdown();
    }

    #[test]
    fn classification_routes_tp_and_ap() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute("CREATE TABLE big (id BIGINT NOT NULL, v INT, PRIMARY KEY (id))").unwrap();
        for chunk in 0..4 {
            let values: Vec<String> = (0..50)
                .map(|i| format!("({}, {})", chunk * 50 + i, i))
                .collect();
            s.execute(&format!("INSERT INTO big (id, v) VALUES {}", values.join(",")))
                .unwrap();
        }
        // Make the stats look big so classification flips to AP.
        db.gms().record_rows("big", 10_000_000);
        let (_, class) = s.query_classified("SELECT id FROM big WHERE id = 5").unwrap();
        assert_eq!(class, WorkloadClass::Tp);
        let (rows, class) =
            s.query_classified("SELECT v, COUNT(*) FROM big GROUP BY v").unwrap();
        assert_eq!(class, WorkloadClass::Ap);
        assert_eq!(rows.len(), 50);
        db.shutdown();
    }

    #[test]
    fn column_index_query_path() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute("CREATE TABLE fact (id BIGINT NOT NULL, grp INT, amt DOUBLE, PRIMARY KEY (id))")
            .unwrap();
        let values: Vec<String> =
            (0..200).map(|i| format!("({i}, {}, {}.5)", i % 4, i)).collect();
        s.execute(&format!("INSERT INTO fact (id, grp, amt) VALUES {}", values.join(",")))
            .unwrap();
        db.enable_column_index("fact").unwrap();
        assert!(db.gms().statistics().get("fact").has_column_index);
        let mut rows = s.query("SELECT grp, COUNT(*) FROM fact GROUP BY grp").unwrap();
        rows.sort_by(|a, b| a.get(0).unwrap().cmp(b.get(0).unwrap()));
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].get(1).unwrap(), &Value::Int(50));
        // DML invalidates + rebuilds the index.
        s.execute("DELETE FROM fact WHERE grp = 0").unwrap();
        let rows = s.query("SELECT COUNT(*) FROM fact").unwrap();
        assert_eq!(rows[0].get(0).unwrap(), &Value::Int(150));
        db.shutdown();
    }

    #[test]
    fn joins_across_shards() {
        let db = cluster();
        let s = db.connect(DcId(1));
        s.execute("CREATE TABLE l (id BIGINT NOT NULL, gid INT, PRIMARY KEY (id))").unwrap();
        s.execute("CREATE TABLE g (gid BIGINT NOT NULL, name VARCHAR(16), PRIMARY KEY (gid))")
            .unwrap();
        s.execute("INSERT INTO g (gid, name) VALUES (0, 'zero'), (1, 'one')").unwrap();
        s.execute(
            "INSERT INTO l (id, gid) VALUES (1, 0), (2, 1), (3, 0), (4, 1), (5, 0)",
        )
        .unwrap();
        let rows = s
            .query(
                "SELECT g.name, COUNT(*) AS n FROM l JOIN g ON l.gid = g.gid \
                 GROUP BY g.name ORDER BY n DESC",
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0).unwrap(), &Value::str("zero"));
        assert_eq!(rows[0].get(1).unwrap(), &Value::Int(3));
        db.shutdown();
    }
}
