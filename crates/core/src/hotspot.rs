//! Anti-hotspot tooling (§VIII).
//!
//! "The most common case is that the load between DN nodes is unbalanced …
//! We can migrate shards to achieve a balanced state between DNs. If the
//! data volume or traffic of a single shard is too large, it will become a
//! hot shard. When a shard grows larger due to data skew, we will split
//! the shard according to another hash function. Some secondary index keys
//! will become hot keys … The hot key can be placed on one shard alone. If
//! hotspot still exists, more fields can be added to the key of the
//! secondary index to split a hotspot key into multiple keys with the same
//! prefix."

use std::collections::HashMap;

use polardbx_common::{Key, NodeId, Value};

/// Per-shard access telemetry.
#[derive(Debug, Clone, Default)]
pub struct ShardLoad {
    /// Rows stored.
    pub rows: u64,
    /// Accesses in the observation window.
    pub accesses: u64,
}

/// Detected hotspot kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Hotspot {
    /// A whole DN carries disproportionate load → migrate shards away.
    OverloadedDn {
        /// The hot node.
        dn: NodeId,
        /// Its share of total access load (0..1).
        share: f64,
    },
    /// A single shard dominates → split by another hash function.
    HotShard {
        /// The shard.
        shard: u32,
        /// Its share of the table's accesses.
        share: f64,
    },
    /// A single key dominates its shard → isolate or suffix it.
    HotKey {
        /// The hot key.
        key: Key,
        /// Its share of the shard's accesses.
        share: f64,
    },
}

/// Thresholds for detection.
#[derive(Debug, Clone)]
pub struct HotspotPolicy {
    /// A DN above this share of total load is overloaded.
    pub dn_share: f64,
    /// A shard above this share of table load is hot.
    pub shard_share: f64,
    /// A key above this share of shard load is hot.
    pub key_share: f64,
}

impl Default for HotspotPolicy {
    fn default() -> Self {
        HotspotPolicy { dn_share: 0.5, shard_share: 0.4, key_share: 0.5 }
    }
}

/// Detect DN-level imbalance from per-shard loads and placements.
pub fn detect_dn_hotspots(
    placements: &HashMap<u32, NodeId>,
    loads: &HashMap<u32, ShardLoad>,
    policy: &HotspotPolicy,
) -> Vec<Hotspot> {
    let mut per_dn: HashMap<NodeId, u64> = HashMap::new();
    let mut total = 0u64;
    for (shard, load) in loads {
        if let Some(&dn) = placements.get(shard) {
            *per_dn.entry(dn).or_insert(0) += load.accesses;
            total += load.accesses;
        }
    }
    if total == 0 || per_dn.len() < 2 {
        return Vec::new();
    }
    per_dn
        .into_iter()
        .filter_map(|(dn, acc)| {
            let share = acc as f64 / total as f64;
            (share > policy.dn_share).then_some(Hotspot::OverloadedDn { dn, share })
        })
        .collect()
}

/// Detect hot shards within a table.
pub fn detect_hot_shards(
    loads: &HashMap<u32, ShardLoad>,
    policy: &HotspotPolicy,
) -> Vec<Hotspot> {
    let total: u64 = loads.values().map(|l| l.accesses).sum();
    if total == 0 || loads.len() < 2 {
        return Vec::new();
    }
    loads
        .iter()
        .filter_map(|(&shard, l)| {
            let share = l.accesses as f64 / total as f64;
            (share > policy.shard_share).then_some(Hotspot::HotShard { shard, share })
        })
        .collect()
}

/// Detect hot keys within a shard from key-access telemetry.
pub fn detect_hot_keys(
    key_accesses: &HashMap<Key, u64>,
    policy: &HotspotPolicy,
) -> Vec<Hotspot> {
    let total: u64 = key_accesses.values().sum();
    if total == 0 {
        return Vec::new();
    }
    key_accesses
        .iter()
        .filter_map(|(key, &n)| {
            let share = n as f64 / total as f64;
            (share > policy.key_share)
                .then(|| Hotspot::HotKey { key: key.clone(), share })
        })
        .collect()
}

/// Split a hot shard "according to another hash function": remap its rows
/// into `ways` sub-shards using a salted hash. Returns, per row key, the
/// sub-shard it lands in — the caller moves the rows and updates GMS.
pub fn split_shard_plan(keys: &[Key], ways: u32) -> HashMap<u32, Vec<Key>> {
    let mut plan: HashMap<u32, Vec<Key>> = HashMap::new();
    for key in keys {
        // Salted re-hash (different function than the routing hash).
        let salted = {
            let mut h: u64 = 0x9e3779b97f4a7c15;
            for &b in key.as_bytes() {
                h ^= b as u64;
                h = h.rotate_left(17).wrapping_mul(0xbf58476d1ce4e5b9);
            }
            // Murmur-style finalizer: spread entropy into the low bits the
            // modulo below consumes.
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccb);
            h ^= h >> 33;
            h
        };
        plan.entry((salted % ways as u64) as u32).or_default().push(key.clone());
    }
    plan
}

/// Split a hot secondary-index key "into multiple keys with the same
/// prefix" by appending a suffix column: maps each (hot key, row id) to a
/// derived key. Readers scan the prefix; writers spread across suffixes.
pub fn suffix_hot_key(hot: &Key, row_discriminator: i64, suffixes: u32) -> Key {
    let mut vals = hot.decode();
    vals.push(Value::Int(row_discriminator % suffixes as i64));
    Key::encode(&vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    #[test]
    fn balanced_cluster_reports_nothing() {
        let placements: HashMap<u32, NodeId> =
            (0..4).map(|s| (s, NodeId(1 + (s % 2) as u64))).collect();
        let loads: HashMap<u32, ShardLoad> = (0..4)
            .map(|s| (s, ShardLoad { rows: 100, accesses: 1000 }))
            .collect();
        let policy = HotspotPolicy::default();
        assert!(detect_dn_hotspots(&placements, &loads, &policy).is_empty());
        assert!(detect_hot_shards(&loads, &policy).is_empty());
    }

    #[test]
    fn overloaded_dn_detected() {
        let placements: HashMap<u32, NodeId> =
            [(0, NodeId(1)), (1, NodeId(1)), (2, NodeId(2)), (3, NodeId(2))].into();
        let mut loads = HashMap::new();
        loads.insert(0, ShardLoad { rows: 100, accesses: 5000 });
        loads.insert(1, ShardLoad { rows: 100, accesses: 4000 });
        loads.insert(2, ShardLoad { rows: 100, accesses: 500 });
        loads.insert(3, ShardLoad { rows: 100, accesses: 500 });
        let hs = detect_dn_hotspots(&placements, &loads, &HotspotPolicy::default());
        assert_eq!(hs.len(), 1);
        assert!(matches!(hs[0], Hotspot::OverloadedDn { dn: NodeId(1), .. }));
    }

    #[test]
    fn hot_shard_detected() {
        let mut loads = HashMap::new();
        loads.insert(0, ShardLoad { rows: 100, accesses: 9_000 });
        loads.insert(1, ShardLoad { rows: 100, accesses: 500 });
        loads.insert(2, ShardLoad { rows: 100, accesses: 500 });
        let hs = detect_hot_shards(&loads, &HotspotPolicy::default());
        assert_eq!(hs.len(), 1);
        assert!(matches!(hs[0], Hotspot::HotShard { shard: 0, .. }));
    }

    #[test]
    fn hot_key_detected() {
        let mut accesses = HashMap::new();
        accesses.insert(key(7), 10_000u64);
        for i in 100..110 {
            accesses.insert(key(i), 100);
        }
        let hs = detect_hot_keys(&accesses, &HotspotPolicy::default());
        assert_eq!(hs.len(), 1);
        assert!(matches!(&hs[0], Hotspot::HotKey { key: k, .. } if *k == key(7)));
    }

    #[test]
    fn shard_split_spreads_keys() {
        let keys: Vec<Key> = (0..1000).map(key).collect();
        let plan = split_shard_plan(&keys, 4);
        assert_eq!(plan.len(), 4);
        let total: usize = plan.values().map(Vec::len).sum();
        assert_eq!(total, 1000);
        for bucket in plan.values() {
            assert!(bucket.len() > 150, "salted hash must spread: {}", bucket.len());
        }
    }

    #[test]
    fn suffixed_hot_keys_share_prefix() {
        let hot = key(42);
        let a = suffix_hot_key(&hot, 1, 8);
        let b = suffix_hot_key(&hot, 2, 8);
        assert_ne!(a, b, "suffix splits the key");
        // Both order within the prefix scan bounds.
        let upper = hot.prefix_successor();
        assert!(a > hot && a < upper);
        assert!(b > hot && b < upper);
    }
}
