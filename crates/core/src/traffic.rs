//! Automated traffic control (§VIII).
//!
//! "PolarDB-X … uses \[an\] obtained model to perform anomaly detection on
//! real-time telemetry data. When an anomaly is detected, PolarDB-X
//! performs an analysis of running transactions … finds the problematic
//! queries that consume the most resources, and then limits the maximum
//! allowable concurrency of them."
//!
//! The reproduction keeps per-fingerprint concurrency telemetry, detects
//! anomalies as concurrency surging far beyond a trained baseline (the
//! "cache penetration" pattern), and throttles the offending fingerprint.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use polardbx_common::{Error, Result};

/// Normalized query fingerprint: literals stripped, case folded. Queries
/// differing only in constants share a fingerprint.
pub fn fingerprint(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // Skip string literal.
                for c2 in chars.by_ref() {
                    if c2 == '\'' {
                        break;
                    }
                }
                out.push('?');
            }
            '0'..='9' => {
                while chars.peek().is_some_and(|c| c.is_ascii_digit() || *c == '.') {
                    chars.next();
                }
                out.push('?');
            }
            c if c.is_whitespace() => {
                if !out.ends_with(' ') {
                    out.push(' ');
                }
            }
            c => out.push(c.to_ascii_lowercase()),
        }
    }
    out.trim().to_string()
}

#[derive(Debug, Default, Clone)]
struct FingerprintStats {
    /// Current in-flight executions.
    current: u64,
    /// Trained baseline concurrency (EWMA of observed peaks).
    baseline: f64,
    /// Enforced limit, if throttled.
    limit: Option<u64>,
    /// Total admissions.
    total: u64,
    /// Total rejections.
    rejected: u64,
}

/// The traffic controller.
pub struct TrafficControl {
    stats: Mutex<HashMap<String, FingerprintStats>>,
    /// Multiplier over baseline that counts as an anomaly.
    anomaly_factor: f64,
    /// Auto-throttle on detection.
    auto: Mutex<bool>,
}

impl TrafficControl {
    /// A controller with the default anomaly threshold (8× baseline).
    pub fn new() -> TrafficControl {
        TrafficControl {
            stats: Mutex::new(HashMap::new()),
            anomaly_factor: 8.0,
            auto: Mutex::new(false),
        }
    }

    /// Enable automatic throttling on anomaly detection.
    pub fn set_auto(&self, enabled: bool) {
        *self.auto.lock() = enabled;
    }

    /// Manually limit a fingerprint's concurrency (DBA override).
    pub fn limit(&self, fp: &str, max_concurrency: u64) {
        self.stats.lock().entry(fp.to_string()).or_default().limit = Some(max_concurrency);
    }

    /// Remove a limit.
    pub fn unlimit(&self, fp: &str) {
        if let Some(s) = self.stats.lock().get_mut(fp) {
            s.limit = None;
        }
    }

    /// Admit a query; returns a permit whose drop releases the slot.
    pub fn admit(self: &TrafficControl, sql: &str) -> Result<Permit<'_>> {
        let fp = fingerprint(sql);
        let mut stats = self.stats.lock();
        let auto = *self.auto.lock();
        let entry = stats.entry(fp.clone()).or_default();
        if let Some(limit) = entry.limit {
            if entry.current >= limit {
                entry.rejected += 1;
                return Err(Error::Throttled { rule: fp });
            }
        } else if auto
            && entry.baseline >= 0.5
            && (entry.current as f64) >= entry.baseline * self.anomaly_factor
        {
            // Anomaly: concurrency surged far beyond the trained baseline.
            // Clamp this fingerprint at the anomaly threshold.
            entry.limit = Some((entry.baseline * self.anomaly_factor) as u64);
            entry.rejected += 1;
            return Err(Error::Throttled { rule: fp });
        }
        entry.current += 1;
        entry.total += 1;
        // Online training: a slow EWMA of observed concurrency. The slow
        // constant matters: an anomalous surge must outpace the baseline,
        // not drag it along.
        entry.baseline = entry.baseline * 0.999 + entry.current as f64 * 0.001;
        Ok(Permit { control: self, fp })
    }

    /// Observed stats (current, total, rejected) for a fingerprint.
    pub fn stats(&self, fp: &str) -> (u64, u64, u64) {
        let stats = self.stats.lock();
        match stats.get(fp) {
            Some(s) => (s.current, s.total, s.rejected),
            None => (0, 0, 0),
        }
    }

    /// The currently throttled fingerprints.
    pub fn throttled(&self) -> Vec<String> {
        self.stats
            .lock()
            .iter()
            .filter(|(_, s)| s.limit.is_some())
            .map(|(f, _)| f.clone())
            .collect()
    }

    fn release(&self, fp: &str) {
        if let Some(s) = self.stats.lock().get_mut(fp) {
            s.current = s.current.saturating_sub(1);
        }
    }
}

impl Default for TrafficControl {
    fn default() -> Self {
        TrafficControl::new()
    }
}

/// An admission permit; dropping it releases the concurrency slot.
pub struct Permit<'a> {
    control: &'a TrafficControl,
    fp: String,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.control.release(&self.fp);
    }
}

/// Shared handle variant used by multi-threaded harnesses.
pub type SharedTrafficControl = Arc<TrafficControl>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_strips_literals() {
        assert_eq!(
            fingerprint("SELECT * FROM t WHERE id = 42"),
            fingerprint("select *  from t where id = 99999")
        );
        assert_eq!(
            fingerprint("SELECT * FROM t WHERE name = 'bob'"),
            fingerprint("SELECT * FROM t WHERE name = 'alice'")
        );
        assert_ne!(
            fingerprint("SELECT * FROM t WHERE id = 1"),
            fingerprint("SELECT * FROM u WHERE id = 1")
        );
    }

    #[test]
    fn permits_track_concurrency() {
        let tc = TrafficControl::new();
        let p1 = tc.admit("SELECT 1 FROM t").unwrap();
        let p2 = tc.admit("SELECT 2 FROM t").unwrap();
        let fp = fingerprint("SELECT 1 FROM t");
        assert_eq!(tc.stats(&fp).0, 2);
        drop(p1);
        assert_eq!(tc.stats(&fp).0, 1);
        drop(p2);
        assert_eq!(tc.stats(&fp).0, 0);
        assert_eq!(tc.stats(&fp).1, 2);
    }

    #[test]
    fn manual_limit_enforced() {
        let tc = TrafficControl::new();
        let fp = fingerprint("SELECT * FROM hot WHERE k = 1");
        tc.limit(&fp, 2);
        let _a = tc.admit("SELECT * FROM hot WHERE k = 1").unwrap();
        let _b = tc.admit("SELECT * FROM hot WHERE k = 2").unwrap();
        let err = match tc.admit("SELECT * FROM hot WHERE k = 3") {
            Err(e) => e,
            Ok(_) => panic!("expected throttle"),
        };
        assert!(matches!(err, Error::Throttled { .. }));
        drop(_a);
        assert!(tc.admit("SELECT * FROM hot WHERE k = 4").is_ok());
        assert_eq!(tc.throttled(), vec![fp.clone()]);
        tc.unlimit(&fp);
        assert!(tc.throttled().is_empty());
    }

    #[test]
    fn anomaly_detection_auto_throttles() {
        let tc = TrafficControl::new();
        tc.set_auto(true);
        let sql = "SELECT * FROM cache_miss WHERE k = 7";
        // Train a baseline of ~1 concurrent execution.
        for _ in 0..2000 {
            let p = tc.admit(sql).unwrap();
            drop(p);
        }
        // A cache-penetration event: concurrency surges way past baseline.
        let mut held = Vec::new();
        let mut rejected = false;
        for _ in 0..64 {
            match tc.admit(sql) {
                Ok(p) => held.push(p),
                Err(Error::Throttled { .. }) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(rejected, "anomalous surge must be throttled");
        assert!(!tc.throttled().is_empty());
        // Normal traffic of a different shape is unaffected.
        assert!(tc.admit("SELECT 1 FROM other").is_ok());
    }

    #[test]
    fn no_auto_no_throttle() {
        let tc = TrafficControl::new();
        let sql = "SELECT * FROM t WHERE id = 1";
        let held: Vec<_> = (0..64).map(|_| tc.admit(sql).unwrap()).collect();
        assert_eq!(held.len(), 64);
    }
}
