//! Paxos-backed DN durability (§III): commits block on cross-DC majority.
//!
//! The batched variant reproduces X-Paxos group commit on the replication
//! side: concurrent committers enqueue their MTR batches and a *drain
//! leader* concatenates everything pending into one [`Replica::replicate`]
//! call and one majority wait, so N concurrent commits cost ~1 cross-DC
//! round instead of N. Up to [`MAX_IN_FLIGHT`] drain rounds may be in
//! flight at once — batching alone would serialize commit throughput on
//! the round-trip latency, while the per-transaction path pipelines its
//! waits for free; pipelined drains (X-Paxos pipelined log slots) keep
//! both wins. Leadership is handed off on the queue's condvar — when a
//! drain completes, any enqueued committer whose result slot is still
//! empty may lead the next round — so no dedicated flusher thread exists
//! and an idle system costs nothing.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use polardbx_common::time::Timer;
use polardbx_common::metrics::{Counter, Histogram, ValueHistogram};
use polardbx_common::{Lsn, Result};
use polardbx_consensus::Replica;
use polardbx_storage::engine::Durability;
use polardbx_wal::Mtr;

/// How many queued commit batches one drain may merge into a single
/// replication round. Bounds per-round frame bytes (and follower apply
/// chunkiness) without practically limiting grouping at bench scales.
const MAX_GROUP: usize = 64;

/// How many drain rounds may be replicating concurrently. One round per
/// group amortizes the per-frame costs (leader/follower log writes, per-
/// message overhead); keeping a few rounds in flight hides the cross-DC
/// round-trip the way the per-transaction path's concurrent waits do.
const MAX_IN_FLIGHT: usize = 4;

/// Batching observability: how many consensus rounds the commit load
/// actually paid.
#[derive(Debug, Default)]
pub struct BatchMetrics {
    /// Commit batches submitted (one per `make_durable` call).
    pub txns: Counter,
    /// Replication rounds issued (one `replicate` + one majority wait).
    pub rounds: Counter,
    /// Commit batches merged into each round.
    pub group_size: ValueHistogram,
    /// Time committers spent parked waiting for a drain leader.
    pub wait_for_leader: Histogram,
}

impl BatchMetrics {
    /// Paxos rounds per committed transaction — the acceptance-bar number
    /// (1.0 = no batching; the ISSUE bar is < 0.5 at 32 committers).
    pub fn rounds_per_txn(&self) -> f64 {
        let t = self.txns.get();
        if t == 0 {
            return 0.0;
        }
        self.rounds.get() as f64 / t as f64
    }

    /// One-line summary for harness output.
    pub fn report(&self) -> String {
        format!(
            "txns={} · paxos rounds={} ({:.3} rounds/txn) · group size: mean={:.1} p95={} max={} · wait: mean={:?} p95={:?}",
            self.txns.get(),
            self.rounds.get(),
            self.rounds_per_txn(),
            self.group_size.mean(),
            self.group_size.percentile(0.95),
            self.group_size.max(),
            self.wait_for_leader.mean(),
            self.wait_for_leader.percentile(0.95),
        )
    }

    /// Reset counters (between bench rounds).
    pub fn reset(&self) {
        self.txns.reset();
        self.rounds.reset();
        self.group_size.reset();
    }
}

/// A committer's result slot: filled by whichever drain leader replicated
/// its batch.
struct Slot {
    result: Mutex<Option<Result<Lsn>>>,
}

struct Entry {
    mtrs: Vec<Mtr>,
    slot: Arc<Slot>,
}

struct QueueState {
    pending: VecDeque<Entry>,
    /// Drain rounds replicating right now (bounded by [`MAX_IN_FLIGHT`]).
    in_flight: usize,
}

/// Durability provider that routes commit-time redo through an X-Paxos
/// group: the transaction is durable once a majority of datacenters
/// persisted the log. Batched by default — use
/// [`PaxosDurability::per_transaction`] for the seed's one-round-per-commit
/// behavior (the `commit_bench` baseline).
pub struct PaxosDurability {
    replica: Arc<Replica>,
    timeout: Duration,
    /// `None` = per-transaction mode (no queue, one round per call).
    queue: Option<Mutex<QueueState>>,
    cv: Condvar,
    /// Batching metrics (rounds per txn, group sizes).
    pub metrics: Arc<BatchMetrics>,
}

impl PaxosDurability {
    /// Wrap the leader replica of a DN's Paxos group (batched group commit).
    pub fn new(replica: Arc<Replica>) -> Arc<PaxosDurability> {
        Self::with_timeout(replica, Duration::from_secs(10))
    }

    /// Batched, with an explicit majority-wait timeout.
    pub fn with_timeout(replica: Arc<Replica>, timeout: Duration) -> Arc<PaxosDurability> {
        Arc::new(PaxosDurability {
            replica,
            timeout,
            queue: Some(Mutex::new(QueueState { pending: VecDeque::new(), in_flight: 0 })),
            cv: Condvar::new(),
            metrics: Arc::new(BatchMetrics::default()),
        })
    }

    /// The seed's behavior: every `make_durable` call pays its own
    /// replication round. Kept as the baseline group commit is measured
    /// against.
    pub fn per_transaction(replica: Arc<Replica>, timeout: Duration) -> Arc<PaxosDurability> {
        Arc::new(PaxosDurability {
            replica,
            timeout,
            queue: None,
            cv: Condvar::new(),
            metrics: Arc::new(BatchMetrics::default()),
        })
    }

    /// Issue one replication round for `entries` and distribute the shared
    /// outcome to every slot.
    fn drain_round(&self, entries: Vec<Entry>) {
        let all: Vec<Mtr> = entries.iter().flat_map(|e| e.mtrs.iter().cloned()).collect();
        let res = self.replica.replicate_and_wait(&all, self.timeout);
        if res.is_err() {
            // The callers will report their commits as failed; fence the
            // un-acked log suffix so retransmission and crash recovery
            // agree with them (see `PaxosEpochSink::persist`).
            let _ = self.replica.abandon_unacked();
        }
        self.metrics.rounds.inc();
        self.metrics.group_size.record(entries.len() as u64);
        for e in &entries {
            *e.slot.result.lock() = Some(res.clone());
        }
    }

    fn make_durable_batched(&self, queue: &Mutex<QueueState>, mtrs: &[Mtr]) -> Result<Lsn> {
        let slot = Arc::new(Slot { result: Mutex::new(None) });
        self.metrics.txns.inc();
        let enrolled_at = Timer::start();
        let mut parked = false;
        let mut st = queue.lock();
        st.pending.push_back(Entry { mtrs: mtrs.to_vec(), slot: Arc::clone(&slot) });
        loop {
            if let Some(res) = slot.result.lock().take() {
                if parked {
                    self.metrics.wait_for_leader.record(enrolled_at.elapsed());
                }
                return res;
            }
            if st.in_flight < MAX_IN_FLIGHT && !st.pending.is_empty() {
                // Become a drain leader: take up to MAX_GROUP pending
                // batches (our own is among them unless another round
                // already claimed it) and pay one replication round for
                // all of them.
                st.in_flight += 1;
                let n = st.pending.len().min(MAX_GROUP);
                let entries: Vec<Entry> = st.pending.drain(..n).collect();
                drop(st);
                self.drain_round(entries);
                st = queue.lock();
                st.in_flight -= 1;
                self.cv.notify_all();
            } else {
                parked = true;
                self.cv.wait(&mut st);
            }
        }
    }
}

impl Durability for PaxosDurability {
    fn make_durable(&self, mtrs: &[Mtr]) -> Result<Lsn> {
        match &self.queue {
            Some(queue) => self.make_durable_batched(queue, mtrs),
            None => {
                self.metrics.txns.inc();
                let res = self.replica.replicate_and_wait(mtrs, self.timeout);
                if res.is_err() {
                    let _ = self.replica.abandon_unacked();
                }
                self.metrics.rounds.inc();
                self.metrics.group_size.record(1);
                res
            }
        }
    }
}

/// Epoch sink that replicates each sealed epoch as one raw batch through
/// the DN's X-Paxos group: one majority wait per *epoch*, not per
/// transaction. The epoch's record-aligned cut points become the frame
/// chunking boundaries, so followers apply whole records and the durable
/// frame stream is byte-identical to what per-transaction replication of
/// the same records would have produced.
pub struct PaxosEpochSink {
    replica: Arc<Replica>,
    timeout: Duration,
    /// Epochs replicated (== consensus rounds paid by the epoch path).
    pub rounds: Counter,
}

impl PaxosEpochSink {
    /// Wrap the leader replica of a DN's Paxos group.
    pub fn new(replica: Arc<Replica>, timeout: Duration) -> Arc<PaxosEpochSink> {
        Arc::new(PaxosEpochSink { replica, timeout, rounds: Counter::default() })
    }
}

/// Extra majority-waits granted to an epoch whose *prefix* already reached
/// quorum before the first wait timed out (see [`PaxosEpochSink::persist`]).
const IN_DOUBT_REWAITS: usize = 3;

impl polardbx_wal::EpochSink for PaxosEpochSink {
    fn persist(&self, bytes: &[u8], cuts: &[usize]) -> Result<Lsn> {
        self.rounds.inc();
        let start = self.replica.status().last_lsn;
        let end = match self.replica.replicate_raw(bytes, cuts) {
            Ok(end) => end,
            Err(e) => {
                // A mid-batch sink error can leave a frame prefix of the
                // epoch in the leader's log. The pipeline will presume-abort
                // every transaction in the epoch, so fence that prefix out
                // of the log — otherwise heal-time retransmission and crash
                // recovery would replay commits the engine rolled back.
                let _ = self.replica.abandon_unacked();
                return Err(e);
            }
        };
        match self.replica.waiters.wait(end, self.timeout) {
            Ok(()) => Ok(end),
            Err(e) => {
                // Quorum-wait failed. If the durability horizon never moved
                // past the epoch's start, no frame of it reached a majority:
                // fencing the whole epoch is sound and makes the log agree
                // with the engine's presumed abort. But if a *prefix* is
                // already majority-durable the epoch is genuinely in doubt —
                // we cannot un-commit what a quorum persisted — so grant it
                // a few more waits before giving up.
                for _ in 0..IN_DOUBT_REWAITS {
                    let dlsn = self.replica.status().dlsn;
                    if dlsn >= end {
                        return Ok(end);
                    }
                    if dlsn <= start {
                        break;
                    }
                    if self.replica.waiters.wait(end, self.timeout).is_ok() {
                        return Ok(end);
                    }
                }
                // Fence the un-acked suffix so retransmission after heal and
                // recovery's scan cannot resurrect the aborted epoch. In the
                // in-doubt case (re-waits exhausted with a partially durable
                // epoch) this still fences beyond DLSN: the residual risk is
                // that a quorum outlives the leader holding frames we now
                // abort, which only a full leader-change reconciliation
                // could repair — prefer the bounded wait above to make that
                // window vanishingly small rather than leave the log and
                // engine permanently divergent.
                let _ = self.replica.abandon_unacked();
                Err(e)
            }
        }
    }
}

/// Wire an epoch pipeline over a Paxos-replicated engine: sealed epochs
/// ride [`Replica::replicate_raw_and_wait`] (majority ack per epoch) while
/// prepare/abort/marker redo funnels through the same pipeline for
/// ordering. Returns the started pipeline; the engine owns its shutdown.
pub fn enable_paxos_epoch(
    engine: &Arc<polardbx_storage::StorageEngine>,
    replica: Arc<Replica>,
    timeout: Duration,
    cfg: polardbx_wal::EpochConfig,
) -> Arc<polardbx_wal::EpochPipeline> {
    engine.enable_epoch(PaxosEpochSink::new(replica, timeout), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{Key, Row, TableId, TenantId, TrxId, Value};
    use polardbx_consensus::{GroupConfig, PaxosGroup};
    use polardbx_simnet::LatencyMatrix;
    use polardbx_storage::{StorageEngine, WriteOp};

    #[test]
    fn engine_commits_ride_paxos() {
        let group = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = group.leader().unwrap();
        let engine = StorageEngine::with_durability(PaxosDurability::new(Arc::clone(&leader)));
        engine.create_table(TableId(1), TenantId(1));
        engine.begin(TrxId(1), 0);
        engine
            .write(
                TrxId(1),
                TableId(1),
                Key::encode(&[Value::Int(1)]),
                WriteOp::Insert(Row::new(vec![Value::Int(1)])),
            )
            .unwrap();
        let lsn = engine.commit(TrxId(1), 10).unwrap();
        assert!(lsn > Lsn::ZERO);
        // The commit is only reported after majority durability: the
        // leader's DLSN covers it.
        assert!(leader.status().dlsn >= lsn);
        // Followers replay the same data.
        let follower = &group.replicas[1];
        assert!(follower.status().last_lsn >= lsn);
    }

    #[test]
    fn commit_fails_without_quorum() {
        let group = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = group.leader().unwrap();
        group.net.partition(polardbx_common::DcId(1), polardbx_common::DcId(2));
        group.net.partition(polardbx_common::DcId(1), polardbx_common::DcId(3));
        let durability =
            PaxosDurability::with_timeout(Arc::clone(&leader), Duration::from_millis(50));
        let engine = StorageEngine::with_durability(durability);
        engine.create_table(TableId(1), TenantId(1));
        engine.begin(TrxId(1), 0);
        engine
            .write(
                TrxId(1),
                TableId(1),
                Key::encode(&[Value::Int(1)]),
                WriteOp::Insert(Row::new(vec![Value::Int(1)])),
            )
            .unwrap();
        let err = engine.commit(TrxId(1), 10).unwrap_err();
        assert!(matches!(err, polardbx_common::Error::Timeout { .. }));
        // The write was rolled back: nothing visible.
        assert_eq!(
            engine
                .read(TableId(1), &Key::encode(&[Value::Int(1)]), u64::MAX, None)
                .unwrap(),
            None
        );
    }

    #[test]
    fn concurrent_commits_share_rounds() {
        // With cross-DC latency, concurrent committers must coalesce:
        // rounds/txn well below 1 and every commit durable and visible.
        let group = PaxosGroup::build(
            GroupConfig::three_dc(1)
                .with_latency(LatencyMatrix::uniform(Duration::from_millis(2))),
        );
        let leader = group.leader().unwrap();
        let durability = PaxosDurability::new(Arc::clone(&leader));
        let metrics = Arc::clone(&durability.metrics);
        let engine = StorageEngine::with_durability(durability);
        engine.create_table(TableId(1), TenantId(1));

        const THREADS: u64 = 8;
        const PER: u64 = 10;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    for i in 0..PER {
                        let trx = TrxId(t * 1000 + i + 1);
                        let k = (t * 1000 + i) as i64;
                        engine.begin(trx, 0);
                        engine
                            .write(
                                trx,
                                TableId(1),
                                Key::encode(&[Value::Int(k)]),
                                WriteOp::Insert(Row::new(vec![Value::Int(k)])),
                            )
                            .unwrap();
                        engine.commit(trx, t * 1000 + i + 1).unwrap();
                    }
                });
            }
        });
        let txns = THREADS * PER;
        assert_eq!(metrics.txns.get(), txns);
        assert!(
            metrics.rounds.get() < txns,
            "no batching: {} rounds for {txns} txns",
            metrics.rounds.get()
        );
        assert_eq!(metrics.group_size.sum(), txns, "every batch accounted for");
        // Every commit is visible.
        assert_eq!(engine.count_rows(TableId(1), u64::MAX).unwrap(), txns as usize);
    }

    #[test]
    fn epoch_commits_ride_paxos_and_amortize_rounds() {
        // Epoch mode over a Paxos group: commits resolve once their epoch
        // reaches majority durability, and concurrent committers share
        // consensus rounds (one per epoch, not one per txn).
        let group = PaxosGroup::build(
            GroupConfig::three_dc(1)
                .with_latency(LatencyMatrix::uniform(Duration::from_millis(2))),
        );
        let leader = group.leader().unwrap();
        let engine = StorageEngine::with_durability(PaxosDurability::per_transaction(
            Arc::clone(&leader),
            Duration::from_secs(5),
        ));
        let sink = PaxosEpochSink::new(Arc::clone(&leader), Duration::from_secs(5));
        let rounds = Arc::clone(&sink);
        let pipe = engine.enable_epoch(sink, polardbx_wal::EpochConfig::default());
        engine.create_table(TableId(1), TenantId(1));

        const THREADS: u64 = 8;
        const PER: u64 = 10;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let engine = Arc::clone(&engine);
                s.spawn(move || {
                    for i in 0..PER {
                        let trx = TrxId(t * 1000 + i + 1);
                        let k = (t * 1000 + i) as i64;
                        engine.begin(trx, 0);
                        engine
                            .write(
                                trx,
                                TableId(1),
                                Key::encode(&[Value::Int(k)]),
                                WriteOp::Insert(Row::new(vec![Value::Int(k)])),
                            )
                            .unwrap();
                        engine.commit(trx, t * 1000 + i + 1).unwrap();
                    }
                });
            }
        });
        let txns = THREADS * PER;
        assert!(
            rounds.rounds.get() < txns,
            "no epoch batching: {} rounds for {txns} txns",
            rounds.rounds.get()
        );
        assert_eq!(engine.count_rows(TableId(1), u64::MAX).unwrap(), txns as usize);
        // Every commit the clients saw succeed is covered by the group's
        // durable horizon.
        assert!(leader.status().dlsn >= pipe.durable_lsn());
    }

    #[test]
    fn epoch_quorum_loss_rolls_back_the_commit() {
        // A partitioned leader cannot durably seal the epoch: the commit
        // call must fail, and the optimistically stamped write must be
        // rolled back (torn-epoch presumed abort), leaving nothing visible.
        let group = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = group.leader().unwrap();
        group.net.partition(polardbx_common::DcId(1), polardbx_common::DcId(2));
        group.net.partition(polardbx_common::DcId(1), polardbx_common::DcId(3));
        let engine = StorageEngine::with_durability(PaxosDurability::per_transaction(
            Arc::clone(&leader),
            Duration::from_millis(50),
        ));
        enable_paxos_epoch(
            &engine,
            Arc::clone(&leader),
            Duration::from_millis(50),
            polardbx_wal::EpochConfig::default(),
        );
        engine.create_table(TableId(1), TenantId(1));
        engine.begin(TrxId(1), 0);
        engine
            .write(
                TrxId(1),
                TableId(1),
                Key::encode(&[Value::Int(1)]),
                WriteOp::Insert(Row::new(vec![Value::Int(1)])),
            )
            .unwrap();
        let err = engine.commit(TrxId(1), 10).unwrap_err();
        assert!(
            matches!(err.root(), polardbx_common::Error::Timeout { .. }),
            "expected a majority-wait timeout, got {err}"
        );
        assert_eq!(
            engine
                .read(TableId(1), &Key::encode(&[Value::Int(1)]), u64::MAX, None)
                .unwrap(),
            None,
            "torn epoch must leave no visible trace"
        );
        // The pipeline heals: once the partition lifts, new commits succeed.
        group.net.heal(polardbx_common::DcId(1), polardbx_common::DcId(2));
        group.net.heal(polardbx_common::DcId(1), polardbx_common::DcId(3));
        engine.begin(TrxId(2), 20);
        engine
            .write(
                TrxId(2),
                TableId(1),
                Key::encode(&[Value::Int(2)]),
                WriteOp::Insert(Row::new(vec![Value::Int(2)])),
            )
            .unwrap();
        engine.commit(TrxId(2), 30).unwrap();
        assert!(engine
            .read(TableId(1), &Key::encode(&[Value::Int(2)]), u64::MAX, None)
            .unwrap()
            .is_some());
        // The leader's durable log must agree with the presumed abort: the
        // failed epoch was fenced, so neither heal-time retransmission nor
        // a crash-recovery replay can resurrect TrxId(1)'s commit.
        let leader_idx =
            group.replicas.iter().position(|r| Arc::ptr_eq(r, &leader)).unwrap();
        let scan = polardbx_wal::scan_frames(&group.sinks[leader_idx].frame_stream());
        assert!(scan.torn.is_none(), "fenced log must still be a clean frame stream");
        let mut stream = Vec::new();
        for f in &scan.frames {
            stream.extend_from_slice(&f.payload);
        }
        let records =
            polardbx_wal::RedoPayload::decode_all(stream.into()).unwrap();
        assert!(
            !records.iter().any(|r| matches!(
                r,
                polardbx_wal::RedoPayload::TxnCommit { trx: TrxId(1), .. }
            )),
            "fenced epoch's commit record must not survive in the durable log"
        );
        let replayed = StorageEngine::in_memory();
        replayed.create_table(TableId(1), TenantId(1));
        polardbx_storage::replay_records(&replayed, &records).unwrap();
        assert_eq!(
            replayed
                .read(TableId(1), &Key::encode(&[Value::Int(1)]), u64::MAX, None)
                .unwrap(),
            None,
            "replaying the leader's log must not resurrect the aborted commit"
        );
        assert!(
            replayed
                .read(TableId(1), &Key::encode(&[Value::Int(2)]), u64::MAX, None)
                .unwrap()
                .is_some(),
            "replaying the leader's log must keep the healed commit"
        );
    }

    #[test]
    fn batched_quorum_loss_fails_every_queued_commit() {
        let group = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = group.leader().unwrap();
        group.net.partition(polardbx_common::DcId(1), polardbx_common::DcId(2));
        group.net.partition(polardbx_common::DcId(1), polardbx_common::DcId(3));
        let durability =
            PaxosDurability::with_timeout(Arc::clone(&leader), Duration::from_millis(40));
        let results = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let d = Arc::clone(&durability);
                let results = &results;
                s.spawn(move || {
                    let mtr = Mtr::single(polardbx_wal::RedoPayload::TxnCommit {
                        trx: TrxId(i),
                        commit_ts: i,
                    });
                    results.lock().push(d.make_durable(&[mtr]).is_err());
                });
            }
        });
        assert!(results.into_inner().iter().all(|e| *e), "all queued commits must fail");
    }
}
