//! Paxos-backed DN durability (§III): commits block on cross-DC majority.

use std::sync::Arc;
use std::time::Duration;

use polardbx_common::{Lsn, Result};
use polardbx_consensus::Replica;
use polardbx_storage::engine::Durability;
use polardbx_wal::Mtr;

/// Durability provider that routes commit-time redo through an X-Paxos
/// group: the transaction is durable once a majority of datacenters
/// persisted the log (asynchronous commit — the calling thread parks on
/// the commit waiter while other transactions proceed).
pub struct PaxosDurability {
    replica: Arc<Replica>,
    timeout: Duration,
}

impl PaxosDurability {
    /// Wrap the leader replica of a DN's Paxos group.
    pub fn new(replica: Arc<Replica>) -> Arc<PaxosDurability> {
        Arc::new(PaxosDurability { replica, timeout: Duration::from_secs(10) })
    }
}

impl Durability for PaxosDurability {
    fn make_durable(&self, mtrs: &[Mtr]) -> Result<Lsn> {
        self.replica.replicate_and_wait(mtrs, self.timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{Key, Row, TableId, TenantId, TrxId, Value};
    use polardbx_consensus::{GroupConfig, PaxosGroup};
    use polardbx_storage::{StorageEngine, WriteOp};

    #[test]
    fn engine_commits_ride_paxos() {
        let group = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = group.leader().unwrap();
        let engine = StorageEngine::with_durability(PaxosDurability::new(Arc::clone(&leader)));
        engine.create_table(TableId(1), TenantId(1));
        engine.begin(TrxId(1), 0);
        engine
            .write(
                TrxId(1),
                TableId(1),
                Key::encode(&[Value::Int(1)]),
                WriteOp::Insert(Row::new(vec![Value::Int(1)])),
            )
            .unwrap();
        let lsn = engine.commit(TrxId(1), 10).unwrap();
        assert!(lsn > Lsn::ZERO);
        // The commit is only reported after majority durability: the
        // leader's DLSN covers it.
        assert!(leader.status().dlsn >= lsn);
        // Followers replay the same data.
        let follower = &group.replicas[1];
        assert!(follower.status().last_lsn >= lsn);
    }

    #[test]
    fn commit_fails_without_quorum() {
        let group = PaxosGroup::build(GroupConfig::three_dc(1));
        let leader = group.leader().unwrap();
        group.net.partition(polardbx_common::DcId(1), polardbx_common::DcId(2));
        group.net.partition(polardbx_common::DcId(1), polardbx_common::DcId(3));
        let durability = PaxosDurability {
            replica: Arc::clone(&leader),
            timeout: Duration::from_millis(50),
        };
        let engine = StorageEngine::with_durability(Arc::new(durability));
        engine.create_table(TableId(1), TenantId(1));
        engine.begin(TrxId(1), 0);
        engine
            .write(
                TrxId(1),
                TableId(1),
                Key::encode(&[Value::Int(1)]),
                WriteOp::Insert(Row::new(vec![Value::Int(1)])),
            )
            .unwrap();
        let err = engine.commit(TrxId(1), 10).unwrap_err();
        assert!(matches!(err, polardbx_common::Error::Timeout { .. }));
        // The write was rolled back: nothing visible.
        assert_eq!(
            engine
                .read(TableId(1), &Key::encode(&[Value::Int(1)]), u64::MAX, None)
                .unwrap(),
            None
        );
    }
}
