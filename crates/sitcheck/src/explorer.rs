//! Deterministic schedule explorer: seeded cluster runs whose complete
//! histories feed the [`crate::checker`].
//!
//! Each run builds a simulated cluster — three RW DNs (each with an RO
//! replica fed by log shipping), a register DN, two CN sessions — wires a
//! [`HistoryRecorder`] into every coordinator, participant and replica
//! engine, and drives a mixed workload: multi-DN bank transfers, read-only
//! audits, register read-modify-writes and cross-DN range scans. A
//! [`Schedule`] picks the fault injection: seeded message loss and
//! duplication, a coordinator crash at either 2PC failpoint, a Paxos
//! leader re-election under the register DN's durability, RO apply lag, or
//! a partition that strands a participant PREPARED mid phase-two.
//!
//! All clocks are `TestClock`-backed HLCs with deliberately skewed bases
//! (DN *i* at `1000·i` ms, CNs at 500/700 ms), so causality is carried by
//! HLC propagation alone — exactly the property the protocol mutations
//! break. The three [`Mutation`]s re-run a deterministic scenario with one
//! protocol step disabled; each must surface a named anomaly while its
//! unmutated twin stays clean. That pair of assertions is what makes the
//! checker self-validating.
//!
//! RO replicas are audited only at *watermark* snapshots: after the
//! cluster drains, each RW ships its redo tail and the audit snapshot is
//! the minimum of the DN clocks at that quiescent point. The shipped log
//! then contains every version at or below the watermark, so a clean run
//! can never produce a false fractured read on a replica.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use polardbx_common::time::mono_now;
use polardbx_common::{
    DcId, HistoryRecorder, IdGenerator, Key, NodeId, Row, TableId, TenantId, TrxId, Value,
};
use polardbx_consensus::{GroupConfig, PaxosGroup, Role};
use polardbx_hlc::{Clock, Hlc, TestClock};
use polardbx_placement::EpochMap;
use polardbx_simnet::{FaultPlan, Handler, LatencyMatrix, LinkFaults, SimNet};
use polardbx_storage::{RwNode, StorageEngine};
use polardbx_txn::checker::BankHarness;
use polardbx_txn::{
    Coordinator, DnService, ProtocolMutations, ResolverConfig, RoutingFence, TxnConfig, TxnMsg,
    WireWriteOp,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::checker::{check, derived_audit_totals, CheckReport};

/// Bank accounts live here (conserved-sum invariant).
pub const BANK: TableId = TableId(1);
/// RMW registers live here (kept out of the conserved sum).
pub const REGISTERS: TableId = TableId(2);

const DN_COUNT: u64 = 3;
const REGISTER_DN: NodeId = NodeId(4);
const CN_A: NodeId = NodeId(9);
const CN_B: NodeId = NodeId(10);

/// A fault schedule for one explorer run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// No faults: the baseline interleaving-only run.
    Clean,
    /// Seeded cross-DC message loss and duplication.
    LossyDup,
    /// CN A crashes at `txn.before_decision` mid-workload (in-doubt →
    /// presumed abort).
    CoordCrashBefore,
    /// CN A crashes at `txn.after_decision` (participants stranded
    /// PREPARED, settled from the decision log).
    CoordCrashAfter,
    /// The register DN's durability rides a Paxos group whose leader is
    /// deposed and re-elected mid-wave.
    LeaderReelection,
    /// RO replicas apply with artificial lag.
    RoLag,
    /// A partition severs CN A from DC2 right after a commit decision,
    /// stranding DN2 PREPARED mid phase-two.
    PreparedWindow,
    /// The hot REGISTERS partition is re-homed to DN1 mid-workload (the
    /// adaptive-placement cutover: freeze + epoch bump, drain, move the
    /// version store, cut routing over) under seeded cross-DC loss/dup.
    Rehome,
}

impl Schedule {
    /// Stable label used in fault plans and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::Clean => "clean",
            Schedule::LossyDup => "lossy-dup",
            Schedule::CoordCrashBefore => "coord-crash-before-decision",
            Schedule::CoordCrashAfter => "coord-crash-after-decision",
            Schedule::LeaderReelection => "leader-reelection",
            Schedule::RoLag => "ro-lag",
            Schedule::PreparedWindow => "prepared-window",
            Schedule::Rehome => "rehome",
        }
    }

    /// The quick CI subset.
    pub fn quick() -> &'static [Schedule] {
        &[
            Schedule::Clean,
            Schedule::LossyDup,
            Schedule::CoordCrashAfter,
            Schedule::RoLag,
            Schedule::Rehome,
        ]
    }

    /// The full matrix.
    pub fn all() -> &'static [Schedule] {
        &[
            Schedule::Clean,
            Schedule::LossyDup,
            Schedule::CoordCrashBefore,
            Schedule::CoordCrashAfter,
            Schedule::LeaderReelection,
            Schedule::RoLag,
            Schedule::PreparedWindow,
            Schedule::Rehome,
        ]
    }
}

/// The three self-validation mutations: each disables one protocol step
/// the checker must notice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Skip the coordinator's commit-time HLC absorb (paper step ⑥): the
    /// session's next snapshot falls below its own commit → G-SIb.
    SkipCommitClockUpdate,
    /// Readers skip PREPARED versions instead of waiting them out: a
    /// mid-phase-two audit sees half a transaction → G-SIa.
    IgnorePreparedReads,
    /// The coordinator silently forgets one participant: that DN's writes
    /// expire as an abandoned transaction → LostWrite.
    DropPrepare,
    /// A commit skips the routing-epoch fence during a placement cutover:
    /// a transaction that routed before the move commits to the *old*
    /// home, splitting the key's history across two DNs → LostUpdate.
    SkipRoutingEpochFence,
}

impl Mutation {
    /// All mutations, for the self-validation matrix.
    pub fn all() -> &'static [Mutation] {
        &[
            Mutation::SkipCommitClockUpdate,
            Mutation::IgnorePreparedReads,
            Mutation::DropPrepare,
            Mutation::SkipRoutingEpochFence,
        ]
    }

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Mutation::SkipCommitClockUpdate => "mutation-skip-commit-clock-update",
            Mutation::IgnorePreparedReads => "mutation-ignore-prepared-reads",
            Mutation::DropPrepare => "mutation-drop-prepare",
            Mutation::SkipRoutingEpochFence => "mutation-skip-routing-epoch-fence",
        }
    }
}

/// Workload shape for one run.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Seed for the fault plan and workload RNGs.
    pub seed: u64,
    /// Fault schedule.
    pub schedule: Schedule,
    /// Bank accounts (spread round-robin over the three RW DNs).
    pub accounts: usize,
    /// Initial balance per account.
    pub initial: i64,
    /// RMW registers on the register DN.
    pub registers: usize,
    /// Concurrent transfer threads per wave.
    pub transfer_threads: usize,
    /// Transfers attempted per thread per wave.
    pub transfers_per_thread: usize,
    /// Concurrent RMW threads per wave.
    pub rmw_threads: usize,
    /// RMW attempts per thread per wave.
    pub rmws_per_thread: usize,
    /// Range-scan transactions per wave.
    pub scans: usize,
    /// Primary audits per wave.
    pub audits: usize,
    /// Workload waves (drain + RO audit after the last).
    pub waves: usize,
}

impl ExplorerConfig {
    /// The quick shape used by CI and the test suite.
    pub fn quick(seed: u64, schedule: Schedule) -> ExplorerConfig {
        ExplorerConfig {
            seed,
            schedule,
            accounts: 12,
            initial: 100,
            registers: 4,
            transfer_threads: 3,
            transfers_per_thread: 6,
            rmw_threads: 2,
            rmws_per_thread: 5,
            scans: 2,
            audits: 2,
            waves: 2,
        }
    }
}

/// One completed run: the history's verdict plus the derived audit totals
/// (every entry must equal the seeded bank total in a correct run).
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// Schedule or mutation label.
    pub schedule_label: String,
    /// The seed that drove it.
    pub seed: u64,
    /// Checker verdict over the recorded history.
    pub report: CheckReport,
    /// Derived conserved-sum totals: every full read-only pass over the
    /// bank table, joined through the history (satellite of the bank
    /// harness's side-channel audit).
    pub audit_totals: Vec<(TrxId, i64)>,
}

/// All runs of one matrix sweep.
#[derive(Debug, Clone, Default)]
pub struct ExplorerOutcome {
    /// One entry per (seed, schedule) pair.
    pub runs: Vec<ScheduleRun>,
}

impl ExplorerOutcome {
    /// True when every run's history checked clean.
    pub fn all_clean(&self) -> bool {
        self.runs.iter().all(|r| r.report.is_clean())
    }
}

struct CnStub;
impl Handler<TxnMsg> for CnStub {
    fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
        m
    }
}

struct Cluster {
    net: Arc<SimNet<TxnMsg>>,
    rec: Arc<HistoryRecorder>,
    rws: Vec<Arc<RwNode>>,
    dns: Vec<Arc<DnService>>,
    ids: Arc<IdGenerator>,
    paxos: Option<PaxosGroup>,
}

/// DN *i* gets an HLC whose physical base is `1000·i` ms: commit
/// timestamps are far above CN snapshots unless HLC propagation carries
/// them back — which is exactly what the mutations sabotage.
fn dn_clock(i: u64) -> Arc<Hlc> {
    Hlc::with_physical(TestClock::at(1000 * i))
}

fn build_cluster(with_ro: bool, ro_lag: Option<Duration>, register_dn_paxos: bool) -> Cluster {
    let net = SimNet::new(LatencyMatrix::zero());
    let rec = HistoryRecorder::new();
    let mut rws = Vec::new();
    let mut dns = Vec::new();
    for i in 1..=DN_COUNT {
        let rw = RwNode::new(NodeId(i));
        // Bank DNs commit through the epoch pipeline: the whole schedule
        // explorer (and the mutation suite) exercises early lock release
        // and the durability watermark, not just the serial path.
        rw.enable_epoch();
        rw.create_table(BANK, TenantId(1));
        let dn = DnService::new(NodeId(i), Arc::clone(&rw.engine), dn_clock(i));
        dn.attach_recorder(Arc::clone(&rec));
        net.register(NodeId(i), DcId(i), Arc::clone(&dn) as Arc<dyn Handler<TxnMsg>>);
        if with_ro {
            let ro = rw.add_ro();
            ro.engine.set_recorder(Arc::clone(&rec), ro.id, true);
            if let Some(lag) = ro_lag {
                ro.set_apply_delay(lag);
            }
        }
        rws.push(rw);
        dns.push(dn);
    }
    // The register DN: plain in-memory, or commits riding a Paxos group
    // (leader re-election schedule). Consensus decisions show up in the
    // history as Note events via the replicas' event recorder.
    let (engine, paxos) = if register_dn_paxos {
        let group = PaxosGroup::build(GroupConfig::three_dc(1));
        for r in &group.replicas {
            r.set_event_recorder(Arc::clone(&rec));
        }
        let leader = group.leader().expect("bootstrap leader");
        let engine =
            StorageEngine::with_durability(polardbx::durability::PaxosDurability::new(leader));
        (engine, Some(group))
    } else {
        (StorageEngine::in_memory(), None)
    };
    engine.create_table(REGISTERS, TenantId(1));
    let dn4 = DnService::new(REGISTER_DN, engine, dn_clock(4));
    dn4.attach_recorder(Arc::clone(&rec));
    net.register(REGISTER_DN, DcId(1), Arc::clone(&dn4) as Arc<dyn Handler<TxnMsg>>);
    dns.push(dn4);

    net.register(CN_A, DcId(1), Arc::new(CnStub));
    net.register(CN_B, DcId(2), Arc::new(CnStub));
    let ids = Arc::new(IdGenerator::new());
    Cluster { net, rec, rws, dns, ids, paxos }
}

fn coordinator(c: &Cluster, me: NodeId, clock: Arc<dyn Clock>) -> Coordinator {
    Coordinator::new(me, Arc::clone(&c.net), clock, Arc::clone(&c.ids))
        .with_decision_log(NodeId(1))
        .with_config(TxnConfig {
            max_attempts: 5,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
        })
        .with_recorder(Arc::clone(&c.rec))
}

fn await_drained(dns: &[Arc<DnService>], timeout: Duration) -> bool {
    let deadline = mono_now() + timeout;
    while mono_now() < deadline {
        if dns.iter().all(|d| !d.engine.has_active_txns() && d.in_doubt_count() == 0) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn register_key(id: i64) -> Key {
    Key::encode(&[Value::Int(id)])
}

/// Dynamic register routing for the re-home schedule: the current home DN
/// plus the routing-epoch fence both workers and mover agree through.
struct RegisterRoute {
    home: AtomicU64,
    epochs: Arc<EpochMap>,
}

impl RegisterRoute {
    fn new() -> Arc<RegisterRoute> {
        Arc::new(RegisterRoute {
            home: AtomicU64::new(REGISTER_DN.raw()),
            epochs: Arc::new(EpochMap::new()),
        })
    }

    fn home(&self) -> NodeId {
        NodeId(self.home.load(Ordering::SeqCst))
    }
}

/// Live cutover of the REGISTERS partition from the register DN to DN1,
/// mirroring `PolarDbx::rehome_shard`: freeze + epoch bump, drain fenced
/// commits, wait out in-flight write intents, move the version store
/// wholesale, raise the destination clock (the register DN's HLC base is
/// 3 s ahead of DN1's — without the raise, moved versions would sit in the
/// destination's timestamp future), cut routing over, unfreeze.
fn rehome_registers(c: &Cluster, route: &RegisterRoute) {
    let src = c.dns.iter().find(|d| d.node == REGISTER_DN).expect("register DN");
    let dst = c.dns.iter().find(|d| d.node == NodeId(1)).expect("DN1");
    c.rec.note(NodeId(0), "rehome: freezing registers");
    route.epochs.freeze(REGISTERS);
    let gates_drained = route.epochs.drain(REGISTERS, Duration::from_secs(2));
    let deadline = mono_now() + Duration::from_secs(2);
    let mut writes_clear = false;
    while mono_now() < deadline {
        if !src.engine.has_active_writes_on(REGISTERS) {
            writes_clear = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if gates_drained && writes_clear {
        if let Some(store) = src.engine.detach_table(REGISTERS) {
            dst.engine.attach_table(REGISTERS, store, TenantId(1));
            dst.clock.update(src.clock.now());
            route.home.store(NodeId(1).raw(), Ordering::SeqCst);
            c.rec.note(NodeId(0), "rehome: registers cut over to DN1");
        }
    } else {
        c.rec.note(NodeId(0), "rehome: drain TIMEOUT, move skipped");
    }
    route.epochs.unfreeze(REGISTERS);
}

/// Seed registers `0..n` with value 0 through `coord`.
fn seed_registers(coord: &Coordinator, n: usize) {
    let mut txn = coord.begin();
    let mut ok = true;
    for r in 0..n {
        let id = 1000 + r as i64;
        let row = Row::new(vec![Value::Int(id), Value::Int(0)]);
        if txn.write(REGISTER_DN, REGISTERS, register_key(id), WireWriteOp::Insert(row)).is_err() {
            ok = false;
            break;
        }
    }
    if ok {
        let _ = txn.commit();
    } else {
        txn.abort();
    }
}

/// One register read-modify-write: read, increment, write back. With a
/// `route`, the register's home is dynamic and the commit is pinned to the
/// routing epoch captured here — a concurrent cutover rejects it
/// retryably instead of letting it land on the old home.
fn rmw_once(coord: &Coordinator, r: usize, route: Option<&RegisterRoute>) -> bool {
    let (home, pin) = match route {
        Some(rt) => {
            if rt.epochs.is_frozen(REGISTERS) {
                return false; // cutover in progress — back off and retry
            }
            // Epoch first, then home: a move bumps the epoch before it
            // republishes the home, so a torn pair fails fence validation.
            let epoch = rt.epochs.epoch_of(REGISTERS);
            (rt.home(), Some(epoch))
        }
        None => (REGISTER_DN, None),
    };
    let id = 1000 + r as i64;
    let key = register_key(id);
    let mut txn = coord.begin();
    if let Some(epoch) = pin {
        if txn.pin_epoch(REGISTERS, epoch).is_err() {
            txn.abort();
            return false;
        }
    }
    let got = match txn.read(home, REGISTERS, &key) {
        Ok(Some(row)) => row.get(1).ok().and_then(|v| v.as_int().ok()),
        _ => None,
    };
    let Some(v) = got else {
        txn.abort();
        return false;
    };
    let row = Row::new(vec![Value::Int(id), Value::Int(v + 1)]);
    if txn.write(home, REGISTERS, key, WireWriteOp::Update(row)).is_err() {
        txn.abort();
        return false;
    }
    txn.commit().is_ok()
}

/// One full-bank range scan across all three RW DNs in a single snapshot
/// transaction (a "predicate-ish" read: the checker derives its conserved
/// sum from the per-row observations).
fn scan_once(coord: &Coordinator, dns: &[NodeId]) -> Option<i64> {
    let mut txn = coord.begin();
    let mut total = 0i64;
    for dn in dns {
        match txn.scan(*dn, BANK, None, None) {
            Ok(rows) => {
                for (_, row) in rows {
                    total += row.get(1).ok().and_then(|v| v.as_int().ok()).unwrap_or(0);
                }
            }
            Err(_) => {
                txn.abort();
                return None;
            }
        }
    }
    txn.abort(); // read-only
    Some(total)
}

/// Audit every RW DN's RO replica at the quiescent watermark snapshot: one
/// synthetic read-only transaction whose reads are recorded with
/// `replica = true`.
fn replica_audit(c: &Cluster, harness: &BankHarness, snapshot: u64) {
    let trx = TrxId(c.ids.next_id());
    for i in 0..harness.accounts {
        let dn = harness.dn_of(i);
        let rw = &c.rws[(dn.raw() - 1) as usize];
        if let Some(ro) = rw.ros().first() {
            let _ = ro.engine.read(BANK, &harness.key(i), snapshot, Some(trx));
        }
    }
}

/// Ship each RW's redo tail and wait for its replicas to apply it.
fn ship_and_wait(rws: &[Arc<RwNode>], timeout: Duration) -> bool {
    for rw in rws {
        let target = rw.ship();
        let deadline = mono_now() + timeout;
        for ro in rw.ros() {
            while ro.applied_lsn() < target && mono_now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if ro.applied_lsn() < target {
                return false;
            }
        }
    }
    true
}

/// Depose the Paxos leader mid-wave, elect a follower, then bring the old
/// leader back and re-elect it (the register DN's pinned durability heals).
fn reelection_storm(group: &PaxosGroup) {
    let Some(leader) = group.leader() else { return };
    let old = leader.me;
    group.net.crash(old);
    let follower = Arc::clone(&group.replicas[1]);
    let deadline = mono_now() + Duration::from_secs(2);
    while follower.status().role != Role::Leader && mono_now() < deadline {
        follower.campaign();
        std::thread::sleep(Duration::from_millis(5));
    }
    group.net.restart(old);
    let deadline = mono_now() + Duration::from_secs(2);
    while leader.status().role != Role::Leader && mono_now() < deadline {
        leader.campaign();
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Run one seeded schedule and return the checked history.
pub fn run(cfg: &ExplorerConfig) -> ScheduleRun {
    let lag = match cfg.schedule {
        Schedule::RoLag => Some(Duration::from_millis(10)),
        _ => None,
    };
    let c = build_cluster(true, lag, cfg.schedule == Schedule::LeaderReelection);

    // The re-home schedule routes registers dynamically through a fenced
    // routing table; every other schedule pins them to the register DN.
    let route = (cfg.schedule == Schedule::Rehome).then(RegisterRoute::new);
    let with_fence = |coord: Coordinator| match &route {
        Some(rt) => coord.with_fence(Arc::clone(&rt.epochs) as Arc<dyn RoutingFence>),
        None => coord,
    };

    // CN A carries the schedule's failpoint; CN B stays healthy so the
    // workload keeps making progress when A crashes.
    let decisions = Arc::new(AtomicU64::new(0));
    let coord_a = {
        let base = coordinator(&c, CN_A, Hlc::with_physical(TestClock::at(500)));
        let net = Arc::clone(&c.net);
        let rec = Arc::clone(&c.rec);
        let count = Arc::clone(&decisions);
        match cfg.schedule {
            Schedule::CoordCrashBefore => base.with_failpoint(Arc::new(move |point| {
                if point == "txn.before_decision" && count.fetch_add(1, Ordering::SeqCst) + 1 == 4 {
                    rec.note(CN_A, "failpoint: crash CN before decision");
                    net.crash(CN_A);
                }
            })),
            Schedule::CoordCrashAfter => base.with_failpoint(Arc::new(move |point| {
                if point == "txn.after_decision" && count.fetch_add(1, Ordering::SeqCst) + 1 == 4 {
                    rec.note(CN_A, "failpoint: crash CN after decision");
                    net.crash(CN_A);
                }
            })),
            Schedule::PreparedWindow => base.with_failpoint(Arc::new(move |point| {
                if point == "txn.after_decision" && count.fetch_add(1, Ordering::SeqCst) + 1 == 3 {
                    rec.note(CN_A, "failpoint: partition dc1/dc2 after decision");
                    net.partition(DcId(1), DcId(2));
                }
            })),
            _ => base,
        }
    };
    let coords = [
        Arc::new(with_fence(coord_a)),
        Arc::new(with_fence(coordinator(&c, CN_B, Hlc::with_physical(TestClock::at(700))))),
    ];

    let harness = Arc::new(BankHarness {
        table: BANK,
        dns: (1..=DN_COUNT).map(NodeId).collect(),
        accounts: cfg.accounts,
        initial: cfg.initial,
    });
    // Seed through CN B (never failpointed). CN B absorbs each seed
    // commit's timestamp (step ⑥); CN A would not — statements carry the
    // snapshot *to* the DN (step ②/③) but replies do not ship the DN clock
    // back, so with frozen skewed clocks CN A would stay below the seeded
    // data forever and its whole workload would no-op. Real deployments
    // close this gap with the CN↔GMS heartbeat; model one exchange.
    harness.seed(&coords[1]).expect("seeding must succeed on a quiet cluster");
    seed_registers(&coords[1], cfg.registers);
    coords[0].clock().update(coords[1].clock().now());

    if matches!(cfg.schedule, Schedule::LossyDup | Schedule::Rehome) {
        c.net.set_fault_plan(
            FaultPlan::new(cfg.seed)
                .with_label(cfg.schedule.label())
                .with_cross_dc(LinkFaults::lossy(0.08).with_duplicate(0.05)),
        );
    }

    // Background resolvers keep PREPARED/abandoned work moving throughout.
    let resolver_cfg = ResolverConfig {
        interval: Duration::from_millis(10),
        in_doubt_after: Duration::from_millis(40),
        abandon_active_after: Duration::from_millis(150),
    };
    let resolvers: Vec<_> = c
        .dns
        .iter()
        .map(|d| d.start_resolver(Arc::clone(&c.net), resolver_cfg).expect("resolver"))
        .collect();

    let bank_dns: Vec<NodeId> = (1..=DN_COUNT).map(NodeId).collect();
    for wave in 0..cfg.waves {
        std::thread::scope(|s| {
            if wave == 0 {
                if let Some(group) = &c.paxos {
                    s.spawn(move || {
                        std::thread::sleep(Duration::from_millis(10));
                        reelection_storm(group);
                    });
                }
                if let Some(rt) = &route {
                    let c = &c;
                    s.spawn(move || {
                        std::thread::sleep(Duration::from_millis(8));
                        rehome_registers(c, rt);
                    });
                }
            }
            for t in 0..cfg.transfer_threads {
                let coord = Arc::clone(&coords[t % coords.len()]);
                let h = Arc::clone(&harness);
                let seed = cfg.seed ^ ((wave as u64) << 32) ^ (t as u64);
                let n = cfg.transfers_per_thread;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x51C4_0000 ^ seed);
                    for _ in 0..n {
                        let a = rng.gen_range(0..h.accounts);
                        let mut b = rng.gen_range(0..h.accounts);
                        if a == b {
                            b = (b + 1) % h.accounts;
                        }
                        for _ in 0..3 {
                            match h.transfer(&coord, a, b, 1) {
                                Ok(()) => break,
                                Err(e) if e.is_retryable() => continue,
                                Err(_) => break,
                            }
                        }
                    }
                });
            }
            for t in 0..cfg.rmw_threads {
                let coord = Arc::clone(&coords[(t + 1) % coords.len()]);
                let seed = cfg.seed ^ ((wave as u64) << 40) ^ (t as u64);
                let n = cfg.rmws_per_thread;
                let regs = cfg.registers.max(1);
                let route = route.as_deref();
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x4A7_0000 ^ seed);
                    for _ in 0..n {
                        let r = rng.gen_range(0..regs);
                        for _ in 0..5 {
                            if rmw_once(&coord, r, route) {
                                break;
                            }
                        }
                    }
                });
            }
            for i in 0..cfg.scans {
                let coord = Arc::clone(&coords[i % coords.len()]);
                let dns = bank_dns.clone();
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(2 + i as u64));
                    let _ = scan_once(&coord, &dns);
                });
            }
            for i in 0..cfg.audits {
                let coord = Arc::clone(&coords[(i + 1) % coords.len()]);
                let h = Arc::clone(&harness);
                s.spawn(move || {
                    std::thread::sleep(Duration::from_millis(1 + i as u64));
                    let _ = h.audit(&coord);
                });
            }
        });
    }

    // Heal everything and drain: restart the (possibly crashed) CN, lift
    // partitions and fault plans, then let the resolvers settle the rest.
    c.net.clear_fault_plan();
    c.net.restart(CN_A);
    c.net.heal(DcId(1), DcId(2));
    if let Some(group) = &c.paxos {
        // Make sure a leader exists so pending register commits can land.
        let deadline = mono_now() + Duration::from_secs(2);
        while group.leader().is_none() && mono_now() < deadline {
            group.replicas[0].campaign();
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let drained = await_drained(&c.dns, Duration::from_secs(10));
    c.rec.note(NodeId(0), if drained { "drain: quiesced" } else { "drain: TIMEOUT" });

    // Quiescent watermark: every commit applied on DN i is at or below DN
    // i's clock now, so the minimum is a consistent replica cut.
    let watermark =
        c.dns[..DN_COUNT as usize].iter().map(|d| d.clock.now().raw()).min().unwrap_or(u64::MAX);
    if ship_and_wait(&c.rws, Duration::from_secs(5)) {
        for _ in 0..2 {
            replica_audit(&c, &harness, watermark);
        }
    } else {
        c.rec.note(NodeId(0), "replica ship: TIMEOUT");
    }

    for r in resolvers {
        r.stop();
    }
    finish(c, cfg.schedule.label(), cfg.seed, cfg.accounts)
}

fn finish(c: Cluster, label: &str, seed: u64, accounts: usize) -> ScheduleRun {
    let events = c.rec.take();
    let report = check(&events);
    let audit_totals = derived_audit_totals(&events, BANK, 1, accounts);
    c.net.shutdown();
    ScheduleRun { schedule_label: label.into(), seed, report, audit_totals }
}

/// Run the full (seed × schedule) sweep.
pub fn sweep(seeds: &[u64], schedules: &[Schedule]) -> ExplorerOutcome {
    let mut out = ExplorerOutcome::default();
    for &seed in seeds {
        for &schedule in schedules {
            out.runs.push(run(&ExplorerConfig::quick(seed, schedule)));
        }
    }
    out
}

/// Deterministic scenario for one mutation. `mutated = false` runs the
/// identical schedule with the protocol intact — the twin that must come
/// back clean.
fn mutation_scenario(m: Mutation, seed: u64, mutated: bool) -> ScheduleRun {
    let c = build_cluster(false, None, false);
    let accounts = 4usize;
    let harness = BankHarness {
        table: BANK,
        dns: (1..=DN_COUNT).map(NodeId).collect(),
        accounts,
        initial: 100,
    };
    let drain_cfg = ResolverConfig {
        interval: Duration::from_millis(1),
        in_doubt_after: Duration::ZERO,
        abandon_active_after: if m == Mutation::DropPrepare {
            Duration::ZERO
        } else {
            Duration::from_secs(1)
        },
    };
    let label = if mutated { m.label().to_string() } else { format!("{}-unmutated", m.label()) };

    match m {
        Mutation::SkipCommitClockUpdate => {
            // One session does everything: with step ⑥ gone, its own clock
            // never learns its own commit timestamps, so the next Begin's
            // snapshot falls below the previous commit.
            let coord = coordinator(&c, CN_A, Hlc::with_physical(TestClock::at(500)))
                .with_mutations(ProtocolMutations {
                    skip_commit_clock_update: mutated,
                    ..Default::default()
                });
            let _ = harness.seed(&coord);
            let _ = harness.transfer(&coord, 0, 1, 5);
            let _ = harness.audit(&coord);
        }
        Mutation::IgnorePreparedReads => {
            // A shared session clock: the plain coordinator seeds, then the
            // failpointed one commits a transfer whose phase-two post to
            // DN2 is severed by a partition. The audit then runs while DN2
            // is still PREPARED. Correct behaviour: the audit's DN2 read
            // waits until a resolver commits from the decision log.
            // Mutated: the read skips the PREPARED version → fracture.
            let clock: Arc<Hlc> = Hlc::with_physical(TestClock::at(500));
            let seeder = coordinator(&c, CN_A, Arc::clone(&clock) as Arc<dyn Clock>);
            let _ = harness.seed(&seeder);
            if mutated {
                c.rws[1].engine.set_ignore_prepared_reads(true);
            }
            let net = Arc::clone(&c.net);
            let coord = coordinator(&c, CN_A, Arc::clone(&clock) as Arc<dyn Clock>)
                .with_failpoint(Arc::new(move |point| {
                    if point == "txn.after_decision" {
                        net.partition(DcId(1), DcId(2));
                    }
                }));
            // Accounts 0 → DN1 (DC1, reachable) and 1 → DN2 (DC2, severed).
            let committed = harness.transfer(&coord, 0, 1, 5).is_ok();
            c.net.heal(DcId(1), DcId(2));
            if committed {
                if mutated {
                    // The audit sees DN1's new version and skips DN2's
                    // PREPARED one; resolve afterwards to drain.
                    let _ = harness.audit(&seeder);
                    c.dns[1].resolve_once(&c.net, &drain_cfg);
                } else {
                    // The audit blocks on DN2's PREPARED version until the
                    // resolver learns the commit from the decision log.
                    std::thread::scope(|s| {
                        s.spawn(|| {
                            std::thread::sleep(Duration::from_millis(10));
                            c.dns[1].resolve_once(&c.net, &drain_cfg);
                        });
                        let _ = harness.audit(&seeder);
                    });
                }
            }
        }
        Mutation::DropPrepare => {
            // Seed cleanly, then commit a transfer whose coordinator has
            // silently forgotten DN2: the commit succeeds on DN1 alone and
            // DN2's intent dies as an abandoned transaction.
            let clock: Arc<Hlc> = Hlc::with_physical(TestClock::at(500));
            let seeder = coordinator(&c, CN_A, Arc::clone(&clock) as Arc<dyn Clock>);
            let _ = harness.seed(&seeder);
            let coord = coordinator(&c, CN_A, Arc::clone(&clock) as Arc<dyn Clock>)
                .with_mutations(ProtocolMutations {
                    drop_participant: if mutated { Some(NodeId(2)) } else { None },
                    ..Default::default()
                });
            let _ = harness.transfer(&coord, 0, 1, 5);
            // Expire whatever the dropped participant was left holding.
            c.dns[1].resolve_once(&c.net, &drain_cfg);
            let _ = harness.audit(&seeder);
        }
        Mutation::SkipRoutingEpochFence => {
            // An adaptive-placement cutover with the routing-epoch fence as
            // the only protection: the mover bumps the epoch and copies the
            // register to a new home while an RMW that routed *before* the
            // move still holds a pin on the old epoch. Intact protocol:
            // that commit is rejected and retried at the new home.
            // Mutated: it commits to the old home — both it and the copy
            // transaction read the same pre-move version and committed
            // writes over it, the textbook lost update.
            let clock: Arc<Hlc> = Hlc::with_physical(TestClock::at(500));
            let epochs = Arc::new(EpochMap::new());
            let seeder = coordinator(&c, CN_A, Arc::clone(&clock) as Arc<dyn Clock>);
            seed_registers(&seeder, 1);
            let new_home = NodeId(1);
            c.dns[0].engine.create_table(REGISTERS, TenantId(1));
            let coord = coordinator(&c, CN_A, Arc::clone(&clock) as Arc<dyn Clock>)
                .with_fence(Arc::clone(&epochs) as Arc<dyn RoutingFence>)
                .with_mutations(ProtocolMutations {
                    skip_routing_epoch_fence: mutated,
                    ..Default::default()
                });
            let key = register_key(1000);
            // The stale transaction: routed to the old home, pinned to the
            // pre-move epoch, held open across the cutover.
            let mut txn = coord.begin();
            let _ = txn.pin_epoch(REGISTERS, epochs.epoch_of(REGISTERS));
            let v = match txn.read(REGISTER_DN, REGISTERS, &key) {
                Ok(Some(row)) => row.get(1).ok().and_then(|x| x.as_int().ok()).unwrap_or(0),
                _ => 0,
            };
            let _ = txn.write(
                REGISTER_DN,
                REGISTERS,
                key.clone(),
                WireWriteOp::Update(Row::new(vec![Value::Int(1000), Value::Int(v + 1)])),
            );
            // The cutover: freeze + epoch bump, copy the committed register
            // to DN1 (the mover's own transaction is unfenced — it *is* the
            // cutover), unfreeze. The old home's row is left behind; only
            // the fence keeps anyone from writing to it.
            epochs.freeze(REGISTERS);
            let mut mv = seeder.begin();
            match mv.read(REGISTER_DN, REGISTERS, &key) {
                Ok(Some(row)) => {
                    let _ = mv.write(new_home, REGISTERS, key.clone(), WireWriteOp::Insert(row));
                    let _ = mv.commit();
                }
                _ => mv.abort(),
            }
            epochs.unfreeze(REGISTERS);
            // Commit the stale transaction: the fence rejects it (its epoch
            // moved) unless mutated.
            if txn.commit().is_err() {
                // Intact path: retry where the register now lives, pinned
                // to the current epoch.
                let mut retry = coord.begin();
                let _ = retry.pin_epoch(REGISTERS, epochs.epoch_of(REGISTERS));
                match retry.read(new_home, REGISTERS, &key) {
                    Ok(Some(row)) => {
                        let nv = row.get(1).ok().and_then(|x| x.as_int().ok()).unwrap_or(0);
                        let _ = retry.write(
                            new_home,
                            REGISTERS,
                            key.clone(),
                            WireWriteOp::Update(Row::new(vec![
                                Value::Int(1000),
                                Value::Int(nv + 1),
                            ])),
                        );
                        let _ = retry.commit();
                    }
                    _ => retry.abort(),
                }
            }
            // Post-move traffic only ever sees the new home.
            let mut reader = seeder.begin();
            let _ = reader.read(new_home, REGISTERS, &key);
            reader.abort();
        }
    }

    // Settle any leftovers so the history ends at a quiescent point.
    let deadline = mono_now() + Duration::from_secs(3);
    while mono_now() < deadline
        && c.dns.iter().any(|d| d.engine.has_active_txns() || d.in_doubt_count() > 0)
    {
        for d in &c.dns {
            d.resolve_once(&c.net, &drain_cfg);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    finish(c, &label, seed, accounts)
}

/// Run the deterministic mutated scenario: the checker must flag it.
pub fn run_mutated(m: Mutation, seed: u64) -> ScheduleRun {
    mutation_scenario(m, seed, true)
}

/// Run the identical scenario without the mutation: must check clean.
pub fn run_unmutated_twin(m: Mutation, seed: u64) -> ScheduleRun {
    mutation_scenario(m, seed, false)
}
