//! `sitcheck` — history-based snapshot-isolation checking for the
//! simulated PolarDB-X cluster.
//!
//! Three pieces (ROADMAP: isolation testing):
//!
//! * [`checker`] — an Adya-style anomaly detector over recorded histories
//!   ([`polardbx_common::TxnEvent`] logs tapped from the coordinator, the
//!   participants and the storage MVCC read path). Detects G0, G1a/b/c,
//!   G-SI fractured reads and missed effects, lost update, lost write and
//!   commit-timestamp disagreement, each with a minimal witness cycle.
//! * [`explorer`] — a deterministic, seeded schedule explorer that runs
//!   mixed workloads (multi-DN transfers, audits, register RMWs, range
//!   scans, RO-replica reads) over `simnet` across a fault-schedule matrix
//!   (message loss/duplication, coordinator crash at 2PC failpoints,
//!   leader re-election, replica lag) and feeds every completed history
//!   through the checker. Also hosts the three protocol *mutations* that
//!   self-validate the checker: each must produce a named anomaly.
//! * [`report`] — plain-text rendering of check results for CI artifacts.
//! * [`recovery`] — the crashpoint torture harness: amnesia-restart a DN
//!   at seeded crashpoints (mid-group-flush, between prepare and commit,
//!   during paxos drain), recover from the durable log, and verify RPO=0,
//!   replay idempotence, the conserved sum and a clean Adya report across
//!   the restart boundary.

pub mod checker;
pub mod explorer;
pub mod recovery;
pub mod report;

pub use checker::{
    check, derived_audit_totals, Anomaly, AnomalyKind, CheckReport, EdgeKind, HistoryStats,
    WitnessEdge, WriteSkewCandidate,
};
pub use explorer::{ExplorerConfig, ExplorerOutcome, Mutation, Schedule, ScheduleRun};
pub use recovery::{run_crashpoint, CrashPoint, RecoveryConfig, RecoveryRun};
pub use report::{render_recovery_report, render_report};
