//! `sitcheck` — run the seeded isolation matrix and write a report.
//!
//! ```text
//! sitcheck [--quick | --full] [--seeds N] [--base-seed HEX]
//!          [--mutations] [--out PATH]
//! ```
//!
//! Exit status is non-zero when any unmutated run reports an anomaly, any
//! derived audit total disagrees, or any mutation goes undetected.

use polardbx_common::testseed::{format_seed, parse_seed, seed_from_env};
use polardbx_sitcheck::explorer::{self, ExplorerConfig, Mutation, Schedule};
use polardbx_sitcheck::report::render_report;
use polardbx_sitcheck::AnomalyKind;

const DEFAULT_BASE_SEED: u64 = 0x51_C4EC;

struct Args {
    quick: bool,
    seeds: usize,
    base_seed: u64,
    mutations: bool,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: true,
        seeds: 4,
        base_seed: seed_from_env(DEFAULT_BASE_SEED),
        mutations: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--full" => {
                args.quick = false;
                args.seeds = args.seeds.max(8);
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                args.seeds = v.parse().map_err(|_| format!("bad --seeds {v}"))?;
            }
            "--base-seed" => {
                let v = it.next().ok_or("--base-seed needs a value")?;
                args.base_seed = parse_seed(&v).ok_or(format!("bad --base-seed {v}"))?;
            }
            "--mutations" => args.mutations = true,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--help" | "-h" => {
                println!(
                    "usage: sitcheck [--quick|--full] [--seeds N] [--base-seed HEX] \
                     [--mutations] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

/// Rewrite the (partial) report after every run. CI's artifact step is
/// `if: always()`, but an artifact can only capture what reached disk: a
/// panic or runner timeout mid-matrix used to discard every witness
/// rendered so far because the report was written once at exit. Flushing
/// per run means a flaky schedule (the ro-lag witness especially) leaves
/// its evidence behind even when the job dies on a later run.
fn flush_report(path: Option<&String>, text: &str) {
    if let Some(path) = path {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("sitcheck: cannot write {path}: {e}");
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sitcheck: {e}");
            std::process::exit(2);
        }
    };
    let schedules = if args.quick { Schedule::quick() } else { Schedule::all() };
    let seeds: Vec<u64> = (0..args.seeds as u64).map(|i| args.base_seed.wrapping_add(i)).collect();
    println!(
        "sitcheck: {} schedule(s) x {} seed(s), base seed {}",
        schedules.len(),
        seeds.len(),
        format_seed(args.base_seed)
    );

    let mut report_text = String::new();
    let mut failed = false;
    let expected_total = 12 * 100i64; // ExplorerConfig::quick's bank shape

    for &seed in &seeds {
        for &schedule in schedules {
            let run = explorer::run(&ExplorerConfig::quick(seed, schedule));
            let text = render_report(&run);
            print!("{text}");
            report_text.push_str(&text);
            if !run.report.is_clean() {
                failed = true;
            }
            for (trx, total) in &run.audit_totals {
                if *total != expected_total {
                    failed = true;
                    let line = format!(
                        "  AUDIT MISMATCH: {trx} summed {total}, expected {expected_total}\n"
                    );
                    print!("{line}");
                    report_text.push_str(&line);
                }
            }
            flush_report(args.out.as_ref(), &report_text);
        }
    }

    if args.mutations {
        for &m in Mutation::all() {
            let expect: &[AnomalyKind] = match m {
                Mutation::SkipCommitClockUpdate => &[AnomalyKind::GSIb],
                Mutation::IgnorePreparedReads => &[AnomalyKind::GSIa],
                Mutation::DropPrepare => &[AnomalyKind::LostWrite],
                // A fence-skipped commit lands on the abandoned old home;
                // depending on interleaving the checker names it a lost
                // update, a lost write, or a missed effect.
                Mutation::SkipRoutingEpochFence => {
                    &[AnomalyKind::LostUpdate, AnomalyKind::LostWrite, AnomalyKind::GSIb]
                }
            };
            let mutated = explorer::run_mutated(m, args.base_seed);
            let twin = explorer::run_unmutated_twin(m, args.base_seed);
            let caught = expect.iter().any(|k| mutated.report.has(*k));
            let twin_clean = twin.report.is_clean();
            let expect_names =
                expect.iter().map(|k| k.name()).collect::<Vec<_>>().join(" | ");
            let line = format!(
                "=== {} === expected {} : {} | unmutated twin: {}\n",
                mutated.schedule_label,
                expect_names,
                if caught { "DETECTED" } else { "MISSED" },
                if twin_clean { "clean" } else { "ANOMALOUS" },
            );
            print!("{line}");
            report_text.push_str(&line);
            report_text.push_str(&render_report(&mutated));
            if !twin_clean {
                report_text.push_str(&render_report(&twin));
            }
            if !caught || !twin_clean {
                failed = true;
            }
            flush_report(args.out.as_ref(), &report_text);
        }
    }

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &report_text) {
            eprintln!("sitcheck: cannot write {path}: {e}");
            failed = true;
        } else {
            println!("sitcheck: report written to {path}");
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
