//! Plain-text rendering of checker output for humans and CI artifacts.

use std::fmt::Write as _;

use crate::checker::CheckReport;
use crate::explorer::ScheduleRun;
use crate::recovery::RecoveryRun;

/// Render one schedule run (history stats, anomalies with witness cycles,
/// write-skew candidates) as the `sitcheck-report.txt` block format.
pub fn render_report(run: &ScheduleRun) -> String {
    let mut s = String::new();
    let verdict = if run.report.is_clean() { "CLEAN" } else { "ANOMALOUS" };
    let _ = writeln!(
        s,
        "=== schedule={} seed={:#x} {} ===",
        run.schedule_label, run.seed, verdict
    );
    let _ = writeln!(
        s,
        "    events={} txns={} committed={} aborted={} reads={} (replica {}) writes={}",
        run.report.stats.events,
        run.report.stats.txns,
        run.report.stats.committed,
        run.report.stats.aborted,
        run.report.stats.reads,
        run.report.stats.replica_reads,
        run.report.stats.writes,
    );
    for note in &run.report.stats.notes {
        let _ = writeln!(s, "    note: {note}");
    }
    render_anomalies(&mut s, &run.report);
    s
}

/// Render one crash-restart torture run for the CI artifact: the recovery
/// metrics line plus any anomalies the Adya checker found across the
/// restart boundary.
pub fn render_recovery_report(run: &RecoveryRun) -> String {
    let mut s = String::new();
    let verdict = if run.passed() { "PASS" } else { "FAIL" };
    let _ = writeln!(
        s,
        "=== crashpoint={} seed={:#x} {} ===",
        run.crashpoint_label, run.seed, verdict
    );
    let _ = writeln!(
        s,
        "    acked={} lost_acked={} in_doubt={} rto={:.2?} truncated_bytes={} \
         replay_idempotent={} conserved={} ({} vs {}) amnesia_restarts={}",
        run.acked_commits,
        run.lost_acked,
        run.in_doubt_recovered,
        run.rto,
        run.truncated_bytes,
        run.replay_idempotent,
        run.conserved_ok,
        run.observed_total,
        run.expected_total,
        run.amnesia_restarts,
    );
    if !run.recovered_in_time {
        let _ = writeln!(s, "    RECOVERY TIMED OUT — the victim never served again");
    }
    render_anomalies(&mut s, &run.report);
    s
}

fn render_anomalies(s: &mut String, report: &CheckReport) {
    for a in &report.anomalies {
        let _ = writeln!(s, "  [{}] {}", a.kind.name(), a.description);
        if !a.cycle.is_empty() {
            let _ = writeln!(s, "    witness cycle ({} edges):", a.cycle.len());
            for e in &a.cycle {
                let _ = writeln!(s, "      {}", e.render());
            }
        } else if !a.txns.is_empty() {
            let txns: Vec<String> = a.txns.iter().map(|t| t.to_string()).collect();
            let _ = writeln!(s, "    involved: {}", txns.join(", "));
        }
    }
    if !report.write_skew_candidates.is_empty() {
        let _ = writeln!(
            s,
            "  (info) {} write-skew candidate pair(s) — legal under SI",
            report.write_skew_candidates.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, CheckReport};
    use crate::explorer::ScheduleRun;

    #[test]
    fn report_renders_clean_run() {
        let run = ScheduleRun {
            schedule_label: "clean".into(),
            seed: 0xBEEF,
            report: check(&[]),
            audit_totals: Vec::new(),
        };
        let text = render_report(&run);
        assert!(text.contains("schedule=clean"));
        assert!(text.contains("seed=0xbeef"));
        assert!(text.contains("CLEAN"));
    }

    #[test]
    fn report_renders_witness_cycle() {
        use crate::checker::{Anomaly, AnomalyKind, EdgeKind, WitnessEdge};
        use polardbx_common::TrxId;
        let mut report = CheckReport::default();
        report.anomalies.push(Anomaly {
            kind: AnomalyKind::G0,
            description: "write cycle".into(),
            txns: vec![TrxId(1), TrxId(2)],
            cycle: vec![
                WitnessEdge { from: TrxId(1), to: TrxId(2), kind: EdgeKind::Ww, key: None },
                WitnessEdge { from: TrxId(2), to: TrxId(1), kind: EdgeKind::Ww, key: None },
            ],
        });
        let run = ScheduleRun {
            schedule_label: "mutated".into(),
            seed: 1,
            report,
            audit_totals: Vec::new(),
        };
        let text = render_report(&run);
        assert!(text.contains("ANOMALOUS"));
        assert!(text.contains("[G0]"));
        assert!(text.contains("trx1 --ww--> trx2"));
    }
}
