//! Adya-style anomaly detection over recorded histories.
//!
//! The checker consumes the totally-ordered event log produced by
//! [`polardbx_common::HistoryRecorder`] and rebuilds, per key, the version
//! order of committed writes, then the direct serialization graph (DSG)
//! with ww (version succession), wr (read-from) and rw (anti-dependency)
//! edges. Against those it tests:
//!
//! * **G0** — a cycle of ww edges (contradictory version orders; also fired
//!   when a key's intent-installation order disagrees with its commit
//!   timestamp order).
//! * **G1a** — a read observed a version whose writer aborted.
//! * **G1b** — a read observed an *undecided* version of another
//!   transaction that later committed (an intermediate state).
//! * **G1c** — a cycle of ww ∪ wr edges.
//! * **G-SIa** — a fractured read: a transaction saw writer `W` on one key
//!   but a pre-`W` version on another key `W` also wrote.
//! * **G-SIb** — missed effects: a committed version below the reader's
//!   snapshot was skipped, a session began below a commit it causally
//!   follows, or an rw edge closes a ww∪wr path into a single-rw cycle.
//! * **LostUpdate** — two committed writers of a key both read the same
//!   predecessor version (first-committer-wins must have stopped one).
//! * **LostWrite** — a transaction globally committed yet a participant
//!   aborted it (its writes there are gone).
//! * **CommitTsMismatch** — two nodes stamped different commit timestamps
//!   for the same transaction.
//!
//! Write skew (a cycle with two or more rw edges) is *legal* under SI and
//! reported separately as an informational candidate list.
//!
//! # Soundness notes
//!
//! The below-snapshot ("missed effects") test is applied only to reads
//! served by primary DNs: HLC-SI's `ClockUpdate` on statement arrival
//! guarantees any later commit on that DN outruns the snapshot, and
//! PREPARED versions are waited out, so a committed version under the
//! snapshot that the read skipped is a genuine violation. RO-replica reads
//! ([`polardbx_common::TxnEvent::Read`]'s `replica` flag) apply log order,
//! not timestamp order, so for them only read-atomicity (G-SIa) and
//! aborted/intermediate-read rules are checked.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use polardbx_common::{Key, NodeId, TableId, TrxId, TxnEvent, VersionRef};

/// Cap on anomalies collected per class: a badly broken history (mutation
/// runs) would otherwise flood the report with thousands of witnesses of
/// the same defect.
const MAX_PER_KIND: usize = 32;

/// Anomaly classes, after Adya (G0/G1) and the SI-specific phenomena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// Write cycle: contradictory ww version orders.
    G0,
    /// Aborted read.
    G1a,
    /// Intermediate (undecided) read of a later-committed transaction.
    G1b,
    /// Cyclic information flow (ww ∪ wr cycle).
    G1c,
    /// Fractured read (interference): saw part of a committed transaction.
    GSIa,
    /// Missed effects: skipped a committed version below the snapshot,
    /// session-order inversion, or a single-rw DSG cycle.
    GSIb,
    /// Two committed writers both read the same predecessor of a key.
    LostUpdate,
    /// Globally committed but aborted on a participant.
    LostWrite,
    /// Participants stamped different commit timestamps.
    CommitTsMismatch,
}

impl AnomalyKind {
    /// Stable name used in reports and CI greps.
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyKind::G0 => "G0",
            AnomalyKind::G1a => "G1a",
            AnomalyKind::G1b => "G1b",
            AnomalyKind::G1c => "G1c",
            AnomalyKind::GSIa => "G-SIa",
            AnomalyKind::GSIb => "G-SIb",
            AnomalyKind::LostUpdate => "LostUpdate",
            AnomalyKind::LostWrite => "LostWrite",
            AnomalyKind::CommitTsMismatch => "CommitTsMismatch",
        }
    }
}

/// DSG edge kinds (plus the session-order edge used in witnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Version succession on a key.
    Ww,
    /// Read-from.
    Wr,
    /// Anti-dependency (read a version someone later overwrote).
    Rw,
    /// Same-CN session order (commit observed before the next begin).
    Session,
}

impl EdgeKind {
    fn label(&self) -> &'static str {
        match self {
            EdgeKind::Ww => "ww",
            EdgeKind::Wr => "wr",
            EdgeKind::Rw => "rw",
            EdgeKind::Session => "session",
        }
    }
}

/// One edge of a witness cycle.
#[derive(Debug, Clone)]
pub struct WitnessEdge {
    /// Source transaction.
    pub from: TrxId,
    /// Target transaction.
    pub to: TrxId,
    /// Dependency kind.
    pub kind: EdgeKind,
    /// Key the dependency runs through (None for session edges).
    pub key: Option<(TableId, Key)>,
}

impl WitnessEdge {
    /// Render as `T3 --ww[k]--> T5`.
    pub fn render(&self) -> String {
        match &self.key {
            Some((table, key)) => format!(
                "{} --{}[{:?}/{}]--> {}",
                self.from,
                self.kind.label(),
                table,
                key,
                self.to
            ),
            None => format!("{} --{}--> {}", self.from, self.kind.label(), self.to),
        }
    }
}

/// One detected anomaly with its minimal witness.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// The class.
    pub kind: AnomalyKind,
    /// Human-readable account of what was observed.
    pub description: String,
    /// Transactions involved (cycle order when `cycle` is non-empty).
    pub txns: Vec<TrxId>,
    /// Witness cycle, when the anomaly is graph-shaped.
    pub cycle: Vec<WitnessEdge>,
}

/// Informational: a pair of committed transactions joined by rw edges in
/// both directions with no ww/wr shortcut — classic write skew, which SI
/// permits.
#[derive(Debug, Clone)]
pub struct WriteSkewCandidate {
    /// One transaction of the pair.
    pub a: TrxId,
    /// The other.
    pub b: TrxId,
    /// The keys the two rw edges run through.
    pub keys: Vec<(TableId, Key)>,
}

/// Aggregate counts for the report header.
#[derive(Debug, Clone, Default)]
pub struct HistoryStats {
    /// Total events consumed.
    pub events: usize,
    /// Distinct transactions seen.
    pub txns: usize,
    /// Transactions with a commit stamp anywhere.
    pub committed: usize,
    /// Transactions that only ever aborted.
    pub aborted: usize,
    /// Read events.
    pub reads: usize,
    /// Of which served by RO replicas.
    pub replica_reads: usize,
    /// Write events.
    pub writes: usize,
    /// Free-form notes (fault injections, elections) found in the history.
    pub notes: Vec<String>,
}

/// The checker's verdict on one history.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Detected violations, capped per class.
    pub anomalies: Vec<Anomaly>,
    /// SI-legal write-skew pairs (informational).
    pub write_skew_candidates: Vec<WriteSkewCandidate>,
    /// History shape.
    pub stats: HistoryStats,
}

impl CheckReport {
    /// True when no violation was detected (write skew does not count).
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }

    /// Anomalies of one class.
    pub fn of_kind(&self, kind: AnomalyKind) -> Vec<&Anomaly> {
        self.anomalies.iter().filter(|a| a.kind == kind).collect()
    }

    /// True when at least one anomaly of `kind` was found.
    pub fn has(&self, kind: AnomalyKind) -> bool {
        self.anomalies.iter().any(|a| a.kind == kind)
    }
}

#[derive(Debug, Clone)]
struct ReadRec {
    table: TableId,
    key: Key,
    snapshot_ts: u64,
    observed: Option<VersionRef>,
    replica: bool,
}

#[derive(Debug, Clone)]
struct WriteRec {
    seq: usize,
    table: TableId,
    key: Key,
}

#[derive(Debug, Default)]
struct TxnInfo {
    session: Option<NodeId>,
    begin_seq: Option<usize>,
    snapshot_ts: Option<u64>,
    commit_ts: Option<u64>,
    commit_nodes: Vec<(NodeId, u64)>,
    /// Sequence of the commit event on the coordinating session node.
    session_commit_seq: Option<usize>,
    abort_nodes: Vec<NodeId>,
    reads: Vec<ReadRec>,
    writes: Vec<WriteRec>,
}

impl TxnInfo {
    fn committed(&self) -> bool {
        self.commit_ts.is_some()
    }
}

/// Per-key committed version order: `(commit_ts, writer)` ascending, plus
/// the install order (first intent per writer, by event sequence).
#[derive(Debug, Default)]
struct KeyVersions {
    by_ts: Vec<(u64, TrxId)>,
    by_install: Vec<TrxId>,
    pos: HashMap<TrxId, usize>,
}

type Graph = HashMap<TrxId, Vec<WitnessEdge>>;

fn add_edge(g: &mut Graph, e: WitnessEdge) {
    let out = g.entry(e.from).or_default();
    // Keep one edge per (from, to, kind): parallel duplicates only bloat
    // BFS without changing reachability.
    if !out.iter().any(|x| x.to == e.to && x.kind == e.kind) {
        out.push(e);
    }
}

/// Shortest path `from → … → to` by BFS over `g`, as the edge list.
fn shortest_path(g: &Graph, from: TrxId, to: TrxId) -> Option<Vec<WitnessEdge>> {
    let mut prev: HashMap<TrxId, WitnessEdge> = HashMap::new();
    let mut q = VecDeque::new();
    q.push_back(from);
    let mut seen = HashSet::new();
    seen.insert(from);
    while let Some(n) = q.pop_front() {
        if n == to {
            // Reconstruct backwards through `prev`.
            let mut path = Vec::new();
            let mut cur = to;
            while cur != from || path.is_empty() {
                let e = prev.get(&cur)?.clone();
                cur = e.from;
                path.push(e);
                if path.len() > g.len() + 1 {
                    return None; // defensive: malformed prev chain
                }
            }
            path.reverse();
            return Some(path);
        }
        for e in g.get(&n).into_iter().flatten() {
            if seen.insert(e.to) {
                prev.insert(e.to, e.clone());
                q.push_back(e.to);
            }
        }
    }
    // `from == to` with no self-loop handled here: BFS above returns an
    // empty path immediately, so look for a real cycle through successors.
    None
}

/// Shortest cycle through any node of `g` (for G0/G1c witnesses).
fn shortest_cycle(g: &Graph) -> Option<Vec<WitnessEdge>> {
    let mut best: Option<Vec<WitnessEdge>> = None;
    for (&start, edges) in g.iter() {
        for e in edges {
            // A cycle through `start` = edge start→x plus path x→start.
            let candidate = if e.to == start {
                Some(vec![e.clone()])
            } else {
                shortest_path(g, e.to, start).map(|mut p| {
                    p.insert(0, e.clone());
                    p
                })
            };
            if let Some(c) = candidate {
                if best.as_ref().map(|b| c.len() < b.len()).unwrap_or(true) {
                    best = Some(c);
                }
            }
        }
    }
    best
}

fn cycle_txns(cycle: &[WitnessEdge]) -> Vec<TrxId> {
    cycle.iter().map(|e| e.from).collect()
}

struct Collector {
    anomalies: Vec<Anomaly>,
    counts: HashMap<AnomalyKind, usize>,
}

impl Collector {
    fn new() -> Collector {
        Collector { anomalies: Vec::new(), counts: HashMap::new() }
    }

    fn push(&mut self, a: Anomaly) {
        let n = self.counts.entry(a.kind).or_insert(0);
        if *n < MAX_PER_KIND {
            *n += 1;
            self.anomalies.push(a);
        }
    }
}

/// Run every check against one recorded history.
pub fn check(events: &[TxnEvent]) -> CheckReport {
    let mut txns: BTreeMap<TrxId, TxnInfo> = BTreeMap::new();
    let mut stats = HistoryStats { events: events.len(), ..Default::default() };
    let mut out = Collector::new();

    // ---- pass 1: fold events into per-transaction facts -----------------
    for (seq, ev) in events.iter().enumerate() {
        match ev {
            TxnEvent::Begin { trx, session, snapshot_ts } => {
                let t = txns.entry(*trx).or_default();
                t.session = Some(*session);
                t.begin_seq = Some(seq);
                t.snapshot_ts = Some(*snapshot_ts);
            }
            TxnEvent::Read { trx, table, key, snapshot_ts, observed, replica, .. } => {
                stats.reads += 1;
                if *replica {
                    stats.replica_reads += 1;
                }
                let t = txns.entry(*trx).or_default();
                t.snapshot_ts.get_or_insert(*snapshot_ts);
                t.reads.push(ReadRec {
                    table: *table,
                    key: key.clone(),
                    snapshot_ts: *snapshot_ts,
                    observed: observed.clone(),
                    replica: *replica,
                });
            }
            TxnEvent::Write { trx, table, key, .. } => {
                stats.writes += 1;
                let t = txns.entry(*trx).or_default();
                t.writes.push(WriteRec { seq, table: *table, key: key.clone() });
            }
            TxnEvent::Commit { trx, node, commit_ts } => {
                let t = txns.entry(*trx).or_default();
                t.commit_nodes.push((*node, *commit_ts));
                t.commit_ts.get_or_insert(*commit_ts);
                if t.session == Some(*node) && t.session_commit_seq.is_none() {
                    t.session_commit_seq = Some(seq);
                }
            }
            TxnEvent::Abort { trx, node } => {
                txns.entry(*trx).or_default().abort_nodes.push(*node);
            }
            TxnEvent::Decision { trx, commit_ts, .. } => {
                // An arbiter's Commit decision is commit evidence even if
                // the phase-two stamp never got recorded.
                if let Some(ts) = commit_ts {
                    txns.entry(*trx).or_default().commit_ts.get_or_insert(*ts);
                }
            }
            TxnEvent::Note { label, .. } => stats.notes.push(label.clone()),
        }
    }
    stats.txns = txns.len();
    stats.committed = txns.values().filter(|t| t.committed()).count();
    stats.aborted =
        txns.values().filter(|t| !t.committed() && !t.abort_nodes.is_empty()).count();

    // ---- per-transaction integrity: LostWrite, CommitTsMismatch ---------
    for (trx, t) in &txns {
        if t.committed() && !t.abort_nodes.is_empty() {
            out.push(Anomaly {
                kind: AnomalyKind::LostWrite,
                description: format!(
                    "{trx} committed (ts {}) but aborted on {:?}: its writes there are lost",
                    t.commit_ts.unwrap_or(0),
                    t.abort_nodes,
                ),
                txns: vec![*trx],
                cycle: Vec::new(),
            });
        }
        let mut distinct: Vec<u64> = t.commit_nodes.iter().map(|(_, ts)| *ts).collect();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() > 1 {
            out.push(Anomaly {
                kind: AnomalyKind::CommitTsMismatch,
                description: format!(
                    "{trx} stamped with different commit timestamps: {:?}",
                    t.commit_nodes,
                ),
                txns: vec![*trx],
                cycle: Vec::new(),
            });
        }
    }

    // ---- per-key committed version orders -------------------------------
    let mut keys: BTreeMap<(TableId, Key), KeyVersions> = BTreeMap::new();
    let mut installs: BTreeMap<(TableId, Key), Vec<(usize, TrxId)>> = BTreeMap::new();
    for (trx, t) in &txns {
        if !t.committed() {
            continue;
        }
        let ts = t.commit_ts.unwrap_or(0);
        let mut seen_keys: HashSet<(TableId, Key)> = HashSet::new();
        for w in &t.writes {
            if seen_keys.insert((w.table, w.key.clone())) {
                let kv = keys.entry((w.table, w.key.clone())).or_default();
                kv.by_ts.push((ts, *trx));
                // First intent installation per (key, txn), by event order.
                installs.entry((w.table, w.key.clone())).or_default().push((w.seq, *trx));
            }
        }
    }
    for (k, mut ins) in installs {
        ins.sort_unstable_by_key(|(seq, _)| *seq);
        if let Some(kv) = keys.get_mut(&k) {
            kv.by_install = ins.into_iter().map(|(_, trx)| trx).collect();
        }
    }
    for kv in keys.values_mut() {
        kv.by_ts.sort_unstable_by_key(|(ts, trx)| (*ts, trx.raw()));
        kv.pos = kv.by_ts.iter().enumerate().map(|(i, (_, trx))| (*trx, i)).collect();
    }
    // Readers may observe versions whose writer never produced a recorded
    // Write event (partial recording). Fold those in from the reads so
    // positions still resolve.
    for t in txns.values() {
        for r in &t.reads {
            if let Some(vr) = &r.observed {
                if let Some(ts) = vr.commit_ts {
                    let kv = keys.entry((r.table, r.key.clone())).or_default();
                    if !kv.pos.contains_key(&vr.writer) {
                        kv.by_ts.push((ts, vr.writer));
                        kv.by_ts.sort_unstable_by_key(|(ts, trx)| (*ts, trx.raw()));
                        kv.pos = kv
                            .by_ts
                            .iter()
                            .enumerate()
                            .map(|(i, (_, trx))| (*trx, i))
                            .collect();
                    }
                }
            }
        }
    }

    // ---- DSG edges ------------------------------------------------------
    let committed: HashSet<TrxId> =
        txns.iter().filter(|(_, t)| t.committed()).map(|(trx, _)| *trx).collect();
    let mut ww: Graph = HashMap::new();
    let mut wwr: Graph = HashMap::new(); // ww ∪ wr
    let mut rw_edges: Vec<WitnessEdge> = Vec::new();

    for ((table, key), kv) in &keys {
        // ww succession in commit-ts order.
        for pair in kv.by_ts.windows(2) {
            let e = WitnessEdge {
                from: pair[0].1,
                to: pair[1].1,
                kind: EdgeKind::Ww,
                key: Some((*table, key.clone())),
            };
            add_edge(&mut ww, e.clone());
            add_edge(&mut wwr, e);
        }
        // ww succession in install order: agrees with ts order in a correct
        // history (first-committer-wins forces the second intent after the
        // first commit); a disagreement creates opposing edges — a G0 cycle.
        for pair in kv.by_install.windows(2) {
            if pair[0] == pair[1] {
                continue;
            }
            let e = WitnessEdge {
                from: pair[0],
                to: pair[1],
                kind: EdgeKind::Ww,
                key: Some((*table, key.clone())),
            };
            add_edge(&mut ww, e.clone());
            add_edge(&mut wwr, e);
        }
    }

    // Read-derived edges and read-local checks.
    for (reader, t) in &txns {
        for r in &t.reads {
            let kv = match keys.get(&(r.table, r.key.clone())) {
                Some(kv) => kv,
                None if r.observed.is_none() => continue, // ⊥ read of a never-written key
                None => KeyVersions::default_ref(),
            };
            match &r.observed {
                None => {
                    // ⊥ observed. rw edge to the key's first committed writer.
                    if let Some((_, first)) = kv.by_ts.first() {
                        if committed.contains(reader) && *first != *reader {
                            rw_edges.push(WitnessEdge {
                                from: *reader,
                                to: *first,
                                kind: EdgeKind::Rw,
                                key: Some((r.table, r.key.clone())),
                            });
                        }
                    }
                    // Missed effects: a committed version at or below the
                    // snapshot existed, yet the read saw nothing. Primary
                    // reads only (see module docs).
                    if !r.replica {
                        if let Some((ts, w)) =
                            kv.by_ts.iter().find(|(ts, w)| *ts <= r.snapshot_ts && w != reader)
                        {
                            out.push(Anomaly {
                                kind: AnomalyKind::GSIb,
                                description: format!(
                                    "{reader} read {:?}/{} at snapshot {} and saw nothing, \
                                     missing {w}'s committed version (ts {ts})",
                                    r.table, r.key, r.snapshot_ts,
                                ),
                                txns: vec![*reader, *w],
                                cycle: vec![WitnessEdge {
                                    from: *reader,
                                    to: *w,
                                    kind: EdgeKind::Rw,
                                    key: Some((r.table, r.key.clone())),
                                }],
                            });
                        }
                    }
                }
                Some(vr) if vr.writer == *reader => {} // own write
                Some(vr) => {
                    let winfo = txns.get(&vr.writer);
                    let writer_committed = winfo.map(|w| w.committed()).unwrap_or(false)
                        || vr.commit_ts.is_some();
                    let writer_aborted = !writer_committed
                        && winfo.map(|w| !w.abort_nodes.is_empty()).unwrap_or(false);
                    if vr.commit_ts.is_none() {
                        // Undecided at observation time — a dirty read.
                        if writer_aborted {
                            out.push(Anomaly {
                                kind: AnomalyKind::G1a,
                                description: format!(
                                    "{reader} observed {}'s undecided version of {:?}/{} and \
                                     {} later aborted (aborted read)",
                                    vr.writer, r.table, r.key, vr.writer,
                                ),
                                txns: vec![*reader, vr.writer],
                                cycle: Vec::new(),
                            });
                        } else if writer_committed {
                            out.push(Anomaly {
                                kind: AnomalyKind::G1b,
                                description: format!(
                                    "{reader} observed {}'s undecided (intermediate) version \
                                     of {:?}/{} before it committed",
                                    vr.writer, r.table, r.key,
                                ),
                                txns: vec![*reader, vr.writer],
                                cycle: Vec::new(),
                            });
                        }
                        continue;
                    }
                    if writer_aborted {
                        out.push(Anomaly {
                            kind: AnomalyKind::G1a,
                            description: format!(
                                "{reader} observed a version of {:?}/{} written by {}, which \
                                 aborted",
                                r.table, r.key, vr.writer,
                            ),
                            txns: vec![*reader, vr.writer],
                            cycle: Vec::new(),
                        });
                        continue;
                    }
                    // wr edge (writer → reader) and rw edge (reader →
                    // successor writer), committed readers only.
                    let pos = kv.pos.get(&vr.writer).copied();
                    if committed.contains(reader) {
                        add_edge(
                            &mut wwr,
                            WitnessEdge {
                                from: vr.writer,
                                to: *reader,
                                kind: EdgeKind::Wr,
                                key: Some((r.table, r.key.clone())),
                            },
                        );
                        if let Some(p) = pos {
                            if let Some((_, succ)) = kv.by_ts.get(p + 1) {
                                if succ != reader {
                                    rw_edges.push(WitnessEdge {
                                        from: *reader,
                                        to: *succ,
                                        kind: EdgeKind::Rw,
                                        key: Some((r.table, r.key.clone())),
                                    });
                                }
                            }
                        }
                    }
                    // Missed effects below the snapshot (primary reads).
                    if !r.replica {
                        let obs_ts = vr.commit_ts.unwrap_or(0);
                        if let Some((ts, w)) = kv
                            .by_ts
                            .iter()
                            .find(|(ts, w)| *ts > obs_ts && *ts <= r.snapshot_ts && w != reader)
                        {
                            out.push(Anomaly {
                                kind: AnomalyKind::GSIb,
                                description: format!(
                                    "{reader} read {:?}/{} at snapshot {} and observed {}'s \
                                     version (ts {obs_ts}), missing {w}'s later committed \
                                     version (ts {ts})",
                                    r.table, r.key, r.snapshot_ts, vr.writer,
                                ),
                                txns: vec![*reader, *w],
                                cycle: vec![WitnessEdge {
                                    from: *reader,
                                    to: *w,
                                    kind: EdgeKind::Rw,
                                    key: Some((r.table, r.key.clone())),
                                }],
                            });
                        }
                    }
                }
            }
        }
    }

    // ---- G-SIa: fractured reads ----------------------------------------
    for (reader, t) in &txns {
        for r1 in &t.reads {
            let Some(vr) = &r1.observed else { continue };
            if vr.writer == *reader || vr.commit_ts.is_none() {
                continue;
            }
            let w = vr.writer;
            let Some(winfo) = txns.get(&w) else { continue };
            if !winfo.committed() {
                continue;
            }
            // Every other key the observed writer committed to…
            for wk in &winfo.writes {
                if wk.table == r1.table && wk.key == r1.key {
                    continue;
                }
                let Some(kv) = keys.get(&(wk.table, wk.key.clone())) else { continue };
                let Some(&wpos) = kv.pos.get(&w) else { continue };
                // …must be visible to this reader at w's version or later.
                for r2 in &t.reads {
                    if r2.table != wk.table || r2.key != wk.key {
                        continue;
                    }
                    let fractured = match &r2.observed {
                        None => true, // saw nothing where w committed a version
                        Some(vr2) => {
                            vr2.writer != *reader
                                && vr2.commit_ts.is_some()
                                && kv.pos.get(&vr2.writer).map(|p| *p < wpos).unwrap_or(false)
                        }
                    };
                    if fractured {
                        out.push(Anomaly {
                            kind: AnomalyKind::GSIa,
                            description: format!(
                                "fractured read: {reader} observed {w} on {:?}/{} but a \
                                 pre-{w} state of {:?}/{} (which {w} also wrote){}",
                                r1.table,
                                r1.key,
                                wk.table,
                                wk.key,
                                if r1.replica || r2.replica { " [replica read]" } else { "" },
                            ),
                            txns: vec![*reader, w],
                            cycle: vec![
                                WitnessEdge {
                                    from: w,
                                    to: *reader,
                                    kind: EdgeKind::Wr,
                                    key: Some((r1.table, r1.key.clone())),
                                },
                                WitnessEdge {
                                    from: *reader,
                                    to: w,
                                    kind: EdgeKind::Rw,
                                    key: Some((wk.table, wk.key.clone())),
                                },
                            ],
                        });
                    }
                }
            }
        }
    }

    // ---- G-SIb: session-order violations -------------------------------
    let mut by_session: HashMap<NodeId, Vec<TrxId>> = HashMap::new();
    for (trx, t) in &txns {
        if let Some(s) = t.session {
            by_session.entry(s).or_default().push(*trx);
        }
    }
    for (session, members) in &by_session {
        for &ti in members {
            let Some(ci) = txns[&ti].commit_ts else { continue };
            let Some(qi) = txns[&ti].session_commit_seq else { continue };
            for &tj in members {
                if ti == tj {
                    continue;
                }
                let (Some(bj), Some(sj)) = (txns[&tj].begin_seq, txns[&tj].snapshot_ts)
                else {
                    continue;
                };
                if bj > qi && sj < ci {
                    out.push(Anomaly {
                        kind: AnomalyKind::GSIb,
                        description: format!(
                            "session-order violation on {session:?}: {tj} began (snapshot \
                             {sj}) after {ti} committed at ts {ci} on the same session — \
                             the commit-time ClockUpdate was lost",
                        ),
                        txns: vec![ti, tj],
                        cycle: vec![WitnessEdge {
                            from: ti,
                            to: tj,
                            kind: EdgeKind::Session,
                            key: None,
                        }],
                    });
                }
            }
        }
    }

    // ---- Lost update ----------------------------------------------------
    for ((table, key), kv) in &keys {
        // committed writers of this key that also (non-self) read it, by
        // the position they observed.
        let mut by_observed: HashMap<Option<usize>, Vec<TrxId>> = HashMap::new();
        for (_, writer) in &kv.by_ts {
            let Some(t) = txns.get(writer) else { continue };
            for r in &t.reads {
                if r.table != *table || r.key != *key {
                    continue;
                }
                let pos = match &r.observed {
                    None => None,
                    Some(vr) if vr.writer == *writer => continue, // own write
                    Some(vr) => match kv.pos.get(&vr.writer) {
                        Some(p) => Some(*p),
                        None => continue,
                    },
                };
                let bucket = by_observed.entry(pos).or_default();
                if !bucket.contains(writer) {
                    bucket.push(*writer);
                }
                break;
            }
        }
        for (pos, writers) in by_observed {
            if writers.len() >= 2 {
                out.push(Anomaly {
                    kind: AnomalyKind::LostUpdate,
                    description: format!(
                        "lost update on {table:?}/{key}: {writers:?} all read version \
                         #{} and all committed writes over it",
                        pos.map(|p| p.to_string()).unwrap_or_else(|| "⊥".into()),
                    ),
                    txns: writers,
                    cycle: Vec::new(),
                });
            }
        }
    }

    // ---- cycles: G0, G1c, single-rw G-SIb, write-skew candidates --------
    if let Some(cycle) = shortest_cycle(&ww) {
        out.push(Anomaly {
            kind: AnomalyKind::G0,
            description: format!("write cycle of length {}", cycle.len()),
            txns: cycle_txns(&cycle),
            cycle,
        });
    }
    // G1c: a ww∪wr cycle containing at least one wr edge. Search from each
    // wr edge so a coexisting ww-only (G0) cycle can't mask it.
    let mut best_g1c: Option<Vec<WitnessEdge>> = None;
    for edges in wwr.values() {
        for e in edges.iter().filter(|e| e.kind == EdgeKind::Wr) {
            let candidate = if e.to == e.from {
                Some(vec![e.clone()])
            } else {
                shortest_path(&wwr, e.to, e.from).map(|mut p| {
                    p.insert(0, e.clone());
                    p
                })
            };
            if let Some(c) = candidate {
                if best_g1c.as_ref().map(|b| c.len() < b.len()).unwrap_or(true) {
                    best_g1c = Some(c);
                }
            }
        }
    }
    if let Some(cycle) = best_g1c {
        out.push(Anomaly {
            kind: AnomalyKind::G1c,
            description: format!(
                "cyclic information flow (ww∪wr cycle of length {})",
                cycle.len()
            ),
            txns: cycle_txns(&cycle),
            cycle,
        });
    }
    let mut skew: Vec<WriteSkewCandidate> = Vec::new();
    let mut gsib_cycle_pairs: HashSet<(TrxId, TrxId)> = HashSet::new();
    for e in &rw_edges {
        // A ww∪wr path back from the rw target closes a cycle with exactly
        // one anti-dependency: illegal under SI.
        if let Some(mut path) = shortest_path(&wwr, e.to, e.from) {
            if gsib_cycle_pairs.insert((e.from, e.to)) {
                let mut cycle = vec![e.clone()];
                cycle.append(&mut path);
                out.push(Anomaly {
                    kind: AnomalyKind::GSIb,
                    description: format!(
                        "missed effects: cycle with exactly one anti-dependency \
                         (length {})",
                        cycle.len()
                    ),
                    txns: cycle_txns(&cycle),
                    cycle,
                });
            }
            continue;
        }
        // Otherwise look for the SI-legal shape: a second rw edge straight
        // back (write skew between concurrent transactions).
        for back in &rw_edges {
            if back.from == e.to && back.to == e.from && e.from.raw() < e.to.raw() {
                let keys: Vec<(TableId, Key)> = [e, back]
                    .iter()
                    .filter_map(|x| x.key.clone())
                    .collect();
                if !skew
                    .iter()
                    .any(|c| (c.a, c.b) == (e.from, e.to) || (c.b, c.a) == (e.from, e.to))
                {
                    skew.push(WriteSkewCandidate { a: e.from, b: e.to, keys });
                }
            }
        }
    }

    CheckReport { anomalies: out.anomalies, write_skew_candidates: skew, stats }
}

impl KeyVersions {
    /// Shared empty instance for reads of keys no committed writer touched.
    fn default_ref() -> &'static KeyVersions {
        use std::sync::OnceLock;
        static EMPTY: OnceLock<KeyVersions> = OnceLock::new();
        EMPTY.get_or_init(KeyVersions::default)
    }
}

/// Derived conserved-sum audit (the bank invariant, recomputed from the
/// history instead of a side channel): for every transaction that read at
/// least `min_keys` distinct keys of `table` and wrote none of them, join
/// each observed version to its writer's recorded row and sum column
/// `balance_col`. Returns `(auditor, total)` pairs; every total must equal
/// the seeded sum under SI.
pub fn derived_audit_totals(
    events: &[TxnEvent],
    table: TableId,
    balance_col: usize,
    min_keys: usize,
) -> Vec<(TrxId, i64)> {
    // Final committed row per (writer, key).
    let mut rows: HashMap<(TrxId, Key), Option<i64>> = HashMap::new();
    for ev in events {
        if let TxnEvent::Write { trx, table: t, key, row, .. } = ev {
            if *t == table {
                let bal = row
                    .as_ref()
                    .and_then(|r| r.get(balance_col).ok())
                    .and_then(|v| v.as_int().ok());
                rows.insert((*trx, key.clone()), bal);
            }
        }
    }
    let mut totals = Vec::new();
    let mut per_txn: BTreeMap<TrxId, BTreeMap<Key, Option<i64>>> = BTreeMap::new();
    let mut writers: HashMap<TrxId, HashSet<Key>> = HashMap::new();
    for ev in events {
        match ev {
            TxnEvent::Write { trx, table: t, key, .. } if *t == table => {
                writers.entry(*trx).or_default().insert(key.clone());
            }
            TxnEvent::Read { trx, table: t, key, observed, .. } if *t == table => {
                let val = observed
                    .as_ref()
                    .and_then(|vr| rows.get(&(vr.writer, key.clone())).copied().flatten());
                per_txn.entry(*trx).or_default().entry(key.clone()).or_insert(val);
            }
            _ => {}
        }
    }
    for (trx, reads) in per_txn {
        if reads.len() < min_keys || writers.contains_key(&trx) {
            continue;
        }
        if reads.values().all(|v| v.is_some()) {
            totals.push((trx, reads.values().map(|v| v.unwrap_or(0)).sum()));
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{Row, Value};

    const T: TableId = TableId(1);
    const CN: NodeId = NodeId(9);
    const DN1: NodeId = NodeId(1);
    const DN2: NodeId = NodeId(2);

    fn k(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(v: i64) -> Row {
        Row::new(vec![Value::Int(0), Value::Int(v)])
    }

    fn begin(trx: u64, s: u64) -> TxnEvent {
        TxnEvent::Begin { trx: TrxId(trx), session: CN, snapshot_ts: s }
    }

    fn write(trx: u64, node: NodeId, key: Key, v: i64) -> TxnEvent {
        TxnEvent::Write { trx: TrxId(trx), node, table: T, key, row: Some(row(v)) }
    }

    fn read(trx: u64, node: NodeId, key: Key, s: u64, obs: Option<(u64, Option<u64>)>) -> TxnEvent {
        TxnEvent::Read {
            trx: TrxId(trx),
            node,
            table: T,
            key,
            snapshot_ts: s,
            observed: obs.map(|(w, ts)| VersionRef { writer: TrxId(w), commit_ts: ts }),
            replica: false,
        }
    }

    fn commit(trx: u64, node: NodeId, ts: u64) -> TxnEvent {
        TxnEvent::Commit { trx: TrxId(trx), node, commit_ts: ts }
    }

    fn abort(trx: u64, node: NodeId) -> TxnEvent {
        TxnEvent::Abort { trx: TrxId(trx), node }
    }

    #[test]
    fn clean_history_reports_clean() {
        let h = vec![
            begin(1, 5),
            write(1, DN1, k(1), 100),
            commit(1, DN1, 10),
            commit(1, CN, 10),
            begin(2, 15),
            read(2, DN1, k(1), 15, Some((1, Some(10)))),
            write(2, DN1, k(1), 90),
            commit(2, DN1, 20),
            commit(2, CN, 20),
        ];
        let r = check(&h);
        assert!(r.is_clean(), "expected clean, got {:?}", r.anomalies);
        assert_eq!(r.stats.txns, 2);
        assert_eq!(r.stats.committed, 2);
    }

    #[test]
    fn g1a_aborted_read_detected() {
        let h = vec![
            begin(1, 5),
            write(1, DN1, k(1), 7),
            begin(2, 6),
            read(2, DN1, k(1), 6, Some((1, None))), // undecided when observed
            abort(1, DN1),
            commit(2, CN, 9),
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::G1a), "{:?}", r.anomalies);
    }

    #[test]
    fn g1b_intermediate_read_detected() {
        let h = vec![
            begin(1, 5),
            write(1, DN1, k(1), 7),
            begin(2, 6),
            read(2, DN1, k(1), 6, Some((1, None))), // undecided when observed
            commit(1, DN1, 10),
            commit(1, CN, 10),
            commit(2, CN, 12),
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::G1b), "{:?}", r.anomalies);
    }

    #[test]
    fn g0_contradictory_install_order_detected() {
        // Install order on k1: T1 then T2; commit timestamps say T2 then
        // T1. The opposing ww edges form a two-cycle.
        let h = vec![
            begin(1, 1),
            begin(2, 2),
            write(1, DN1, k(1), 1),
            write(2, DN1, k(1), 2),
            commit(1, DN1, 20),
            commit(1, CN, 20),
            commit(2, DN1, 10),
            commit(2, CN, 10),
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::G0), "{:?}", r.anomalies);
        let g0 = &r.of_kind(AnomalyKind::G0)[0];
        assert!(!g0.cycle.is_empty(), "G0 must carry a witness cycle");
        assert!(g0.cycle.iter().all(|e| e.kind == EdgeKind::Ww));
    }

    #[test]
    fn g1c_wr_cycle_detected() {
        // T1 —wr→ T2 via k1 and T2 —wr→ T1 via k2: cyclic information flow.
        let h = vec![
            begin(1, 1),
            begin(2, 1),
            write(1, DN1, k(1), 1),
            write(2, DN2, k(2), 2),
            read(2, DN1, k(1), 30, Some((1, Some(10)))),
            read(1, DN2, k(2), 30, Some((2, Some(20)))),
            commit(1, DN1, 10),
            commit(1, CN, 10),
            commit(2, DN2, 20),
            commit(2, CN, 20),
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::G1c), "{:?}", r.anomalies);
        let c = &r.of_kind(AnomalyKind::G1c)[0];
        assert!(c.cycle.iter().any(|e| e.kind == EdgeKind::Wr));
    }

    #[test]
    fn gsia_fractured_read_detected() {
        // T1 writes k1 and k2 (one distributed txn). The auditor sees T1 on
        // k1 but the initial version on k2.
        let h = vec![
            begin(1, 1),
            write(1, DN1, k(1), 10),
            write(1, DN2, k(2), 20),
            commit(1, DN1, 10),
            commit(1, DN2, 10),
            commit(1, CN, 10),
            begin(2, 2),
            write(2, DN1, k(1), 11),
            write(2, DN2, k(2), 21),
            commit(2, DN1, 20),
            commit(2, DN2, 20),
            commit(2, CN, 20),
            begin(3, 25),
            read(3, DN1, k(1), 25, Some((2, Some(20)))),
            read(3, DN2, k(2), 25, Some((1, Some(10)))), // pre-T2!
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::GSIa), "{:?}", r.anomalies);
        let a = &r.of_kind(AnomalyKind::GSIa)[0];
        assert_eq!(a.cycle.len(), 2, "witness is the wr/rw two-cycle");
    }

    #[test]
    fn gsib_stale_read_detected() {
        // Snapshot 25 covers T2's commit at 20, yet the read returned T1's
        // version from ts 10.
        let h = vec![
            begin(1, 1),
            write(1, DN1, k(1), 1),
            commit(1, DN1, 10),
            commit(1, CN, 10),
            begin(2, 12),
            write(2, DN1, k(1), 2),
            commit(2, DN1, 20),
            commit(2, CN, 20),
            begin(3, 25),
            read(3, DN1, k(1), 25, Some((1, Some(10)))),
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::GSIb), "{:?}", r.anomalies);
    }

    #[test]
    fn gsib_session_violation_detected() {
        // T1 commits at ts 100 on session CN; T2 then begins on the same
        // session with snapshot 40 < 100.
        let h = vec![
            begin(1, 30),
            write(1, DN1, k(1), 1),
            commit(1, DN1, 100),
            commit(1, CN, 100),
            begin(2, 40),
            read(2, DN1, k(9), 40, None),
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::GSIb), "{:?}", r.anomalies);
        let a = r.of_kind(AnomalyKind::GSIb);
        assert!(
            a.iter().any(|x| x.cycle.iter().any(|e| e.kind == EdgeKind::Session)),
            "witness must carry the session edge: {a:?}"
        );
    }

    #[test]
    fn gsib_single_rw_cycle_detected() {
        // T1 read k1 as ⊥ (rw → T2), and T2 —ww→ T1 on k4: a cycle with
        // exactly one anti-dependency.
        let h = vec![
            begin(1, 1),
            begin(2, 1),
            read(1, DN1, k(1), 1, None),
            write(2, DN1, k(1), 1),
            write(2, DN2, k(4), 1),
            commit(2, DN1, 5),
            commit(2, CN, 5),
            write(1, DN2, k(4), 2),
            commit(1, DN2, 10),
            commit(1, CN, 10),
        ];
        let r = check(&h);
        let gsib = r.of_kind(AnomalyKind::GSIb);
        assert!(
            gsib.iter().any(|a| a.cycle.iter().any(|e| e.kind == EdgeKind::Rw)
                && a.cycle.iter().any(|e| e.kind != EdgeKind::Rw)),
            "expected a mixed single-rw cycle: {gsib:?}"
        );
    }

    #[test]
    fn lost_update_detected() {
        let h = vec![
            begin(1, 1),
            write(1, DN1, k(1), 100),
            commit(1, DN1, 10),
            commit(1, CN, 10),
            begin(2, 12),
            read(2, DN1, k(1), 12, Some((1, Some(10)))),
            write(2, DN1, k(1), 110),
            commit(2, DN1, 20),
            commit(2, CN, 20),
            begin(3, 13),
            read(3, DN1, k(1), 13, Some((1, Some(10)))), // same predecessor!
            write(3, DN1, k(1), 120),
            commit(3, DN1, 25),
            commit(3, CN, 25),
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::LostUpdate), "{:?}", r.anomalies);
    }

    #[test]
    fn lost_write_detected() {
        let h = vec![
            begin(1, 1),
            write(1, DN1, k(1), 1),
            write(1, DN2, k(2), 2),
            commit(1, DN1, 10),
            commit(1, CN, 10),
            abort(1, DN2), // participant dropped from the fan-out
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::LostWrite), "{:?}", r.anomalies);
        let a = &r.of_kind(AnomalyKind::LostWrite)[0];
        assert!(a.description.contains("NodeId(2)"), "{}", a.description);
    }

    #[test]
    fn commit_ts_mismatch_detected() {
        let h = vec![
            begin(1, 1),
            write(1, DN1, k(1), 1),
            write(1, DN2, k(2), 2),
            commit(1, DN1, 10),
            commit(1, DN2, 11), // disagreement
            commit(1, CN, 10),
        ];
        let r = check(&h);
        assert!(r.has(AnomalyKind::CommitTsMismatch), "{:?}", r.anomalies);
    }

    #[test]
    fn write_skew_is_candidate_not_anomaly() {
        let h = vec![
            begin(1, 1),
            write(1, DN1, k(1), 0),
            write(1, DN2, k(2), 0),
            commit(1, DN1, 5),
            commit(1, DN2, 5),
            commit(1, CN, 5),
            // T2 and T3 run concurrently, each reads both keys at T1's
            // versions, then they write disjoint keys: the classic
            // doctors-on-call shape.
            begin(2, 15),
            begin(3, 15),
            read(2, DN1, k(1), 15, Some((1, Some(5)))),
            read(2, DN2, k(2), 15, Some((1, Some(5)))),
            read(3, DN1, k(1), 15, Some((1, Some(5)))),
            read(3, DN2, k(2), 15, Some((1, Some(5)))),
            write(2, DN1, k(1), 1),
            write(3, DN2, k(2), 1),
            commit(2, DN1, 20),
            commit(2, CN, 20),
            commit(3, DN2, 21),
            commit(3, CN, 21),
        ];
        let r = check(&h);
        assert!(r.is_clean(), "write skew is SI-legal: {:?}", r.anomalies);
        assert!(!r.write_skew_candidates.is_empty(), "but must be reported as a candidate");
    }

    #[test]
    fn replica_reads_skip_timestamp_staleness() {
        // A lagging replica serves an old-but-atomic state: legal.
        let mut h = vec![
            begin(1, 1),
            write(1, DN1, k(1), 1),
            commit(1, DN1, 10),
            commit(1, CN, 10),
            begin(2, 12),
            write(2, DN1, k(1), 2),
            commit(2, DN1, 20),
            commit(2, CN, 20),
        ];
        h.push(TxnEvent::Read {
            trx: TrxId(3),
            node: NodeId(101),
            table: T,
            key: k(1),
            snapshot_ts: 25,
            observed: Some(VersionRef { writer: TrxId(1), commit_ts: Some(10) }),
            replica: true,
        });
        let r = check(&h);
        assert!(r.is_clean(), "lagging replica read must not be flagged: {:?}", r.anomalies);
    }

    #[test]
    fn derived_audit_totals_join_reads_to_writes() {
        let h = vec![
            begin(1, 1),
            write(1, DN1, k(1), 60),
            write(1, DN2, k(2), 40),
            commit(1, DN1, 10),
            commit(1, CN, 10),
            begin(2, 15),
            read(2, DN1, k(1), 15, Some((1, Some(10)))),
            read(2, DN2, k(2), 15, Some((1, Some(10)))),
        ];
        let totals = derived_audit_totals(&h, T, 1, 2);
        assert_eq!(totals, vec![(TrxId(2), 100)]);
    }
}
