//! Crashpoint torture: amnesia restarts under the isolation checker.
//!
//! Each run builds a small cluster (two DNs, a never-crashing arbiter that
//! hosts the 2PC decision log, and a CN), drives a bank workload whose
//! transfers always span both DNs plus a ledger insert on the victim, then
//! kills the victim DN at a seeded crashpoint:
//!
//! * **mid-group-flush** — a [`FlushShot`] crashes DN1 on its Nth redo
//!   flush; the triggering write fails, so the group commit it carried is
//!   never acked (optionally after a torn prefix lands on the sink).
//! * **mid-epoch-flush** — same trigger, but the victim runs the epoch
//!   commit pipeline (ISSUE 7): the failed write is an epoch-flusher
//!   persist, so a torn *epoch* (several transactions' concatenated redo)
//!   lands on the sink. Early-released locks mean later txns may have
//!   read the doomed epoch's stamps — recovery must roll the whole torn
//!   epoch back and the Adya checker must still come back clean.
//! * **between prepare and commit** — a coordinator failpoint crashes DN1
//!   right after the decision is logged at the arbiter but before phase
//!   two is posted. The client holds an ack for a commit the victim never
//!   applied — the sharpest RPO case: recovery must surface the PREPARED
//!   txn as in-doubt and the resolver must re-commit it from the log.
//! * **during paxos drain** — a consensus follower is crashed while the
//!   leader keeps replicating, then rejoins from its durable frames
//!   ([`Replica::recovered`]) and catches up via reject-resend.
//!
//! Restart is *amnesia*: the old service object and engine are discarded;
//! the replacement is rebuilt from nothing but the victim's durable sink
//! ([`recovered_engine`]), re-registered on the same [`NodeId`], and
//! un-crashed with [`SimNet::restart_amnesia`]. The harness then measures
//! RTO (crash → first clean audit), RPO (acked ledger entries lost — must
//! be zero), replay idempotence (second replay is a no-op), the conserved
//! bank sum, and runs the Adya checker over the *whole* history, spanning
//! the restart boundary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use polardbx_common::time::mono_now;
use polardbx_common::{
    DcId, Error, HistoryRecorder, IdGenerator, Key, Lsn, NodeId, Result, Row, TableId, TenantId,
    Value,
};
use polardbx_consensus::{GroupConfig, PaxosGroup, Replica, Role};
use polardbx_hlc::{Clock, Hlc, TestClock};
use polardbx_simnet::{FaultPlan, FlushShot, Handler, LatencyMatrix, OneShotFault, SimNet};
use polardbx_storage::{recovered_engine, replay_records, StorageEngine, SyncLocalDurability};
use polardbx_txn::{Coordinator, DnService, ResolverConfig, TxnConfig, TxnMsg, WireWriteOp};
use polardbx_wal::{
    scan_frames, scan_records, EpochConfig, LocalEpochSink, LogBuffer, LogSink, Mtr, RedoPayload,
    VecSink,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::checker::{check, derived_audit_totals, CheckReport};

/// The crash victim: hosts even bank accounts and the ledger.
const DN1: NodeId = NodeId(1);
/// Survivor DN: hosts odd bank accounts.
const DN2: NodeId = NodeId(2);
/// Decision-log host. The arbiter is never a crash victim — the decision
/// log is in-memory, so crashing it would lose decisions the protocol
/// treats as durable. (A Paxos-backed decision log is the production fix.)
const ARBITER: NodeId = NodeId(3);
/// The coordinator's node id.
const CN: NodeId = NodeId(9);

/// Bank accounts (conserved sum).
const BANK: TableId = TableId(1);
/// One row per *acked* transfer, inserted on the victim. After recovery,
/// every acked transfer's row must still be there — that is RPO = 0.
const LEDGER: TableId = TableId(2);

const TENANT: TenantId = TenantId(1);

/// Where in the run the victim dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Power loss during a redo flush on the victim.
    MidGroupFlush,
    /// Power loss during an epoch-pipeline persist on the victim (the
    /// victim commits through the epoch path; the torn tail is a
    /// multi-transaction epoch batch).
    MidEpochFlush,
    /// Victim dies after the 2PC decision is logged but before phase two.
    BetweenPrepareAndCommit,
    /// A consensus follower dies while the leader keeps replicating.
    DuringPaxosDrain,
}

impl CrashPoint {
    pub fn label(&self) -> &'static str {
        match self {
            CrashPoint::MidGroupFlush => "mid-group-flush",
            CrashPoint::MidEpochFlush => "mid-epoch-flush",
            CrashPoint::BetweenPrepareAndCommit => "between-prepare-and-commit",
            CrashPoint::DuringPaxosDrain => "during-paxos-drain",
        }
    }

    /// Every crashpoint class; quick and full runs share the matrix and
    /// differ only in seed count.
    pub fn all() -> Vec<CrashPoint> {
        vec![
            CrashPoint::MidGroupFlush,
            CrashPoint::MidEpochFlush,
            CrashPoint::BetweenPrepareAndCommit,
            CrashPoint::DuringPaxosDrain,
        ]
    }
}

/// One torture-run configuration.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    pub seed: u64,
    pub crashpoint: CrashPoint,
    /// Bank accounts (split even → DN1, odd → DN2).
    pub accounts: usize,
    /// Initial balance per account.
    pub initial: i64,
    /// Transfers attempted (the crash lands somewhere in the middle).
    pub transfers: usize,
    /// Leave a torn (partially written) tail on the victim's sink so the
    /// scanner's truncate path is exercised, not just the clean-cut one.
    pub torn_tail: bool,
}

impl RecoveryConfig {
    pub fn quick(seed: u64, crashpoint: CrashPoint) -> RecoveryConfig {
        RecoveryConfig { seed, crashpoint, accounts: 8, initial: 100, transfers: 24, torn_tail: true }
    }
}

/// Everything measured by one crash-restart run.
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    pub crashpoint_label: &'static str,
    pub seed: u64,
    /// Adya check over the full history, spanning the restart.
    pub report: CheckReport,
    /// Bank conserved sum after recovery.
    pub conserved_ok: bool,
    pub expected_total: i64,
    pub observed_total: i64,
    /// Commits acked to the client before/around the crash.
    pub acked_commits: usize,
    /// Acked commits missing after recovery. RPO = 0 ⇔ this is 0.
    pub lost_acked: usize,
    /// Second replay of the same log changed nothing.
    pub replay_idempotent: bool,
    /// Crash → first successful post-restart audit (or dlsn catch-up for
    /// the consensus crashpoint).
    pub rto: Duration,
    /// The victim came back within the harness deadline.
    pub recovered_in_time: bool,
    /// PREPARED-but-undecided txns surfaced by replay.
    pub in_doubt_recovered: usize,
    /// Torn-tail bytes discarded by scan-and-truncate.
    pub truncated_bytes: u64,
    /// Amnesia restarts observed by the fault layer.
    pub amnesia_restarts: u64,
}

impl RecoveryRun {
    /// The acceptance gate: clean history, conserved sum, zero acked
    /// losses, idempotent replay, and the node actually came back.
    pub fn passed(&self) -> bool {
        self.report.is_clean()
            && self.conserved_ok
            && self.lost_acked == 0
            && self.replay_idempotent
            && self.recovered_in_time
    }
}

/// A [`LogSink`] that models power loss: once the fault layer declares the
/// node crashed (possibly *because of* this very flush, via a
/// [`FlushShot`]), every write fails — after optionally persisting a seeded
/// prefix of the triggering write, the "torn tail" a real disk can leave.
struct CrashpointSink {
    node: NodeId,
    net: Arc<SimNet<TxnMsg>>,
    inner: Arc<VecSink>,
    /// `Some(rng)` until the torn prefix has been dealt (at most once).
    torn: Mutex<Option<StdRng>>,
}

impl LogSink for CrashpointSink {
    fn write(&self, at: Lsn, bytes: Bytes) -> Result<()> {
        if self.net.note_flush(self.node) {
            if !bytes.is_empty() {
                if let Some(mut rng) = self.torn.lock().unwrap().take() {
                    let cut = rng.gen_range(0..bytes.len());
                    if cut > 0 {
                        let _ = self.inner.write(at, bytes.slice(0..cut));
                    }
                }
            }
            return Err(Error::storage(format!("{:?} lost power mid-flush", self.node)));
        }
        self.inner.write(at, bytes)
    }
}

fn acct_key(i: i64) -> Key {
    Key::encode(&[Value::Int(i)])
}

fn acct_row(i: i64, balance: i64) -> Row {
    Row::new(vec![Value::Int(i), Value::Int(balance)])
}

fn ledger_key(i: usize) -> Key {
    Key::encode(&[Value::Int(10_000 + i as i64)])
}

fn dn_of(i: i64) -> NodeId {
    if i % 2 == 0 {
        DN1
    } else {
        DN2
    }
}

fn bal(r: &Row) -> i64 {
    r.get(1).ok().and_then(|v| v.as_int().ok()).unwrap_or(0)
}

struct CnStub;
impl Handler<TxnMsg> for CnStub {
    fn handle(&self, _f: NodeId, m: TxnMsg) -> TxnMsg {
        m
    }
}

/// DN clocks start far apart (like the explorer's cluster) so that HLC
/// propagation, not wall-clock luck, is what keeps snapshots consistent —
/// including for the *recovered* DN, which restarts at physical zero.
fn dn_clock(i: u64) -> Arc<Hlc> {
    Hlc::with_physical(TestClock::at(1000 * i))
}

/// All CN-side coordinators share one session clock: commit acks raise it
/// above the DNs' timestamps, so later snapshots (including the
/// post-restart audits) can see earlier commits — plain HLC propagation.
fn coordinator(
    net: &Arc<SimNet<TxnMsg>>,
    ids: &Arc<IdGenerator>,
    rec: &Arc<HistoryRecorder>,
    clock: &Arc<Hlc>,
) -> Coordinator {
    Coordinator::new(CN, Arc::clone(net), Arc::clone(clock) as Arc<dyn Clock>, Arc::clone(ids))
        .with_decision_log(ARBITER)
        .with_config(TxnConfig {
            max_attempts: 5,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
        })
        .with_recorder(Arc::clone(rec))
}

/// One two-shard transfer plus a ledger insert on the victim. Returns the
/// commit timestamp when the commit was *acked* to the client.
fn transfer(coord: &Coordinator, i: usize, a: i64, b: i64) -> Result<u64> {
    let mut txn = coord.begin();
    let read = (|| -> Result<(i64, i64)> {
        let ra = txn
            .read(dn_of(a), BANK, &acct_key(a))?
            .ok_or_else(|| Error::execution("missing account"))?;
        let rb = txn
            .read(dn_of(b), BANK, &acct_key(b))?
            .ok_or_else(|| Error::execution("missing account"))?;
        Ok((bal(&ra), bal(&rb)))
    })();
    let (ba, bb) = match read {
        Ok(v) => v,
        Err(e) => {
            txn.abort();
            return Err(e);
        }
    };
    let wrote = (|| -> Result<()> {
        txn.write(dn_of(a), BANK, acct_key(a), WireWriteOp::Update(acct_row(a, ba - 1)))?;
        txn.write(dn_of(b), BANK, acct_key(b), WireWriteOp::Update(acct_row(b, bb + 1)))?;
        txn.write(DN1, LEDGER, ledger_key(i), WireWriteOp::Insert(Row::new(vec![
            Value::Int(10_000 + i as i64),
            Value::Int(1),
        ])))
    })();
    if let Err(e) = wrote {
        txn.abort();
        return Err(e);
    }
    txn.commit()
}

/// Single-snapshot read of every account; the conserved-sum probe and the
/// "is the victim serving again" signal rolled into one.
fn audit(coord: &Coordinator, accounts: usize) -> Result<i64> {
    let mut txn = coord.begin();
    let mut total = 0i64;
    for i in 0..accounts as i64 {
        match txn.read(dn_of(i), BANK, &acct_key(i)) {
            Ok(Some(r)) => total += bal(&r),
            Ok(None) => {
                txn.abort();
                return Err(Error::execution("missing account"));
            }
            Err(e) => {
                txn.abort();
                return Err(e);
            }
        }
    }
    txn.abort();
    Ok(total)
}

/// Run one crashpoint scenario end to end.
pub fn run_crashpoint(cfg: &RecoveryConfig) -> RecoveryRun {
    match cfg.crashpoint {
        CrashPoint::DuringPaxosDrain => run_paxos_drain(cfg),
        _ => run_txn_crash(cfg),
    }
}

fn run_txn_crash(cfg: &RecoveryConfig) -> RecoveryRun {
    let net: Arc<SimNet<TxnMsg>> = SimNet::new(LatencyMatrix::zero());
    let rec = HistoryRecorder::new();
    let ids = Arc::new(IdGenerator::new());
    let cn_clock: Arc<Hlc> = Hlc::with_physical(TestClock::at(500));
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EC0_4E41);

    // Victim DN: a real durable sink behind the crash wrapper.
    let sink = VecSink::new();
    let cp_sink = Arc::new(CrashpointSink {
        node: DN1,
        net: Arc::clone(&net),
        inner: Arc::clone(&sink),
        torn: Mutex::new(
            cfg.torn_tail.then(|| StdRng::seed_from_u64(cfg.seed ^ 0x7042_7A11)),
        ),
    });
    let e1 = if cfg.crashpoint == CrashPoint::MidEpochFlush {
        // Victim commits through the epoch pipeline; the crash lands on an
        // epoch-flusher persist, tearing a multi-txn epoch batch.
        let log = LogBuffer::new(cp_sink as Arc<dyn LogSink>);
        let e = StorageEngine::with_durability(SyncLocalDurability::new(Arc::clone(&log)));
        e.enable_epoch(LocalEpochSink::new(log), EpochConfig::default());
        e
    } else {
        StorageEngine::with_sink(cp_sink as Arc<dyn LogSink>)
    };
    e1.create_table(BANK, TENANT);
    e1.create_table(LEDGER, TENANT);
    let dn1 = DnService::new(DN1, Arc::clone(&e1), dn_clock(1));
    dn1.attach_recorder(Arc::clone(&rec));
    net.register(DN1, DcId(1), Arc::clone(&dn1) as Arc<dyn Handler<TxnMsg>>);

    let e2 = StorageEngine::in_memory();
    e2.create_table(BANK, TENANT);
    let dn2 = DnService::new(DN2, Arc::clone(&e2), dn_clock(2));
    dn2.attach_recorder(Arc::clone(&rec));
    net.register(DN2, DcId(2), Arc::clone(&dn2) as Arc<dyn Handler<TxnMsg>>);

    let ea = StorageEngine::in_memory();
    let arb = DnService::new(ARBITER, ea, dn_clock(3));
    net.register(ARBITER, DcId(3), Arc::clone(&arb) as Arc<dyn Handler<TxnMsg>>);

    net.register(CN, DcId(1), Arc::new(CnStub));

    let resolver_cfg = ResolverConfig {
        interval: Duration::from_millis(10),
        in_doubt_after: Duration::from_millis(50),
        abandon_active_after: Duration::from_millis(150),
    };
    let res2 = dn2.start_resolver(Arc::clone(&net), resolver_cfg).expect("resolver");

    // Seed the bank before arming any crash trigger, so flush counts and
    // decision counts are workload-relative (deterministic per seed).
    let seeder = coordinator(&net, &ids, &rec, &cn_clock);
    for i in 0..cfg.accounts as i64 {
        let mut txn = seeder.begin();
        txn.write(dn_of(i), BANK, acct_key(i), WireWriteOp::Insert(acct_row(i, cfg.initial)))
            .expect("seed write");
        txn.commit().expect("seed commit");
    }
    let expected_total = cfg.accounts as i64 * cfg.initial;

    // Arm the crash.
    let coord = match cfg.crashpoint {
        CrashPoint::MidGroupFlush | CrashPoint::MidEpochFlush => {
            // Each transfer costs the victim ~2 flushes (prepare + commit
            // apply; in epoch mode, the epochs carrying them); fire inside
            // the first handful so plenty of acked state both precedes and
            // follows the crash.
            net.set_fault_plan(
                FaultPlan::new(cfg.seed).with_label("recovery-mid-group-flush").with_flush_shot(
                    FlushShot {
                        node: DN1,
                        after_flushes: rng.gen_range(2..=6),
                        fault: OneShotFault::Crash(DN1),
                    },
                ),
            );
            coordinator(&net, &ids, &rec, &cn_clock)
        }
        CrashPoint::BetweenPrepareAndCommit => {
            // Crash the victim on the Mth logged decision, after the
            // arbiter has it but before phase two reaches the victim. The
            // client still gets its ack.
            let m = rng.gen_range(2..=4u64);
            let seen = AtomicU64::new(0);
            let fp_net = Arc::clone(&net);
            coordinator(&net, &ids, &rec, &cn_clock).with_failpoint(Arc::new(move |point| {
                if point == "txn.after_decision"
                    && seen.fetch_add(1, Ordering::SeqCst) + 1 == m
                {
                    fp_net.crash(DN1);
                }
            }))
        }
        CrashPoint::DuringPaxosDrain => unreachable!(),
    };

    // Workload: sequential transfers, always DN1 (even) → DN2 (odd).
    let mut acked: Vec<usize> = Vec::new();
    let mut crash_at: Option<Duration> = None;
    for i in 0..cfg.transfers {
        let a = 2 * rng.gen_range(0..cfg.accounts as i64 / 2);
        let b = 2 * rng.gen_range(0..cfg.accounts as i64 / 2) + 1;
        if transfer(&coord, i, a, b).is_ok() {
            acked.push(i);
        }
        if crash_at.is_none() && net.is_crashed(DN1) {
            crash_at = Some(mono_now());
        }
    }
    // A seed whose trigger never fired still crashes — at a quiescent
    // point, the easiest case, but the recovery path is identical.
    if crash_at.is_none() {
        net.crash(DN1);
        crash_at = Some(mono_now());
    }
    let t_crash = crash_at.unwrap();

    // ---- Amnesia restart -------------------------------------------------
    // Drop the dead service and engine on the floor; all that survives is
    // the durable sink. Scan-and-truncate + replay happen inside
    // `recovered_engine`.
    drop(dn1);
    drop(e1);
    let (engine, r1) =
        recovered_engine(Arc::clone(&sink), &[(BANK, TENANT), (LEDGER, TENANT)])
            .expect("recovery");

    // Idempotence: replaying the (already clean) log into the same engine
    // again must register nothing new — every record is recognised as
    // already applied.
    let rescan = scan_records(&sink.contiguous());
    let r2 = replay_records(&engine, &rescan.records).expect("second replay");
    let replay_idempotent =
        r2.committed == 0 && r2.aborted == 0 && r2.in_doubt.len() == r1.in_doubt.len();

    let dn1b = DnService::new(DN1, Arc::clone(&engine), Hlc::with_physical(TestClock::at(0)));
    for (trx, _) in &r1.in_doubt {
        dn1b.adopt_in_doubt(*trx, Some(ARBITER));
    }
    dn1b.attach_recorder(Arc::clone(&rec));
    net.register(DN1, DcId(1), Arc::clone(&dn1b) as Arc<dyn Handler<TxnMsg>>);
    net.restart_amnesia(DN1);
    let res1 = dn1b.start_resolver(Arc::clone(&net), resolver_cfg).expect("resolver");

    // ---- RTO: first clean audit through the recovered node ---------------
    let auditor = coordinator(&net, &ids, &rec, &cn_clock);
    let deadline = mono_now() + Duration::from_secs(20);
    let mut rto = Duration::ZERO;
    let mut recovered_in_time = false;
    while mono_now() < deadline {
        match audit(&auditor, cfg.accounts) {
            Ok(_) => {
                rto = mono_now() - t_crash;
                recovered_in_time = true;
                break;
            }
            Err(e) => {
                if std::env::var_os("POLARDBX_RECOVERY_DEBUG").is_some() {
                    eprintln!("audit retry: {e:?}");
                }
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // Let the resolvers settle every straggler, then take the final sum.
    let drained = {
        let dns = [Arc::clone(&dn1b), Arc::clone(&dn2)];
        let deadline = mono_now() + Duration::from_secs(10);
        loop {
            if dns.iter().all(|d| !d.engine.has_active_txns() && d.in_doubt_count() == 0) {
                break true;
            }
            if mono_now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    let observed_total = audit(&auditor, cfg.accounts).unwrap_or(i64::MIN);
    let conserved_ok = drained && observed_total == expected_total;

    // ---- RPO: every acked transfer's ledger row survived ------------------
    let ledger = engine.scan_table(LEDGER, u64::MAX).unwrap_or_default();
    let present: std::collections::HashSet<Key> = ledger.into_iter().map(|(k, _)| k).collect();
    let lost_acked = acked.iter().filter(|i| !present.contains(&ledger_key(**i))).count();

    res1.stop();
    res2.stop();
    let events = rec.take();
    let report = check(&events);
    if !report.is_clean() && std::env::var_os("POLARDBX_RECOVERY_DEBUG").is_some() {
        let mut touched: std::collections::HashSet<polardbx_common::TrxId> =
            std::collections::HashSet::new();
        for a in &report.anomalies {
            touched.extend(a.txns.iter().copied());
        }
        for ev in &events {
            eprintln!("EV {ev:?}");
        }
        eprintln!("ANOMALY TXNS: {touched:?}");
    }
    // The derived audit re-checks conservation from the history itself.
    let derived_ok = derived_audit_totals(&events, BANK, 1, cfg.accounts)
        .iter()
        .all(|(_, total)| *total == expected_total);
    let amnesia_restarts = net.fault_stats.amnesia_restarts.get();
    net.shutdown();

    RecoveryRun {
        crashpoint_label: cfg.crashpoint.label(),
        seed: cfg.seed,
        report,
        conserved_ok: conserved_ok && derived_ok,
        expected_total,
        observed_total,
        acked_commits: acked.len(),
        lost_acked,
        replay_idempotent,
        rto,
        recovered_in_time,
        in_doubt_recovered: r1.in_doubt.len(),
        truncated_bytes: r1.truncated_bytes,
        amnesia_restarts,
    }
}

fn drain_mtr(n: i64) -> Mtr {
    Mtr::single(RedoPayload::Insert {
        trx: polardbx_common::TrxId(777),
        table: BANK,
        key: acct_key(n),
        row: Bytes::from(vec![b'd'; 24]),
    })
}

/// Crash a consensus follower while the leader keeps draining its queue;
/// rejoin from durable frames and catch up before serving.
fn run_paxos_drain(cfg: &RecoveryConfig) -> RecoveryRun {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD4A14);
    let g = PaxosGroup::build(GroupConfig::three_dc(21));
    let leader = g.leader().expect("bootstrap leader");
    let members: Vec<NodeId> = g.replicas.iter().map(|r| r.me).collect();

    // Pre-crash entries, each acked durable before we pull the plug.
    let pre = rng.gen_range(3..=6);
    let mut acked_lsns: Vec<Lsn> = Vec::new();
    for n in 0..pre {
        acked_lsns
            .push(leader.replicate_and_wait(&[drain_mtr(n)], Duration::from_secs(2)).expect("pre"));
    }
    let acked_horizon = leader.status().dlsn;

    // Victim: the non-leader *voter* (DC3 holds the logger).
    let victim_idx = g
        .replicas
        .iter()
        .position(|r| r.me != leader.me && r.status().role == Role::Follower)
        .expect("a follower to crash");
    let victim = g.replicas[victim_idx].me;
    let victim_dc = DcId(victim_idx as u64 + 1);
    g.net.crash(victim);
    let t_crash = mono_now();

    // Drain continues on the surviving majority (leader + logger).
    let post = rng.gen_range(2..=5);
    for n in 0..post {
        leader
            .replicate_and_wait(&[drain_mtr(100 + n)], Duration::from_secs(2))
            .expect("post-crash drain");
    }

    // Amnesia restart from the durable frame log, with an optional torn
    // tail chewing into the last frame.
    let sink = Arc::clone(&g.sinks[victim_idx]);
    let mut truncated_bytes = 0u64;
    if cfg.torn_tail {
        sink.corrupt_tail(rng.gen_range(1..8));
    }
    let stream = sink.frame_stream();
    let scan = scan_frames(&stream);
    // Scanning is read-only, so a second scan must agree exactly.
    let rescan = scan_frames(&sink.frame_stream());
    let mut replay_idempotent =
        scan.frames == rescan.frames && scan.valid_len == rescan.valid_len;
    if scan.torn.is_some() {
        truncated_bytes = (stream.len() - scan.valid_len) as u64;
        let durable = scan.durable_lsn().unwrap_or(Lsn::ZERO);
        sink.truncate_frames_to(durable);
        // After truncation the stream must scan clean — and identically.
        let clean = scan_frames(&sink.frame_stream());
        replay_idempotent =
            replay_idempotent && clean.torn.is_none() && clean.frames == scan.frames;
    }

    let recovered = Replica::recovered(
        victim,
        victim_dc,
        members,
        false,
        Arc::clone(&g.net),
        Arc::clone(&sink) as Arc<dyn LogSink>,
        scan.frames.clone(),
    );
    g.net.register(victim, victim_dc, Arc::clone(&recovered) as Arc<dyn Handler<_>>);
    g.net.restart_amnesia(victim);
    leader.sync_followers();

    // RTO: rejoin → caught up to the leader's full log (reject-resend
    // backfill plus live heartbeats).
    let target = leader.status().last_lsn;
    let deadline = mono_now() + Duration::from_secs(10);
    let mut rto = Duration::ZERO;
    let mut recovered_in_time = false;
    while mono_now() < deadline {
        let st = recovered.status();
        if st.dlsn >= target && st.last_lsn >= target {
            rto = mono_now() - t_crash;
            recovered_in_time = true;
            break;
        }
        leader.sync_followers();
        std::thread::sleep(Duration::from_millis(2));
    }

    // RPO: every entry acked before the crash is in the recovered log.
    let final_last = recovered.status().last_lsn;
    let lost_acked = acked_lsns.iter().filter(|l| **l > final_last).count()
        + usize::from(final_last < acked_horizon);

    let amnesia_restarts = g.net.fault_stats.amnesia_restarts.get();
    g.net.shutdown();

    RecoveryRun {
        crashpoint_label: cfg.crashpoint.label(),
        seed: cfg.seed,
        // No transactional history in this scenario; the checker runs on
        // an empty history and must (trivially) come back clean.
        report: check(&[]),
        conserved_ok: true,
        expected_total: 0,
        observed_total: 0,
        acked_commits: acked_lsns.len(),
        lost_acked,
        replay_idempotent,
        rto,
        recovered_in_time,
        in_doubt_recovered: 0,
        truncated_bytes,
        amnesia_restarts,
    }
}

/// Run the (crashpoint × seed) matrix.
pub fn sweep(seeds: &[u64], crashpoints: &[CrashPoint], torn_tail: bool) -> Vec<RecoveryRun> {
    let mut out = Vec::new();
    for &seed in seeds {
        for &cp in crashpoints {
            let mut cfg = RecoveryConfig::quick(seed, cp);
            cfg.torn_tail = torn_tail;
            out.push(run_crashpoint(&cfg));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_run(r: &RecoveryRun) {
        assert!(r.recovered_in_time, "{}: victim never came back", r.crashpoint_label);
        assert_eq!(r.lost_acked, 0, "{}: acked commits lost (RPO > 0)", r.crashpoint_label);
        assert!(r.replay_idempotent, "{}: replay not idempotent", r.crashpoint_label);
        assert!(r.conserved_ok, "{}: conserved sum broken: {:?}", r.crashpoint_label, r);
        assert!(
            r.report.is_clean(),
            "{}: anomalies across restart: {:?}",
            r.crashpoint_label,
            r.report
        );
        assert!(r.passed());
    }

    #[test]
    fn mid_group_flush_crash_recovers_clean() {
        let r = run_crashpoint(&RecoveryConfig::quick(1, CrashPoint::MidGroupFlush));
        assert!(r.amnesia_restarts >= 1);
        assert_run(&r);
    }

    #[test]
    fn mid_epoch_flush_crash_rolls_back_the_torn_epoch() {
        let r = run_crashpoint(&RecoveryConfig::quick(1, CrashPoint::MidEpochFlush));
        assert!(r.amnesia_restarts >= 1);
        assert_run(&r);
    }

    #[test]
    fn prepare_commit_window_crash_keeps_acked_commit() {
        let r = run_crashpoint(&RecoveryConfig::quick(2, CrashPoint::BetweenPrepareAndCommit));
        assert!(r.acked_commits > 0);
        assert_run(&r);
    }

    #[test]
    fn paxos_drain_crash_rejoins_and_catches_up() {
        let r = run_crashpoint(&RecoveryConfig::quick(3, CrashPoint::DuringPaxosDrain));
        assert!(r.acked_commits > 0);
        assert_run(&r);
    }

    #[test]
    fn torn_tail_off_still_recovers() {
        let mut cfg = RecoveryConfig::quick(4, CrashPoint::MidGroupFlush);
        cfg.torn_tail = false;
        let r = run_crashpoint(&cfg);
        assert_run(&r);
    }
}
