//! Throttled executor for placement-driven partition re-homes.
//!
//! The adaptive placer (crate `polardbx-placement`) may propose a burst of
//! moves in one pass; applying them back-to-back would stack cutover
//! pauses and violate the Fig 8 non-disruption claim. This executor is the
//! policy layer between plan and mechanism: it spaces moves by a minimum
//! gap (measured with `common::time`, so chaos tests can crank a
//! [`polardbx_common::time::ManualTime`]), caps the number applied per
//! pass, and *skips* — rather than waits for — anything the throttle
//! rejects, leaving it for a later pass when the co-access pattern still
//! warrants it.
//!
//! The actual cutover is a callback: the cluster layer passes its
//! freeze-drain-move-unfreeze routine and gets back the per-move pause,
//! which the report aggregates for the bench's p99-disruption bar.

use std::time::Duration;

use parking_lot::Mutex;
use polardbx_common::time::mono_now;
use polardbx_common::Result;
use polardbx_placement::RehomeMove;

/// Throttle knobs.
#[derive(Debug, Clone, Copy)]
pub struct RehomeConfig {
    /// Minimum spacing between two applied moves.
    pub min_gap: Duration,
    /// Most moves applied in a single [`RehomeExecutor::execute`] pass.
    pub max_per_pass: usize,
}

impl Default for RehomeConfig {
    fn default() -> Self {
        RehomeConfig { min_gap: Duration::from_millis(50), max_per_pass: 4 }
    }
}

/// Outcome of one executor pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RehomeReport {
    /// Moves the plan proposed.
    pub proposed: usize,
    /// Moves actually applied.
    pub applied: usize,
    /// Moves skipped by the min-gap / per-pass throttle.
    pub throttled: usize,
    /// Moves whose cutover returned an error (left in place).
    pub failed: usize,
    /// Longest single-cutover pause observed (disruption bound).
    pub max_pause: Duration,
}

/// Applies planned moves through a cutover callback under the throttle.
/// One instance per cluster; the gap state persists across passes.
pub struct RehomeExecutor {
    cfg: RehomeConfig,
    last_applied: Mutex<Option<Duration>>,
}

impl RehomeExecutor {
    /// Executor with the given throttle.
    pub fn new(cfg: RehomeConfig) -> RehomeExecutor {
        RehomeExecutor { cfg, last_applied: Mutex::new(None) }
    }

    /// Apply `moves` through `cutover`, which performs the actual
    /// freeze/drain/move/unfreeze and returns the traffic pause it caused.
    /// Failed moves are recorded and skipped — the placer will re-propose
    /// them if the pattern persists.
    pub fn execute<F>(&self, moves: &[RehomeMove], mut cutover: F) -> RehomeReport
    where
        F: FnMut(&RehomeMove) -> Result<Duration>,
    {
        let mut report = RehomeReport { proposed: moves.len(), ..RehomeReport::default() };
        for mv in moves {
            if report.applied >= self.cfg.max_per_pass {
                report.throttled += 1;
                continue;
            }
            {
                let last = self.last_applied.lock();
                if let Some(at) = *last {
                    if mono_now() < at + self.cfg.min_gap {
                        report.throttled += 1;
                        continue;
                    }
                }
            }
            match cutover(mv) {
                Ok(pause) => {
                    *self.last_applied.lock() = Some(mono_now());
                    report.applied += 1;
                    report.max_pause = report.max_pause.max(pause);
                }
                Err(_) => report.failed += 1,
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::time::{reset_time_source, set_time_source, ManualTime};
    use polardbx_common::{Error, NodeId};
    use std::sync::Arc;

    fn mv(part: u64) -> RehomeMove {
        RehomeMove { part, from: NodeId(1), to: NodeId(2), weight: 10 }
    }

    #[test]
    fn applies_up_to_the_pass_cap() {
        let ex = RehomeExecutor::new(RehomeConfig {
            min_gap: Duration::ZERO,
            max_per_pass: 2,
        });
        let moves = [mv(1), mv(2), mv(3)];
        let r = ex.execute(&moves, |_| Ok(Duration::from_millis(1)));
        assert_eq!(r.applied, 2);
        assert_eq!(r.throttled, 1);
        assert_eq!(r.max_pause, Duration::from_millis(1));
    }

    #[test]
    fn min_gap_spaces_moves_across_passes() {
        let clock = Arc::new(ManualTime::new());
        set_time_source(Arc::clone(&clock) as _);
        let ex = RehomeExecutor::new(RehomeConfig {
            min_gap: Duration::from_secs(1),
            max_per_pass: 10,
        });
        let moves = [mv(1), mv(2)];
        let r1 = ex.execute(&moves, |_| Ok(Duration::ZERO));
        assert_eq!((r1.applied, r1.throttled), (1, 1), "second move inside the gap");
        let r2 = ex.execute(&moves[1..], |_| Ok(Duration::ZERO));
        assert_eq!(r2.applied, 0, "gap not yet elapsed");
        clock.advance(Duration::from_secs(2));
        let r3 = ex.execute(&moves[1..], |_| Ok(Duration::ZERO));
        assert_eq!(r3.applied, 1);
        reset_time_source();
    }

    #[test]
    fn failures_do_not_consume_the_gap() {
        let ex = RehomeExecutor::new(RehomeConfig {
            min_gap: Duration::from_secs(3600),
            max_per_pass: 10,
        });
        let moves = [mv(1), mv(2)];
        let mut calls = 0;
        let r = ex.execute(&moves, |_| {
            calls += 1;
            if calls == 1 {
                Err(Error::invalid("cutover lost the race"))
            } else {
                Ok(Duration::ZERO)
            }
        });
        assert_eq!(r.failed, 1);
        assert_eq!(r.applied, 1, "a failed move leaves the throttle open");
    }
}
