//! The tenant→RW binding system table with leases (§V "Tenant Transfer").
//!
//! "The binding information of RW nodes and tenants is stored in an
//! internal system table, which is shared with upper-level components such
//! as proxy or CN. … Each RW node subscribes to the updates of the binding
//! info and obtains a lease from the master RW node."

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::time::Duration;

use polardbx_common::time::mono_now;
use polardbx_common::{Error, NodeId, Result, TenantId};

/// A lease on the binding info held by an RW node.
#[derive(Debug, Clone, Copy)]
pub struct Lease {
    /// The holder.
    pub node: NodeId,
    /// Expiry instant.
    pub until: Duration,
    /// Binding-table version the lease was granted against.
    pub version: u64,
}

impl Lease {
    /// Is the lease still valid?
    pub fn valid(&self) -> bool {
        mono_now() < self.until
    }
}

/// The shared binding table.
pub struct BindingTable {
    bindings: RwLock<HashMap<TenantId, NodeId>>,
    version: Mutex<u64>,
    lease_duration: Duration,
    leases: Mutex<HashMap<NodeId, Lease>>,
}

impl BindingTable {
    /// A table granting leases of the given duration.
    pub fn new(lease_duration: Duration) -> BindingTable {
        BindingTable {
            bindings: RwLock::new(HashMap::new()),
            version: Mutex::new(0),
            lease_duration,
            leases: Mutex::new(HashMap::new()),
        }
    }

    /// Bind `tenant` to `node`, bumping the version (invalidates leases
    /// granted against older versions — holders must refresh).
    pub fn bind(&self, tenant: TenantId, node: NodeId) -> u64 {
        let mut v = self.version.lock();
        self.bindings.write().insert(tenant, node);
        *v += 1;
        *v
    }

    /// Remove a binding (tenant dropped).
    pub fn unbind(&self, tenant: TenantId) -> u64 {
        let mut v = self.version.lock();
        self.bindings.write().remove(&tenant);
        *v += 1;
        *v
    }

    /// Current owner of `tenant`.
    pub fn owner(&self, tenant: TenantId) -> Option<NodeId> {
        self.bindings.read().get(&tenant).copied()
    }

    /// All tenants bound to `node`.
    pub fn tenants_of(&self, node: NodeId) -> Vec<TenantId> {
        self.bindings
            .read()
            .iter()
            .filter(|(_, n)| **n == node)
            .map(|(t, _)| *t)
            .collect()
    }

    /// Tenant count per node (load statistic for the GMS migration planner).
    pub fn load_distribution(&self) -> HashMap<NodeId, usize> {
        let mut dist = HashMap::new();
        for node in self.bindings.read().values() {
            *dist.entry(*node).or_insert(0) += 1;
        }
        dist
    }

    /// Current binding version.
    pub fn version(&self) -> u64 {
        *self.version.lock()
    }

    /// Grant (or renew) `node`'s lease against the current version.
    pub fn acquire_lease(&self, node: NodeId) -> Lease {
        let lease = Lease {
            node,
            until: mono_now() + self.lease_duration,
            version: self.version(),
        };
        self.leases.lock().insert(node, lease);
        lease
    }

    /// Validate that `node` holds a fresh lease *and* its lease version is
    /// current. An RW whose lease lapsed or predates a rebind must refresh
    /// and re-check its tenants (§V: "when the RW node finds that the lease
    /// is lost, it will suspend the submission of all outstanding
    /// transactions").
    pub fn check_lease(&self, node: NodeId) -> Result<()> {
        let leases = self.leases.lock();
        match leases.get(&node) {
            Some(l) if l.valid() && l.version == self.version() => Ok(()),
            _ => Err(Error::LeaseLost { holder: node.raw() }),
        }
    }

    /// Force-expire a node's lease (failure injection).
    pub fn revoke_lease(&self, node: NodeId) {
        self.leases.lock().remove(&node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let b = BindingTable::new(Duration::from_secs(10));
        b.bind(TenantId(1), NodeId(1));
        b.bind(TenantId(2), NodeId(1));
        b.bind(TenantId(3), NodeId(2));
        assert_eq!(b.owner(TenantId(1)), Some(NodeId(1)));
        assert_eq!(b.owner(TenantId(9)), None);
        let mut t = b.tenants_of(NodeId(1));
        t.sort();
        assert_eq!(t, vec![TenantId(1), TenantId(2)]);
        assert_eq!(b.load_distribution()[&NodeId(1)], 2);
    }

    #[test]
    fn lease_valid_until_rebind() {
        let b = BindingTable::new(Duration::from_secs(10));
        b.bind(TenantId(1), NodeId(1));
        b.acquire_lease(NodeId(1));
        b.check_lease(NodeId(1)).unwrap();
        // A rebind bumps the version; stale leases fail until renewed.
        b.bind(TenantId(1), NodeId(2));
        assert!(matches!(b.check_lease(NodeId(1)), Err(Error::LeaseLost { .. })));
        b.acquire_lease(NodeId(1));
        b.check_lease(NodeId(1)).unwrap();
    }

    #[test]
    fn lease_expires_in_time() {
        let b = BindingTable::new(Duration::from_millis(10));
        b.acquire_lease(NodeId(1));
        b.check_lease(NodeId(1)).unwrap();
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.check_lease(NodeId(1)).is_err());
    }

    #[test]
    fn revoke_is_immediate() {
        let b = BindingTable::new(Duration::from_secs(10));
        b.acquire_lease(NodeId(1));
        b.revoke_lease(NodeId(1));
        assert!(b.check_lease(NodeId(1)).is_err());
    }

    #[test]
    fn unbind_removes() {
        let b = BindingTable::new(Duration::from_secs(10));
        b.bind(TenantId(1), NodeId(1));
        let v1 = b.version();
        b.unbind(TenantId(1));
        assert_eq!(b.owner(TenantId(1)), None);
        assert!(b.version() > v1);
    }
}
