//! PolarDB-MT: multi-tenancy with multiple RW nodes over shared storage
//! (§V of the paper).
//!
//! A tenant is a collection of tables with no cross-tenant transactions.
//! Multiple RW nodes share the storage but operate on **disjoint** tenants;
//! each tenant is bound to exactly one RW node at any time. The pieces:
//!
//! * [`binding`] — the tenant→RW binding system table with leases; an RW
//!   that lost its lease must abort affected transactions.
//! * [`dictionary`] — the shared data dictionary: one master RW holds the
//!   authority, other RWs keep read caches of tables they open, and DDL
//!   goes through an exclusive MDL + master validation.
//! * [`node`] — an MT-enabled RW node: private redo log, per-tenant dirty
//!   page tracking, ownership checks on every transaction.
//! * [`transfer`] — the §V tenant-transfer protocol (pause → drain → flush
//!   dirty pages → rebind → open at destination → resume), which moves
//!   **no table data** thanks to shared storage; plus the shared-nothing
//!   row-copy baseline whose cost Fig 8(b) measures.
//! * [`recovery`] — per-tenant parallel redo replay: because each RW's log
//!   only touches its own tenants, logs replay independently and a peer RW
//!   can take over a failed node's tenants from its log.
//! * [`rehome`] — throttled executor for adaptive-placement partition
//!   moves: spaces cutovers out so migration storms never stack pauses.

pub mod binding;
pub mod dictionary;
pub mod node;
pub mod recovery;
pub mod rehome;
pub mod transfer;

pub use binding::{BindingTable, Lease};
pub use dictionary::{DataDictionary, TableMeta};
pub use node::MtRwNode;
pub use rehome::{RehomeConfig, RehomeExecutor, RehomeReport};
pub use transfer::{migrate_by_copy, migrate_tenant, CopyReport, MigrationReport, Router};
