//! An MT-enabled RW node: private redo log, ownership-checked transactions.
//!
//! Fig 5: each RW node has its own redo log (no write contention between
//! RWs) and writes only tables of tenants bound to it. Every transaction
//! first validates the binding + lease; a failed check returns an error
//! so the router retries against fresh binding info.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use polardbx_common::{Error, Key, NodeId, Result, Row, TableId, TenantId, TrxId};
use polardbx_storage::{StorageEngine, WriteOp};
use polardbx_wal::{LogSink, RedoPayload, VecSink};

use crate::binding::BindingTable;

/// A multi-tenant RW node.
pub struct MtRwNode {
    /// Node id.
    pub id: NodeId,
    /// The node's engine.
    pub engine: Arc<StorageEngine>,
    /// This node's private redo log sink (inspectable for recovery tests).
    pub log_sink: Arc<VecSink>,
    bindings: Arc<BindingTable>,
    ts: AtomicU64,
    trx: AtomicU64,
}

impl MtRwNode {
    /// A fresh node against the shared binding table.
    pub fn new(id: NodeId, bindings: Arc<BindingTable>) -> Arc<MtRwNode> {
        let sink = VecSink::new();
        let engine = StorageEngine::with_sink(sink.clone() as Arc<dyn LogSink>);
        Arc::new(MtRwNode {
            id,
            engine,
            log_sink: sink,
            bindings,
            ts: AtomicU64::new(1),
            trx: AtomicU64::new(id.raw() * 1_000_000 + 1),
        })
    }

    /// Next local timestamp (MT nodes serve single-tenant transactions, so
    /// a per-node counter suffices; cross-tenant ordering is not needed —
    /// "there is no cross-tenant transaction").
    fn next_ts(&self) -> u64 {
        self.ts.fetch_add(1, Ordering::Relaxed)
    }

    /// Validate that this node may touch `tenant` right now. A stale lease
    /// is re-acquired once against fresh binding info before failing —
    /// §V: "it will suspend the submission of all outstanding transactions
    /// and try to re-acquire the lease".
    pub fn check_ownership(&self, tenant: TenantId) -> Result<()> {
        if self.bindings.owner(tenant) != Some(self.id) {
            return Err(Error::NotOwner { tenant: tenant.raw(), node: self.id.raw() });
        }
        if self.bindings.check_lease(self.id).is_err() {
            self.bindings.acquire_lease(self.id);
            // Re-validate against the refreshed binding info: the tenant may
            // have migrated away while our lease was stale.
            if self.bindings.owner(tenant) != Some(self.id) {
                return Err(Error::NotOwner { tenant: tenant.raw(), node: self.id.raw() });
            }
        }
        Ok(())
    }

    /// Create a tenant table on this node, marking the log with the tenant
    /// (per-tenant log division for parallel recovery, §V).
    pub fn create_table(&self, table: TableId, tenant: TenantId) -> Result<()> {
        self.check_ownership(tenant)?;
        self.engine.create_table(table, tenant);
        self.engine.log_marker(RedoPayload::TenantMark { tenant }).map(|_| ())
    }

    /// Run a single-row write transaction for `tenant`.
    pub fn write_row(
        &self,
        tenant: TenantId,
        table: TableId,
        key: Key,
        op: WriteOp,
    ) -> Result<()> {
        self.check_ownership(tenant)?;
        if self.engine.tenant_of(table) != Some(tenant) {
            return Err(Error::NotOwner { tenant: tenant.raw(), node: self.id.raw() });
        }
        let trx = TrxId(self.trx.fetch_add(1, Ordering::Relaxed));
        let snapshot = self.next_ts();
        self.engine.begin(trx, snapshot);
        if let Err(e) = self.engine.write(trx, table, key, op) {
            self.engine.abort(trx);
            return Err(e);
        }
        // Re-check the lease before commit: a tenant that migrated away
        // mid-transaction must abort (§V).
        if let Err(e) = self.check_ownership(tenant) {
            self.engine.abort(trx);
            return Err(e);
        }
        let commit_ts = self.next_ts();
        self.engine.commit(trx, commit_ts)?;
        Ok(())
    }

    /// Snapshot point read for `tenant`.
    pub fn read_row(&self, tenant: TenantId, table: TableId, key: &Key) -> Result<Option<Row>> {
        self.check_ownership(tenant)?;
        self.engine.read(table, key, u64::MAX, None)
    }

    /// Tenant-scoped row count.
    pub fn count_rows(&self, table: TableId) -> Result<usize> {
        self.engine.count_rows(table, u64::MAX)
    }

    /// Current timestamp floor for attach-time continuity.
    pub fn timestamp_floor(&self) -> u64 {
        self.ts.load(Ordering::Relaxed)
    }

    /// Raise the local timestamp above `floor` (used when a tenant arrives
    /// from a node whose timestamps ran ahead).
    pub fn raise_timestamp(&self, floor: u64) {
        self.ts.fetch_max(floor + 1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::Value;
    use std::time::Duration;

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64) -> Row {
        Row::new(vec![Value::Int(n), Value::str("v")])
    }

    fn setup() -> (Arc<BindingTable>, Arc<MtRwNode>, Arc<MtRwNode>) {
        let bindings = Arc::new(BindingTable::new(Duration::from_secs(10)));
        let rw1 = MtRwNode::new(NodeId(1), Arc::clone(&bindings));
        let rw2 = MtRwNode::new(NodeId(2), Arc::clone(&bindings));
        bindings.bind(TenantId(1), NodeId(1));
        bindings.bind(TenantId(2), NodeId(2));
        bindings.acquire_lease(NodeId(1));
        bindings.acquire_lease(NodeId(2));
        (bindings, rw1, rw2)
    }

    #[test]
    fn owner_writes_succeed_non_owner_rejected() {
        let (_b, rw1, rw2) = setup();
        rw1.create_table(TableId(1), TenantId(1)).unwrap();
        rw1.write_row(TenantId(1), TableId(1), key(1), WriteOp::Insert(row(1))).unwrap();
        assert_eq!(rw1.read_row(TenantId(1), TableId(1), &key(1)).unwrap(), Some(row(1)));
        // rw2 does not own tenant 1.
        let err = rw2
            .write_row(TenantId(1), TableId(1), key(2), WriteOp::Insert(row(2)))
            .unwrap_err();
        assert!(matches!(err, Error::NotOwner { .. }));
    }

    #[test]
    fn lost_lease_renews_against_fresh_bindings() {
        let (b, rw1, _rw2) = setup();
        rw1.create_table(TableId(1), TenantId(1)).unwrap();
        // A revoked lease renews transparently while the binding still
        // points here (§V: the node re-acquires and refreshes).
        b.revoke_lease(NodeId(1));
        rw1.write_row(TenantId(1), TableId(1), key(1), WriteOp::Insert(row(1))).unwrap();
        // But if the tenant moved away meanwhile, renewal exposes that and
        // the write fails.
        b.revoke_lease(NodeId(1));
        b.bind(TenantId(1), NodeId(2));
        let err = rw1
            .write_row(TenantId(1), TableId(1), key(2), WriteOp::Insert(row(2)))
            .unwrap_err();
        assert!(matches!(err, Error::NotOwner { .. }));
    }

    #[test]
    fn rebind_mid_flight_aborts_at_commit() {
        let (b, rw1, _rw2) = setup();
        rw1.create_table(TableId(1), TenantId(1)).unwrap();
        // Manually drive the transaction to control the rebind timing.
        rw1.engine.begin(TrxId(42), 1);
        rw1.engine
            .write(TrxId(42), TableId(1), key(9), WriteOp::Insert(row(9)))
            .unwrap();
        // The tenant migrates away (version bump invalidates rw1's lease).
        b.bind(TenantId(1), NodeId(2));
        assert!(rw1.check_ownership(TenantId(1)).is_err());
        rw1.engine.abort(TrxId(42));
        assert_eq!(rw1.engine.read(TableId(1), &key(9), u64::MAX, None).unwrap(), None);
    }

    #[test]
    fn private_logs_are_disjoint() {
        let (_b, rw1, rw2) = setup();
        rw1.create_table(TableId(1), TenantId(1)).unwrap();
        rw2.create_table(TableId(2), TenantId(2)).unwrap();
        rw1.write_row(TenantId(1), TableId(1), key(1), WriteOp::Insert(row(1))).unwrap();
        // Each node's log contains only its own tenant's marker/changes.
        let log1 = rw1.log_sink.contiguous();
        let log2 = rw2.log_sink.contiguous();
        assert!(!log1.is_empty() && !log2.is_empty());
        let recs1 = RedoPayload::decode_all(bytes::Bytes::from(log1)).unwrap();
        assert!(recs1
            .iter()
            .any(|r| matches!(r, RedoPayload::TenantMark { tenant } if *tenant == TenantId(1))));
        assert!(!recs1
            .iter()
            .any(|r| matches!(r, RedoPayload::TenantMark { tenant } if *tenant == TenantId(2))));
    }

    #[test]
    fn wrong_tenant_table_pairing_rejected() {
        let (_b, rw1, rw2) = setup();
        rw1.create_table(TableId(1), TenantId(1)).unwrap();
        rw2.create_table(TableId(2), TenantId(2)).unwrap();
        // rw2 owns tenant 2 but table 1 belongs to tenant 1 (and lives on rw1).
        let err = rw2
            .write_row(TenantId(2), TableId(1), key(1), WriteOp::Insert(row(1)))
            .unwrap_err();
        assert!(matches!(err, Error::NotOwner { .. }));
    }

    #[test]
    fn timestamp_floor_raises() {
        let (_b, rw1, _) = setup();
        rw1.raise_timestamp(5000);
        assert!(rw1.timestamp_floor() > 5000);
    }
}
