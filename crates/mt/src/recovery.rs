//! Per-tenant parallel redo recovery (§V "Design of PolarDB-MT").
//!
//! "There is no global ordering sequence or dependency between these logs
//! … redo logs belonging to different tenants can be concurrently replayed
//! to recover database states in parallel. In fact, if one RW node fails,
//! one or more other RW nodes can take over its redo log. They divide log
//! entries according to the tenant, replay them, complete the recovery
//! process and restore services."

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use polardbx_common::{Result, TableId, TenantId};
use polardbx_storage::engine::RedoApplier;
use polardbx_storage::StorageEngine;
use polardbx_wal::RedoPayload;

/// Split a redo byte stream into per-tenant record runs. Records between a
/// `TenantMark` and the next belong to that tenant; transaction records
/// (prepare/commit/abort) are attributed by the tables their transaction
/// touched.
pub fn split_by_tenant(
    bytes: Bytes,
    table_tenants: &HashMap<TableId, TenantId>,
) -> Result<HashMap<TenantId, Vec<RedoPayload>>> {
    let records = RedoPayload::decode_all(bytes)?;
    let mut out: HashMap<TenantId, Vec<RedoPayload>> = HashMap::new();
    // trx → tenants whose tables it wrote (commit records fan out to all).
    let mut trx_tenants: HashMap<polardbx_common::TrxId, Vec<TenantId>> = HashMap::new();
    for rec in records {
        match &rec {
            RedoPayload::Insert { trx, table, .. }
            | RedoPayload::Update { trx, table, .. }
            | RedoPayload::Delete { trx, table, .. } => {
                if let Some(&tenant) = table_tenants.get(table) {
                    trx_tenants.entry(*trx).or_default().push(tenant);
                    out.entry(tenant).or_default().push(rec);
                }
            }
            RedoPayload::TxnPrepare { trx, .. }
            | RedoPayload::TxnCommit { trx, .. }
            | RedoPayload::TxnAbort { trx } => {
                if let Some(tenants) = trx_tenants.get(trx) {
                    let mut seen = std::collections::HashSet::new();
                    for &tenant in tenants {
                        if seen.insert(tenant) {
                            out.entry(tenant).or_default().push(rec.clone());
                        }
                    }
                }
            }
            RedoPayload::TenantMark { tenant } => {
                out.entry(*tenant).or_default();
            }
            RedoPayload::Checkpoint { .. } => {}
        }
    }
    Ok(out)
}

/// Recover a failed RW node's tenants onto `takeover` engines: the log is
/// split by tenant and each run replays **in parallel** on its own thread.
/// Returns per-tenant replayed record counts.
pub fn parallel_recover(
    log: Bytes,
    table_tenants: &HashMap<TableId, TenantId>,
    takeover: &HashMap<TenantId, Arc<StorageEngine>>,
) -> Result<HashMap<TenantId, usize>> {
    let runs = split_by_tenant(log, table_tenants)?;
    let counts = std::sync::Mutex::new(HashMap::new());
    std::thread::scope(|s| {
        for (tenant, records) in &runs {
            let Some(engine) = takeover.get(tenant) else { continue };
            let counts = &counts;
            let engine = Arc::clone(engine);
            s.spawn(move || {
                // Ensure the tables exist on the takeover engine.
                for rec in records {
                    if let Some(table) = rec.table() {
                        if engine.tenant_of(table).is_none() {
                            engine.create_table(table, *tenant);
                        }
                    }
                }
                let applier = RedoApplier::new(engine);
                for rec in records {
                    applier.apply(rec);
                }
                counts.lock().unwrap().insert(*tenant, records.len());
            });
        }
    });
    Ok(counts.into_inner().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::BindingTable;
    use crate::node::MtRwNode;
    use polardbx_common::{Key, NodeId, Row, Value};
    use polardbx_storage::WriteOp;
    use std::time::Duration;

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64) -> Row {
        Row::new(vec![Value::Int(n), Value::str("r")])
    }

    /// Build a failed node's log with two tenants' traffic interleaved.
    fn failed_node_log() -> (Bytes, HashMap<TableId, TenantId>) {
        let bindings = Arc::new(BindingTable::new(Duration::from_secs(30)));
        let node = MtRwNode::new(NodeId(1), Arc::clone(&bindings));
        bindings.bind(TenantId(1), NodeId(1));
        bindings.bind(TenantId(2), NodeId(1));
        bindings.acquire_lease(NodeId(1));
        node.create_table(TableId(1), TenantId(1)).unwrap();
        node.create_table(TableId(2), TenantId(2)).unwrap();
        for i in 0..10i64 {
            node.write_row(TenantId(1), TableId(1), key(i), WriteOp::Insert(row(i))).unwrap();
            node.write_row(TenantId(2), TableId(2), key(i), WriteOp::Insert(row(i))).unwrap();
        }
        // One aborted write on tenant 1 that must NOT resurrect.
        node.engine.begin(polardbx_common::TrxId(777), 1_000_000);
        node.engine
            .write(polardbx_common::TrxId(777), TableId(1), key(99), WriteOp::Insert(row(99)))
            .unwrap();
        node.engine.abort(polardbx_common::TrxId(777));
        let mut map = HashMap::new();
        map.insert(TableId(1), TenantId(1));
        map.insert(TableId(2), TenantId(2));
        (Bytes::from(node.log_sink.contiguous()), map)
    }

    #[test]
    fn split_attributes_records_to_tenants() {
        let (log, map) = failed_node_log();
        let runs = split_by_tenant(log, &map).unwrap();
        assert_eq!(runs.len(), 2);
        let t1 = &runs[&TenantId(1)];
        // 10 inserts + 10 commits + 1 aborted insert + 1 abort.
        assert!(t1.len() >= 20);
        assert!(t1.iter().all(|r| r.table().is_none_or(|t| t == TableId(1))));
    }

    #[test]
    fn parallel_takeover_restores_both_tenants() {
        let (log, map) = failed_node_log();
        // Two survivor engines split the failed node's tenants.
        let e1 = StorageEngine::in_memory();
        let e2 = StorageEngine::in_memory();
        let mut takeover = HashMap::new();
        takeover.insert(TenantId(1), Arc::clone(&e1));
        takeover.insert(TenantId(2), Arc::clone(&e2));
        let counts = parallel_recover(log, &map, &takeover).unwrap();
        assert_eq!(counts.len(), 2);
        assert_eq!(e1.count_rows(TableId(1), u64::MAX).unwrap(), 10);
        assert_eq!(e2.count_rows(TableId(2), u64::MAX).unwrap(), 10);
        // The aborted write did not resurrect.
        assert_eq!(e1.read(TableId(1), &key(99), u64::MAX, None).unwrap(), None);
    }

    #[test]
    fn recover_subset_of_tenants() {
        let (log, map) = failed_node_log();
        let e1 = StorageEngine::in_memory();
        let mut takeover = HashMap::new();
        takeover.insert(TenantId(1), Arc::clone(&e1));
        let counts = parallel_recover(log, &map, &takeover).unwrap();
        assert_eq!(counts.len(), 1);
        assert_eq!(e1.count_rows(TableId(1), u64::MAX).unwrap(), 10);
    }
}
