//! The shared data dictionary (§V "Design of PolarDB-MT").
//!
//! "All RW nodes share a global data dictionary instead of maintaining a
//! distinct private one for each node. Only one RW node can grab a lease
//! [the master RW] … Other RW nodes maintain a read cache of the
//! dictionary, and only cache the metadata of tables they open." DDL takes
//! an exclusive MDL, forwards the change to the master for an ownership
//! check, then refreshes the local cache.

use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use polardbx_common::{Error, NodeId, Result, TableId, TenantId};

/// Metadata of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Table id.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Schema version (bumped by every DDL).
    pub version: u64,
}

/// The global dictionary: master authority + per-node read caches + MDL.
pub struct DataDictionary {
    /// The master RW node (the dictionary leaseholder).
    master: Mutex<NodeId>,
    /// Authoritative entries, kept by the master.
    entries: RwLock<HashMap<TableId, TableMeta>>,
    /// Per-node read caches (only tables the node opened).
    caches: RwLock<HashMap<NodeId, HashMap<TableId, TableMeta>>>,
    /// Metadata locks: tables currently under exclusive DDL.
    mdl: Mutex<HashSet<TableId>>,
}

impl DataDictionary {
    /// A dictionary mastered by `master`.
    pub fn new(master: NodeId) -> Arc<DataDictionary> {
        Arc::new(DataDictionary {
            master: Mutex::new(master),
            entries: RwLock::new(HashMap::new()),
            caches: RwLock::new(HashMap::new()),
            mdl: Mutex::new(HashSet::new()),
        })
    }

    /// Current master RW.
    pub fn master(&self) -> NodeId {
        *self.master.lock()
    }

    /// Move mastership (master RW failover).
    pub fn set_master(&self, node: NodeId) {
        *self.master.lock() = node;
    }

    /// Acquire the exclusive MDL on `table`. Fails if already held —
    /// concurrent DDL on one table is rejected rather than queued, which is
    /// sufficient for the experiments (the paper blocks).
    pub fn lock_mdl(&self, table: TableId) -> Result<MdlGuard<'_>> {
        let mut mdl = self.mdl.lock();
        if !mdl.insert(table) {
            return Err(Error::Timeout { what: format!("MDL on {table}") });
        }
        Ok(MdlGuard { dict: self, table })
    }

    /// Is the table under DDL? DML routers check this to block statements.
    pub fn mdl_held(&self, table: TableId) -> bool {
        self.mdl.lock().contains(&table)
    }

    /// Execute a DDL from `requester` (the tenant-owner RW): ownership is
    /// validated against the dictionary, the authoritative entry updates,
    /// and the requester's cache refreshes. Other nodes' caches for this
    /// table are invalidated (they reload on next open).
    pub fn apply_ddl(
        &self,
        requester: NodeId,
        owner_check: impl Fn(&TableMeta) -> bool,
        meta: TableMeta,
    ) -> Result<()> {
        let _guard = self.lock_mdl(meta.id)?;
        {
            let entries = self.entries.read();
            if let Some(existing) = entries.get(&meta.id) {
                if !owner_check(existing) {
                    return Err(Error::NotOwner {
                        tenant: existing.tenant.raw(),
                        node: requester.raw(),
                    });
                }
                if meta.version <= existing.version {
                    return Err(Error::Schema {
                        message: format!(
                            "stale DDL: version {} <= current {}",
                            meta.version, existing.version
                        ),
                    });
                }
            }
        }
        self.entries.write().insert(meta.id, meta.clone());
        let mut caches = self.caches.write();
        // Refresh requester's cache; drop everyone else's entry.
        for (node, cache) in caches.iter_mut() {
            if *node == requester {
                cache.insert(meta.id, meta.clone());
            } else {
                cache.remove(&meta.id);
            }
        }
        caches.entry(requester).or_default().insert(meta.id, meta);
        Ok(())
    }

    /// Open a table on `node`: serve from cache or load from the authority.
    pub fn open_table(&self, node: NodeId, table: TableId) -> Result<TableMeta> {
        if let Some(meta) = self.caches.read().get(&node).and_then(|c| c.get(&table)) {
            return Ok(meta.clone());
        }
        let meta = self
            .entries
            .read()
            .get(&table)
            .cloned()
            .ok_or(Error::UnknownTable { name: format!("{table}") })?;
        self.caches.write().entry(node).or_default().insert(table, meta.clone());
        Ok(meta)
    }

    /// Drop a node's cached entries for `tenant` (tenant left the node).
    pub fn evict_tenant_cache(&self, node: NodeId, tenant: TenantId) {
        if let Some(cache) = self.caches.write().get_mut(&node) {
            cache.retain(|_, m| m.tenant != tenant);
        }
    }

    /// Authoritative lookup (bypasses caches).
    pub fn lookup(&self, table: TableId) -> Option<TableMeta> {
        self.entries.read().get(&table).cloned()
    }

    /// Tables of a tenant (authoritative).
    pub fn tenant_tables(&self, tenant: TenantId) -> Vec<TableMeta> {
        self.entries.read().values().filter(|m| m.tenant == tenant).cloned().collect()
    }

    /// How many cache entries `node` holds (tests: "a table is cached by at
    /// most one RW node").
    pub fn cache_size(&self, node: NodeId) -> usize {
        self.caches.read().get(&node).map(|c| c.len()).unwrap_or(0)
    }
}

/// RAII guard for the exclusive MDL.
pub struct MdlGuard<'a> {
    dict: &'a DataDictionary,
    table: TableId,
}

impl Drop for MdlGuard<'_> {
    fn drop(&mut self) {
        self.dict.mdl.lock().remove(&self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, tenant: u64, version: u64) -> TableMeta {
        TableMeta {
            id: TableId(id),
            name: format!("t{id}"),
            tenant: TenantId(tenant),
            version,
        }
    }

    #[test]
    fn ddl_creates_and_caches_on_requester() {
        let d = DataDictionary::new(NodeId(1));
        d.apply_ddl(NodeId(2), |_| true, meta(1, 5, 1)).unwrap();
        assert_eq!(d.lookup(TableId(1)).unwrap().version, 1);
        assert_eq!(d.cache_size(NodeId(2)), 1);
        assert_eq!(d.cache_size(NodeId(3)), 0);
    }

    #[test]
    fn ownership_enforced() {
        let d = DataDictionary::new(NodeId(1));
        d.apply_ddl(NodeId(2), |_| true, meta(1, 5, 1)).unwrap();
        // A DDL from a non-owner is rejected by the master's check.
        let err = d
            .apply_ddl(NodeId(3), |m| m.tenant == TenantId(99), meta(1, 5, 2))
            .unwrap_err();
        assert!(matches!(err, Error::NotOwner { .. }));
    }

    #[test]
    fn stale_version_rejected() {
        let d = DataDictionary::new(NodeId(1));
        d.apply_ddl(NodeId(2), |_| true, meta(1, 5, 3)).unwrap();
        assert!(d.apply_ddl(NodeId(2), |_| true, meta(1, 5, 3)).is_err());
        assert!(d.apply_ddl(NodeId(2), |_| true, meta(1, 5, 2)).is_err());
        d.apply_ddl(NodeId(2), |_| true, meta(1, 5, 4)).unwrap();
    }

    #[test]
    fn ddl_invalidates_other_caches() {
        let d = DataDictionary::new(NodeId(1));
        d.apply_ddl(NodeId(2), |_| true, meta(1, 5, 1)).unwrap();
        // Node 3 opens (caches) the table.
        d.open_table(NodeId(3), TableId(1)).unwrap();
        assert_eq!(d.cache_size(NodeId(3)), 1);
        // Owner runs another DDL: node 3's cache entry is invalidated.
        d.apply_ddl(NodeId(2), |_| true, meta(1, 5, 2)).unwrap();
        assert_eq!(d.cache_size(NodeId(3)), 0);
        // Reopening loads the fresh version.
        assert_eq!(d.open_table(NodeId(3), TableId(1)).unwrap().version, 2);
    }

    #[test]
    fn mdl_is_exclusive() {
        let d = DataDictionary::new(NodeId(1));
        let g = d.lock_mdl(TableId(1)).unwrap();
        assert!(d.mdl_held(TableId(1)));
        assert!(d.lock_mdl(TableId(1)).is_err());
        drop(g);
        assert!(!d.mdl_held(TableId(1)));
        let _g2 = d.lock_mdl(TableId(1)).unwrap();
    }

    #[test]
    fn tenant_cache_eviction() {
        let d = DataDictionary::new(NodeId(1));
        d.apply_ddl(NodeId(2), |_| true, meta(1, 5, 1)).unwrap();
        d.apply_ddl(NodeId(2), |_| true, meta(2, 5, 1)).unwrap();
        d.apply_ddl(NodeId(2), |_| true, meta(3, 6, 1)).unwrap();
        assert_eq!(d.cache_size(NodeId(2)), 3);
        d.evict_tenant_cache(NodeId(2), TenantId(5));
        assert_eq!(d.cache_size(NodeId(2)), 1);
    }

    #[test]
    fn open_unknown_table_fails() {
        let d = DataDictionary::new(NodeId(1));
        assert!(d.open_table(NodeId(2), TableId(9)).is_err());
    }

    #[test]
    fn master_failover() {
        let d = DataDictionary::new(NodeId(1));
        assert_eq!(d.master(), NodeId(1));
        d.set_master(NodeId(7));
        assert_eq!(d.master(), NodeId(7));
    }
}
