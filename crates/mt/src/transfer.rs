//! Tenant transfer: fast migration over shared storage vs. row copy.
//!
//! §V's protocol, reproduced step by step in [`migrate_tenant`]:
//!
//! 1. the router pauses new transactions to the tenant,
//! 2. the source RW drains in-flight statements,
//! 3. the source flushes all of the tenant's dirty pages to PolarFS, evicts
//!    its cached pages/metadata and closes the tenant's resources,
//! 4. the binding system table is updated,
//! 5. the destination RW opens the tenant's tables (no data movement —
//!    shared storage) and fetches metadata,
//! 6. the router resumes, forwarding paused traffic to the destination.
//!
//! [`migrate_by_copy`] is the shared-nothing baseline of Fig 8(b): every
//! row is scanned out of the source and inserted at the destination, and a
//! bandwidth model prices the volume at production scale.

use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use polardbx_common::time::{mono_now, Timer};
use polardbx_common::{Error, NodeId, Result, TenantId};
use polardbx_polarfs::TransferModel;
use polardbx_storage::WriteOp;

use crate::binding::BindingTable;
use crate::dictionary::DataDictionary;
use crate::node::MtRwNode;

/// Outcome of a fast tenant migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Tenant moved.
    pub tenant: TenantId,
    /// Dirty pages flushed on the source.
    pub pages_flushed: usize,
    /// How long client traffic was paused.
    pub pause: Duration,
    /// End-to-end migration time.
    pub total: Duration,
}

/// Outcome of the row-copy baseline.
#[derive(Debug, Clone)]
pub struct CopyReport {
    /// Tenant moved.
    pub tenant: TenantId,
    /// Rows copied.
    pub rows: usize,
    /// Bytes copied (approximate row footprint).
    pub bytes: u64,
    /// Real elapsed time at the reproduction's scale.
    pub real_elapsed: Duration,
    /// Modeled time at the given bandwidth (production scale).
    pub modeled: Duration,
}

/// Routes tenant traffic to the currently bound RW node, with per-tenant
/// pause gates used during migration. This plays the role of "proxy or CN"
/// in §V: "they pause new transactions to the tenant and stop forwarding
/// them to the source RW".
pub struct Router {
    bindings: Arc<BindingTable>,
    nodes: RwLock<HashMap<NodeId, Arc<MtRwNode>>>,
    gates: Mutex<HashMap<TenantId, Arc<RwLock<()>>>>,
}

impl Router {
    /// A router over the binding table.
    pub fn new(bindings: Arc<BindingTable>) -> Arc<Router> {
        Arc::new(Router {
            bindings,
            nodes: RwLock::new(HashMap::new()),
            gates: Mutex::new(HashMap::new()),
        })
    }

    /// Register an RW node.
    pub fn add_node(&self, node: Arc<MtRwNode>) {
        self.nodes.write().insert(node.id, node);
    }

    /// All registered nodes.
    pub fn nodes(&self) -> Vec<Arc<MtRwNode>> {
        self.nodes.read().values().cloned().collect()
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> Option<Arc<MtRwNode>> {
        self.nodes.read().get(&id).cloned()
    }

    fn gate(&self, tenant: TenantId) -> Arc<RwLock<()>> {
        Arc::clone(self.gates.lock().entry(tenant).or_default())
    }

    /// Execute `f` against the tenant's current RW node. Blocks while the
    /// tenant is paused for migration; retries once on a binding race.
    pub fn execute<R>(
        &self,
        tenant: TenantId,
        f: impl Fn(&MtRwNode) -> Result<R>,
    ) -> Result<R> {
        for _ in 0..2 {
            let gate = self.gate(tenant);
            let _pass = gate.read(); // blocks while a migration holds write
            let owner = self
                .bindings
                .owner(tenant)
                .ok_or(Error::NotOwner { tenant: tenant.raw(), node: 0 })?;
            let node = self
                .node(owner)
                .ok_or(Error::NotOwner { tenant: tenant.raw(), node: owner.raw() })?;
            match f(&node) {
                Err(e) if e.is_retryable() => continue,
                other => return other,
            }
        }
        Err(Error::Timeout { what: format!("routing tenant {tenant}") })
    }
}

/// The §V fast path. Returns a [`MigrationReport`].
pub fn migrate_tenant(
    router: &Router,
    dict: &DataDictionary,
    bindings: &BindingTable,
    tenant: TenantId,
    dest: NodeId,
) -> Result<MigrationReport> {
    let t0 = Timer::start();
    let src_id = bindings
        .owner(tenant)
        .ok_or(Error::NotOwner { tenant: tenant.raw(), node: 0 })?;
    if src_id == dest {
        return Err(Error::invalid("tenant already on destination"));
    }
    let src = router.node(src_id).ok_or(Error::invalid("unknown source node"))?;
    let dst = router.node(dest).ok_or(Error::invalid("unknown destination node"))?;

    // 1. Pause new transactions (exclusive gate).
    let gate = router.gate(tenant);
    let pause_start = Timer::start();
    let _paused = gate.write();

    // 2. Drain: wait for the source's in-flight transactions to finish.
    let drain_deadline = mono_now() + Duration::from_secs(5);
    while src.engine.has_active_txns() {
        if mono_now() > drain_deadline {
            return Err(Error::Timeout { what: "draining source RW".into() });
        }
        std::thread::yield_now();
    }

    // 3. Flush the tenant's dirty pages; evict cache; close resources.
    let pages_flushed = src.engine.pool.flush_tenant(tenant, None)?;
    src.engine.pool.evict_tenant(tenant);
    dict.evict_tenant_cache(src_id, tenant);
    let tables = src.engine.tenant_tables(tenant);
    let mut detached = Vec::with_capacity(tables.len());
    for t in &tables {
        if let Some(store) = src.engine.detach_table(*t) {
            detached.push((*t, store));
        }
    }

    // 4. Update the binding (bumps version: source's lease goes stale).
    bindings.bind(tenant, dest);
    bindings.acquire_lease(dest);

    // 5. Destination opens the tenant's files + metadata. The stores are
    //    attached by reference — zero data movement.
    for (t, store) in detached {
        dst.engine.attach_table(t, store, tenant);
        let _ = dict.open_table(dest, t);
    }
    // Timestamp continuity: the destination must issue timestamps above
    // anything the source used for this tenant's data.
    dst.raise_timestamp(src.timestamp_floor());

    let pause = pause_start.elapsed();
    Ok(MigrationReport { tenant, pages_flushed, pause, total: t0.elapsed() })
}

/// The shared-nothing baseline: copy every row. `model` prices the moved
/// bytes at production bandwidth (Fig 8(b)'s hundreds of seconds).
pub fn migrate_by_copy(
    router: &Router,
    bindings: &BindingTable,
    tenant: TenantId,
    dest: NodeId,
    model: &TransferModel,
) -> Result<CopyReport> {
    let t0 = Timer::start();
    let src_id = bindings
        .owner(tenant)
        .ok_or(Error::NotOwner { tenant: tenant.raw(), node: 0 })?;
    let src = router.node(src_id).ok_or(Error::invalid("unknown source node"))?;
    let dst = router.node(dest).ok_or(Error::invalid("unknown destination node"))?;

    let gate = router.gate(tenant);
    let _paused = gate.write();

    let mut rows = 0usize;
    let mut bytes = 0u64;
    let tables = src.engine.tenant_tables(tenant);
    for t in &tables {
        dst.engine.create_table(*t, tenant);
        // Full scan + per-row insert — the data path a shared-nothing
        // system must take.
        for (key, row) in src.engine.scan_table(*t, u64::MAX)? {
            bytes += key.len() as u64 + row.heap_size() as u64;
            let trx = polardbx_common::TrxId(u64::MAX - rows as u64);
            dst.engine.begin(trx, u64::MAX - 1);
            dst.engine.write(trx, *t, key, WriteOp::Update(row))?;
            dst.engine.commit(trx, u64::MAX - 1)?;
            rows += 1;
        }
        src.engine.detach_table(*t);
    }
    bindings.bind(tenant, dest);
    bindings.acquire_lease(dest);
    dst.raise_timestamp(src.timestamp_floor());

    Ok(CopyReport {
        tenant,
        rows,
        bytes,
        real_elapsed: t0.elapsed(),
        modeled: model.transfer_time(bytes),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{Key, Row, TableId, Value};

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(n: i64) -> Row {
        Row::new(vec![Value::Int(n), Value::str("payload-payload-payload")])
    }

    struct World {
        bindings: Arc<BindingTable>,
        dict: Arc<DataDictionary>,
        router: Arc<Router>,
    }

    fn setup(tenants_per_node: u64) -> World {
        let bindings = Arc::new(BindingTable::new(Duration::from_secs(30)));
        let dict = DataDictionary::new(NodeId(1));
        let router = Router::new(Arc::clone(&bindings));
        for n in 1..=2u64 {
            let node = MtRwNode::new(NodeId(n), Arc::clone(&bindings));
            bindings.acquire_lease(NodeId(n));
            router.add_node(node);
        }
        let mut table_id = 1u64;
        for n in 1..=2u64 {
            for t in 0..tenants_per_node {
                let tenant = TenantId(n * 100 + t + 1);
                bindings.bind(tenant, NodeId(n));
                bindings.acquire_lease(NodeId(1));
                bindings.acquire_lease(NodeId(2));
                let node = router.node(NodeId(n)).unwrap();
                node.create_table(TableId(table_id), tenant).unwrap();
                for i in 0..50i64 {
                    node.write_row(
                        tenant,
                        TableId(table_id),
                        key(i),
                        WriteOp::Insert(row(i)),
                    )
                    .unwrap();
                }
                table_id += 1;
            }
        }
        World { bindings, dict, router }
    }

    #[test]
    fn fast_migration_preserves_data_and_rebinds() {
        let w = setup(1);
        let tenant = TenantId(101);
        let report =
            migrate_tenant(&w.router, &w.dict, &w.bindings, tenant, NodeId(2)).unwrap();
        assert_eq!(w.bindings.owner(tenant), Some(NodeId(2)));
        assert!(report.pages_flushed > 0, "tenant had dirty pages");
        // Data is intact at the destination — and served through the router.
        let count = w
            .router
            .execute(tenant, |node| node.count_rows(TableId(1)))
            .unwrap();
        assert_eq!(count, 50);
        // Writes now land on node 2.
        w.router
            .execute(tenant, |node| {
                assert_eq!(node.id, NodeId(2));
                node.write_row(tenant, TableId(1), key(99), WriteOp::Insert(row(99)))
            })
            .unwrap();
    }

    #[test]
    fn source_refuses_after_migration() {
        let w = setup(1);
        let tenant = TenantId(101);
        let src = w.router.node(NodeId(1)).unwrap();
        migrate_tenant(&w.router, &w.dict, &w.bindings, tenant, NodeId(2)).unwrap();
        let err = src
            .write_row(tenant, TableId(1), key(7), WriteOp::Update(row(7)))
            .unwrap_err();
        assert!(matches!(err, Error::NotOwner { .. } | Error::LeaseLost { .. }));
    }

    #[test]
    fn migration_to_self_rejected() {
        let w = setup(1);
        assert!(migrate_tenant(&w.router, &w.dict, &w.bindings, TenantId(101), NodeId(1))
            .is_err());
    }

    #[test]
    fn copy_baseline_moves_rows_and_costs_bandwidth() {
        let w = setup(1);
        let tenant = TenantId(101);
        let model = TransferModel { bandwidth_bytes_per_sec: 1_000_000, setup: Duration::ZERO };
        let report =
            migrate_by_copy(&w.router, &w.bindings, tenant, NodeId(2), &model).unwrap();
        assert_eq!(report.rows, 50);
        assert!(report.bytes > 1000);
        assert!(report.modeled > Duration::ZERO);
        // Data intact at destination.
        let count = w.router.execute(tenant, |n| n.count_rows(TableId(1))).unwrap();
        assert_eq!(count, 50);
    }

    #[test]
    fn fast_migration_beats_copy_shape() {
        // The structural claim behind Fig 8: migration cost is O(dirty
        // pages); copy cost is O(data volume). At production bandwidth the
        // modeled copy dwarfs the measured migration.
        let w = setup(2);
        let fast =
            migrate_tenant(&w.router, &w.dict, &w.bindings, TenantId(101), NodeId(2)).unwrap();
        let model = TransferModel::paper_default();
        let copy =
            migrate_by_copy(&w.router, &w.bindings, TenantId(102), NodeId(2), &model).unwrap();
        // Price the copy at the paper's 40 GB scale per step.
        let production_copy = model.transfer_time(40 * (1 << 30) / 8);
        assert!(
            production_copy > fast.total * 50,
            "copy {production_copy:?} must dwarf fast migration {:?}",
            fast.total
        );
        assert!(copy.rows > 0);
    }

    #[test]
    fn traffic_pauses_then_resumes_during_migration() {
        let w = setup(1);
        let tenant = TenantId(101);
        let router = Arc::clone(&w.router);
        // A writer hammers the tenant while we migrate it.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            let mut ok = 0u64;
            let mut i = 1000i64;
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                i += 1;
                if router
                    .execute(tenant, |node| {
                        node.write_row(tenant, TableId(1), key(i), WriteOp::Insert(row(i)))
                    })
                    .is_ok()
                {
                    ok += 1;
                }
            }
            ok
        });
        std::thread::sleep(Duration::from_millis(20));
        let report =
            migrate_tenant(&w.router, &w.dict, &w.bindings, tenant, NodeId(2)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let ok = writer.join().unwrap();
        assert!(ok > 0, "writes must flow before and after migration");
        assert!(report.pause < Duration::from_secs(1), "pause is short");
        // Everything the writer observed as success is present at the dest.
        let count = w.router.execute(tenant, |n| n.count_rows(TableId(1))).unwrap();
        assert!(count >= 50, "no committed rows lost");
    }
}
