//! TP/AP memory regions with preemption (§VI-D).
//!
//! "The heap memory in a CN node is divided into four major regions: TP
//! Memory … AP Memory … Other … and System Reserved. … they can preempt
//! each other's resources when needed. More specifically, TP Memory will
//! only release the preempted memory (from AP Memory) until the query
//! completion, while AP Memory must immediately release the preempted
//! memory when TP Memory is requesting for it."

use parking_lot::Mutex;
use std::sync::Arc;

use polardbx_common::{Error, Result};

/// The four regions of CN heap memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryRegion {
    /// Temporary data for TP queries.
    Tp,
    /// Temporary data for AP queries (hash tables, sort runs).
    Ap,
    /// Metadata, temporary objects.
    Other,
    /// Privileged usage.
    SystemReserved,
}

#[derive(Debug, Clone, Copy)]
struct RegionState {
    /// Guaranteed minimum.
    min: usize,
    /// Hard maximum (own + preemptable).
    max: usize,
    /// Currently allocated.
    used: usize,
    /// Of `used`, how much was preempted from the peer region.
    preempted: usize,
}

/// The memory manager for TP and AP regions (Other/SystemReserved are
/// fixed carve-outs and not dynamically managed).
pub struct MemoryManager {
    tp: Mutex<RegionState>,
    ap: Mutex<RegionState>,
}

impl MemoryManager {
    /// Build with per-region (min, max) budgets in bytes.
    pub fn new(tp_min: usize, tp_max: usize, ap_min: usize, ap_max: usize) -> Arc<MemoryManager> {
        Arc::new(MemoryManager {
            tp: Mutex::new(RegionState { min: tp_min, max: tp_max, used: 0, preempted: 0 }),
            ap: Mutex::new(RegionState { min: ap_min, max: ap_max, used: 0, preempted: 0 }),
        })
    }

    /// Default split: 256 MB TP / 512 MB AP with 50 % preemption headroom.
    pub fn with_defaults() -> Arc<MemoryManager> {
        MemoryManager::new(256 << 20, 384 << 20, 512 << 20, 768 << 20)
    }

    /// Allocate `bytes` for a TP query. TP is privileged: if its own region
    /// is full it preempts AP memory, and AP "must immediately release" —
    /// modelled as shrinking AP's effective budget until the TP query
    /// completes.
    pub fn reserve_tp(&self, bytes: usize) -> Result<()> {
        let mut tp = self.tp.lock();
        if tp.used + bytes <= tp.min {
            tp.used += bytes;
            return Ok(());
        }
        if tp.used + bytes > tp.max {
            return Err(Error::MemoryExhausted { group: "TP".into(), requested: bytes });
        }
        // Preempt the shortfall from AP.
        let shortfall = (tp.used + bytes).saturating_sub(tp.min);
        let mut ap = self.ap.lock();
        // AP's budget shrinks; in-flight AP queries will fail their next
        // reservation and spill/abort — "immediately release".
        ap.max = ap.max.saturating_sub(shortfall.saturating_sub(tp.preempted));
        tp.preempted = tp.preempted.max(shortfall);
        tp.used += bytes;
        Ok(())
    }

    /// Release TP memory. Preempted AP memory is returned only when the
    /// *whole* region drains (query completion), matching the paper.
    pub fn release_tp(&self, bytes: usize) {
        let mut tp = self.tp.lock();
        tp.used = tp.used.saturating_sub(bytes);
        if tp.used == 0 && tp.preempted > 0 {
            let mut ap = self.ap.lock();
            ap.max += tp.preempted;
            tp.preempted = 0;
        }
    }

    /// Allocate `bytes` for an AP query. AP may use headroom above its
    /// minimum but never survives TP pressure.
    pub fn reserve_ap(&self, bytes: usize) -> Result<()> {
        let mut ap = self.ap.lock();
        if ap.used + bytes > ap.max {
            return Err(Error::MemoryExhausted { group: "AP".into(), requested: bytes });
        }
        ap.used += bytes;
        Ok(())
    }

    /// Release AP memory.
    pub fn release_ap(&self, bytes: usize) {
        let mut ap = self.ap.lock();
        ap.used = ap.used.saturating_sub(bytes);
    }

    /// (tp_used, ap_used, ap_max) snapshot for tests/monitoring.
    pub fn usage(&self) -> (usize, usize, usize) {
        let tp = self.tp.lock();
        let ap = self.ap.lock();
        (tp.used, ap.used, ap.max)
    }
}

/// RAII reservation guard.
pub struct Reservation {
    mgr: Arc<MemoryManager>,
    bytes: usize,
    tp: bool,
}

impl Reservation {
    /// Reserve for TP.
    pub fn tp(mgr: Arc<MemoryManager>, bytes: usize) -> Result<Reservation> {
        mgr.reserve_tp(bytes)?;
        Ok(Reservation { mgr, bytes, tp: true })
    }

    /// Reserve for AP.
    pub fn ap(mgr: Arc<MemoryManager>, bytes: usize) -> Result<Reservation> {
        mgr.reserve_ap(bytes)?;
        Ok(Reservation { mgr, bytes, tp: false })
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        if self.tp {
            self.mgr.release_tp(self.bytes);
        } else {
            self.mgr.release_ap(self.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> Arc<MemoryManager> {
        // TP: min 100, max 150; AP: min 200, max 300.
        MemoryManager::new(100, 150, 200, 300)
    }

    #[test]
    fn basic_reserve_release() {
        let m = mgr();
        m.reserve_tp(50).unwrap();
        m.reserve_ap(100).unwrap();
        assert_eq!(m.usage(), (50, 100, 300));
        m.release_tp(50);
        m.release_ap(100);
        assert_eq!(m.usage(), (0, 0, 300));
    }

    #[test]
    fn tp_preempts_ap_budget() {
        let m = mgr();
        m.reserve_tp(120).unwrap(); // 20 over TP min → preempted from AP
        let (_, _, ap_max) = m.usage();
        assert_eq!(ap_max, 280, "AP budget shrank by the preempted amount");
        // AP can no longer use its full former budget.
        assert!(m.reserve_ap(290).is_err());
        m.reserve_ap(280).unwrap();
    }

    #[test]
    fn tp_hard_cap() {
        let m = mgr();
        assert!(m.reserve_tp(151).is_err());
        m.reserve_tp(150).unwrap();
        assert!(m.reserve_tp(1).is_err());
    }

    #[test]
    fn preempted_memory_returns_on_tp_completion() {
        let m = mgr();
        m.reserve_tp(150).unwrap();
        assert_eq!(m.usage().2, 250);
        // Partial release does NOT return preempted memory (paper: only at
        // query completion).
        m.release_tp(100);
        assert_eq!(m.usage().2, 250);
        m.release_tp(50);
        assert_eq!(m.usage().2, 300, "full drain returns AP's budget");
    }

    #[test]
    fn ap_exhaustion_error() {
        let m = mgr();
        m.reserve_ap(300).unwrap();
        let err = m.reserve_ap(1).unwrap_err();
        assert!(matches!(err, Error::MemoryExhausted { .. }));
    }

    #[test]
    fn raii_guard_releases() {
        let m = mgr();
        {
            let _r = Reservation::ap(Arc::clone(&m), 120).unwrap();
            assert_eq!(m.usage().1, 120);
        }
        assert_eq!(m.usage().1, 0);
        {
            let _r = Reservation::tp(Arc::clone(&m), 150).unwrap();
            assert_eq!(m.usage().0, 150);
        }
        assert_eq!(m.usage(), (0, 0, 300));
    }
}
