//! The HTAP executor (§VI-C/D of the paper).
//!
//! * [`operators`] — the physical operators (scan, filter, project, hash
//!   join, hash aggregate, sort, limit) executing resolved logical plans
//!   against a [`operators::TableProvider`], with composable aggregate
//!   accumulators that support partial/merge evaluation for MPP.
//! * [`columnar_exec`] — pattern-matched fast paths that execute
//!   scan/filter/aggregate pipelines on the in-memory column index's
//!   vectorized kernels instead of row-at-a-time evaluation (§VI-E).
//! * [`mpp`] — the MPP model: plans split into fragments; scan/filter/
//!   partial-aggregate/probe fragments fan out across worker tasks (one
//!   per partition), exchange results, and a coordinator fragment merges
//!   (§VI-C "MPP model").
//! * [`scheduler`] — workload pools and the time-slicing discipline: the
//!   TP pool is unrestricted, the AP and slow-AP pools run under CPU
//!   governors that cap their share (standing in for cgroups), and a TP
//!   job that overruns its slice is terminated and re-assigned to the AP
//!   pool (§VI-D's misclassification recovery).
//! * [`memory`] — TP/AP memory regions with asymmetric preemption: TP may
//!   take AP memory and keep it until completion; AP must yield
//!   immediately when TP asks (§VI-D).
//! * [`batch`] / [`vectorized`] — the streaming vectorized engine:
//!   operators pull fixed-size columnar [`batch::RowBatch`]es (selection
//!   vectors, typed lanes, hashed key slots) through a pull pipeline
//!   instead of materializing `Vec<Row>`s between operators.
//! * [`morsel`] — morsel-driven scheduling on the persistent
//!   [`WorkloadManager`] pools: scans split into stealable row chunks,
//!   pipeline breakers keep per-worker state merged at the barrier.
//! * [`exec_metrics`] — per-operator counters (batches, rows, ns, bytes)
//!   for the vectorized path.

pub mod batch;
pub mod columnar_exec;
pub mod exec_metrics;
pub mod memory;
pub mod morsel;
pub mod mpp;
pub mod operators;
pub mod scheduler;
pub mod vectorized;

pub use batch::{batches_of, RowBatch, BATCH_ROWS};
pub use exec_metrics::{exec_metrics, ExecMetrics};
pub use memory::{MemoryManager, MemoryRegion};
pub use morsel::{run_parallel_pooled, shared_pool};
pub use mpp::MppExecutor;
pub use operators::{execute_plan, ExecCtx, TableProvider};
pub use scheduler::{CpuGovernor, JobClass, WorkloadManager};
pub use vectorized::{execute as execute_vectorized, VecAggTable};
