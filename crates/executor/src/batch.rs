//! Columnar row batches for the vectorized engine.
//!
//! Operators exchange fixed-size [`RowBatch`]es (~[`BATCH_ROWS`] rows)
//! instead of whole `Vec<Row>`s. A batch is columnar-major: one [`Lane`]
//! per column plus an optional selection vector, so filters narrow the
//! selection without copying data and projections of plain columns are
//! `Arc` clones. Lanes are typed when the column is monomorphic
//! (`ColumnData` reuse — the kernels' layout) and fall back to a `Value`
//! vector for mixed or all-NULL columns so no value is ever coerced, which
//! keeps the vectorized engine byte-identical to the row engine.
//!
//! Byte accounting is incremental: a batch's footprint is accumulated while
//! the batch is built and cached per lane, so memory-accounting reads are
//! O(width) instead of O(rows) (`RowBatch::bytes`).

use std::hash::Hasher;
use std::sync::Arc;

use polardbx_columnar::{ColumnData, ColumnSnapshot};
use polardbx_common::{Row, Value};

/// Target rows per batch.
pub const BATCH_ROWS: usize = 1024;

/// One column of a batch: typed columnar data or raw values.
#[derive(Debug)]
pub struct Lane {
    data: LaneData,
    /// Heap footprint of the lane's payload, accumulated at build time.
    bytes: usize,
}

#[derive(Debug)]
enum LaneData {
    /// Monomorphic column in kernel layout (dense vector + null bitmap).
    Col(ColumnData),
    /// Mixed-type or Bytes column: exact values, no coercion.
    Vals(Vec<Value>),
}

impl Lane {
    /// Wrap an existing typed column (column-index snapshots).
    pub fn from_column(col: ColumnData) -> Lane {
        let bytes = col.heap_size();
        Lane { data: LaneData::Col(col), bytes }
    }

    /// Build a lane from exact values, choosing a typed layout when the
    /// column is monomorphic (NULLs allowed) and a value vector otherwise.
    pub fn from_values(vals: Vec<Value>) -> Lane {
        // Sniff: a single non-null variant (Int/Double/Str/Date) gets a
        // typed lane; Bytes, mixed variants and all-NULL columns keep the
        // exact values so nothing is coerced.
        let mut tag: Option<u8> = None;
        let mut uniform = true;
        for v in &vals {
            let t = match v {
                Value::Null => continue,
                Value::Int(_) => 1,
                Value::Double(_) => 2,
                Value::Str(_) => 3,
                Value::Date(_) => 4,
                Value::Bytes(_) => {
                    uniform = false;
                    break;
                }
            };
            match tag {
                None => tag = Some(t),
                Some(prev) if prev == t => {}
                Some(_) => {
                    uniform = false;
                    break;
                }
            }
        }
        let mut bytes = 0usize;
        if uniform {
            if let Some(tag) = tag {
                let n = vals.len();
                let data = match tag {
                    1 => {
                        let mut d = Vec::with_capacity(n);
                        let mut nulls = Vec::with_capacity(n);
                        for v in vals {
                            bytes += v.heap_size();
                            match v {
                                Value::Int(x) => {
                                    d.push(x);
                                    nulls.push(false);
                                }
                                _ => {
                                    d.push(0);
                                    nulls.push(true);
                                }
                            }
                        }
                        ColumnData::Int(d, nulls)
                    }
                    2 => {
                        let mut d = Vec::with_capacity(n);
                        let mut nulls = Vec::with_capacity(n);
                        for v in vals {
                            bytes += v.heap_size();
                            match v {
                                Value::Double(x) => {
                                    d.push(x);
                                    nulls.push(false);
                                }
                                _ => {
                                    d.push(0.0);
                                    nulls.push(true);
                                }
                            }
                        }
                        ColumnData::Double(d, nulls)
                    }
                    3 => {
                        let mut d = Vec::with_capacity(n);
                        let mut nulls = Vec::with_capacity(n);
                        for v in vals {
                            bytes += v.heap_size();
                            match v {
                                Value::Str(s) => {
                                    d.push(s);
                                    nulls.push(false);
                                }
                                _ => {
                                    d.push(String::new());
                                    nulls.push(true);
                                }
                            }
                        }
                        ColumnData::Str(d, nulls)
                    }
                    _ => {
                        let mut d = Vec::with_capacity(n);
                        let mut nulls = Vec::with_capacity(n);
                        for v in vals {
                            bytes += v.heap_size();
                            match v {
                                Value::Date(x) => {
                                    d.push(x);
                                    nulls.push(false);
                                }
                                _ => {
                                    d.push(0);
                                    nulls.push(true);
                                }
                            }
                        }
                        ColumnData::Date(d, nulls)
                    }
                };
                return Lane { data: LaneData::Col(data), bytes };
            }
        }
        bytes = vals.iter().map(Value::heap_size).sum();
        Lane { data: LaneData::Vals(vals), bytes }
    }

    /// Number of physical rows.
    pub fn len(&self) -> usize {
        match &self.data {
            LaneData::Col(c) => c.len(),
            LaneData::Vals(v) => v.len(),
        }
    }

    /// True when the lane has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap footprint of the lane payload (cached at build time).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Value at physical row `i` (clones strings).
    pub fn get(&self, i: usize) -> Value {
        match &self.data {
            LaneData::Col(c) => c.get(i),
            LaneData::Vals(v) => v[i].clone(),
        }
    }

    /// Is physical row `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        match &self.data {
            LaneData::Col(c) => c.is_null(i),
            LaneData::Vals(v) => v[i].is_null(),
        }
    }

    /// The typed column, when this lane is monomorphic.
    pub fn column(&self) -> Option<&ColumnData> {
        match &self.data {
            LaneData::Col(c) => Some(c),
            LaneData::Vals(_) => None,
        }
    }

    /// Exact value reference for `Vals` lanes (typed lanes return `None`).
    pub fn value_ref(&self, i: usize) -> Option<&Value> {
        match &self.data {
            LaneData::Vals(v) => Some(&v[i]),
            LaneData::Col(_) => None,
        }
    }

    /// Key-identity hash of physical row `i` (see [`ident_hash_value`])
    /// without materializing a `Value`.
    pub fn ident_hash(&self, i: usize, h: &mut impl Hasher) {
        match &self.data {
            LaneData::Col(ColumnData::Int(d, n)) => {
                if n[i] {
                    h.write_u8(0);
                } else {
                    h.write_u8(1);
                    h.write_i64(d[i]);
                }
            }
            LaneData::Col(ColumnData::Double(d, n)) => {
                if n[i] {
                    h.write_u8(0);
                } else {
                    h.write_u8(2);
                    h.write_u64(d[i].to_bits());
                }
            }
            LaneData::Col(ColumnData::Str(d, n)) => {
                if n[i] {
                    h.write_u8(0);
                } else {
                    h.write_u8(3);
                    h.write(d[i].as_bytes());
                    h.write_u8(0xff);
                }
            }
            LaneData::Col(ColumnData::Date(d, n)) => {
                if n[i] {
                    h.write_u8(0);
                } else {
                    h.write_u8(5);
                    h.write_i32(d[i]);
                }
            }
            LaneData::Vals(v) => ident_hash_value(&v[i], h),
        }
    }

    /// SQL comparison of physical row `i` against a constant, without
    /// cloning string payloads. Mirrors [`Value::sql_cmp`] exactly.
    pub fn sql_cmp_const(&self, i: usize, v: &Value) -> Option<std::cmp::Ordering> {
        match &self.data {
            LaneData::Col(ColumnData::Int(d, n)) => {
                if n[i] { Value::Null.sql_cmp(v) } else { Value::Int(d[i]).sql_cmp(v) }
            }
            LaneData::Col(ColumnData::Double(d, n)) => {
                if n[i] { Value::Null.sql_cmp(v) } else { Value::Double(d[i]).sql_cmp(v) }
            }
            LaneData::Col(ColumnData::Str(d, n)) => {
                if n[i] {
                    Value::Null.sql_cmp(v)
                } else {
                    match v {
                        Value::Null => Some(std::cmp::Ordering::Greater),
                        Value::Str(s) => Some(d[i].as_str().cmp(s.as_str())),
                        _ => None,
                    }
                }
            }
            LaneData::Col(ColumnData::Date(d, n)) => {
                if n[i] { Value::Null.sql_cmp(v) } else { Value::Date(d[i]).sql_cmp(v) }
            }
            LaneData::Vals(vals) => vals[i].sql_cmp(v),
        }
    }

    /// Key-identity equality of physical row `i` against `v` (see
    /// [`ident_eq`]) without materializing a `Value`.
    pub fn ident_eq(&self, i: usize, v: &Value) -> bool {
        match &self.data {
            LaneData::Col(ColumnData::Int(d, n)) => match v {
                Value::Null => n[i],
                Value::Int(x) => !n[i] && d[i] == *x,
                _ => false,
            },
            LaneData::Col(ColumnData::Double(d, n)) => match v {
                Value::Null => n[i],
                Value::Double(x) => !n[i] && d[i].to_bits() == x.to_bits(),
                _ => false,
            },
            LaneData::Col(ColumnData::Str(d, n)) => match v {
                Value::Null => n[i],
                Value::Str(s) => !n[i] && d[i] == *s,
                _ => false,
            },
            LaneData::Col(ColumnData::Date(d, n)) => match v {
                Value::Null => n[i],
                Value::Date(x) => !n[i] && d[i] == *x,
                _ => false,
            },
            LaneData::Vals(vals) => ident_eq(&vals[i], v),
        }
    }
}

/// Hash a value the way [`polardbx_common::Key::encode`] identifies it:
/// variant tag plus exact payload bits. `Int(5)` and `Double(5.0)` — which
/// compare equal under SQL — hash (and compare) as *different* keys, which
/// is exactly what the row engine's encoded group/join keys do.
pub fn ident_hash_value(v: &Value, h: &mut impl Hasher) {
    match v {
        Value::Null => h.write_u8(0),
        Value::Int(x) => {
            h.write_u8(1);
            h.write_i64(*x);
        }
        Value::Double(x) => {
            h.write_u8(2);
            h.write_u64(x.to_bits());
        }
        Value::Str(s) => {
            h.write_u8(3);
            h.write(s.as_bytes());
            h.write_u8(0xff);
        }
        Value::Bytes(b) => {
            h.write_u8(4);
            h.write(b);
            h.write_u8(0xff);
        }
        Value::Date(d) => {
            h.write_u8(5);
            h.write_i32(*d);
        }
    }
}

/// Key-identity equality: same variant and same payload bits (NULL equals
/// NULL, doubles by bit pattern) — the equivalence induced by
/// `Key::encode`, *not* SQL `=` (which coerces across numeric types).
pub fn ident_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bytes(x), Value::Bytes(y)) => x == y,
        (Value::Date(x), Value::Date(y)) => x == y,
        _ => false,
    }
}

/// splitmix64 finalizer: a cheap, well-mixed 64→64-bit hash. Identity-key
/// hashing runs once per row in joins and aggregation, and the common key
/// is a single fixed-width value — a direct integer mix skips SipHash's
/// per-hash setup and byte streaming entirely. Collisions are safe: every
/// slot lookup verifies with `ident_eq`.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// Per-variant salts so `Int(5)`, `Double(5.0)`, and `Date(5)` land in
// different buckets despite sharing payload bits.
const TAG_NULL: u64 = 0x9ae1_6a3b_2f90_404f;
const TAG_INT: u64 = 0x3c79_ac49_2ba7_b653;
const TAG_DOUBLE: u64 = 0x1c69_b3f7_4ac4_ab55;
const TAG_DATE: u64 = 0x8cb9_2ba7_2f3d_8dd7;

/// Key-identity hash of a *single* value. Same equivalence as streaming
/// [`ident_hash_value`] into a hasher, but fixed-width variants take the
/// direct-mix fast path. Every single-key index (aggregation groups, join
/// slots) must use this on both build and probe side — mixing this with
/// the streamed composite hash for the same keys silently breaks merges.
pub fn ident_hash_one(v: &Value) -> u64 {
    match v {
        Value::Null => mix64(TAG_NULL),
        Value::Int(x) => mix64(*x as u64 ^ TAG_INT),
        Value::Double(x) => mix64(x.to_bits() ^ TAG_DOUBLE),
        Value::Date(d) => mix64(*d as u64 ^ TAG_DATE),
        Value::Str(_) | Value::Bytes(_) => {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            ident_hash_value(v, &mut h);
            h.finish()
        }
    }
}

impl Lane {
    /// Single-key identity hash of physical row `i`; agrees with
    /// [`ident_hash_one`] on the equivalent `Value`.
    pub fn ident_hash_row(&self, i: usize) -> u64 {
        match &self.data {
            LaneData::Col(ColumnData::Int(d, n)) => {
                if n[i] { mix64(TAG_NULL) } else { mix64(d[i] as u64 ^ TAG_INT) }
            }
            LaneData::Col(ColumnData::Double(d, n)) => {
                if n[i] { mix64(TAG_NULL) } else { mix64(d[i].to_bits() ^ TAG_DOUBLE) }
            }
            LaneData::Col(ColumnData::Date(d, n)) => {
                if n[i] { mix64(TAG_NULL) } else { mix64(d[i] as u64 ^ TAG_DATE) }
            }
            LaneData::Col(ColumnData::Str(d, n)) => {
                if n[i] {
                    mix64(TAG_NULL)
                } else {
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    h.write_u8(3);
                    h.write(d[i].as_bytes());
                    h.write_u8(0xff);
                    h.finish()
                }
            }
            LaneData::Vals(v) => ident_hash_one(&v[i]),
        }
    }
}

/// Hash a composite key from lane positions. Single-column keys take the
/// [`ident_hash_one`] fast path; wider keys stream all parts into one
/// hasher. Must stay consistent with [`ident_hash_values`].
pub fn ident_hash_lanes(lanes: &[Arc<Lane>], cols: &[usize], row: usize) -> u64 {
    if let [c] = cols {
        return lanes[*c].ident_hash_row(row);
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &c in cols {
        lanes[c].ident_hash(row, &mut h);
    }
    h.finish()
}

/// Hash a composite key from values; consistent with [`ident_hash_lanes`].
pub fn ident_hash_values(vals: &[Value]) -> u64 {
    if let [v] = vals {
        return ident_hash_one(v);
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in vals {
        ident_hash_value(v, &mut h);
    }
    h.finish()
}

/// A columnar batch of rows: shared lanes plus a selection vector.
#[derive(Debug, Clone)]
pub struct RowBatch {
    lanes: Vec<Arc<Lane>>,
    /// Physical row ids that are live; `None` means all rows.
    sel: Option<Vec<u32>>,
}

impl RowBatch {
    /// Build a batch from materialized rows (values are moved, not cloned).
    /// Columns are sniffed into typed lanes where monomorphic.
    pub fn from_rows(rows: Vec<Row>) -> RowBatch {
        let width = rows.first().map(|r| r.arity()).unwrap_or(0);
        let n = rows.len();
        let mut cols: Vec<Vec<Value>> = (0..width).map(|_| Vec::with_capacity(n)).collect();
        for row in rows {
            for (c, v) in row.into_values().into_iter().enumerate() {
                if c < width {
                    cols[c].push(v);
                }
            }
        }
        let lanes = cols.into_iter().map(|vals| Arc::new(Lane::from_values(vals))).collect();
        RowBatch { lanes, sel: None }
    }

    /// Wrap a column-index snapshot as a single batch (zero row
    /// materialization; the snapshot's visibility list becomes the
    /// selection vector).
    pub fn from_snapshot(snap: ColumnSnapshot) -> RowBatch {
        let full = snap.columns.first().map(|c| c.len()).unwrap_or(0);
        let sel_all = snap.selection.len() == full;
        let lanes =
            snap.columns.into_iter().map(|c| Arc::new(Lane::from_column(c))).collect();
        RowBatch { lanes, sel: if sel_all { None } else { Some(snap.selection) } }
    }

    /// Batch with the given lanes and selection.
    pub fn new(lanes: Vec<Arc<Lane>>, sel: Option<Vec<u32>>) -> RowBatch {
        RowBatch { lanes, sel }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Number of live (selected) rows.
    pub fn num_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.lanes.first().map(|l| l.len()).unwrap_or(0),
        }
    }

    /// The lanes.
    pub fn lanes(&self) -> &[Arc<Lane>] {
        &self.lanes
    }

    /// Lane `c`.
    pub fn lane(&self, c: usize) -> &Lane {
        &self.lanes[c]
    }

    /// The selection vector, if narrowed.
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Replace the selection vector.
    pub fn with_sel(&self, sel: Vec<u32>) -> RowBatch {
        RowBatch { lanes: self.lanes.clone(), sel: Some(sel) }
    }

    /// Iterate physical row ids of live rows.
    pub fn live_rows(&self) -> Vec<u32> {
        match &self.sel {
            Some(s) => s.clone(),
            None => (0..self.lanes.first().map(|l| l.len()).unwrap_or(0) as u32).collect(),
        }
    }

    /// Approximate heap footprint chargeable to this batch. Reads the
    /// per-lane byte counts accumulated at build time — O(width), not
    /// O(rows) (the fix for the old `batch_bytes` recomputation).
    pub fn bytes(&self) -> usize {
        let lane_bytes: usize = self.lanes.iter().map(|l| l.bytes()).sum();
        lane_bytes + 24 * self.num_rows()
    }

    /// Materialize one physical row.
    pub fn row_at(&self, phys: usize) -> Row {
        Row::new(self.lanes.iter().map(|l| l.get(phys)).collect())
    }

    /// Materialize all live rows.
    pub fn to_rows(&self) -> Vec<Row> {
        match &self.sel {
            Some(s) => s.iter().map(|&i| self.row_at(i as usize)).collect(),
            None => (0..self.num_rows()).map(|i| self.row_at(i)).collect(),
        }
    }
}

/// Chunk rows into batches of at most [`BATCH_ROWS`].
pub fn batches_of(mut rows: Vec<Row>) -> Vec<RowBatch> {
    if rows.len() <= BATCH_ROWS {
        if rows.is_empty() {
            return Vec::new();
        }
        return vec![RowBatch::from_rows(rows)];
    }
    let mut out = Vec::with_capacity(rows.len() / BATCH_ROWS + 1);
    while !rows.is_empty() {
        let rest = rows.split_off(rows.len().min(BATCH_ROWS));
        out.push(RowBatch::from_rows(std::mem::replace(&mut rows, rest)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_lane_roundtrip_with_nulls() {
        let lane = Lane::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert!(lane.column().is_some(), "monomorphic column gets a typed lane");
        assert_eq!(lane.get(0), Value::Int(1));
        assert!(lane.is_null(1));
        assert_eq!(lane.get(2), Value::Int(3));
    }

    #[test]
    fn mixed_lane_preserves_exact_values() {
        let lane = Lane::from_values(vec![Value::Int(1), Value::Double(2.5)]);
        assert!(lane.column().is_none(), "mixed column must not coerce");
        assert_eq!(lane.get(0), Value::Int(1));
        assert!(matches!(lane.get(1), Value::Double(_)));
    }

    #[test]
    fn ident_semantics_match_key_encoding() {
        // Int(5) and Double(5.0) compare equal under SQL but are distinct
        // encoded keys — ident_eq must keep them distinct.
        assert_eq!(Value::Int(5), Value::Double(5.0));
        assert!(!ident_eq(&Value::Int(5), &Value::Double(5.0)));
        assert!(ident_eq(&Value::Null, &Value::Null));
        assert!(!ident_eq(&Value::Double(0.0), &Value::Double(-0.0)));
        assert_ne!(
            ident_hash_values(&[Value::Int(5)]),
            ident_hash_values(&[Value::Double(5.0)])
        );
    }

    #[test]
    fn lane_hash_agrees_with_value_hash() {
        let vals =
            vec![Value::Int(7), Value::Null, Value::str("abc"), Value::Double(1.25)];
        for v in &vals {
            let lane = Lane::from_values(vec![v.clone()]);
            let mut a = std::collections::hash_map::DefaultHasher::new();
            lane.ident_hash(0, &mut a);
            let mut b = std::collections::hash_map::DefaultHasher::new();
            ident_hash_value(v, &mut b);
            assert_eq!(
                std::hash::Hasher::finish(&a),
                std::hash::Hasher::finish(&b),
                "lane/value hash mismatch for {v:?}"
            );
            assert!(lane.ident_eq(0, v));
        }
    }

    #[test]
    fn batch_bytes_is_incremental_and_matches_row_accounting() {
        let rows: Vec<Row> = (0..10)
            .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("s{i}"))]))
            .collect();
        let row_total: usize = rows.iter().map(Row::heap_size).sum();
        let batch = RowBatch::from_rows(rows);
        assert_eq!(batch.bytes(), row_total);
    }

    #[test]
    fn batches_of_chunks_and_roundtrips() {
        let rows: Vec<Row> =
            (0..2500i64).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let batches = batches_of(rows.clone());
        assert_eq!(batches.len(), 3);
        let back: Vec<Row> = batches.iter().flat_map(|b| b.to_rows()).collect();
        assert_eq!(back, rows);
    }
}
