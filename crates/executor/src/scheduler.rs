//! Workload pools, CPU governors and time-slicing (§VI-C/D).
//!
//! The CN classifies query jobs into three pools:
//!
//! * **TP Core Pool** — unrestricted CPU; but a job that runs longer than
//!   its slice "will terminate its current time slice and be re-assigned
//!   to AP Core Pool for subsequent execution";
//! * **AP Core Pool** — CPU strictly capped (cgroups in the paper, a
//!   cooperative [`CpuGovernor`] here);
//! * **Slow Query AP Core Pool** — an even lower share for queries that
//!   overran the AP slice.
//!
//! The governor is polled from the executor's inner loops (`ExecCtx::tick`),
//! giving the same preemption granularity as the paper's time-slicing
//! execution model.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use polardbx_common::time::mono_now;

use polardbx_common::metrics::Counter;

/// Which pool a job runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// TP Core Pool.
    Tp,
    /// AP Core Pool.
    Ap,
    /// Slow Query AP Core Pool.
    SlowAp,
}

/// Cooperative CPU cap: jobs call [`CpuGovernor::pace`] from their inner
/// loops; the governor sleeps them whenever their running share exceeds
/// `quota` (the `cpu.cfs_quota` analogue).
pub struct CpuGovernor {
    /// Allowed CPU share in (0, 1], stored as f64 bits (runtime-adjustable:
    /// the HTAP harness re-provisions AP capacity when RO nodes are added).
    quota_bits: AtomicU64,
    /// Work-to-time calibration: how long `pace(1)` of work represents.
    work_unit: Duration,
    paused: AtomicBool,
}

impl CpuGovernor {
    /// A governor granting `quota` of the CPU.
    pub fn new(quota: f64) -> Arc<CpuGovernor> {
        Arc::new(CpuGovernor {
            quota_bits: AtomicU64::new(quota.clamp(0.01, 1.0).to_bits()),
            work_unit: Duration::from_nanos(50),
            paused: AtomicBool::new(false),
        })
    }

    /// Current quota.
    pub fn quota(&self) -> f64 {
        f64::from_bits(self.quota_bits.load(Ordering::Relaxed))
    }

    /// Re-provision the quota (cgroups `cpu.cfs_quota` rewrite).
    pub fn set_quota(&self, quota: f64) {
        self.quota_bits.store(quota.clamp(0.01, 1.0).to_bits(), Ordering::Relaxed);
    }

    /// Account `units` of work and sleep long enough that the caller's duty
    /// cycle stays at the quota: for quota q, every unit of work earns
    /// `(1-q)/q` units of sleep.
    pub fn pace(&self, units: u64) {
        while self.paused.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_micros(200));
        }
        let quota = self.quota();
        if quota >= 1.0 {
            return;
        }
        let work = self.work_unit * units as u32;
        let sleep = work.mul_f64((1.0 - quota) / quota);
        if sleep > Duration::from_micros(10) {
            std::thread::sleep(sleep);
        }
    }

    /// Fully pause (quota → 0) or resume the governed group.
    pub fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::Relaxed);
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: Sender<Job>,
    queued: Arc<AtomicU64>,
}

fn spawn_pool(name: &str, threads: usize) -> Pool {
    let (tx, rx) = unbounded::<Job>();
    let queued = Arc::new(AtomicU64::new(0));
    for i in 0..threads {
        let rx = rx.clone();
        let queued = Arc::clone(&queued);
        std::thread::Builder::new()
            .name(format!("{name}-{i}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    queued.fetch_sub(1, Ordering::Relaxed);
                    job();
                }
            })
            .expect("spawn pool worker");
    }
    Pool { tx, queued }
}

/// The CN's workload manager: three pools + governors + counters.
pub struct WorkloadManager {
    tp: Pool,
    ap: Pool,
    slow: Pool,
    /// AP group governor (shared by all AP jobs).
    pub ap_governor: Arc<CpuGovernor>,
    /// Slow-pool governor (lower share).
    pub slow_governor: Arc<CpuGovernor>,
    /// TP slice: a TP job exceeding this is re-assigned to the AP pool.
    pub tp_slice: Duration,
    /// AP slice: an AP job exceeding this migrates to the slow pool.
    pub ap_slice: Duration,
    /// Jobs re-assigned TP→AP (misclassification catches).
    pub tp_demotions: Counter,
    /// Jobs re-assigned AP→slow.
    pub ap_demotions: Counter,
    /// Resource isolation switch (Fig 9's first configuration turns it off).
    isolation_enabled: AtomicBool,
}

impl WorkloadManager {
    /// Build with thread counts and CPU quotas for the AP groups.
    pub fn new(
        tp_threads: usize,
        ap_threads: usize,
        ap_quota: f64,
        slow_quota: f64,
    ) -> Arc<WorkloadManager> {
        Arc::new(WorkloadManager {
            tp: spawn_pool("tp-core", tp_threads.max(1)),
            ap: spawn_pool("ap-core", ap_threads.max(1)),
            slow: spawn_pool("slow-ap", 1),
            ap_governor: CpuGovernor::new(ap_quota),
            slow_governor: CpuGovernor::new(slow_quota),
            tp_slice: Duration::from_millis(50),
            ap_slice: Duration::from_millis(500),
            tp_demotions: Counter::new(),
            ap_demotions: Counter::new(),
            isolation_enabled: AtomicBool::new(true),
        })
    }

    /// Typical CN sizing: TP gets the cores, AP a restricted slice.
    pub fn with_defaults() -> Arc<WorkloadManager> {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
        WorkloadManager::new(cores, (cores / 2).max(1), 0.5, 0.1)
    }

    /// Toggle resource isolation (Fig 9 configuration switch). With
    /// isolation off, AP jobs run ungoverned and compete freely.
    pub fn set_isolation(&self, enabled: bool) {
        self.isolation_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Is isolation on?
    pub fn isolation(&self) -> bool {
        self.isolation_enabled.load(Ordering::Relaxed)
    }

    /// The governor an AP-class job should poll (None = isolation off).
    pub fn governor_for(&self, class: JobClass) -> Option<Arc<CpuGovernor>> {
        if !self.isolation() {
            return None;
        }
        match class {
            JobClass::Tp => None,
            JobClass::Ap => Some(Arc::clone(&self.ap_governor)),
            JobClass::SlowAp => Some(Arc::clone(&self.slow_governor)),
        }
    }

    /// Submit a job to a pool.
    pub fn submit(&self, class: JobClass, job: impl FnOnce() + Send + 'static) {
        let pool = match class {
            JobClass::Tp => &self.tp,
            JobClass::Ap => &self.ap,
            JobClass::SlowAp => &self.slow,
        };
        pool.queued.fetch_add(1, Ordering::Relaxed);
        let _ = pool.tx.send(Box::new(job));
    }

    /// Run a job synchronously in a pool and return its result.
    pub fn run<T: Send + 'static>(
        &self,
        class: JobClass,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> T {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.submit(class, move || {
            let _ = tx.send(job());
        });
        rx.recv().expect("pool worker died")
    }

    /// Queue depths (tp, ap, slow) for monitoring.
    pub fn queue_depths(&self) -> (u64, u64, u64) {
        (
            self.tp.queued.load(Ordering::Relaxed),
            self.ap.queued.load(Ordering::Relaxed),
            self.slow.queued.load(Ordering::Relaxed),
        )
    }
}

/// Helper implementing the slice-overrun → demote discipline: runs `job`
/// in the TP pool with a deadline; on overrun the job aborts (it checks the
/// deadline cooperatively) and re-runs in the AP pool, and so on to the
/// slow pool. Returns the result together with the pool that completed it.
pub fn run_with_demotion<T: Send + 'static>(
    mgr: &Arc<WorkloadManager>,
    start_class: JobClass,
    job: impl Fn(Option<Deadline>, Option<Arc<CpuGovernor>>) -> Option<T> + Send + Sync + 'static,
) -> (T, JobClass) {
    let job = Arc::new(job);
    let mut class = start_class;
    loop {
        let deadline = match class {
            JobClass::Tp => Some(Deadline::after(mgr.tp_slice)),
            JobClass::Ap => Some(Deadline::after(mgr.ap_slice)),
            JobClass::SlowAp => None,
        };
        let governor = mgr.governor_for(class);
        let j = Arc::clone(&job);
        let result = mgr.run(class, move || j(deadline, governor));
        match result {
            Some(v) => return (v, class),
            None => {
                class = match class {
                    JobClass::Tp => {
                        mgr.tp_demotions.inc();
                        JobClass::Ap
                    }
                    JobClass::Ap => {
                        mgr.ap_demotions.inc();
                        JobClass::SlowAp
                    }
                    JobClass::SlowAp => {
                        unreachable!("slow pool has no deadline")
                    }
                };
            }
        }
    }
}

/// A cooperative deadline jobs poll to honour their time slice.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Duration,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline { at: mono_now() + d }
    }

    /// Has the slice expired?
    pub fn expired(&self) -> bool {
        mono_now() >= self.at
    }
}

/// Per-job execution context threaded through the operators: polls the
/// governor and the slice deadline every `TICK_EVERY` rows.
pub struct TickState {
    counter: Mutex<u64>,
    governor: Option<Arc<CpuGovernor>>,
    deadline: Option<Deadline>,
}

/// Poll frequency in row-operations.
pub const TICK_EVERY: u64 = 1024;

impl TickState {
    /// A context with optional governor and deadline.
    pub fn new(governor: Option<Arc<CpuGovernor>>, deadline: Option<Deadline>) -> TickState {
        TickState { counter: Mutex::new(0), governor, deadline }
    }

    /// Unrestricted context.
    pub fn unrestricted() -> TickState {
        TickState::new(None, None)
    }

    /// A sibling context for a parallel worker: same governor and deadline,
    /// fresh row counter (each worker paces its own work).
    pub fn fork(&self) -> TickState {
        TickState::new(self.governor.clone(), self.deadline)
    }

    /// Account `rows` of work; pace/abort as configured. Returns false when
    /// the slice expired (the job must stop and report demotion).
    pub fn tick(&self, rows: u64) -> bool {
        let mut c = self.counter.lock();
        *c += rows;
        if *c < TICK_EVERY {
            return true;
        }
        let units = *c / TICK_EVERY;
        *c %= TICK_EVERY;
        drop(c);
        if let Some(g) = &self.governor {
            g.pace(units * TICK_EVERY);
        }
        if let Some(d) = &self.deadline {
            if d.expired() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::time::Timer;

    #[test]
    fn pools_execute_jobs() {
        let mgr = WorkloadManager::new(2, 2, 1.0, 1.0);
        let out = mgr.run(JobClass::Tp, || 41 + 1);
        assert_eq!(out, 42);
        let out = mgr.run(JobClass::Ap, || "ap".to_string());
        assert_eq!(out, "ap");
    }

    #[test]
    fn governor_caps_duty_cycle() {
        // A governed spin loop must take noticeably longer than an
        // ungoverned one for the same work.
        let free = CpuGovernor::new(1.0);
        let capped = CpuGovernor::new(0.25);
        let work = |g: &CpuGovernor| {
            let t0 = Timer::start();
            for _ in 0..200 {
                g.pace(4096);
            }
            t0.elapsed()
        };
        let fast = work(&free);
        let slow = work(&capped);
        assert!(slow > fast * 2, "quota not enforced: free={fast:?} capped={slow:?}");
    }

    #[test]
    fn governor_pause_blocks() {
        let g = CpuGovernor::new(1.0);
        g.set_paused(true);
        let g2 = Arc::clone(&g);
        let h = std::thread::spawn(move || {
            let t0 = Timer::start();
            g2.pace(1);
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        g.set_paused(false);
        assert!(h.join().unwrap() >= Duration::from_millis(15));
    }

    #[test]
    fn tick_paces_and_detects_expiry() {
        let ts = TickState::new(None, Some(Deadline::after(Duration::from_millis(10))));
        assert!(ts.tick(1));
        std::thread::sleep(Duration::from_millis(15));
        // Needs to accumulate a full tick quantum to check the deadline.
        assert!(!ts.tick(TICK_EVERY));
    }

    #[test]
    fn misclassified_job_demotes_tp_to_ap() {
        let mgr = WorkloadManager::new(2, 2, 1.0, 1.0);
        // The job "runs long": it reports slice expiry in the TP pool, then
        // completes in the AP pool.
        let (result, class) = run_with_demotion(&mgr, JobClass::Tp, move |deadline, _gov| {
            if let Some(d) = deadline {
                // Simulate work that outlives a TP slice.
                while !d.expired() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // TP slice always expires for this job; AP slice (500 ms) is
                // enough to finish "instantly" after the spin.
                if d.expired() && mono_now() < d.at + Duration::from_millis(200) {
                    // Came from the 50 ms TP slice → give up.
                    return None;
                }
            }
            Some(7)
        });
        // It must NOT have completed in the TP pool.
        assert_eq!(result, 7);
        assert_ne!(class, JobClass::Tp);
        assert!(mgr.tp_demotions.get() >= 1);
    }

    #[test]
    fn isolation_switch_removes_governor() {
        let mgr = WorkloadManager::new(1, 1, 0.5, 0.1);
        assert!(mgr.governor_for(JobClass::Ap).is_some());
        mgr.set_isolation(false);
        assert!(mgr.governor_for(JobClass::Ap).is_none());
        assert!(mgr.governor_for(JobClass::Tp).is_none());
        mgr.set_isolation(true);
        assert!(mgr.governor_for(JobClass::SlowAp).is_some());
    }

    #[test]
    fn concurrent_jobs_all_complete() {
        let mgr = WorkloadManager::new(2, 2, 1.0, 1.0);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let c = Arc::clone(&counter);
            mgr.submit(JobClass::Ap, move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        let deadline = mono_now() + Duration::from_secs(2);
        while counter.load(Ordering::Relaxed) < 64 && mono_now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
