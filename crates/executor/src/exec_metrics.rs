//! Per-operator execution metrics for the vectorized engine.
//!
//! Every operator in the vectorized/morsel path records batches, rows,
//! nanoseconds and bytes held into a process-wide registry built on
//! [`polardbx_common::metrics::Counter`], so the fig9/fig10 harnesses (and
//! the perf-smoke CI job) can show *where* time goes, not just totals.

use std::sync::OnceLock;

use polardbx_common::metrics::Counter;
use polardbx_common::time::Timer;

/// Counters for one physical operator.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Batches processed.
    pub batches: Counter,
    /// Rows produced (post-filter for filters, probe output for joins).
    pub rows: Counter,
    /// Wall nanoseconds spent in the operator.
    pub nanos: Counter,
    /// Bytes held in the operator's output batches.
    pub bytes: Counter,
}

impl OpMetrics {
    /// Record one batch worth of work started at `t0`.
    pub fn record(&self, rows: u64, bytes: u64, t0: Timer) {
        self.batches.inc();
        self.rows.add(rows);
        self.bytes.add(bytes);
        self.nanos.add(t0.elapsed().as_nanos() as u64);
    }

    fn reset(&self) {
        self.batches.reset();
        self.rows.reset();
        self.nanos.reset();
        self.bytes.reset();
    }

    fn line(&self, name: &str) -> String {
        format!(
            "  {name:<9} batches={:<8} rows={:<12} ns={:<14} bytes={}",
            self.batches.get(),
            self.rows.get(),
            self.nanos.get(),
            self.bytes.get()
        )
    }
}

/// The engine-wide registry: one [`OpMetrics`] per operator kind plus
/// morsel-scheduling counters.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Table scans (row store and column index).
    pub scan: OpMetrics,
    /// Filters.
    pub filter: OpMetrics,
    /// Projections.
    pub project: OpMetrics,
    /// Hash joins (build + probe).
    pub join: OpMetrics,
    /// Hash aggregation.
    pub aggregate: OpMetrics,
    /// Sorts.
    pub sort: OpMetrics,
    /// Morsels dispatched to the worker pool.
    pub morsels: Counter,
    /// Morsels executed by a worker other than the one that scanned the
    /// partition (work stealing events).
    pub steals: Counter,
}

impl ExecMetrics {
    /// Zero all counters (between benchmark rounds).
    pub fn reset(&self) {
        self.scan.reset();
        self.filter.reset();
        self.project.reset();
        self.join.reset();
        self.aggregate.reset();
        self.sort.reset();
        self.morsels.reset();
        self.steals.reset();
    }

    /// Human-readable dump for bench harnesses.
    pub fn report(&self) -> String {
        let mut s = String::from("per-operator metrics:\n");
        for (name, m) in [
            ("scan", &self.scan),
            ("filter", &self.filter),
            ("project", &self.project),
            ("join", &self.join),
            ("aggregate", &self.aggregate),
            ("sort", &self.sort),
        ] {
            s.push_str(&m.line(name));
            s.push('\n');
        }
        s.push_str(&format!(
            "  morsels={} stolen={}\n",
            self.morsels.get(),
            self.steals.get()
        ));
        s
    }
}

/// The process-wide registry.
pub fn exec_metrics() -> &'static ExecMetrics {
    static REG: OnceLock<ExecMetrics> = OnceLock::new();
    REG.get_or_init(ExecMetrics::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_report() {
        let m = ExecMetrics::default();
        m.scan.record(100, 800, Timer::start());
        m.filter.record(40, 320, Timer::start());
        assert_eq!(m.scan.rows.get(), 100);
        assert_eq!(m.scan.batches.get(), 1);
        let report = m.report();
        assert!(report.contains("scan"));
        assert!(report.contains("rows=100"));
        m.reset();
        assert_eq!(m.scan.rows.get(), 0);
    }
}
