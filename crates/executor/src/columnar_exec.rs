//! Columnar fast paths: execute pipelines on the in-memory column index.
//!
//! The executor recognizes `Aggregate(Filter*(Scan))` and `Filter*(Scan)`
//! pipelines over a table with a column index and runs them through the
//! vectorized kernels instead of row-at-a-time evaluation — the execution
//! half of §VI-E's row-vs-column plan choice. Unsupported shapes return
//! `None` and fall back to the row path, exactly like the optimizer
//! "finally select\[ing\] the one with the lowest cost" falls back to the
//! row store.

use polardbx_columnar::kernels::{self, CmpOp};
use polardbx_columnar::ColumnSnapshot;
use polardbx_common::{Result, Row, Value};
use polardbx_sql::expr::{AggFunc, BinOp, Expr};
use polardbx_sql::plan::{AggSpec, LogicalPlan};

use crate::operators::{ExecCtx, TableProvider};

/// Try to execute `plan` on the column index. `None` = shape or data not
/// eligible; caller falls back to the row path.
pub fn try_columnar(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    ctx: &ExecCtx,
) -> Option<Result<Vec<Row>>> {
    // Recognize: Aggregate(pipeline) | pipeline, where
    // pipeline := Filter*(Scan(t)) and every filter conjunct is simple.
    match plan {
        LogicalPlan::Aggregate { input, group_by, aggs, .. } => {
            if let Some((table, conjuncts)) = match_pipeline(input) {
                let snap = provider.columnar(&table)?;
                return Some(run_aggregate(&snap, &conjuncts, group_by, aggs, ctx));
            }
            // Aggregate over a columnar join tree: vectorized filter + join
            // kernels feed the aggregation (the "built-in hash join of
            // column index" path of §VII-C).
            let joined = try_columnar_rows(input, provider, ctx)?;
            Some(joined.and_then(|rows| {
                let mut t =
                    crate::operators::AggTable::new(group_by.clone(), aggs.clone());
                t.update_batch(&rows, ctx)?;
                t.finish()
            }))
        }
        LogicalPlan::Filter { .. } | LogicalPlan::Scan { .. } => {
            let (table, conjuncts) = match_pipeline(plan)?;
            let snap = provider.columnar(&table)?;
            Some(run_select(&snap, &conjuncts, ctx))
        }
        LogicalPlan::Join { .. } | LogicalPlan::Project { .. } => {
            try_columnar_rows(plan, provider, ctx)
        }
        _ => None,
    }
}

/// Columnar row production for join trees, seeing through projections (the
/// build-side-swap pass inserts pure-column reorder projections).
fn try_columnar_rows(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    ctx: &ExecCtx,
) -> Option<Result<Vec<Row>>> {
    match plan {
        LogicalPlan::Join { .. } => try_columnar_join(plan, provider, ctx),
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = try_columnar_rows(input, provider, ctx)?;
            Some(rows.and_then(|r| crate::operators::apply_project(r, exprs, ctx)))
        }
        LogicalPlan::Filter { .. } | LogicalPlan::Scan { .. } => {
            let (table, conjuncts) = match_pipeline(plan)?;
            let snap = provider.columnar(&table)?;
            Some(run_select(&snap, &conjuncts, ctx))
        }
        _ => None,
    }
}

/// Execute `Join(Filter*(Scan a), Filter*(Scan b))` with single-column
/// equi-keys entirely on column snapshots: vectorized per-side filters,
/// then the hash-join kernel, then row materialization of the pairs.
fn try_columnar_join(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    ctx: &ExecCtx,
) -> Option<Result<Vec<Row>>> {
    let LogicalPlan::Join { left, right, on, filter } = plan else { return None };
    if on.len() != 1 {
        return None;
    }
    let (Some((lt, lpreds)), Some((rt, rpreds))) =
        (match_pipeline(left), match_pipeline(right))
    else {
        // Deeper trees: materialize each side through the columnar path
        // (vectorized leaf filters + inner joins), then hash-join the rows.
        let lrows = try_columnar_rows(left, provider, ctx)?;
        let rrows = try_columnar_rows(right, provider, ctx)?;
        let run = || -> Result<Vec<Row>> {
            crate::operators::apply_join(lrows?, rrows?, on, filter.as_ref(), ctx)
        };
        return Some(run());
    };
    let lsnap = provider.columnar(&lt)?;
    let rsnap = provider.columnar(&rt)?;
    let (lk, rk) = on[0];
    if lk >= lsnap.columns.len() || rk >= rsnap.columns.len() {
        return None;
    }
    let run = || -> Result<Vec<Row>> {
        let lsel = apply_preds(&lsnap, &lpreds, ctx)?;
        let rsel = apply_preds(&rsnap, &rpreds, ctx)?;
        ctx.tick((lsel.len() + rsel.len()) as u64 / 4)?;
        let pairs =
            kernels::hash_join(&lsnap.columns[lk], &lsel, &rsnap.columns[rk], &rsel);
        ctx.tick(pairs.len() as u64 / 4)?;
        let mut out = Vec::with_capacity(pairs.len());
        for (lid, rid) in pairs {
            let mut vals: Vec<Value> =
                lsnap.columns.iter().map(|c| c.get(lid as usize)).collect();
            vals.extend(rsnap.columns.iter().map(|c| c.get(rid as usize)));
            let row = Row::new(vals);
            if let Some(f) = filter {
                if !f.eval_bool(&row)? {
                    continue;
                }
            }
            out.push(row);
        }
        Ok(out)
    };
    Some(run())
}

/// A filter conjunct the kernels understand.
enum SimplePred {
    Cmp { col: usize, op: CmpOp, constant: Value },
    CmpCols { a: usize, op: CmpOp, b: usize },
    Between { col: usize, lo: Value, hi: Value },
    Prefix { col: usize, prefix: String },
}

fn match_pipeline(plan: &LogicalPlan) -> Option<(String, Vec<SimplePred>)> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some((table.clone(), Vec::new())),
        LogicalPlan::Filter { input, predicate } => {
            let (table, mut preds) = match_pipeline(input)?;
            let mut conjuncts = Vec::new();
            polardbx_sql::plan::split_conjuncts(predicate, &mut conjuncts);
            for c in conjuncts {
                preds.push(simple_pred(&c)?);
            }
            Some((table, preds))
        }
        _ => None,
    }
}

fn simple_pred(e: &Expr) -> Option<SimplePred> {
    match e {
        Expr::Binary { op, left, right } => {
            let cmp = match op {
                BinOp::Eq => CmpOp::Eq,
                BinOp::Neq => CmpOp::Neq,
                BinOp::Lt => CmpOp::Lt,
                BinOp::Le => CmpOp::Le,
                BinOp::Gt => CmpOp::Gt,
                BinOp::Ge => CmpOp::Ge,
                _ => return None,
            };
            match (left.as_ref(), right.as_ref()) {
                (Expr::ColumnIdx(c), Expr::Literal(v)) => {
                    Some(SimplePred::Cmp { col: *c, op: cmp, constant: v.clone() })
                }
                (Expr::Literal(v), Expr::ColumnIdx(c)) => Some(SimplePred::Cmp {
                    col: *c,
                    op: flip(cmp),
                    constant: v.clone(),
                }),
                (Expr::ColumnIdx(a), Expr::ColumnIdx(b)) => {
                    Some(SimplePred::CmpCols { a: *a, op: cmp, b: *b })
                }
                _ => None,
            }
        }
        Expr::Between { expr, low, high } => match (expr.as_ref(), low.as_ref(), high.as_ref())
        {
            (Expr::ColumnIdx(c), Expr::Literal(lo), Expr::Literal(hi)) => {
                Some(SimplePred::Between { col: *c, lo: lo.clone(), hi: hi.clone() })
            }
            _ => None,
        },
        Expr::Like { expr, pattern } => match expr.as_ref() {
            // Only prefix patterns vectorize: 'abc%'.
            Expr::ColumnIdx(c)
                if pattern.ends_with('%')
                    && !pattern[..pattern.len() - 1].contains(['%', '_']) =>
            {
                Some(SimplePred::Prefix {
                    col: *c,
                    prefix: pattern[..pattern.len() - 1].to_string(),
                })
            }
            _ => None,
        },
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn apply_preds(
    snap: &ColumnSnapshot,
    preds: &[SimplePred],
    ctx: &ExecCtx,
) -> Result<Vec<u32>> {
    let t0 = polardbx_common::time::Timer::start();
    let mut sel = snap.selection.clone();
    for p in preds {
        ctx.tick(sel.len() as u64 / 8)?; // vectorized: cheaper per row
        sel = match p {
            SimplePred::Cmp { col, op, constant } => {
                kernels::filter_cmp(&snap.columns[*col], &sel, *op, constant)?
            }
            SimplePred::CmpCols { a, op, b } => {
                kernels::filter_cmp_cols(&snap.columns[*a], &snap.columns[*b], &sel, *op)?
            }
            SimplePred::Between { col, lo, hi } => {
                kernels::filter_between(&snap.columns[*col], &sel, lo, hi)?
            }
            SimplePred::Prefix { col, prefix } => {
                kernels::filter_prefix(&snap.columns[*col], &sel, prefix)?
            }
        };
    }
    if !preds.is_empty() {
        crate::exec_metrics::exec_metrics().filter.record(sel.len() as u64, 0, t0);
    }
    Ok(sel)
}

fn run_select(snap: &ColumnSnapshot, preds: &[SimplePred], ctx: &ExecCtx) -> Result<Vec<Row>> {
    let t0 = polardbx_common::time::Timer::start();
    let sel = apply_preds(snap, preds, ctx)?;
    ctx.tick(sel.len() as u64)?;
    crate::exec_metrics::exec_metrics().scan.record(sel.len() as u64, 0, t0);
    Ok(sel
        .iter()
        .map(|&id| Row::new(snap.columns.iter().map(|c| c.get(id as usize)).collect()))
        .collect())
}

fn run_aggregate(
    snap: &ColumnSnapshot,
    preds: &[SimplePred],
    group_by: &[Expr],
    aggs: &[AggSpec],
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let t0 = polardbx_common::time::Timer::start();
    let out = run_aggregate_inner(snap, preds, group_by, aggs, ctx)?;
    crate::exec_metrics::exec_metrics().aggregate.record(out.len() as u64, 0, t0);
    Ok(out)
}

fn run_aggregate_inner(
    snap: &ColumnSnapshot,
    preds: &[SimplePred],
    group_by: &[Expr],
    aggs: &[AggSpec],
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let sel = apply_preds(snap, preds, ctx)?;
    // Group keys must be plain columns for the vectorized path.
    let mut key_cols = Vec::with_capacity(group_by.len());
    for g in group_by {
        match g {
            Expr::ColumnIdx(i) => key_cols.push(*i),
            _ => return fallback_aggregate(snap, &sel, group_by, aggs, ctx),
        }
    }
    // Aggregates evaluate vectorized: plain columns and COUNT(*) hit the
    // kernels directly; arithmetic/CASE arguments go through the numeric
    // vector evaluator; anything else falls back to row evaluation.
    #[derive(Clone)]
    enum ArgPath {
        Star,
        Column(usize),
        Vector(Expr),
    }
    let arg_paths: Option<Vec<ArgPath>> = aggs
        .iter()
        .map(|a| match &a.arg {
            None => Some(ArgPath::Star),
            Some(Expr::ColumnIdx(i)) => Some(ArgPath::Column(*i)),
            Some(e) if vectorizable(e) => Some(ArgPath::Vector(e.clone())),
            _ => None,
        })
        .collect();
    let Some(arg_cols) = arg_paths else {
        return fallback_aggregate(snap, &sel, group_by, aggs, ctx);
    };
    if aggs.iter().any(|a| a.distinct) {
        return fallback_aggregate(snap, &sel, group_by, aggs, ctx);
    }

    ctx.tick(sel.len() as u64 / 4)?;
    let groups = if key_cols.is_empty() {
        // Global aggregate: one group with the whole selection.
        let mut m = std::collections::HashMap::new();
        m.insert(Vec::new(), sel.clone());
        m
    } else {
        let keys: Vec<&polardbx_columnar::ColumnData> =
            key_cols.iter().map(|&i| &snap.columns[i]).collect();
        kernels::hash_group(&keys, &sel)
    };
    let mut out = Vec::with_capacity(groups.len());
    for (key_vals, ids) in groups {
        let mut row = key_vals;
        for (spec, arg) in aggs.iter().zip(&arg_cols) {
            let v = match (spec.func, arg) {
                (AggFunc::Count, ArgPath::Star) => Value::Int(ids.len() as i64),
                (AggFunc::Count, ArgPath::Column(c)) => {
                    Value::Int(kernels::count(&snap.columns[*c], &ids) as i64)
                }
                (AggFunc::Sum, ArgPath::Column(c)) => {
                    let col = &snap.columns[*c];
                    let s = kernels::sum(col, &ids)?;
                    if matches!(col, polardbx_columnar::ColumnData::Int(_, _)) {
                        Value::Int(s as i64)
                    } else {
                        Value::Double(s)
                    }
                }
                (AggFunc::Avg, ArgPath::Column(c)) => {
                    let n = kernels::count(&snap.columns[*c], &ids);
                    if n == 0 {
                        Value::Null
                    } else {
                        Value::Double(kernels::sum(&snap.columns[*c], &ids)? / n as f64)
                    }
                }
                (AggFunc::Min, ArgPath::Column(c)) => {
                    kernels::min_max(&snap.columns[*c], &ids).0.unwrap_or(Value::Null)
                }
                (AggFunc::Max, ArgPath::Column(c)) => {
                    kernels::min_max(&snap.columns[*c], &ids).1.unwrap_or(Value::Null)
                }
                (AggFunc::Sum, ArgPath::Vector(e)) => {
                    Value::Double(vector_sum(e, &snap.columns, &ids)?)
                }
                (AggFunc::Avg, ArgPath::Vector(e)) => {
                    if ids.is_empty() {
                        Value::Null
                    } else {
                        Value::Double(
                            vector_sum(e, &snap.columns, &ids)? / ids.len() as f64,
                        )
                    }
                }
                _ => return fallback_aggregate(snap, &sel, group_by, aggs, ctx),
            };
            row.push(v);
        }
        out.push(Row::new(row));
    }
    if key_cols.is_empty() && out.is_empty() {
        // SQL: global aggregate over zero rows still yields one row.
        let mut row = Vec::new();
        for spec in aggs {
            row.push(match spec.func {
                AggFunc::Count => Value::Int(0),
                _ => Value::Null,
            });
        }
        out.push(Row::new(row));
    }
    Ok(out)
}

/// Is `e` evaluable by the numeric vector path? Arithmetic over numeric
/// columns and literals, plus single-arm CASE whose condition is a simple
/// predicate (Q1/Q8/Q14's `SUM(price * (1 - discount))` and
/// `SUM(CASE WHEN … THEN expr ELSE 0 END)` shapes).
fn vectorizable(e: &Expr) -> bool {
    match e {
        Expr::ColumnIdx(_) | Expr::Literal(Value::Int(_)) | Expr::Literal(Value::Double(_)) => {
            true
        }
        Expr::Binary { op, left, right } => {
            matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
                && vectorizable(left)
                && vectorizable(right)
        }
        Expr::Neg(x) => vectorizable(x),
        Expr::Case { when, otherwise } => {
            when.len() == 1
                && simple_pred(&when[0].0).is_some()
                && vectorizable(&when[0].1)
                && otherwise.as_deref().is_none_or(vectorizable)
        }
        _ => false,
    }
}

/// Sum a vectorizable expression over a selection without materializing
/// rows: dense typed loops for arithmetic, selection splitting for CASE.
fn vector_sum(e: &Expr, cols: &[polardbx_columnar::ColumnData], sel: &[u32]) -> Result<f64> {
    match e {
        Expr::Case { when, otherwise } => {
            let (cond, then_e) = &when[0];
            let pred = simple_pred(cond).expect("vetted by vectorizable");
            let matched = apply_one_pred(cols, sel, &pred)?;
            // Complement: both sorted ascending.
            let mut rest = Vec::with_capacity(sel.len() - matched.len());
            let mut mi = 0;
            for &id in sel {
                if mi < matched.len() && matched[mi] == id {
                    mi += 1;
                } else {
                    rest.push(id);
                }
            }
            let mut total = vector_sum(then_e, cols, &matched)?;
            if let Some(else_e) = otherwise {
                total += vector_sum(else_e, cols, &rest)?;
            }
            Ok(total)
        }
        _ => {
            let v = eval_vec(e, cols, sel)?;
            Ok(v.iter().sum())
        }
    }
}

fn apply_one_pred(
    cols: &[polardbx_columnar::ColumnData],
    sel: &[u32],
    pred: &SimplePred,
) -> Result<Vec<u32>> {
    match pred {
        SimplePred::Cmp { col, op, constant } => {
            kernels::filter_cmp(&cols[*col], sel, *op, constant)
        }
        SimplePred::CmpCols { a, op, b } => {
            kernels::filter_cmp_cols(&cols[*a], &cols[*b], sel, *op)
        }
        SimplePred::Between { col, lo, hi } => kernels::filter_between(&cols[*col], sel, lo, hi),
        SimplePred::Prefix { col, prefix } => kernels::filter_prefix(&cols[*col], sel, prefix),
    }
}

/// Evaluate a numeric expression into a dense f64 vector over `sel`.
fn eval_vec(
    e: &Expr,
    cols: &[polardbx_columnar::ColumnData],
    sel: &[u32],
) -> Result<Vec<f64>> {
    use polardbx_columnar::ColumnData;
    match e {
        Expr::Literal(v) => Ok(vec![v.as_double()?; sel.len()]),
        Expr::ColumnIdx(i) => match &cols[*i] {
            ColumnData::Int(data, _) => {
                Ok(sel.iter().map(|&id| data[id as usize] as f64).collect())
            }
            ColumnData::Double(data, _) => {
                Ok(sel.iter().map(|&id| data[id as usize]).collect())
            }
            _ => Err(polardbx_common::Error::execution("non-numeric column in vector eval")),
        },
        Expr::Neg(x) => {
            let mut v = eval_vec(x, cols, sel)?;
            v.iter_mut().for_each(|x| *x = -*x);
            Ok(v)
        }
        Expr::Binary { op, left, right } => {
            let mut l = eval_vec(left, cols, sel)?;
            let r = eval_vec(right, cols, sel)?;
            match op {
                BinOp::Add => l.iter_mut().zip(&r).for_each(|(a, b)| *a += b),
                BinOp::Sub => l.iter_mut().zip(&r).for_each(|(a, b)| *a -= b),
                BinOp::Mul => l.iter_mut().zip(&r).for_each(|(a, b)| *a *= b),
                BinOp::Div => l
                    .iter_mut()
                    .zip(&r)
                    .for_each(|(a, b)| *a = if *b == 0.0 { 0.0 } else { *a / *b }),
                _ => unreachable!("vetted by vectorizable"),
            }
            Ok(l)
        }
        _ => Err(polardbx_common::Error::execution("not vectorizable")),
    }
}

/// Mixed path: vectorized filter, then row-at-a-time aggregation for
/// complex aggregate expressions (still profits from the filtered
/// selection).
fn fallback_aggregate(
    snap: &ColumnSnapshot,
    sel: &[u32],
    group_by: &[Expr],
    aggs: &[AggSpec],
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let rows: Vec<Row> = sel
        .iter()
        .map(|&id| Row::new(snap.columns.iter().map(|c| c.get(id as usize)).collect()))
        .collect();
    let mut table = crate::operators::AggTable::new(group_by.to_vec(), aggs.to_vec());
    table.update_batch(&rows, ctx)?;
    table.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_columnar::ColumnIndex;
    use polardbx_common::{DataType, Key, TrxId};
    use std::sync::Arc;

    struct ColProvider {
        index: Arc<ColumnIndex>,
        rows: Vec<Row>,
    }

    impl TableProvider for ColProvider {
        fn scan_partition(&self, _t: &str, _p: usize) -> Result<Vec<Row>> {
            Ok(self.rows.clone())
        }
        fn columnar(&self, table: &str) -> Option<ColumnSnapshot> {
            (table == "t").then(|| self.index.snapshot(u64::MAX))
        }
    }

    fn provider() -> ColProvider {
        let index = ColumnIndex::new(vec![DataType::Int, DataType::Int, DataType::Str]);
        let mut rows = Vec::new();
        for i in 0..100i64 {
            let row = Row::new(vec![
                Value::Int(i),
                Value::Int(i % 4),
                Value::str(if i % 2 == 0 { "PROMO X" } else { "PLAIN Y" }),
            ]);
            index
                .apply_put(TrxId(1), 1, Key::encode(&[Value::Int(i)]), &row)
                .unwrap();
            rows.push(row);
        }
        ColProvider { index, rows }
    }

    fn scan_plan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: vec!["t.id".into(), "t.grp".into(), "t.flag".into()],
        }
    }

    #[test]
    fn columnar_filter_matches_row_path() {
        let p = provider();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan_plan()),
            predicate: Expr::binary(BinOp::Lt, Expr::ColumnIdx(0), Expr::int(10)),
        };
        let ctx = ExecCtx::unrestricted();
        let fast = try_columnar(&plan, &p, &ctx).unwrap().unwrap();
        assert_eq!(fast.len(), 10);
        // Cross-check against the row path by executing without the index.
        let slow = crate::operators::apply_filter(
            p.rows.clone(),
            &Expr::binary(BinOp::Lt, Expr::ColumnIdx(0), Expr::int(10)),
            &ctx,
        )
        .unwrap();
        assert_eq!(fast.len(), slow.len());
    }

    #[test]
    fn columnar_aggregate_matches_row_path() {
        let p = provider();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan_plan()),
            group_by: vec![Expr::ColumnIdx(1)],
            aggs: vec![
                AggSpec { func: AggFunc::Count, arg: None, distinct: false },
                AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(Expr::ColumnIdx(0)),
                    distinct: false,
                },
            ],
            names: vec!["grp".into(), "count".into(), "sum".into()],
        };
        let ctx = ExecCtx::unrestricted();
        let mut fast = try_columnar(&plan, &p, &ctx).unwrap().unwrap();
        fast.sort_by(|a, b| a.get(0).unwrap().cmp(b.get(0).unwrap()));
        assert_eq!(fast.len(), 4);
        assert_eq!(fast[0].get(1).unwrap(), &Value::Int(25));
        // Group 0: 0+4+...+96 = 4*(0+1+..+24) = 1200.
        assert_eq!(fast[0].get(2).unwrap(), &Value::Int(1200));
    }

    #[test]
    fn prefix_like_vectorizes() {
        let p = provider();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan_plan()),
            predicate: Expr::Like {
                expr: Box::new(Expr::ColumnIdx(2)),
                pattern: "PROMO%".into(),
            },
        };
        let out = try_columnar(&plan, &p, &ExecCtx::unrestricted()).unwrap().unwrap();
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let p = provider();
        // OR predicates are not simple conjuncts → no columnar path.
        let plan = LogicalPlan::Filter {
            input: Box::new(scan_plan()),
            predicate: Expr::binary(
                BinOp::Or,
                Expr::binary(BinOp::Eq, Expr::ColumnIdx(0), Expr::int(1)),
                Expr::binary(BinOp::Eq, Expr::ColumnIdx(0), Expr::int(2)),
            ),
        };
        assert!(try_columnar(&plan, &p, &ExecCtx::unrestricted()).is_none());
        // Single-key equi-joins over columnar pipelines ARE handled.
        let join = LogicalPlan::Join {
            left: Box::new(scan_plan()),
            right: Box::new(scan_plan()),
            on: vec![(0, 0)],
            filter: None,
        };
        let rows = try_columnar(&join, &p, &ExecCtx::unrestricted()).unwrap().unwrap();
        assert_eq!(rows.len(), 100, "self-join on unique id");
        assert_eq!(rows[0].arity(), 6, "concatenated schema");
        // Multi-key joins fall back.
        let multi = LogicalPlan::Join {
            left: Box::new(scan_plan()),
            right: Box::new(scan_plan()),
            on: vec![(0, 0), (1, 1)],
            filter: None,
        };
        assert!(try_columnar(&multi, &p, &ExecCtx::unrestricted()).is_none());
    }

    #[test]
    fn no_column_index_means_no_fast_path() {
        struct RowOnly;
        impl TableProvider for RowOnly {
            fn scan_partition(&self, _t: &str, _p: usize) -> Result<Vec<Row>> {
                Ok(vec![])
            }
        }
        assert!(try_columnar(&scan_plan(), &RowOnly, &ExecCtx::unrestricted()).is_none());
    }

    #[test]
    fn complex_agg_args_use_mixed_path() {
        let p = provider();
        // SUM(id * 2) — not a plain column → mixed path, still correct.
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan_plan()),
            group_by: vec![],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                arg: Some(Expr::binary(
                    BinOp::Mul,
                    Expr::ColumnIdx(0),
                    Expr::int(2),
                )),
                distinct: false,
            }],
            names: vec!["s".into()],
        };
        let out = try_columnar(&plan, &p, &ExecCtx::unrestricted()).unwrap().unwrap();
        assert_eq!(out[0].get(0).unwrap(), &Value::Int(9900)); // 2 * (0..100).sum()
    }
}
