//! Physical operators executing logical plans.
//!
//! Execution is materialized (operator at a time): each node produces a
//! `Vec<Row>`. Every inner loop accounts its work to the [`ExecCtx`], which
//! paces AP jobs (CPU governor) and aborts jobs whose time slice expired —
//! the executor-side half of §VI-C's time-slicing model.

use std::collections::HashMap;

use polardbx_common::{Error, Result, Row, Value};
use polardbx_sql::expr::{AggFunc, Expr};
use polardbx_sql::plan::{AggSpec, LogicalPlan};

use crate::columnar_exec;
use crate::scheduler::TickState;

/// Row source the executor reads from. One implementation wraps the DN
/// engines (row store); the optional columnar hook serves the in-memory
/// column index (§VI-E).
pub trait TableProvider: Send + Sync {
    /// Number of partitions (shards) of `table` — MPP parallelism units.
    fn partitions(&self, _table: &str) -> usize {
        1
    }

    /// Scan one partition of the table at the provider's snapshot.
    fn scan_partition(&self, table: &str, partition: usize) -> Result<Vec<Row>>;

    /// Scan the whole table.
    fn scan_all(&self, table: &str) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        for p in 0..self.partitions(table) {
            out.extend(self.scan_partition(table, p)?);
        }
        Ok(out)
    }

    /// A columnar snapshot of the table, when a column index exists.
    fn columnar(&self, table: &str) -> Option<polardbx_columnar::ColumnSnapshot> {
        let _ = table;
        None
    }
}

/// Per-query execution context: work accounting + pacing + slice deadline.
pub struct ExecCtx {
    ticks: TickState,
}

impl ExecCtx {
    /// Unrestricted context (TP fast path, tests).
    pub fn unrestricted() -> ExecCtx {
        ExecCtx { ticks: TickState::unrestricted() }
    }

    /// Context with pacing/deadline from the scheduler.
    pub fn with_ticks(ticks: TickState) -> ExecCtx {
        ExecCtx { ticks }
    }

    /// A sibling context for a parallel worker: shares the governor and
    /// deadline but counts its own rows, so morsel workers stay paced
    /// instead of running unrestricted.
    pub fn fork(&self) -> ExecCtx {
        ExecCtx { ticks: self.ticks.fork() }
    }

    /// Account `rows` of work. Errors with a retryable `Throttled` when the
    /// job's time slice expired (the scheduler demotes and re-runs it).
    pub fn tick(&self, rows: u64) -> Result<()> {
        if self.ticks.tick(rows) {
            Ok(())
        } else {
            Err(Error::Throttled { rule: "time-slice expired".into() })
        }
    }
}

/// Execute a plan to completion.
pub fn execute_plan(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    // Columnar fast path first (§VI-E): pattern-matched pipelines run on
    // vectorized kernels when the table has a column index.
    if let Some(result) = columnar_exec::try_columnar(plan, provider, ctx) {
        return result;
    }
    match plan {
        LogicalPlan::Scan { table, .. } => {
            let rows = provider.scan_all(table)?;
            ctx.tick(rows.len() as u64)?;
            Ok(rows)
        }
        LogicalPlan::Filter { input, predicate } => {
            let rows = execute_plan(input, provider, ctx)?;
            apply_filter(rows, predicate, ctx)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = execute_plan(input, provider, ctx)?;
            apply_project(rows, exprs, ctx)
        }
        LogicalPlan::Join { left, right, on, filter } => {
            let l = execute_plan(left, provider, ctx)?;
            let r = execute_plan(right, provider, ctx)?;
            apply_join(l, r, on, filter.as_ref(), ctx)
        }
        LogicalPlan::Aggregate { input, group_by, aggs, .. } => {
            let rows = execute_plan(input, provider, ctx)?;
            let mut table = AggTable::new(group_by.clone(), aggs.clone());
            table.update_batch(&rows, ctx)?;
            table.finish()
        }
        LogicalPlan::Sort { input, keys } => {
            let rows = execute_plan(input, provider, ctx)?;
            apply_sort(rows, keys, ctx)
        }
        LogicalPlan::Limit { input, n } => {
            let mut rows = execute_plan(input, provider, ctx)?;
            rows.truncate(*n);
            Ok(rows)
        }
    }
}

/// Filter rows by a predicate.
pub fn apply_filter(rows: Vec<Row>, predicate: &Expr, ctx: &ExecCtx) -> Result<Vec<Row>> {
    ctx.tick(rows.len() as u64)?;
    let mut out = Vec::with_capacity(rows.len() / 2);
    for row in rows {
        if predicate.eval_bool(&row)? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Project rows through expressions.
pub fn apply_project(rows: Vec<Row>, exprs: &[Expr], ctx: &ExecCtx) -> Result<Vec<Row>> {
    ctx.tick(rows.len() as u64)?;
    rows.iter()
        .map(|row| {
            let vals: Result<Vec<Value>> = exprs.iter().map(|e| e.eval(row)).collect();
            Ok(Row::new(vals?))
        })
        .collect()
}

/// Hash join (cross join with optional filter when `on` is empty).
pub fn apply_join(
    left: Vec<Row>,
    right: Vec<Row>,
    on: &[(usize, usize)],
    filter: Option<&Expr>,
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    ctx.tick((left.len() + right.len()) as u64)?;
    let mut out = Vec::new();
    if on.is_empty() {
        // Nested-loop cross product.
        for l in &left {
            ctx.tick(right.len() as u64)?;
            for r in &right {
                let joined = l.concat(r);
                if match filter {
                    Some(f) => f.eval_bool(&joined)?,
                    None => true,
                } {
                    out.push(joined);
                }
            }
        }
        return Ok(out);
    }
    // Build on the left, probe with the right.
    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    for (i, l) in left.iter().enumerate() {
        let key = join_key(l, on.iter().map(|(li, _)| *li))?;
        table.entry(key).or_default().push(i);
    }
    for r in &right {
        ctx.tick(1)?;
        let key = join_key(r, on.iter().map(|(_, ri)| *ri))?;
        if let Some(matches) = table.get(&key) {
            for &i in matches {
                let joined = left[i].concat(r);
                if match filter {
                    Some(f) => f.eval_bool(&joined)?,
                    None => true,
                } {
                    out.push(joined);
                }
            }
        }
    }
    Ok(out)
}

fn join_key(row: &Row, cols: impl Iterator<Item = usize>) -> Result<Vec<u8>> {
    let mut vals = Vec::new();
    for c in cols {
        vals.push(row.get(c)?.clone());
    }
    Ok(polardbx_common::Key::encode(&vals).0)
}

/// Sort rows by keys.
pub fn apply_sort(mut rows: Vec<Row>, keys: &[(Expr, bool)], ctx: &ExecCtx) -> Result<Vec<Row>> {
    ctx.tick(rows.len() as u64)?;
    // Precompute key tuples to avoid re-evaluating during comparisons.
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let mut kv = Vec::with_capacity(keys.len());
        for (e, _) in keys {
            kv.push(e.eval(&row)?);
        }
        keyed.push((kv, row));
    }
    keyed.sort_by(|(a, _), (b, _)| {
        for (i, (_, desc)) in keys.iter().enumerate() {
            let ord = a[i].cmp(&b[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

// --------------------------------------------------------------- aggregation

/// One aggregate's running state — supports partial evaluation + merge so
/// MPP fragments can aggregate locally and the coordinator combines.
#[derive(Debug, Clone)]
pub struct AggState {
    func: AggFunc,
    distinct: bool,
    count: u64,
    sum: f64,
    int_only: bool,
    min: Option<Value>,
    max: Option<Value>,
    distinct_set: Option<std::collections::BTreeSet<Value>>,
}

impl AggState {
    /// Fresh state for a spec.
    pub fn new(spec: &AggSpec) -> AggState {
        AggState {
            func: spec.func,
            distinct: spec.distinct,
            count: 0,
            sum: 0.0,
            int_only: true,
            min: None,
            max: None,
            distinct_set: spec.distinct.then(std::collections::BTreeSet::new),
        }
    }

    /// Fold one value (None = COUNT(*) row).
    pub fn update(&mut self, v: Option<&Value>) {
        match v {
            None => self.count += 1, // COUNT(*)
            Some(Value::Null) => {}
            Some(v) => {
                if self.distinct {
                    if let Some(set) = &mut self.distinct_set {
                        if !set.insert(v.clone()) {
                            return;
                        }
                    }
                }
                self.count += 1;
                if let Ok(d) = v.as_double() {
                    self.sum += d;
                    if !matches!(v, Value::Int(_)) {
                        self.int_only = false;
                    }
                }
                if self.min.as_ref().is_none_or(|m| v < m) {
                    self.min = Some(v.clone());
                }
                if self.max.as_ref().is_none_or(|m| v > m) {
                    self.max = Some(v.clone());
                }
            }
        }
    }

    /// Vectorized fast path for a non-NULL numeric value when the caller
    /// only needs count/sum lanes (Count/Sum/Avg, non-distinct): skips the
    /// min/max comparisons and the `Value` clone entirely.
    pub(crate) fn add_num(&mut self, d: f64, int: bool) {
        self.count += 1;
        self.sum += d;
        self.int_only &= int;
    }

    /// Vectorized fast path for a non-NULL, non-numeric value under
    /// Count/Sum/Avg: `as_double` fails, so only the count moves.
    pub(crate) fn bump_count(&mut self) {
        self.count += 1;
    }

    /// Merge a partial state from another fragment.
    pub fn merge(&mut self, other: &AggState) {
        match (&mut self.distinct_set, &other.distinct_set) {
            (Some(mine), Some(theirs)) => {
                for v in theirs {
                    if mine.insert(v.clone()) {
                        self.count += 1;
                        if let Ok(d) = v.as_double() {
                            self.sum += d;
                        }
                    }
                }
            }
            _ => {
                self.count += other.count;
                self.sum += other.sum;
            }
        }
        self.int_only &= other.int_only;
        if let Some(m) = &other.min {
            if self.min.as_ref().is_none_or(|mine| m < mine) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_ref().is_none_or(|mine| m > mine) {
                self.max = Some(m.clone());
            }
        }
    }

    /// Final value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.int_only {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Double(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Hash-aggregation table: group keys → aggregate states.
pub struct AggTable {
    group_by: Vec<Expr>,
    aggs: Vec<AggSpec>,
    groups: HashMap<Vec<u8>, (Vec<Value>, Vec<AggState>)>,
}

impl AggTable {
    /// Empty table for the given grouping.
    pub fn new(group_by: Vec<Expr>, aggs: Vec<AggSpec>) -> AggTable {
        AggTable { group_by, aggs, groups: HashMap::new() }
    }

    /// Fold a batch of input rows.
    pub fn update_batch(&mut self, rows: &[Row], ctx: &ExecCtx) -> Result<()> {
        ctx.tick(rows.len() as u64)?;
        for row in rows {
            let mut key_vals = Vec::with_capacity(self.group_by.len());
            for g in &self.group_by {
                key_vals.push(g.eval(row)?);
            }
            let key = polardbx_common::Key::encode(&key_vals).0;
            let entry = self.groups.entry(key).or_insert_with(|| {
                (key_vals.clone(), self.aggs.iter().map(AggState::new).collect())
            });
            for (state, spec) in entry.1.iter_mut().zip(&self.aggs) {
                match &spec.arg {
                    Some(arg) => state.update(Some(&arg.eval(row)?)),
                    None => state.update(None),
                }
            }
        }
        Ok(())
    }

    /// Merge a partial table from another fragment.
    pub fn merge(&mut self, other: AggTable) {
        for (key, (vals, states)) in other.groups {
            match self.groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (mine, theirs) in e.get_mut().1.iter_mut().zip(&states) {
                        mine.merge(theirs);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((vals, states));
                }
            }
        }
    }

    /// Produce the output rows (group values then aggregate values).
    /// A global aggregate (no GROUP BY) over zero rows yields one row of
    /// aggregate defaults, per SQL semantics.
    pub fn finish(mut self) -> Result<Vec<Row>> {
        if self.group_by.is_empty() && self.groups.is_empty() {
            let states: Vec<AggState> = self.aggs.iter().map(AggState::new).collect();
            return Ok(vec![Row::new(states.iter().map(AggState::finish).collect())]);
        }
        let mut out = Vec::with_capacity(self.groups.len());
        for (_, (vals, states)) in self.groups.drain() {
            let mut row = vals;
            row.extend(states.iter().map(AggState::finish));
            out.push(Row::new(row));
        }
        Ok(out)
    }
}

/// Memory-accounting helper: approximate footprint of a slice of rows.
/// This walks every row (O(rows)) so it must not sit on a per-batch
/// accounting path — the vectorized engine tracks bytes incrementally as
/// lanes are built and exposes them in O(width) via
/// [`crate::batch::RowBatch::bytes`]; prefer that for anything hot.
pub fn batch_bytes(rows: &[Row]) -> usize {
    rows.iter().map(Row::heap_size).sum()
}

/// A trivially simple provider over in-memory tables — used by tests here
/// and in downstream crates.
pub struct MemTables {
    tables: HashMap<String, Vec<Vec<Row>>>,
}

impl MemTables {
    /// Empty provider.
    pub fn new() -> MemTables {
        MemTables { tables: HashMap::new() }
    }

    /// Register a table as a list of partitions.
    pub fn add(&mut self, name: impl Into<String>, partitions: Vec<Vec<Row>>) {
        self.tables.insert(name.into().to_ascii_lowercase(), partitions);
    }
}

impl Default for MemTables {
    fn default() -> Self {
        Self::new()
    }
}

impl TableProvider for MemTables {
    fn partitions(&self, table: &str) -> usize {
        self.tables.get(table).map(|p| p.len()).unwrap_or(0)
    }

    fn scan_partition(&self, table: &str, partition: usize) -> Result<Vec<Row>> {
        self.tables
            .get(table)
            .and_then(|p| p.get(partition))
            .cloned()
            .ok_or(Error::UnknownTable { name: table.into() })
    }
}

/// Convenience: parse, plan, optimize and execute a SQL SELECT against a
/// provider (tests and examples).
pub fn query(
    sql: &str,
    schemas: &dyn polardbx_sql::plan::SchemaProvider,
    provider: &dyn TableProvider,
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let stmt = polardbx_sql::parse(sql)?;
    let polardbx_sql::Statement::Select(sel) = stmt else {
        return Err(Error::invalid("query() only executes SELECT"));
    };
    let plan = polardbx_sql::build_plan(&sel, schemas)?;
    let plan = polardbx_optimizer::optimize(plan);
    execute_plan(&plan, provider, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::Result;

    struct Schemas;
    impl polardbx_sql::plan::SchemaProvider for Schemas {
        fn table_columns(&self, table: &str) -> Result<Vec<String>> {
            match table {
                "items" => Ok(vec!["id".into(), "grp".into(), "qty".into(), "price".into()]),
                "names" => Ok(vec!["grp".into(), "label".into()]),
                _ => Err(Error::UnknownTable { name: table.into() }),
            }
        }
    }

    fn provider() -> MemTables {
        let mut p = MemTables::new();
        // 10 items across 2 partitions, groups 0/1/2.
        let rows: Vec<Row> = (0..10i64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Int(i % 3),
                    Value::Int(i * 2),
                    Value::Double(i as f64 * 1.5),
                ])
            })
            .collect();
        let (a, b) = rows.split_at(5);
        p.add("items", vec![a.to_vec(), b.to_vec()]);
        p.add(
            "names",
            vec![vec![
                Row::new(vec![Value::Int(0), Value::str("zero")]),
                Row::new(vec![Value::Int(1), Value::str("one")]),
                Row::new(vec![Value::Int(2), Value::str("two")]),
            ]],
        );
        p
    }

    fn run(sql: &str) -> Vec<Row> {
        query(sql, &Schemas, &provider(), &ExecCtx::unrestricted()).unwrap()
    }

    #[test]
    fn scan_filter_project() {
        let rows = run("SELECT id, qty * 2 FROM items WHERE id >= 8");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(1).unwrap(), &Value::Int(32));
    }

    #[test]
    fn hash_join_matches_pairs() {
        let rows = run(
            "SELECT items.id, names.label FROM items JOIN names ON items.grp = names.grp \
             WHERE items.id < 3 ORDER BY items.id",
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(1).unwrap(), &Value::str("zero"));
        assert_eq!(rows[1].get(1).unwrap(), &Value::str("one"));
        assert_eq!(rows[2].get(1).unwrap(), &Value::str("two"));
    }

    #[test]
    fn comma_join_with_where_becomes_hash_join() {
        let rows = run(
            "SELECT items.id FROM items, names WHERE items.grp = names.grp AND names.label = 'one'",
        );
        assert_eq!(rows.len(), 3); // ids 1, 4, 7
    }

    #[test]
    fn aggregation_group_by() {
        let mut rows = run("SELECT grp, COUNT(*), SUM(qty), AVG(price) FROM items GROUP BY grp");
        rows.sort_by(|a, b| a.get(0).unwrap().cmp(b.get(0).unwrap()));
        assert_eq!(rows.len(), 3);
        // Group 0: ids 0,3,6,9 → count 4, qty sum = (0+6+12+18)=36.
        assert_eq!(rows[0].get(1).unwrap(), &Value::Int(4));
        assert_eq!(rows[0].get(2).unwrap(), &Value::Int(36));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let rows = run("SELECT COUNT(*), SUM(qty), MIN(qty) FROM items WHERE id > 999");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).unwrap(), &Value::Int(0));
        assert_eq!(rows[0].get(1).unwrap(), &Value::Null);
        assert_eq!(rows[0].get(2).unwrap(), &Value::Null);
    }

    #[test]
    fn distinct_count() {
        let rows = run("SELECT COUNT(DISTINCT grp) FROM items");
        assert_eq!(rows[0].get(0).unwrap(), &Value::Int(3));
    }

    #[test]
    fn having_and_order_and_limit() {
        let rows = run(
            "SELECT grp, SUM(qty) AS total FROM items GROUP BY grp \
             HAVING SUM(qty) > 20 ORDER BY total DESC LIMIT 1",
        );
        assert_eq!(rows.len(), 1);
        // Group 2: ids 2,5,8 → 4+10+16=30; group 0 → 36; both > 20, top is 36.
        assert_eq!(rows[0].get(1).unwrap(), &Value::Int(36));
    }

    #[test]
    fn sort_multi_key_directions() {
        let rows = run("SELECT grp, id FROM items ORDER BY grp DESC, id ASC LIMIT 4");
        assert_eq!(rows[0].get(0).unwrap(), &Value::Int(2));
        assert_eq!(rows[0].get(1).unwrap(), &Value::Int(2));
        assert_eq!(rows[1].get(1).unwrap(), &Value::Int(5));
    }

    #[test]
    fn min_max_avg() {
        let rows = run("SELECT MIN(price), MAX(price), AVG(qty) FROM items");
        assert_eq!(rows[0].get(0).unwrap(), &Value::Double(0.0));
        assert_eq!(rows[0].get(1).unwrap(), &Value::Double(13.5));
        assert_eq!(rows[0].get(2).unwrap(), &Value::Double(9.0));
    }

    #[test]
    fn agg_state_merge_partial() {
        let spec = AggSpec { func: AggFunc::Sum, arg: None, distinct: false };
        let mut a = AggState::new(&spec);
        let mut b = AggState::new(&spec);
        a.update(Some(&Value::Int(5)));
        b.update(Some(&Value::Int(7)));
        a.merge(&b);
        assert_eq!(a.finish(), Value::Int(12));
        // Distinct merge dedupes across fragments.
        let dspec = AggSpec { func: AggFunc::Count, arg: None, distinct: true };
        let mut da = AggState::new(&dspec);
        let mut db = AggState::new(&dspec);
        da.update(Some(&Value::Int(1)));
        db.update(Some(&Value::Int(1)));
        db.update(Some(&Value::Int(2)));
        da.merge(&db);
        assert_eq!(da.finish(), Value::Int(2));
    }

    #[test]
    fn slice_expiry_aborts_execution() {
        use crate::scheduler::{Deadline, TickState};
        let ctx = ExecCtx::with_ticks(TickState::new(
            None,
            Some(Deadline::after(std::time::Duration::ZERO)),
        ));
        // Enough rows to cross the tick quantum.
        let rows: Vec<Row> = (0..5000).map(|i| Row::new(vec![Value::Int(i)])).collect();
        let pred = Expr::binary(
            polardbx_sql::expr::BinOp::Ge,
            Expr::ColumnIdx(0),
            Expr::int(0),
        );
        let err = apply_filter(rows, &pred, &ctx).unwrap_err();
        assert!(matches!(err, Error::Throttled { .. }));
    }

    #[test]
    fn query_rejects_non_select() {
        let err = query(
            "INSERT INTO items VALUES (1)",
            &Schemas,
            &provider(),
            &ExecCtx::unrestricted(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::Invalid { .. }));
    }
}
