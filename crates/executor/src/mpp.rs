//! MPP execution: fragment the plan, fan out, exchange, merge (§VI-C).
//!
//! "The plan is split into multiple fragments … Task Scheduler encapsulates
//! each fragment as a Task, and then schedules all tasks to appropriate CN
//! nodes for execution. … Each executed task exchanges necessary data with
//! others. When all tasks complete, partial results are sent back to Query
//! Coordinator, who assembles the final result."
//!
//! The parallelism unit is the table partition (shard). Pipelines of
//! `Project*/Filter*` over a `Scan` execute per-partition in parallel
//! worker tasks; aggregates run as partial-aggregate tasks merged at the
//! coordinator; hash joins build once and probe partition-parallel.

use std::sync::Arc;

use polardbx_common::{Result, Row};
use polardbx_sql::plan::LogicalPlan;

use crate::operators::{
    apply_filter, apply_join, apply_project, apply_sort, execute_plan, AggTable, ExecCtx,
    TableProvider,
};

/// The MPP engine: a degree of parallelism (worker tasks ≈ CN nodes ×
/// cores) and exchange accounting.
pub struct MppExecutor {
    /// Maximum concurrent tasks.
    pub workers: usize,
}

impl MppExecutor {
    /// An engine with `workers` parallel tasks.
    pub fn new(workers: usize) -> MppExecutor {
        MppExecutor { workers: workers.max(1) }
    }

    /// Execute `plan` with MPP parallelism where fragments allow it.
    pub fn execute(
        &self,
        plan: &LogicalPlan,
        provider: &Arc<dyn TableProvider>,
        ctx: &ExecCtx,
    ) -> Result<Vec<Row>> {
        match plan {
            LogicalPlan::Limit { input, n } => {
                let mut rows = self.execute(input, provider, ctx)?;
                rows.truncate(*n);
                Ok(rows)
            }
            LogicalPlan::Sort { input, keys } => {
                let rows = self.execute(input, provider, ctx)?;
                apply_sort(rows, keys, ctx)
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let rows = self.execute(input, provider, ctx)?;
                apply_project(rows, exprs, ctx)
            }
            LogicalPlan::Filter { input, predicate } => {
                // Try to fuse into a partitioned pipeline first.
                if let Some(result) = self.partitioned(plan, provider, ctx) {
                    return result.map(|batches| batches.into_iter().flatten().collect());
                }
                let rows = self.execute(input, provider, ctx)?;
                apply_filter(rows, predicate, ctx)
            }
            LogicalPlan::Aggregate { input, group_by, aggs, .. } => {
                // Partial aggregation per partition, merged at the
                // coordinator — the classic two-phase MPP aggregate.
                if let Some(batches) = self.partitioned(input, provider, ctx) {
                    let batches = batches?;
                    let partials: Vec<AggTable> = run_parallel(
                        self.workers,
                        batches,
                        |batch| {
                            let mut t = AggTable::new(group_by.clone(), aggs.clone());
                            let c = ExecCtx::unrestricted();
                            t.update_batch(&batch, &c)?;
                            Ok(t)
                        },
                    )?;
                    let mut merged = AggTable::new(group_by.clone(), aggs.clone());
                    for p in partials {
                        merged.merge(p);
                    }
                    return merged.finish();
                }
                let rows = self.execute(input, provider, ctx)?;
                let mut table = AggTable::new(group_by.clone(), aggs.clone());
                table.update_batch(&rows, ctx)?;
                table.finish()
            }
            LogicalPlan::Join { left, right, on, filter } => {
                // Build once (left), probe partition-parallel (right).
                let build = self.execute(left, provider, ctx)?;
                if let Some(batches) = self.partitioned(right, provider, ctx) {
                    let batches = batches?;
                    let build = Arc::new(build);
                    let on = on.clone();
                    let filter = filter.clone();
                    let parts: Vec<Vec<Row>> = run_parallel(
                        self.workers,
                        batches,
                        move |batch| {
                            let c = ExecCtx::unrestricted();
                            apply_join(
                                build.as_ref().clone(),
                                batch,
                                &on,
                                filter.as_ref(),
                                &c,
                            )
                        },
                    )?;
                    return Ok(parts.into_iter().flatten().collect());
                }
                let probe = self.execute(right, provider, ctx)?;
                apply_join(build, probe, on, filter.as_ref(), ctx)
            }
            LogicalPlan::Scan { .. } => {
                if let Some(result) = self.partitioned(plan, provider, ctx) {
                    return result.map(|batches| batches.into_iter().flatten().collect());
                }
                execute_plan(plan, provider.as_ref(), ctx)
            }
        }
    }

    /// Execute a `Filter*/Project*`-over-`Scan` pipeline partition-parallel.
    /// Returns per-partition row batches, or `None` when the subtree has a
    /// different shape.
    fn partitioned(
        &self,
        plan: &LogicalPlan,
        provider: &Arc<dyn TableProvider>,
        _ctx: &ExecCtx,
    ) -> Option<Result<Vec<Vec<Row>>>> {
        let table = pipeline_table(plan)?;
        let nparts = provider.partitions(&table);
        if nparts <= 1 {
            return None;
        }
        let plan = plan.clone();
        let inputs: Vec<usize> = (0..nparts).collect();
        let provider = Arc::clone(provider);
        Some(run_parallel(self.workers, inputs, move |part| {
            let c = ExecCtx::unrestricted();
            execute_pipeline(&plan, provider.as_ref(), &table, part, &c)
        }))
    }
}

/// The single table under a Filter*/Project* pipeline, if that is the shape.
fn pipeline_table(plan: &LogicalPlan) -> Option<String> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some(table.clone()),
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            pipeline_table(input)
        }
        _ => None,
    }
}

/// Run a pipeline on one partition's rows.
fn execute_pipeline(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    table: &str,
    partition: usize,
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    match plan {
        LogicalPlan::Scan { .. } => provider.scan_partition(table, partition),
        LogicalPlan::Filter { input, predicate } => {
            let rows = execute_pipeline(input, provider, table, partition, ctx)?;
            apply_filter(rows, predicate, ctx)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = execute_pipeline(input, provider, table, partition, ctx)?;
            apply_project(rows, exprs, ctx)
        }
        _ => unreachable!("pipeline_table vetted the shape"),
    }
}

/// Fan `inputs` out over at most `workers` threads, preserving order.
fn run_parallel<I, O>(
    workers: usize,
    inputs: Vec<I>,
    f: impl Fn(I) -> Result<O> + Send + Sync,
) -> Result<Vec<O>>
where
    I: Send,
    O: Send,
{
    if inputs.len() <= 1 || workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let n = inputs.len();
    let mut slots: Vec<Option<Result<O>>> = (0..n).map(|_| None).collect();
    let inputs: Vec<Option<I>> = inputs.into_iter().map(Some).collect();
    let inputs = parking_lot::Mutex::new(inputs.into_iter().enumerate().collect::<Vec<_>>());
    let slots_mx = parking_lot::Mutex::new(&mut slots);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let next = inputs.lock().pop();
                let Some((i, input)) = next else { break };
                let out = f(input.expect("taken once"));
                slots_mx.lock()[i] = Some(out);
            });
        }
    });
    slots.into_iter().map(|s| s.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::MemTables;
    use polardbx_common::{Error, Value};
    use polardbx_sql::expr::{AggFunc, BinOp, Expr};
    use polardbx_sql::plan::AggSpec;
    use std::time::{Duration, Instant};

    fn provider(partitions: usize, rows_per_part: i64) -> Arc<dyn TableProvider> {
        let mut p = MemTables::new();
        let parts: Vec<Vec<Row>> = (0..partitions as i64)
            .map(|pt| {
                (0..rows_per_part)
                    .map(|i| {
                        let id = pt * rows_per_part + i;
                        Row::new(vec![Value::Int(id), Value::Int(id % 5), Value::Int(id * 3)])
                    })
                    .collect()
            })
            .collect();
        p.add("t", parts);
        Arc::new(p)
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: vec!["t.id".into(), "t.grp".into(), "t.v".into()],
        }
    }

    #[test]
    fn parallel_scan_collects_all_partitions() {
        let p = provider(4, 100);
        let mpp = MppExecutor::new(4);
        let rows = mpp.execute(&scan(), &p, &ExecCtx::unrestricted()).unwrap();
        assert_eq!(rows.len(), 400);
    }

    #[test]
    fn mpp_aggregate_equals_serial() {
        let p = provider(4, 250);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Expr::binary(BinOp::Ge, Expr::ColumnIdx(0), Expr::int(100)),
            }),
            group_by: vec![Expr::ColumnIdx(1)],
            aggs: vec![
                AggSpec { func: AggFunc::Count, arg: None, distinct: false },
                AggSpec { func: AggFunc::Sum, arg: Some(Expr::ColumnIdx(2)), distinct: false },
                AggSpec { func: AggFunc::Min, arg: Some(Expr::ColumnIdx(0)), distinct: false },
            ],
            names: vec!["grp".into(), "c".into(), "s".into(), "m".into()],
        };
        let ctx = ExecCtx::unrestricted();
        let mpp = MppExecutor::new(4);
        let mut parallel = mpp.execute(&plan, &p, &ctx).unwrap();
        let mut serial = execute_plan(&plan, p.as_ref(), &ctx).unwrap();
        let sort = |rows: &mut Vec<Row>| {
            rows.sort_by(|a, b| a.get(0).unwrap().cmp(b.get(0).unwrap()))
        };
        sort(&mut parallel);
        sort(&mut serial);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn mpp_join_equals_serial() {
        let p = provider(4, 100);
        let mut small = MemTables::new();
        small.add(
            "dim",
            vec![(0..5i64)
                .map(|g| Row::new(vec![Value::Int(g), Value::str(format!("g{g}"))]))
                .collect()],
        );
        // Combined provider.
        struct Both(MemTables, Arc<dyn TableProvider>);
        impl TableProvider for Both {
            fn partitions(&self, t: &str) -> usize {
                if t == "dim" {
                    self.0.partitions(t)
                } else {
                    self.1.partitions(t)
                }
            }
            fn scan_partition(&self, t: &str, p: usize) -> Result<Vec<Row>> {
                if t == "dim" {
                    self.0.scan_partition(t, p)
                } else {
                    self.1.scan_partition(t, p)
                }
            }
        }
        let both: Arc<dyn TableProvider> = Arc::new(Both(small, p));
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Scan {
                table: "dim".into(),
                schema: vec!["dim.g".into(), "dim.name".into()],
            }),
            right: Box::new(scan()),
            on: vec![(0, 1)],
            filter: None,
        };
        let ctx = ExecCtx::unrestricted();
        let mpp = MppExecutor::new(4);
        let parallel = mpp.execute(&plan, &both, &ctx).unwrap();
        let serial = execute_plan(&plan, both.as_ref(), &ctx).unwrap();
        assert_eq!(parallel.len(), serial.len());
        assert_eq!(parallel.len(), 400, "every row matches one dim group");
    }

    #[test]
    fn mpp_speedup_on_cpu_bound_aggregate() {
        // A CPU-heavy aggregate over many partitions should run measurably
        // faster with 4 workers than with 1 (shape check, generous margin).
        let p = provider(8, 30_000);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Expr::binary(
                    BinOp::Ge,
                    Expr::binary(
                        BinOp::Mod,
                        Expr::binary(BinOp::Mul, Expr::ColumnIdx(2), Expr::int(37)),
                        Expr::int(97),
                    ),
                    Expr::int(1),
                ),
            }),
            group_by: vec![Expr::ColumnIdx(1)],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                arg: Some(Expr::binary(BinOp::Mul, Expr::ColumnIdx(2), Expr::ColumnIdx(2))),
                distinct: false,
            }],
            names: vec!["g".into(), "s".into()],
        };
        let ctx = ExecCtx::unrestricted();
        let time = |w: usize| {
            let mpp = MppExecutor::new(w);
            let t0 = Instant::now();
            let out = mpp.execute(&plan, &p, &ctx).unwrap();
            assert_eq!(out.len(), 5);
            t0.elapsed()
        };
        // Warm up, then measure. Absolute speedups are benchmarked in the
        // fig10 harness under controlled conditions; under `cargo test`'s
        // concurrent test threads we only sanity-check that the parallel
        // path is not catastrophically slower.
        let _ = time(1);
        let serial = time(1);
        let parallel = time(4);
        assert!(
            parallel < serial * 2,
            "MPP path pathologically slow: serial={serial:?} parallel={parallel:?}"
        );
    }

    #[test]
    fn single_partition_falls_back_to_serial() {
        let p = provider(1, 50);
        let mpp = MppExecutor::new(4);
        let rows = mpp.execute(&scan(), &p, &ExecCtx::unrestricted()).unwrap();
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn errors_propagate_from_workers() {
        struct Failing;
        impl TableProvider for Failing {
            fn partitions(&self, _t: &str) -> usize {
                4
            }
            fn scan_partition(&self, _t: &str, p: usize) -> Result<Vec<Row>> {
                if p == 2 {
                    Err(Error::execution("partition 2 broke"))
                } else {
                    Ok(vec![])
                }
            }
        }
        let p: Arc<dyn TableProvider> = Arc::new(Failing);
        let mpp = MppExecutor::new(4);
        let err = mpp.execute(&scan(), &p, &ExecCtx::unrestricted()).unwrap_err();
        assert!(matches!(err, Error::Execution { .. }));
    }

    #[test]
    fn limit_and_sort_over_mpp() {
        let p = provider(4, 100);
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(scan()),
                keys: vec![(Expr::ColumnIdx(0), true)],
            }),
            n: 3,
        };
        let mpp = MppExecutor::new(4);
        let rows = mpp.execute(&plan, &p, &ExecCtx::unrestricted()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(0).unwrap(), &Value::Int(399));
    }

    #[test]
    fn run_parallel_preserves_order() {
        let outs =
            run_parallel(4, (0..32).collect::<Vec<i32>>(), |i| {
                std::thread::sleep(Duration::from_micros((32 - i as u64) * 10));
                Ok(i * 2)
            })
            .unwrap();
        assert_eq!(outs, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }
}
