//! MPP execution: fragment the plan, fan out, exchange, merge (§VI-C).
//!
//! "The plan is split into multiple fragments … Task Scheduler encapsulates
//! each fragment as a Task, and then schedules all tasks to appropriate CN
//! nodes for execution. … Each executed task exchanges necessary data with
//! others. When all tasks complete, partial results are sent back to Query
//! Coordinator, who assembles the final result."
//!
//! Parallelism is morsel-driven: partition scans split into fixed-size row
//! chunks drained by a persistent worker pool (the `WorkloadManager` AP
//! pool) with work stealing, so a skewed partition no longer pins a single
//! worker while its siblings sit idle, and concurrent queries share the
//! pool instead of each spawning a fresh `thread::scope`. Pipeline
//! breakers (partial aggregation) keep per-worker state merged once at the
//! barrier; per-chunk operator work runs through the vectorized engine
//! (`crate::vectorized`).

use std::sync::Arc;

use polardbx_common::{Result, Row};
use polardbx_sql::plan::LogicalPlan;

use crate::batch::batches_of;
use crate::morsel::{morsel_execute, run_parallel_pooled, shared_pool, MorselWork};
use crate::operators::{apply_join, apply_sort, ExecCtx, TableProvider};
use crate::scheduler::{JobClass, WorkloadManager};
use crate::vectorized::{self, pipeline_stages, run_stages, JoinBuild, StageOp, VecAggTable};

/// The MPP engine: a degree of parallelism (worker tasks ≈ CN nodes ×
/// cores) on a persistent worker pool.
pub struct MppExecutor {
    /// Maximum concurrent tasks per query.
    pub workers: usize,
    pool: Arc<WorkloadManager>,
}

/// Per-worker state of a morsel fragment: the fragment's partial result
/// plus a forked execution context (same governor/deadline as the query,
/// own row counter).
struct Local<T> {
    out: T,
    ctx: ExecCtx,
}

/// Morsel fragment for a `Filter*/Project*`-over-`Scan` pipeline: each
/// chunk runs the fused stages through the vectorized engine.
struct PipelineWork {
    provider: Arc<dyn TableProvider>,
    table: String,
    stages: Vec<StageOp>,
    ctx: ExecCtx,
}

impl MorselWork<Local<Vec<Row>>> for PipelineWork {
    fn new_local(&self) -> Local<Vec<Row>> {
        Local { out: Vec::new(), ctx: self.ctx.fork() }
    }
    fn scan(&self, partition: usize) -> Result<Vec<Row>> {
        let t0 = polardbx_common::time::Timer::start();
        let rows = self.provider.scan_partition(&self.table, partition)?;
        crate::exec_metrics::exec_metrics().scan.record(rows.len() as u64, 0, t0);
        Ok(rows)
    }
    fn process(&self, rows: Vec<Row>, local: &mut Local<Vec<Row>>) -> Result<()> {
        for batch in batches_of(rows) {
            let batch = run_stages(batch, &self.stages, &local.ctx)?;
            local.out.extend(batch.to_rows());
        }
        Ok(())
    }
}

/// Morsel fragment for two-phase aggregation: per-worker partial
/// [`VecAggTable`]s folded chunk by chunk, merged at the coordinator.
struct PartialAggWork {
    pipeline: PipelineWork,
    group_by: Vec<polardbx_sql::expr::Expr>,
    aggs: Vec<polardbx_sql::plan::AggSpec>,
}

impl MorselWork<Local<VecAggTable>> for PartialAggWork {
    fn new_local(&self) -> Local<VecAggTable> {
        Local {
            out: VecAggTable::new(self.group_by.clone(), self.aggs.clone()),
            ctx: self.pipeline.ctx.fork(),
        }
    }
    fn scan(&self, partition: usize) -> Result<Vec<Row>> {
        self.pipeline.scan(partition)
    }
    fn process(&self, rows: Vec<Row>, local: &mut Local<VecAggTable>) -> Result<()> {
        for batch in batches_of(rows) {
            let batch = run_stages(batch, &self.pipeline.stages, &local.ctx)?;
            let t0 = polardbx_common::time::Timer::start();
            let n = batch.num_rows() as u64;
            local.out.update_batch(&batch, &local.ctx)?;
            crate::exec_metrics::exec_metrics().aggregate.record(n, 0, t0);
        }
        Ok(())
    }
}

impl MppExecutor {
    /// An engine with `workers` parallel tasks on the process-wide shared
    /// pool.
    pub fn new(workers: usize) -> MppExecutor {
        MppExecutor::with_pool(workers, shared_pool())
    }

    /// An engine borrowing workers from a specific `WorkloadManager` (the
    /// cluster CN's pool), so queries compete under its governors instead
    /// of oversubscribing the host.
    pub fn with_pool(workers: usize, pool: Arc<WorkloadManager>) -> MppExecutor {
        MppExecutor { workers: workers.max(1), pool }
    }

    /// Execute `plan` with MPP parallelism where fragments allow it.
    pub fn execute(
        &self,
        plan: &LogicalPlan,
        provider: &Arc<dyn TableProvider>,
        ctx: &ExecCtx,
    ) -> Result<Vec<Row>> {
        match plan {
            LogicalPlan::Limit { input, n } => {
                let mut rows = self.execute(input, provider, ctx)?;
                rows.truncate(*n);
                Ok(rows)
            }
            LogicalPlan::Sort { input, keys } => {
                let rows = self.execute(input, provider, ctx)?;
                let t0 = polardbx_common::time::Timer::start();
                let rows = apply_sort(rows, keys, ctx)?;
                crate::exec_metrics::exec_metrics().sort.record(rows.len() as u64, 0, t0);
                Ok(rows)
            }
            LogicalPlan::Project { .. } | LogicalPlan::Filter { .. } | LogicalPlan::Scan { .. } => {
                if let Some(work) = self.pipeline_work(plan, provider, ctx) {
                    let locals = morsel_execute(
                        &self.pool,
                        JobClass::Ap,
                        self.workers,
                        provider.partitions(&work.table),
                        Arc::new(work),
                    )?;
                    return Ok(locals.into_iter().flat_map(|l| l.out).collect());
                }
                // Not a partitioned pipeline (or a single partition):
                // serial vectorized execution, which also covers pipelines
                // over non-Scan inputs via recursion-free streaming.
                match plan {
                    LogicalPlan::Project { input, .. } | LogicalPlan::Filter { input, .. }
                        if !matches!(
                            input.as_ref(),
                            LogicalPlan::Scan { .. }
                                | LogicalPlan::Filter { .. }
                                | LogicalPlan::Project { .. }
                        ) =>
                    {
                        // The input needs MPP treatment (aggregate/join
                        // below); execute it, then stream the last stage.
                        let rows = self.execute(input, provider, ctx)?;
                        let stages = last_stage(plan);
                        let mut out = Vec::new();
                        for batch in batches_of(rows) {
                            out.extend(run_stages(batch, &stages, ctx)?.to_rows());
                        }
                        Ok(out)
                    }
                    _ => vectorized::execute(plan, provider.as_ref(), ctx),
                }
            }
            LogicalPlan::Aggregate { input, group_by, aggs, .. } => {
                // Partial aggregation per morsel, merged at the coordinator
                // — the classic two-phase MPP aggregate.
                if let Some(pipeline) = self.pipeline_work(input, provider, ctx) {
                    let nparts = provider.partitions(&pipeline.table);
                    let work = PartialAggWork {
                        pipeline,
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    };
                    let locals = morsel_execute(
                        &self.pool,
                        JobClass::Ap,
                        self.workers,
                        nparts,
                        Arc::new(work),
                    )?;
                    let mut locals = locals.into_iter();
                    let mut merged =
                        locals.next().map(|l| l.out).unwrap_or_else(|| {
                            VecAggTable::new(group_by.clone(), aggs.clone())
                        });
                    for l in locals {
                        merged.merge(l.out);
                    }
                    return merged.finish();
                }
                let rows = self.execute(input, provider, ctx)?;
                let mut table = VecAggTable::new(group_by.clone(), aggs.clone());
                for batch in batches_of(rows) {
                    table.update_batch(&batch, ctx)?;
                }
                table.finish()
            }
            LogicalPlan::Join { left, right, on, filter } => {
                // Build once (left), probe partition-parallel (right).
                let build_rows = self.execute(left, provider, ctx)?;
                if on.is_empty() {
                    // Cross join: row-engine nested loop.
                    let probe = self.execute(right, provider, ctx)?;
                    return apply_join(build_rows, probe, on, filter.as_ref(), ctx);
                }
                let key_cols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
                let probe_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
                ctx.tick(build_rows.len() as u64)?;
                let build = Arc::new(JoinBuild::build(build_rows, key_cols)?);
                if let Some(work) = self.pipeline_work(right, provider, ctx) {
                    let nparts = provider.partitions(&work.table);
                    let work = Arc::new(work);
                    let filter = filter.clone();
                    let parts: Vec<Vec<Row>> = run_parallel_pooled(
                        &self.pool,
                        JobClass::Ap,
                        self.workers,
                        (0..nparts).collect(),
                        move |part| {
                            let c = work.ctx.fork();
                            let rows = work.scan(part)?;
                            let mut out = Vec::new();
                            for batch in batches_of(rows) {
                                let batch = run_stages(batch, &work.stages, &c)?;
                                out.extend(build.probe_batch(
                                    &batch,
                                    &probe_cols,
                                    filter.as_ref(),
                                    &c,
                                )?);
                            }
                            Ok(out)
                        },
                    )?;
                    return Ok(parts.into_iter().flatten().collect());
                }
                let probe = self.execute(right, provider, ctx)?;
                let mut out = Vec::new();
                for batch in batches_of(probe) {
                    out.extend(build.probe_batch(&batch, &probe_cols, filter.as_ref(), ctx)?);
                }
                Ok(out)
            }
        }
    }

    /// Fuse a `Filter*/Project*`-over-`Scan` subtree into a morsel
    /// fragment, when the shape matches and the table has enough
    /// partitions to be worth fanning out.
    fn pipeline_work(
        &self,
        plan: &LogicalPlan,
        provider: &Arc<dyn TableProvider>,
        ctx: &ExecCtx,
    ) -> Option<PipelineWork> {
        let (table, stages) = pipeline_stages(plan)?;
        if provider.partitions(&table) <= 1 || self.workers <= 1 {
            return None;
        }
        Some(PipelineWork {
            provider: Arc::clone(provider),
            table,
            stages,
            ctx: ctx.fork(),
        })
    }
}

/// The outermost Filter/Project of `plan` as a single vectorized stage.
fn last_stage(plan: &LogicalPlan) -> Vec<StageOp> {
    match plan {
        LogicalPlan::Filter { predicate, .. } => {
            let mut conjuncts = Vec::new();
            polardbx_sql::plan::split_conjuncts(predicate, &mut conjuncts);
            vec![StageOp::Filter(conjuncts)]
        }
        LogicalPlan::Project { exprs, .. } => vec![StageOp::Project(exprs.clone())],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{execute_plan, MemTables};
    use polardbx_common::{Error, Value};
    use polardbx_sql::expr::{AggFunc, BinOp, Expr};
    use polardbx_sql::plan::AggSpec;
    use std::time::Instant;

    fn provider(partitions: usize, rows_per_part: i64) -> Arc<dyn TableProvider> {
        let mut p = MemTables::new();
        let parts: Vec<Vec<Row>> = (0..partitions as i64)
            .map(|pt| {
                (0..rows_per_part)
                    .map(|i| {
                        let id = pt * rows_per_part + i;
                        Row::new(vec![Value::Int(id), Value::Int(id % 5), Value::Int(id * 3)])
                    })
                    .collect()
            })
            .collect();
        p.add("t", parts);
        Arc::new(p)
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: vec!["t.id".into(), "t.grp".into(), "t.v".into()],
        }
    }

    #[test]
    fn parallel_scan_collects_all_partitions() {
        let p = provider(4, 100);
        let mpp = MppExecutor::new(4);
        let rows = mpp.execute(&scan(), &p, &ExecCtx::unrestricted()).unwrap();
        assert_eq!(rows.len(), 400);
    }

    #[test]
    fn mpp_aggregate_equals_serial() {
        let p = provider(4, 250);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Expr::binary(BinOp::Ge, Expr::ColumnIdx(0), Expr::int(100)),
            }),
            group_by: vec![Expr::ColumnIdx(1)],
            aggs: vec![
                AggSpec { func: AggFunc::Count, arg: None, distinct: false },
                AggSpec { func: AggFunc::Sum, arg: Some(Expr::ColumnIdx(2)), distinct: false },
                AggSpec { func: AggFunc::Min, arg: Some(Expr::ColumnIdx(0)), distinct: false },
            ],
            names: vec!["grp".into(), "c".into(), "s".into(), "m".into()],
        };
        let ctx = ExecCtx::unrestricted();
        let mpp = MppExecutor::new(4);
        let mut parallel = mpp.execute(&plan, &p, &ctx).unwrap();
        let mut serial = execute_plan(&plan, p.as_ref(), &ctx).unwrap();
        let sort = |rows: &mut Vec<Row>| {
            rows.sort_by(|a, b| a.get(0).unwrap().cmp(b.get(0).unwrap()))
        };
        sort(&mut parallel);
        sort(&mut serial);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn mpp_join_equals_serial() {
        let p = provider(4, 100);
        let mut small = MemTables::new();
        small.add(
            "dim",
            vec![(0..5i64)
                .map(|g| Row::new(vec![Value::Int(g), Value::str(format!("g{g}"))]))
                .collect()],
        );
        // Combined provider.
        struct Both(MemTables, Arc<dyn TableProvider>);
        impl TableProvider for Both {
            fn partitions(&self, t: &str) -> usize {
                if t == "dim" {
                    self.0.partitions(t)
                } else {
                    self.1.partitions(t)
                }
            }
            fn scan_partition(&self, t: &str, p: usize) -> Result<Vec<Row>> {
                if t == "dim" {
                    self.0.scan_partition(t, p)
                } else {
                    self.1.scan_partition(t, p)
                }
            }
        }
        let both: Arc<dyn TableProvider> = Arc::new(Both(small, p));
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Scan {
                table: "dim".into(),
                schema: vec!["dim.g".into(), "dim.name".into()],
            }),
            right: Box::new(scan()),
            on: vec![(0, 1)],
            filter: None,
        };
        let ctx = ExecCtx::unrestricted();
        let mpp = MppExecutor::new(4);
        let mut parallel = mpp.execute(&plan, &both, &ctx).unwrap();
        let mut serial = execute_plan(&plan, both.as_ref(), &ctx).unwrap();
        assert_eq!(parallel.len(), 400, "every row matches one dim group");
        let key = |r: &Row| format!("{r:?}");
        parallel.sort_by_key(key);
        serial.sort_by_key(key);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn mpp_speedup_on_cpu_bound_aggregate() {
        // A CPU-heavy aggregate over many partitions should run measurably
        // faster with 4 workers than with 1 (shape check, generous margin).
        let p = provider(8, 30_000);
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Expr::binary(
                    BinOp::Ge,
                    Expr::binary(
                        BinOp::Mod,
                        Expr::binary(BinOp::Mul, Expr::ColumnIdx(2), Expr::int(37)),
                        Expr::int(97),
                    ),
                    Expr::int(1),
                ),
            }),
            group_by: vec![Expr::ColumnIdx(1)],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                arg: Some(Expr::binary(BinOp::Mul, Expr::ColumnIdx(2), Expr::ColumnIdx(2))),
                distinct: false,
            }],
            names: vec!["g".into(), "s".into()],
        };
        let ctx = ExecCtx::unrestricted();
        let time = |w: usize| {
            let mpp = MppExecutor::new(w);
            let t0 = Instant::now();
            let out = mpp.execute(&plan, &p, &ctx).unwrap();
            assert_eq!(out.len(), 5);
            t0.elapsed()
        };
        // Warm up, then measure. Absolute speedups are benchmarked in the
        // exec_bench/fig10 harnesses under controlled conditions; under
        // `cargo test`'s concurrent test threads we only sanity-check that
        // the parallel path is not catastrophically slower.
        let _ = time(1);
        let serial = time(1);
        let parallel = time(4);
        assert!(
            parallel < serial * 2,
            "MPP path pathologically slow: serial={serial:?} parallel={parallel:?}"
        );
    }

    #[test]
    fn single_partition_falls_back_to_serial() {
        let p = provider(1, 50);
        let mpp = MppExecutor::new(4);
        let rows = mpp.execute(&scan(), &p, &ExecCtx::unrestricted()).unwrap();
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn errors_propagate_from_workers() {
        struct Failing;
        impl TableProvider for Failing {
            fn partitions(&self, _t: &str) -> usize {
                4
            }
            fn scan_partition(&self, _t: &str, p: usize) -> Result<Vec<Row>> {
                if p == 2 {
                    Err(Error::execution("partition 2 broke"))
                } else {
                    Ok(vec![])
                }
            }
        }
        let p: Arc<dyn TableProvider> = Arc::new(Failing);
        let mpp = MppExecutor::new(4);
        let err = mpp.execute(&scan(), &p, &ExecCtx::unrestricted()).unwrap_err();
        assert!(matches!(err, Error::Execution { .. }));
    }

    #[test]
    fn limit_and_sort_over_mpp() {
        let p = provider(4, 100);
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(scan()),
                keys: vec![(Expr::ColumnIdx(0), true)],
            }),
            n: 3,
        };
        let mpp = MppExecutor::new(4);
        let rows = mpp.execute(&plan, &p, &ExecCtx::unrestricted()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(0).unwrap(), &Value::Int(399));
    }

    #[test]
    fn project_over_aggregate_over_partitions() {
        // Exercises the "last stage over an MPP subtree" path.
        let p = provider(4, 100);
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Aggregate {
                input: Box::new(scan()),
                group_by: vec![Expr::ColumnIdx(1)],
                aggs: vec![AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(Expr::ColumnIdx(2)),
                    distinct: false,
                }],
                names: vec!["g".into(), "s".into()],
            }),
            exprs: vec![Expr::binary(BinOp::Add, Expr::ColumnIdx(1), Expr::int(1))],
            names: vec!["s1".into()],
        };
        let ctx = ExecCtx::unrestricted();
        let mpp = MppExecutor::new(4);
        let mut parallel = mpp.execute(&plan, &p, &ctx).unwrap();
        let mut serial = execute_plan(&plan, p.as_ref(), &ctx).unwrap();
        let key = |r: &Row| format!("{r:?}");
        parallel.sort_by_key(key);
        serial.sort_by_key(key);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn concurrent_queries_share_the_pool() {
        // Many queries in flight at once must all complete correctly while
        // drawing from the same persistent pool (no per-query spawns).
        let p = provider(4, 500);
        let mpp = Arc::new(MppExecutor::new(4));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mpp = Arc::clone(&mpp);
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let rows =
                        mpp.execute(&scan(), &p, &ExecCtx::unrestricted()).unwrap();
                    assert_eq!(rows.len(), 2000);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
