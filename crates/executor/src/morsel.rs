//! Morsel-driven scheduling on the persistent `WorkloadManager` pools.
//!
//! The seed MPP path spawned a fresh `thread::scope` per query, so
//! concurrent AP queries oversubscribed the host and a skewed partition
//! left its siblings idle. Here every query borrows workers from the
//! shared, persistent AP pool instead, and scans are split into fixed-size
//! *morsels* (row chunks) that idle workers steal from a shared queue, so
//! a skewed partition is drained by everyone rather than blocking one
//! thread.
//!
//! The scheduling is **caller-helping**: the thread that owns the query
//! participates in draining the queue. That keeps the design deadlock-free
//! even when the query itself is already running *on* the pool it borrows
//! helpers from (a 1-thread AP pool executing a query that fans out to the
//! same pool would otherwise wait forever). A helper-start handshake on a
//! single atomic — helpers `fetch_add` to announce themselves, the caller
//! `fetch_or`s a CLOSED bit when the work is done — tells the caller
//! exactly how many helper partials to collect.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};
use polardbx_common::{Result, Row};

use crate::exec_metrics::exec_metrics;
use crate::scheduler::{JobClass, WorkloadManager};

/// Rows per morsel: large enough to amortize dispatch, small enough that a
/// skewed partition splits into many stealable units.
pub const MORSEL_ROWS: usize = 8192;

/// High bit of the helper handshake word: set by the caller when the work
/// is complete; helpers that announce themselves after this was set exit
/// without sending a partial.
const CLOSED: usize = 1 << (usize::BITS - 1);

/// The process-wide execution pool shared by every `MppExecutor` that is
/// not explicitly wired to a cluster's `WorkloadManager`: all cores, full
/// quota, so standalone/bench usage behaves like the seed's per-query
/// threads minus the per-query spawn cost.
pub fn shared_pool() -> Arc<WorkloadManager> {
    static POOL: OnceLock<Arc<WorkloadManager>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
        WorkloadManager::new(cores, cores, 1.0, 0.1)
    }))
}

/// Run `f` over `inputs` on the pool, preserving input order in the output.
/// The caller helps drain the queue, so this never deadlocks even when it
/// is itself running on the target pool. Replaces the seed `run_parallel`
/// (fresh `thread::scope` per query) for fan-out that is per-*partition*
/// rather than per-morsel (e.g. parallel join probes).
pub fn run_parallel_pooled<I, O, F>(
    mgr: &Arc<WorkloadManager>,
    class: JobClass,
    workers: usize,
    inputs: Vec<I>,
    f: F,
) -> Result<Vec<O>>
where
    I: Send + 'static,
    O: Send + 'static,
    F: Fn(I) -> Result<O> + Send + Sync + 'static,
{
    let n = inputs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if workers <= 1 || n == 1 {
        return inputs.into_iter().map(f).collect();
    }
    let queue: Arc<Mutex<VecDeque<(usize, I)>>> =
        Arc::new(Mutex::new(inputs.into_iter().enumerate().collect()));
    let f = Arc::new(f);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Result<O>)>();
    for _ in 0..workers.saturating_sub(1).min(n - 1) {
        let queue = Arc::clone(&queue);
        let f = Arc::clone(&f);
        let tx = tx.clone();
        mgr.submit(class, move || {
            loop {
                let Some((idx, item)) = queue.lock().pop_front() else { break };
                let _ = tx.send((idx, f(item)));
            }
        });
    }
    drop(tx);
    let mut slots: Vec<Option<Result<O>>> = (0..n).map(|_| None).collect();
    let mut self_done = 0usize;
    loop {
        // Take from the front so the caller and helpers interleave; any
        // item the caller does NOT see here was popped by a helper that is
        // already running and will send its result.
        let Some((idx, item)) = queue.lock().pop_front() else { break };
        slots[idx] = Some(f(item));
        self_done += 1;
    }
    for _ in 0..n - self_done {
        let (idx, r) = rx.recv().expect("pool worker died");
        slots[idx] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("all slots filled")).collect()
}

/// One unit of morsel work: a whole partition still to be scanned, or a
/// chunk of already-scanned rows stolen from whoever scanned them.
enum Task {
    Partition(usize),
    Rows(Vec<Row>),
}

/// A query fragment that morsel workers execute: scan partitions, fold row
/// chunks into per-worker state `W` (which embeds any forked `ExecCtx` the
/// impl needs), merged by the caller at the barrier.
pub(crate) trait MorselWork<W>: Send + Sync {
    /// Fresh thread-local state for one worker.
    fn new_local(&self) -> W;
    /// Produce the rows of one partition.
    fn scan(&self, partition: usize) -> Result<Vec<Row>>;
    /// Fold one morsel of rows into the worker's local state.
    fn process(&self, rows: Vec<Row>, local: &mut W) -> Result<()>;
}

struct MorselState {
    queue: Mutex<VecDeque<Task>>,
    /// Tasks not yet fully processed. A partition counts as one until its
    /// scan splits it into chunks (then each extra chunk adds one).
    pending: Mutex<usize>,
    cv: Condvar,
    abort: AtomicBool,
    error: Mutex<Option<polardbx_common::Error>>,
    /// Helper handshake word (count | CLOSED bit).
    helpers: AtomicUsize,
}

impl MorselState {
    fn fail(&self, e: polardbx_common::Error) {
        self.abort.store(true, Ordering::Release);
        let mut err = self.error.lock();
        if err.is_none() {
            *err = Some(e);
        }
        drop(err);
        self.queue.lock().clear();
        self.cv.notify_all();
    }
}

fn morsel_worker<W, T: MorselWork<W> + ?Sized>(work: &T, state: &MorselState) -> W {
    let mut local = work.new_local();
    loop {
        let task = {
            let mut q = state.queue.lock();
            loop {
                if state.abort.load(Ordering::Acquire) {
                    return local;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                if *state.pending.lock() == 0 {
                    return local;
                }
                // Queue empty but a scan elsewhere may still push chunks.
                state.cv.wait(&mut q);
            }
        };
        let rows = match task {
            Task::Partition(p) => match work.scan(p) {
                Ok(rows) => rows,
                Err(e) => {
                    state.fail(e);
                    return local;
                }
            },
            Task::Rows(rows) => {
                exec_metrics().steals.inc();
                rows
            }
        };
        // Split a large scan into stealable chunks; keep the first, share
        // the rest.
        let mut rows = rows;
        if rows.len() > MORSEL_ROWS {
            let mut extra = Vec::new();
            while rows.len() > MORSEL_ROWS {
                extra.push(rows.split_off(rows.len() - MORSEL_ROWS));
            }
            // Account the chunks *before* exposing them, so `pending`
            // can't transiently hit zero while work still exists.
            *state.pending.lock() += extra.len();
            state.queue.lock().extend(extra.into_iter().map(Task::Rows));
            state.cv.notify_all();
        }
        exec_metrics().morsels.inc();
        if let Err(e) = work.process(rows, &mut local) {
            state.fail(e);
            return local;
        }
        let mut pending = state.pending.lock();
        *pending -= 1;
        if *pending == 0 {
            drop(pending);
            state.cv.notify_all();
        }
    }
}

/// Execute `work` over `partitions` with up to `workers` threads (the
/// caller plus pool helpers), returning every worker's local state for the
/// caller to merge at the barrier.
pub(crate) fn morsel_execute<W, T>(
    mgr: &Arc<WorkloadManager>,
    class: JobClass,
    workers: usize,
    partitions: usize,
    work: Arc<T>,
) -> Result<Vec<W>>
where
    W: Send + 'static,
    T: MorselWork<W> + 'static,
{
    let state = Arc::new(MorselState {
        queue: Mutex::new((0..partitions).map(Task::Partition).collect()),
        pending: Mutex::new(partitions),
        cv: Condvar::new(),
        abort: AtomicBool::new(false),
        error: Mutex::new(None),
        helpers: AtomicUsize::new(0),
    });
    let (tx, rx) = crossbeam::channel::unbounded::<W>();
    for _ in 0..workers.saturating_sub(1).min(partitions.saturating_sub(1)) {
        let state = Arc::clone(&state);
        let work = Arc::clone(&work);
        let tx = tx.clone();
        mgr.submit(class, move || {
            // Announce; if the caller already closed the work, stay out.
            if state.helpers.fetch_add(1, Ordering::AcqRel) & CLOSED != 0 {
                return;
            }
            let local = morsel_worker(work.as_ref(), &state);
            let _ = tx.send(local);
        });
    }
    drop(tx);
    let mut locals = vec![morsel_worker(work.as_ref(), &state)];
    // Close the handshake: the returned count is exactly how many helpers
    // announced before the bit was set — each will send one partial.
    let started = state.helpers.fetch_or(CLOSED, Ordering::AcqRel) & !CLOSED;
    state.cv.notify_all();
    for _ in 0..started {
        locals.push(rx.recv().expect("morsel helper died"));
    }
    if let Some(e) = state.error.lock().take() {
        return Err(e);
    }
    Ok(locals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::{Error, Value};

    fn pool() -> Arc<WorkloadManager> {
        WorkloadManager::new(2, 2, 1.0, 1.0)
    }

    #[test]
    fn run_parallel_pooled_preserves_order() {
        let mgr = pool();
        let out = run_parallel_pooled(&mgr, JobClass::Ap, 4, (0..32).collect(), |i: i32| {
            Ok(i * 10)
        })
        .unwrap();
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_pooled_propagates_errors() {
        let mgr = pool();
        let out = run_parallel_pooled(&mgr, JobClass::Ap, 4, (0..8).collect(), |i: i32| {
            if i == 5 {
                Err(Error::execution("boom"))
            } else {
                Ok(i)
            }
        });
        assert!(out.is_err());
    }

    #[test]
    fn run_parallel_pooled_from_inside_the_pool_does_not_deadlock() {
        // A 1-thread AP pool running a job that fans out to itself: the
        // caller-helping loop must drain the queue alone.
        let mgr = pool();
        let mgr2 = Arc::clone(&mgr);
        let out = mgr.run(JobClass::SlowAp, move || {
            run_parallel_pooled(&mgr2, JobClass::SlowAp, 4, (0..16).collect(), |i: i32| Ok(i))
        })
        .unwrap();
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    struct SumWork {
        partitions: Vec<Vec<Row>>,
    }

    impl MorselWork<i64> for SumWork {
        fn new_local(&self) -> i64 {
            0
        }
        fn scan(&self, p: usize) -> Result<Vec<Row>> {
            Ok(self.partitions[p].clone())
        }
        fn process(&self, rows: Vec<Row>, local: &mut i64) -> Result<()> {
            for r in rows {
                if let Value::Int(v) = r.get(0)? {
                    *local += v;
                }
            }
            Ok(())
        }
    }

    fn int_rows(range: std::ops::Range<i64>) -> Vec<Row> {
        range.map(|i| Row::new(vec![Value::Int(i)])).collect()
    }

    #[test]
    fn morsel_execute_covers_skewed_partitions() {
        let mgr = pool();
        // One huge partition and two tiny ones: the big one must split
        // into stealable chunks.
        let total: i64 = (0..100_000).sum::<i64>() + 7 + 9;
        let work = Arc::new(SumWork {
            partitions: vec![
                int_rows(0..100_000),
                vec![Row::new(vec![Value::Int(7)])],
                vec![Row::new(vec![Value::Int(9)])],
            ],
        });
        let locals = morsel_execute(&mgr, JobClass::Ap, 4, 3, work).unwrap();
        assert_eq!(locals.iter().sum::<i64>(), total);
    }

    #[test]
    fn morsel_execute_propagates_scan_errors() {
        struct Failing;
        impl MorselWork<()> for Failing {
            fn new_local(&self) {}
            fn scan(&self, _p: usize) -> Result<Vec<Row>> {
                Err(Error::execution("scan failed"))
            }
            fn process(&self, _rows: Vec<Row>, _local: &mut ()) -> Result<()> {
                Ok(())
            }
        }
        let mgr = pool();
        assert!(morsel_execute(&mgr, JobClass::Ap, 4, 2, Arc::new(Failing)).is_err());
    }

    #[test]
    fn morsel_execute_on_its_own_pool_does_not_deadlock() {
        let mgr = pool();
        let mgr2 = Arc::clone(&mgr);
        let work = Arc::new(SumWork { partitions: vec![int_rows(0..50_000), int_rows(0..10)] });
        let locals = mgr
            .run(JobClass::SlowAp, move || {
                morsel_execute(&mgr2, JobClass::SlowAp, 4, 2, work)
            })
            .unwrap();
        let total: i64 = (0..50_000).sum::<i64>() + (0..10).sum::<i64>();
        assert_eq!(locals.iter().sum::<i64>(), total);
    }
}
