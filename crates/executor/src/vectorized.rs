//! Streaming, vectorized execution engine.
//!
//! Operators pull [`RowBatch`]es through a pull-based pipeline instead of
//! materializing whole `Vec<Row>`s between operators. Hot inner loops run
//! as typed lane loops (comparisons, numeric arithmetic, hashed group/join
//! keys with collision verification); anything a typed loop can't express
//! falls back to scalar `Expr::eval` on a materialized row, so results are
//! byte-identical to the row engine (`operators::execute_plan`) — the
//! differential property test in `tests/properties.rs` holds the engines to
//! exactly that.
//!
//! Key identity follows `Key::encode` (variant-tagged), not SQL `=`: the
//! hashed key slots replace the row engine's per-row `Vec<u8>` key
//! allocation and per-value clones without changing which rows group or
//! join together (NULL keys match, `Int(5)` and `Double(5.0)` stay
//! distinct).

use std::collections::{HashMap, VecDeque};
use polardbx_common::time::Timer;

use polardbx_common::{Error, Result, Row, Value};
use polardbx_columnar::ColumnData;
use polardbx_sql::expr::{like_match, AggFunc, BinOp, Expr};
use polardbx_sql::plan::{split_conjuncts, AggSpec, LogicalPlan};

use crate::batch::{
    batches_of, ident_eq, ident_hash_lanes, ident_hash_one, ident_hash_value,
    ident_hash_values, Lane, RowBatch,
};
use crate::exec_metrics::exec_metrics;
use crate::operators::{apply_join, apply_sort, AggState, ExecCtx, TableProvider};

/// A pull-based batch stream: `None` = exhausted.
pub type BatchStream<'a> = Box<dyn FnMut() -> Result<Option<RowBatch>> + 'a>;

/// Execute a plan through the vectorized engine and materialize the result.
pub fn execute(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    ctx: &ExecCtx,
) -> Result<Vec<Row>> {
    let mut s = stream(plan, provider, ctx)?;
    let mut out = Vec::new();
    while let Some(b) = s()? {
        out.extend(b.to_rows());
    }
    Ok(out)
}

/// Build the pull pipeline for `plan`.
pub fn stream<'a>(
    plan: &'a LogicalPlan,
    provider: &'a dyn TableProvider,
    ctx: &'a ExecCtx,
) -> Result<BatchStream<'a>> {
    match plan {
        LogicalPlan::Scan { table, .. } => Ok(scan_stream(table, provider, ctx)),
        LogicalPlan::Filter { input, predicate } => {
            let mut inner = stream(input, provider, ctx)?;
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);
            Ok(Box::new(move || loop {
                let Some(batch) = inner()? else { return Ok(None) };
                let t0 = Timer::start();
                ctx.tick(batch.num_rows() as u64)?;
                let mut live = batch.live_rows();
                for c in &conjuncts {
                    if live.is_empty() {
                        break;
                    }
                    live = apply_conjunct(&batch, c, live)?;
                }
                let out = batch.with_sel(live);
                exec_metrics().filter.record(out.num_rows() as u64, out.bytes() as u64, t0);
                if out.num_rows() == 0 {
                    continue;
                }
                return Ok(Some(out));
            }))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let mut inner = stream(input, provider, ctx)?;
            Ok(Box::new(move || {
                let Some(batch) = inner()? else { return Ok(None) };
                let t0 = Timer::start();
                ctx.tick(batch.num_rows() as u64)?;
                let out = apply_project_batch(&batch, exprs)?;
                exec_metrics().project.record(out.num_rows() as u64, out.bytes() as u64, t0);
                Ok(Some(out))
            }))
        }
        LogicalPlan::Join { left, right, on, filter } => {
            join_stream(left, right, on, filter.as_ref(), provider, ctx)
        }
        LogicalPlan::Aggregate { input, group_by, aggs, .. } => {
            let mut inner = stream(input, provider, ctx)?;
            let mut table = Some(VecAggTable::new(group_by.clone(), aggs.clone()));
            let mut outq: Option<VecDeque<RowBatch>> = None;
            Ok(Box::new(move || {
                if outq.is_none() {
                    let tbl = table.as_mut().expect("aggregate pulled after finish");
                    while let Some(b) = inner()? {
                        let t0 = Timer::start();
                        tbl.update_batch(&b, ctx)?;
                        exec_metrics().aggregate.record(b.num_rows() as u64, 0, t0);
                    }
                    let rows = table.take().expect("state present").finish()?;
                    outq = Some(batches_of(rows).into());
                }
                Ok(outq.as_mut().expect("filled above").pop_front())
            }))
        }
        LogicalPlan::Sort { input, keys } => {
            let mut inner = stream(input, provider, ctx)?;
            let mut outq: Option<VecDeque<RowBatch>> = None;
            Ok(Box::new(move || {
                if outq.is_none() {
                    let mut rows = Vec::new();
                    while let Some(b) = inner()? {
                        rows.extend(b.to_rows());
                    }
                    let t0 = Timer::start();
                    let n = rows.len() as u64;
                    let rows = apply_sort(rows, keys, ctx)?;
                    exec_metrics().sort.record(n, 0, t0);
                    outq = Some(batches_of(rows).into());
                }
                Ok(outq.as_mut().expect("filled above").pop_front())
            }))
        }
        LogicalPlan::Limit { input, n } => {
            let mut inner = stream(input, provider, ctx)?;
            let mut remaining = *n;
            let mut drained = false;
            Ok(Box::new(move || {
                if remaining == 0 {
                    // The row engine materializes its input before
                    // truncating, so evaluation errors past the limit still
                    // surface. Drain (and discard) the rest to match.
                    if !drained {
                        drained = true;
                        while inner()?.is_some() {}
                    }
                    return Ok(None);
                }
                let Some(batch) = inner()? else { return Ok(None) };
                let rows = batch.num_rows();
                if rows <= remaining {
                    remaining -= rows;
                    return Ok(Some(batch));
                }
                let mut live = batch.live_rows();
                live.truncate(remaining);
                remaining = 0;
                Ok(Some(batch.with_sel(live)))
            }))
        }
    }
}

fn scan_stream<'a>(
    table: &'a str,
    provider: &'a dyn TableProvider,
    ctx: &'a ExecCtx,
) -> BatchStream<'a> {
    let mut snapshot_done = false;
    let mut part = 0usize;
    let mut queue: VecDeque<RowBatch> = VecDeque::new();
    Box::new(move || loop {
        if let Some(b) = queue.pop_front() {
            ctx.tick(b.num_rows() as u64)?;
            return Ok(Some(b));
        }
        if !snapshot_done {
            snapshot_done = true;
            // Column-index fast source (§VI-E): the snapshot's typed
            // vectors become the batch lanes directly — no row
            // materialization at all.
            if let Some(snap) = provider.columnar(table) {
                let t0 = Timer::start();
                let b = RowBatch::from_snapshot(snap);
                exec_metrics().scan.record(b.num_rows() as u64, b.bytes() as u64, t0);
                part = usize::MAX; // row partitions are not scanned
                queue.push_back(b);
                continue;
            }
        }
        if part == usize::MAX || part >= provider.partitions(table).max(1) {
            return Ok(None);
        }
        let t0 = Timer::start();
        let rows = provider.scan_partition(table, part)?;
        part += 1;
        let n = rows.len();
        let batches = batches_of(rows);
        let bytes: usize = batches.iter().map(|b| b.bytes()).sum();
        exec_metrics().scan.record(n as u64, bytes as u64, t0);
        queue.extend(batches);
    })
}

// ------------------------------------------------------------------ filters

/// Map a comparison operator over an ordering, exactly as the row engine's
/// `eval_binary` does.
fn cmp_keep(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Neq => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("not a comparison"),
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(op, BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Narrow `live` by one conjunct. Typed lane loops for the shapes they can
/// express with row-engine-identical semantics; scalar row evaluation
/// otherwise.
fn apply_conjunct(batch: &RowBatch, pred: &Expr, live: Vec<u32>) -> Result<Vec<u32>> {
    match pred {
        Expr::Binary { op, left, right } if is_cmp(*op) => {
            match (left.as_ref(), right.as_ref()) {
                (Expr::ColumnIdx(c), Expr::Literal(v)) if *c < batch.width() => {
                    return filter_cmp_lane(batch.lane(*c), &live, *op, v);
                }
                (Expr::Literal(v), Expr::ColumnIdx(c)) if *c < batch.width() => {
                    return filter_cmp_lane(batch.lane(*c), &live, flip_cmp(*op), v);
                }
                _ => {}
            }
            filter_scalar(batch, pred, &live)
        }
        Expr::Between { expr, low, high } => {
            match (expr.as_ref(), low.as_ref(), high.as_ref()) {
                (Expr::ColumnIdx(c), Expr::Literal(lo), Expr::Literal(hi))
                    if *c < batch.width() =>
                {
                    // BETWEEN is total in the row engine: incomparable
                    // bounds are simply "no match", never an error.
                    let lane = batch.lane(*c);
                    let mut out = Vec::with_capacity(live.len());
                    for &i in &live {
                        use std::cmp::Ordering::*;
                        let ge = matches!(
                            lane.sql_cmp_const(i as usize, lo),
                            Some(Greater | Equal)
                        );
                        let le =
                            matches!(lane.sql_cmp_const(i as usize, hi), Some(Less | Equal));
                        if ge && le {
                            out.push(i);
                        }
                    }
                    Ok(out)
                }
                _ => filter_scalar(batch, pred, &live),
            }
        }
        Expr::IsNull { expr, negated } => match expr.as_ref() {
            Expr::ColumnIdx(c) if *c < batch.width() => {
                let lane = batch.lane(*c);
                Ok(live
                    .into_iter()
                    .filter(|&i| lane.is_null(i as usize) != *negated)
                    .collect())
            }
            _ => filter_scalar(batch, pred, &live),
        },
        Expr::Like { expr, pattern } => match expr.as_ref() {
            Expr::ColumnIdx(c) if *c < batch.width() => {
                match batch.lane(*c).column() {
                    Some(ColumnData::Str(data, nulls)) => {
                        // Prefix patterns reduce to starts_with.
                        let prefix = (pattern.ends_with('%')
                            && !pattern[..pattern.len() - 1].contains(['%', '_']))
                        .then(|| &pattern[..pattern.len() - 1]);
                        let mut out = Vec::with_capacity(live.len());
                        for &i in &live {
                            if nulls[i as usize] {
                                // The row engine calls `as_str()` on the
                                // value, which errors on NULL.
                                return Err(Error::execution(format!(
                                    "expected string, got {}",
                                    Value::Null
                                )));
                            }
                            let s = &data[i as usize];
                            let keep = match prefix {
                                Some(p) => s.starts_with(p),
                                None => like_match(s, pattern),
                            };
                            if keep {
                                out.push(i);
                            }
                        }
                        Ok(out)
                    }
                    _ => filter_scalar(batch, pred, &live),
                }
            }
            _ => filter_scalar(batch, pred, &live),
        },
        _ => filter_scalar(batch, pred, &live),
    }
}

fn filter_cmp_lane(lane: &Lane, live: &[u32], op: BinOp, k: &Value) -> Result<Vec<u32>> {
    // NULL on either side of a comparison evaluates to NULL → not truthy.
    if k.is_null() {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(live.len());
    match (lane.column(), k) {
        (Some(ColumnData::Int(data, nulls)), Value::Int(x)) => {
            for &i in live {
                if !nulls[i as usize] && cmp_keep(op, data[i as usize].cmp(x)) {
                    out.push(i);
                }
            }
        }
        (Some(ColumnData::Int(data, nulls)), Value::Double(x)) => {
            // The row engine promotes Int vs Double to f64 (`sql_cmp`).
            for &i in live {
                if nulls[i as usize] {
                    continue;
                }
                if let Some(ord) = (data[i as usize] as f64).partial_cmp(x) {
                    if cmp_keep(op, ord) {
                        out.push(i);
                    }
                }
            }
        }
        (Some(ColumnData::Double(data, nulls)), Value::Int(_) | Value::Double(_)) => {
            let x = match k {
                Value::Int(v) => *v as f64,
                Value::Double(v) => *v,
                _ => unreachable!(),
            };
            for &i in live {
                if nulls[i as usize] {
                    continue;
                }
                if let Some(ord) = data[i as usize].partial_cmp(&x) {
                    if cmp_keep(op, ord) {
                        out.push(i);
                    }
                }
            }
        }
        (Some(ColumnData::Str(data, nulls)), Value::Str(s)) => {
            for &i in live {
                if !nulls[i as usize] && cmp_keep(op, data[i as usize].as_str().cmp(s)) {
                    out.push(i);
                }
            }
        }
        (Some(ColumnData::Date(data, nulls)), Value::Date(d)) => {
            for &i in live {
                if !nulls[i as usize] && cmp_keep(op, data[i as usize].cmp(d)) {
                    out.push(i);
                }
            }
        }
        _ => {
            // Generic path: exact sql_cmp semantics; incomparable pairs are
            // an execution error like the row engine's.
            for &i in live {
                if lane.is_null(i as usize) {
                    continue;
                }
                match lane.sql_cmp_const(i as usize, k) {
                    Some(ord) => {
                        if cmp_keep(op, ord) {
                            out.push(i);
                        }
                    }
                    None => {
                        return Err(Error::execution(format!(
                            "cannot compare {} and {k}",
                            lane.get(i as usize)
                        )));
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Scalar fallback: evaluate the predicate on materialized rows.
fn filter_scalar(batch: &RowBatch, pred: &Expr, live: &[u32]) -> Result<Vec<u32>> {
    let mut out = Vec::with_capacity(live.len());
    for &i in live {
        let row = batch.row_at(i as usize);
        if pred.eval_bool(&row)? {
            out.push(i);
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- projection

/// Project a batch. Pure column reorders clone lane `Arc`s; anything else
/// evaluates scalar per row.
pub(crate) fn apply_project_batch(batch: &RowBatch, exprs: &[Expr]) -> Result<RowBatch> {
    let all_pass = exprs
        .iter()
        .all(|e| matches!(e, Expr::ColumnIdx(c) if *c < batch.width()));
    if all_pass {
        let lanes = exprs
            .iter()
            .map(|e| match e {
                Expr::ColumnIdx(c) => batch.lanes()[*c].clone(),
                _ => unreachable!(),
            })
            .collect();
        return Ok(RowBatch::new(lanes, batch.sel().map(<[u32]>::to_vec)));
    }
    let live = batch.live_rows();
    let mut cols: Vec<Vec<Value>> =
        exprs.iter().map(|_| Vec::with_capacity(live.len())).collect();
    for &i in &live {
        let row = batch.row_at(i as usize);
        for (slot, e) in cols.iter_mut().zip(exprs) {
            slot.push(e.eval(&row)?);
        }
    }
    let lanes = cols.into_iter().map(|v| std::sync::Arc::new(Lane::from_values(v))).collect();
    Ok(RowBatch::new(lanes, None))
}

// -------------------------------------------------------------------- joins

/// Build side of a hash join: hashed key slots over the build rows, with
/// collision verification against the stored rows (no per-row key
/// allocation or value clones).
pub(crate) struct JoinBuild {
    rows: Vec<Row>,
    key_cols: Vec<usize>,
    slots: HashMap<u64, Vec<u32>>,
}

impl JoinBuild {
    /// Hash `rows` on `key_cols`. NULL keys participate (they match other
    /// NULLs), exactly like the row engine's encoded keys.
    pub(crate) fn build(rows: Vec<Row>, key_cols: Vec<usize>) -> Result<JoinBuild> {
        let mut slots: HashMap<u64, Vec<u32>> = HashMap::with_capacity(rows.len());
        for (idx, row) in rows.iter().enumerate() {
            let hash = if let [c] = key_cols.as_slice() {
                ident_hash_one(row.get(*c)?)
            } else {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                for &c in &key_cols {
                    ident_hash_value(row.get(c)?, &mut h);
                }
                std::hash::Hasher::finish(&h)
            };
            slots.entry(hash).or_default().push(idx as u32);
        }
        Ok(JoinBuild { rows, key_cols, slots })
    }

    /// Number of build rows.
    pub(crate) fn len(&self) -> usize {
        self.rows.len()
    }

    /// Probe one batch; `probe_cols` are the right-side key positions.
    pub(crate) fn probe_batch(
        &self,
        batch: &RowBatch,
        probe_cols: &[usize],
        filter: Option<&Expr>,
        ctx: &ExecCtx,
    ) -> Result<Vec<Row>> {
        for &c in probe_cols {
            if c >= batch.width() {
                return Err(Error::execution(format!("column index {c} out of range")));
            }
        }
        let mut out = Vec::new();
        for &i in &batch.live_rows() {
            ctx.tick(1)?;
            let phys = i as usize;
            let hash = ident_hash_lanes(batch.lanes(), probe_cols, phys);
            let Some(candidates) = self.slots.get(&hash) else {
                continue;
            };
            let mut right_row: Option<Row> = None;
            for &bidx in candidates {
                let build_row = &self.rows[bidx as usize];
                let matches = self
                    .key_cols
                    .iter()
                    .zip(probe_cols)
                    .all(|(&lc, &rc)| {
                        build_row
                            .get(lc)
                            .map(|v| batch.lane(rc).ident_eq(phys, v))
                            .unwrap_or(false)
                    });
                if !matches {
                    continue;
                }
                let right =
                    right_row.get_or_insert_with(|| batch.row_at(phys));
                let joined = build_row.concat(right);
                if match filter {
                    Some(f) => f.eval_bool(&joined)?,
                    None => true,
                } {
                    out.push(joined);
                }
            }
        }
        Ok(out)
    }
}

fn join_stream<'a>(
    left: &'a LogicalPlan,
    right: &'a LogicalPlan,
    on: &'a [(usize, usize)],
    filter: Option<&'a Expr>,
    provider: &'a dyn TableProvider,
    ctx: &'a ExecCtx,
) -> Result<BatchStream<'a>> {
    let mut left_stream = Some(stream(left, provider, ctx)?);
    let mut right_stream = stream(right, provider, ctx)?;
    let mut build: Option<JoinBuild> = None;
    let probe_cols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let key_cols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let mut crossq: Option<VecDeque<RowBatch>> = None;
    Ok(Box::new(move || {
        if on.is_empty() {
            // Cross join: materialize both sides and reuse the row
            // engine's nested loop (identical semantics, small inputs).
            if crossq.is_none() {
                let mut l = Vec::new();
                if let Some(mut ls) = left_stream.take() {
                    while let Some(b) = ls()? {
                        l.extend(b.to_rows());
                    }
                }
                let mut r = Vec::new();
                while let Some(b) = right_stream()? {
                    r.extend(b.to_rows());
                }
                let t0 = Timer::start();
                let rows = apply_join(l, r, &[], filter, ctx)?;
                exec_metrics().join.record(rows.len() as u64, 0, t0);
                crossq = Some(batches_of(rows).into());
            }
            return Ok(crossq.as_mut().expect("filled above").pop_front());
        }
        if build.is_none() {
            let mut rows = Vec::new();
            if let Some(mut ls) = left_stream.take() {
                while let Some(b) = ls()? {
                    rows.extend(b.to_rows());
                }
            }
            let t0 = Timer::start();
            ctx.tick(rows.len() as u64)?;
            let b = JoinBuild::build(rows, key_cols.clone())?;
            exec_metrics().join.record(b.len() as u64, 0, t0);
            build = Some(b);
        }
        let build = build.as_ref().expect("built above");
        loop {
            let Some(batch) = right_stream()? else { return Ok(None) };
            let t0 = Timer::start();
            let rows = build.probe_batch(&batch, &probe_cols, filter, ctx)?;
            exec_metrics().join.record(rows.len() as u64, 0, t0);
            if rows.is_empty() {
                continue;
            }
            return Ok(Some(RowBatch::from_rows(rows)));
        }
    }))
}

// -------------------------------------------------------------- aggregation

/// Numeric vector: the typed result of evaluating an arithmetic expression
/// over a batch. Int stays exact (wrapping ops, like the row engine); any
/// Double operand promotes the whole vector.
enum NumVec {
    Int(Vec<i64>),
    Double(Vec<f64>),
}

/// Evaluate `e` over the live rows of `batch` as a typed numeric vector
/// with a null mask, or `None` when the expression (or a referenced lane)
/// is outside the strictly-replicable subset (Add/Sub/Mul over Int/Double
/// lanes and numeric literals).
fn eval_num(e: &Expr, batch: &RowBatch, live: &[u32]) -> Option<(NumVec, Vec<bool>)> {
    match e {
        Expr::Literal(Value::Int(x)) => {
            Some((NumVec::Int(vec![*x; live.len()]), vec![false; live.len()]))
        }
        Expr::Literal(Value::Double(x)) => {
            Some((NumVec::Double(vec![*x; live.len()]), vec![false; live.len()]))
        }
        Expr::ColumnIdx(c) if *c < batch.width() => match batch.lane(*c).column() {
            Some(ColumnData::Int(data, nulls)) => Some((
                NumVec::Int(live.iter().map(|&i| data[i as usize]).collect()),
                live.iter().map(|&i| nulls[i as usize]).collect(),
            )),
            Some(ColumnData::Double(data, nulls)) => Some((
                NumVec::Double(live.iter().map(|&i| data[i as usize]).collect()),
                live.iter().map(|&i| nulls[i as usize]).collect(),
            )),
            _ => None,
        },
        Expr::Binary { op, left, right }
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) =>
        {
            let (l, ln) = eval_num(left, batch, live)?;
            let (r, rn) = eval_num(right, batch, live)?;
            let nulls: Vec<bool> = ln.iter().zip(&rn).map(|(a, b)| *a || *b).collect();
            let v = match (l, r) {
                (NumVec::Int(a), NumVec::Int(b)) => NumVec::Int(
                    a.iter()
                        .zip(&b)
                        .map(|(x, y)| match op {
                            BinOp::Add => x.wrapping_add(*y),
                            BinOp::Sub => x.wrapping_sub(*y),
                            BinOp::Mul => x.wrapping_mul(*y),
                            _ => unreachable!(),
                        })
                        .collect(),
                ),
                (l, r) => {
                    let a = to_f64(l);
                    let b = to_f64(r);
                    NumVec::Double(
                        a.iter()
                            .zip(&b)
                            .map(|(x, y)| match op {
                                BinOp::Add => x + y,
                                BinOp::Sub => x - y,
                                BinOp::Mul => x * y,
                                _ => unreachable!(),
                            })
                            .collect(),
                    )
                }
            };
            Some((v, nulls))
        }
        _ => None,
    }
}

fn to_f64(v: NumVec) -> Vec<f64> {
    match v {
        NumVec::Int(a) => a.into_iter().map(|x| x as f64).collect(),
        NumVec::Double(a) => a,
    }
}

/// How one group-key column is produced per row.
enum KeyPlan {
    Lane(usize),
    Eval(Expr),
}

/// How one aggregate argument is produced per row.
enum ArgPlan {
    Star,
    Lane(usize),
    Num(NumVec, Vec<bool>),
    Eval(Expr),
}

/// Open-addressed slot index mapping precomputed key hashes to group ids:
/// linear probing over a power-of-two table of `(hash, gid)` pairs. The
/// caller verifies candidate groups against the stored keys, so hash
/// collisions are expected and safe. Compared with `HashMap<u64, Vec<u32>>`
/// this skips re-hashing the already-mixed u64 and the per-slot `Vec`
/// allocation — both of which sit on the per-row aggregation path.
struct SlotIndex {
    entries: Vec<(u64, u32)>,
    mask: usize,
    len: usize,
}

/// Free-slot marker; group ids are bounded well below `u32::MAX` groups.
const EMPTY: u32 = u32::MAX;

impl SlotIndex {
    fn new() -> SlotIndex {
        SlotIndex { entries: vec![(0, EMPTY); 16], mask: 15, len: 0 }
    }

    /// First gid stored under `hash` for which `matches` verifies. Probing
    /// stops at the first free slot, so entries are never deleted.
    fn find(&self, hash: u64, mut matches: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut i = hash as usize & self.mask;
        loop {
            let (h, g) = self.entries[i];
            if g == EMPTY {
                return None;
            }
            if h == hash && matches(g) {
                return Some(g);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Record a new group id under `hash` (grows at 75% load).
    fn insert(&mut self, hash: u64, gid: u32) {
        if (self.len + 1) * 4 > self.entries.len() * 3 {
            self.grow();
        }
        let mut i = hash as usize & self.mask;
        while self.entries[i].1 != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.entries[i] = (hash, gid);
        self.len += 1;
    }

    fn grow(&mut self) {
        let cap = self.entries.len() * 2;
        let old = std::mem::replace(&mut self.entries, vec![(0, EMPTY); cap]);
        self.mask = cap - 1;
        for (h, g) in old {
            if g != EMPTY {
                let mut i = h as usize & self.mask;
                while self.entries[i].1 != EMPTY {
                    i = (i + 1) & self.mask;
                }
                self.entries[i] = (h, g);
            }
        }
    }
}

/// Hash-aggregation over batches with hashed key slots: group keys hash
/// straight out of the lanes (no `Vec<u8>` encode, no value clones); a
/// collision is resolved by verifying against the group's stored key
/// values. Group identity matches `Key::encode` exactly.
pub struct VecAggTable {
    group_by: Vec<Expr>,
    aggs: Vec<AggSpec>,
    index: SlotIndex,
    keys: Vec<Vec<Value>>,
    states: Vec<Vec<AggState>>,
}

impl VecAggTable {
    /// Empty table for the given grouping.
    pub fn new(group_by: Vec<Expr>, aggs: Vec<AggSpec>) -> VecAggTable {
        VecAggTable {
            group_by,
            aggs,
            index: SlotIndex::new(),
            keys: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Fold one batch.
    pub fn update_batch(&mut self, batch: &RowBatch, ctx: &ExecCtx) -> Result<()> {
        let live = batch.live_rows();
        ctx.tick(live.len() as u64)?;
        let key_plans: Vec<KeyPlan> = self
            .group_by
            .iter()
            .map(|g| match g {
                Expr::ColumnIdx(c) if *c < batch.width() => KeyPlan::Lane(*c),
                other => KeyPlan::Eval(other.clone()),
            })
            .collect();
        let mut arg_plans: Vec<ArgPlan> = Vec::with_capacity(self.aggs.len());
        for spec in &self.aggs {
            let plan = match &spec.arg {
                None => ArgPlan::Star,
                Some(Expr::ColumnIdx(c)) if *c < batch.width() => ArgPlan::Lane(*c),
                Some(e) => {
                    let fast = !spec.distinct
                        && matches!(spec.func, AggFunc::Count | AggFunc::Sum | AggFunc::Avg);
                    match fast.then(|| eval_num(e, batch, &live)).flatten() {
                        Some((v, nulls)) => ArgPlan::Num(v, nulls),
                        None => ArgPlan::Eval(e.clone()),
                    }
                }
            };
            arg_plans.push(plan);
        }
        let needs_row = key_plans.iter().any(|k| matches!(k, KeyPlan::Eval(_)))
            || arg_plans.iter().any(|a| matches!(a, ArgPlan::Eval(_)));

        let mut eval_keys: Vec<Value> = Vec::with_capacity(key_plans.len());
        for (pos, &i) in live.iter().enumerate() {
            let phys = i as usize;
            let row = if needs_row { Some(batch.row_at(phys)) } else { None };
            // Group hash straight from the lanes; single-column keys take
            // the direct-mix fast path (consistent with
            // `ident_hash_values`, which `merge` uses on stored keys).
            eval_keys.clear();
            let hash = if let [kp] = key_plans.as_slice() {
                match kp {
                    KeyPlan::Lane(c) => batch.lane(*c).ident_hash_row(phys),
                    KeyPlan::Eval(e) => {
                        let v = e.eval(row.as_ref().expect("row materialized"))?;
                        let h = ident_hash_one(&v);
                        eval_keys.push(v);
                        h
                    }
                }
            } else {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                for kp in &key_plans {
                    match kp {
                        KeyPlan::Lane(c) => batch.lane(*c).ident_hash(phys, &mut h),
                        KeyPlan::Eval(e) => {
                            let v = e.eval(row.as_ref().expect("row materialized"))?;
                            ident_hash_value(&v, &mut h);
                            eval_keys.push(v);
                        }
                    }
                }
                std::hash::Hasher::finish(&h)
            };
            // Find the group, verifying stored keys against the row
            // (collision handling).
            let keys = &self.keys;
            let found = self.index.find(hash, |g| {
                let stored = &keys[g as usize];
                let mut ei = 0;
                key_plans.iter().enumerate().all(|(k, kp)| match kp {
                    KeyPlan::Lane(c) => batch.lane(*c).ident_eq(phys, &stored[k]),
                    KeyPlan::Eval(_) => {
                        let ok = ident_eq(&eval_keys[ei], &stored[k]);
                        ei += 1;
                        ok
                    }
                })
            });
            let gid = match found {
                Some(g) => g as usize,
                None => {
                    let g = self.keys.len();
                    let mut ei = 0;
                    let key_vals: Vec<Value> = key_plans
                        .iter()
                        .map(|kp| match kp {
                            KeyPlan::Lane(c) => batch.lane(*c).get(phys),
                            KeyPlan::Eval(_) => {
                                let v = eval_keys[ei].clone();
                                ei += 1;
                                v
                            }
                        })
                        .collect();
                    self.index.insert(hash, g as u32);
                    self.keys.push(key_vals);
                    self.states
                        .push(self.aggs.iter().map(AggState::new).collect());
                    g
                }
            };
            // Fold the aggregates.
            let states = &mut self.states[gid];
            for ((state, spec), plan) in states.iter_mut().zip(&self.aggs).zip(&arg_plans) {
                match plan {
                    ArgPlan::Star => state.update(None),
                    ArgPlan::Lane(c) => {
                        let lane = batch.lane(*c);
                        if lane.is_null(phys) {
                            continue; // NULL never aggregates
                        }
                        if spec.distinct
                            || matches!(spec.func, AggFunc::Min | AggFunc::Max)
                        {
                            state.update(Some(&lane.get(phys)));
                        } else {
                            match lane.column() {
                                Some(ColumnData::Int(d, _)) => {
                                    state.add_num(d[phys] as f64, true)
                                }
                                Some(ColumnData::Double(d, _)) => {
                                    state.add_num(d[phys], false)
                                }
                                Some(_) => state.bump_count(),
                                None => state.update(Some(
                                    lane.value_ref(phys).expect("vals lane"),
                                )),
                            }
                        }
                    }
                    ArgPlan::Num(v, nulls) => {
                        if nulls[pos] {
                            continue;
                        }
                        match v {
                            NumVec::Int(d) => state.add_num(d[pos] as f64, true),
                            NumVec::Double(d) => state.add_num(d[pos], false),
                        }
                    }
                    ArgPlan::Eval(e) => {
                        let v = e.eval(row.as_ref().expect("row materialized"))?;
                        state.update(Some(&v));
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge a partial table from another morsel worker.
    pub fn merge(&mut self, other: VecAggTable) {
        for (key, states) in other.keys.into_iter().zip(other.states) {
            let hash = ident_hash_values(&key);
            let keys = &self.keys;
            let found = self.index.find(hash, |g| {
                keys[g as usize].iter().zip(&key).all(|(a, b)| ident_eq(a, b))
            });
            match found {
                Some(g) => {
                    for (mine, theirs) in
                        self.states[g as usize].iter_mut().zip(&states)
                    {
                        mine.merge(theirs);
                    }
                }
                None => {
                    let g = self.keys.len() as u32;
                    self.index.insert(hash, g);
                    self.keys.push(key);
                    self.states.push(states);
                }
            }
        }
    }

    /// Produce the output rows. A global aggregate over zero rows yields
    /// one row of aggregate defaults, like the row engine.
    pub fn finish(self) -> Result<Vec<Row>> {
        if self.group_by.is_empty() && self.keys.is_empty() {
            let states: Vec<AggState> = self.aggs.iter().map(AggState::new).collect();
            return Ok(vec![Row::new(states.iter().map(AggState::finish).collect())]);
        }
        let mut out = Vec::with_capacity(self.keys.len());
        for (key, states) in self.keys.into_iter().zip(&self.states) {
            let mut row = key;
            row.extend(states.iter().map(AggState::finish));
            out.push(Row::new(row));
        }
        Ok(out)
    }
}

// --------------------------------------- partition pipelines (morsel units)

/// One fused pipeline stage over a scan.
pub(crate) enum StageOp {
    Filter(Vec<Expr>),
    Project(Vec<Expr>),
}

/// Decompose a `Filter*/Project*` tree over a single `Scan` into bottom-up
/// stages, the unit a morsel worker runs over each chunk of scanned rows.
pub(crate) fn pipeline_stages(plan: &LogicalPlan) -> Option<(String, Vec<StageOp>)> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some((table.clone(), Vec::new())),
        LogicalPlan::Filter { input, predicate } => {
            let (table, mut stages) = pipeline_stages(input)?;
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);
            stages.push(StageOp::Filter(conjuncts));
            Some((table, stages))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let (table, mut stages) = pipeline_stages(input)?;
            stages.push(StageOp::Project(exprs.clone()));
            Some((table, stages))
        }
        _ => None,
    }
}

/// Run the fused stages over one batch.
pub(crate) fn run_stages(
    mut batch: RowBatch,
    stages: &[StageOp],
    ctx: &ExecCtx,
) -> Result<RowBatch> {
    for stage in stages {
        ctx.tick(batch.num_rows() as u64)?;
        match stage {
            StageOp::Filter(conjuncts) => {
                let t0 = Timer::start();
                let mut live = batch.live_rows();
                for c in conjuncts {
                    if live.is_empty() {
                        break;
                    }
                    live = apply_conjunct(&batch, c, live)?;
                }
                batch = batch.with_sel(live);
                exec_metrics()
                    .filter
                    .record(batch.num_rows() as u64, batch.bytes() as u64, t0);
            }
            StageOp::Project(exprs) => {
                let t0 = Timer::start();
                batch = apply_project_batch(&batch, exprs)?;
                exec_metrics()
                    .project
                    .record(batch.num_rows() as u64, batch.bytes() as u64, t0);
            }
        }
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{execute_plan, MemTables};
    use polardbx_sql::plan::AggSpec;

    fn provider() -> MemTables {
        let mut p = MemTables::new();
        let rows: Vec<Row> = (0..100i64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    if i % 7 == 0 { Value::Null } else { Value::Int(i % 3) },
                    Value::Double(i as f64 * 0.5),
                    Value::str(format!("s{}", i % 5)),
                ])
            })
            .collect();
        let (a, b) = rows.split_at(60);
        p.add("t", vec![a.to_vec(), b.to_vec()]);
        p
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "t".into(),
            schema: vec!["t.id".into(), "t.g".into(), "t.d".into(), "t.s".into()],
        }
    }

    fn assert_same(plan: &LogicalPlan) {
        let p = provider();
        let ctx = ExecCtx::unrestricted();
        let mut slow = execute_plan(plan, &p, &ctx).unwrap();
        let mut fast = execute(plan, &p, &ctx).unwrap();
        let key = |r: &Row| format!("{r:?}");
        slow.sort_by_key(key);
        fast.sort_by_key(key);
        assert_eq!(slow, fast);
    }

    #[test]
    fn filter_matches_row_engine() {
        assert_same(&LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::binary(BinOp::Ge, Expr::ColumnIdx(0), Expr::int(37)),
        });
        // Double constant against an Int lane (promotes, no truncation).
        assert_same(&LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::binary(
                BinOp::Lt,
                Expr::ColumnIdx(0),
                Expr::Literal(Value::Double(10.5)),
            ),
        });
    }

    #[test]
    fn aggregate_with_null_group_keys_matches_row_engine() {
        assert_same(&LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group_by: vec![Expr::ColumnIdx(1)],
            aggs: vec![
                AggSpec { func: AggFunc::Count, arg: None, distinct: false },
                AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(Expr::binary(
                        BinOp::Mul,
                        Expr::ColumnIdx(0),
                        Expr::ColumnIdx(0),
                    )),
                    distinct: false,
                },
                AggSpec {
                    func: AggFunc::Min,
                    arg: Some(Expr::ColumnIdx(2)),
                    distinct: false,
                },
            ],
            names: vec!["g".into(), "c".into(), "s".into(), "m".into()],
        });
    }

    #[test]
    fn join_with_null_keys_matches_row_engine() {
        // NULL join keys match each other in the row engine's encoded-key
        // table; the hashed-slot table must reproduce that.
        let plan = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            on: vec![(1, 1)],
            filter: Some(Expr::binary(BinOp::Lt, Expr::ColumnIdx(0), Expr::int(20))),
        };
        assert_same(&plan);
    }

    #[test]
    fn sort_limit_project_matches_row_engine() {
        assert_same(&LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::Project {
                    input: Box::new(scan()),
                    exprs: vec![
                        Expr::ColumnIdx(0),
                        Expr::binary(BinOp::Add, Expr::ColumnIdx(2), Expr::int(1)),
                    ],
                    names: vec!["id".into(), "d1".into()],
                }),
                keys: vec![(Expr::ColumnIdx(1), true), (Expr::ColumnIdx(0), false)],
            }),
            n: 7,
        });
    }

    #[test]
    fn int_and_double_group_keys_stay_distinct() {
        let mut p = MemTables::new();
        p.add(
            "m",
            vec![vec![
                Row::new(vec![Value::Int(5), Value::Int(1)]),
                Row::new(vec![Value::Double(5.0), Value::Int(2)]),
                Row::new(vec![Value::Int(5), Value::Int(4)]),
            ]],
        );
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan {
                table: "m".into(),
                schema: vec!["m.k".into(), "m.v".into()],
            }),
            group_by: vec![Expr::ColumnIdx(0)],
            aggs: vec![AggSpec {
                func: AggFunc::Sum,
                arg: Some(Expr::ColumnIdx(1)),
                distinct: false,
            }],
            names: vec!["k".into(), "s".into()],
        };
        let ctx = ExecCtx::unrestricted();
        let mut fast = execute(&plan, &p, &ctx).unwrap();
        assert_eq!(fast.len(), 2, "Int(5) and Double(5.0) are distinct keys");
        let mut slow = execute_plan(&plan, &p, &ctx).unwrap();
        let key = |r: &Row| format!("{r:?}");
        slow.sort_by_key(key);
        fast.sort_by_key(key);
        assert_eq!(slow, fast);
    }

    #[test]
    fn incomparable_filter_errors_like_row_engine() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::binary(
                BinOp::Gt,
                Expr::ColumnIdx(3),
                Expr::int(1),
            ),
        };
        let p = provider();
        let ctx = ExecCtx::unrestricted();
        assert!(execute_plan(&plan, &p, &ctx).is_err());
        assert!(execute(&plan, &p, &ctx).is_err());
    }
}
