//! The per-table column index with commit-timestamp visibility.
//!
//! Rows are append-only: an update appends the new image and tombstones the
//! old one; each row carries `(created_ts, deleted_ts)` so a snapshot at
//! `ts` selects rows with `created_ts <= ts < deleted_ts`. The `trx_id` of
//! each row mirrors the row store's, which is what lets a hybrid plan read
//! both stores under one InnoDB read view (§VI-E).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use polardbx_common::{DataType, Key, Result, Row, TrxId, Value};

use crate::column::ColumnData;

struct IndexState {
    columns: Vec<ColumnData>,
    /// Row-store transaction that created each row.
    trx_ids: Vec<TrxId>,
    created: Vec<u64>,
    deleted: Vec<u64>, // u64::MAX = live
    /// Primary key → current row id (for update/delete capture).
    key_index: HashMap<Key, usize>,
    /// Index version: everything committed at or before this is applied.
    applied_ts: u64,
}

/// The in-memory column index for one table.
pub struct ColumnIndex {
    types: Vec<DataType>,
    state: RwLock<IndexState>,
}

impl ColumnIndex {
    /// An empty index over columns of the given types.
    pub fn new(types: Vec<DataType>) -> Arc<ColumnIndex> {
        let columns = types.iter().map(|t| ColumnData::new(*t)).collect();
        Arc::new(ColumnIndex {
            types,
            state: RwLock::new(IndexState {
                columns,
                trx_ids: Vec::new(),
                created: Vec::new(),
                deleted: Vec::new(),
                key_index: HashMap::new(),
                applied_ts: 0,
            }),
        })
    }

    /// Column types.
    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    /// Apply a committed insert/update: appends the image, tombstoning any
    /// previous image of `key`.
    pub fn apply_put(&self, trx: TrxId, commit_ts: u64, key: Key, row: &Row) -> Result<()> {
        let mut st = self.state.write();
        if let Some(&old) = st.key_index.get(&key) {
            st.deleted[old] = commit_ts;
        }
        for (i, v) in row.values().iter().enumerate().take(st.columns.len()) {
            st.columns[i].push(v)?;
        }
        // Rows shorter than the index schema pad with NULLs.
        for i in row.arity()..st.columns.len() {
            st.columns[i].push(&Value::Null)?;
        }
        st.trx_ids.push(trx);
        st.created.push(commit_ts);
        st.deleted.push(u64::MAX);
        let row_id = st.created.len() - 1;
        st.key_index.insert(key, row_id);
        if commit_ts > st.applied_ts {
            st.applied_ts = commit_ts;
        }
        Ok(())
    }

    /// Apply a committed delete.
    pub fn apply_delete(&self, _trx: TrxId, commit_ts: u64, key: &Key) {
        let mut st = self.state.write();
        if let Some(old) = st.key_index.remove(key) {
            st.deleted[old] = commit_ts;
        }
        if commit_ts > st.applied_ts {
            st.applied_ts = commit_ts;
        }
    }

    /// The index version (highest applied commit timestamp). AP queries run
    /// at `min(requested_ts, version)` when maintenance is delayed.
    pub fn version(&self) -> u64 {
        self.state.read().applied_ts
    }

    /// Total physical rows (including tombstoned images).
    pub fn physical_rows(&self) -> usize {
        self.state.read().created.len()
    }

    /// Snapshot the index at `ts`: a consistent selection + column access.
    pub fn snapshot(&self, ts: u64) -> ColumnSnapshot {
        let st = self.state.read();
        let selection: Vec<u32> = (0..st.created.len())
            .filter(|&i| {
                st.created[i] <= ts
                    && (st.deleted[i] == u64::MAX || ts < st.deleted[i])
            })
            .map(|i| i as u32)
            .collect();
        ColumnSnapshot { columns: st.columns.clone(), selection, ts }
    }

    /// Compact: drop rows tombstoned before `horizon` (GC).
    pub fn compact(&self, horizon: u64) {
        let mut st = self.state.write();
        let keep: Vec<usize> =
            (0..st.created.len()).filter(|&i| st.deleted[i] > horizon).collect();
        if keep.len() == st.created.len() {
            return;
        }
        let mut new_cols: Vec<ColumnData> =
            self.types.iter().map(|t| ColumnData::new(*t)).collect();
        let mut new_trx = Vec::with_capacity(keep.len());
        let mut new_created = Vec::with_capacity(keep.len());
        let mut new_deleted = Vec::with_capacity(keep.len());
        let mut remap: HashMap<usize, usize> = HashMap::new();
        for (new_id, &old_id) in keep.iter().enumerate() {
            for (c, col) in new_cols.iter_mut().enumerate() {
                col.push(&st.columns[c].get(old_id)).expect("same type");
            }
            new_trx.push(st.trx_ids[old_id]);
            new_created.push(st.created[old_id]);
            new_deleted.push(st.deleted[old_id]);
            remap.insert(old_id, new_id);
        }
        st.key_index = st
            .key_index
            .iter()
            .filter_map(|(k, &old)| remap.get(&old).map(|&n| (k.clone(), n)))
            .collect();
        st.columns = new_cols;
        st.trx_ids = new_trx;
        st.created = new_created;
        st.deleted = new_deleted;
    }

    /// Approximate memory footprint.
    pub fn heap_size(&self) -> usize {
        let st = self.state.read();
        st.columns.iter().map(ColumnData::heap_size).sum::<usize>() + st.created.len() * 24
    }
}

/// A consistent view of the index at one timestamp: cloned column vectors
/// plus the selection of live row ids. Cloning columns keeps the snapshot
/// immune to concurrent maintenance (simple, and snapshots are short-lived
/// per query in the executor).
pub struct ColumnSnapshot {
    /// The column vectors.
    pub columns: Vec<ColumnData>,
    /// Live row ids at `ts`.
    pub selection: Vec<u32>,
    /// Snapshot timestamp.
    pub ts: u64,
}

impl ColumnSnapshot {
    /// Number of visible rows.
    pub fn len(&self) -> usize {
        self.selection.len()
    }

    /// True when no rows are visible.
    pub fn is_empty(&self) -> bool {
        self.selection.is_empty()
    }

    /// Materialize a visible row by selection position.
    pub fn row(&self, pos: usize) -> Row {
        let id = self.selection[pos] as usize;
        Row::new(self.columns.iter().map(|c| c.get(id)).collect())
    }

    /// Materialize all visible rows (row-at-a-time fallback path).
    pub fn rows(&self) -> Vec<Row> {
        (0..self.len()).map(|i| self.row(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row(a: i64, b: f64) -> Row {
        Row::new(vec![Value::Int(a), Value::Double(b)])
    }

    fn index() -> Arc<ColumnIndex> {
        ColumnIndex::new(vec![DataType::Int, DataType::Double])
    }

    #[test]
    fn insert_and_snapshot_visibility() {
        let idx = index();
        idx.apply_put(TrxId(1), 10, key(1), &row(1, 1.5)).unwrap();
        idx.apply_put(TrxId(2), 20, key(2), &row(2, 2.5)).unwrap();
        assert_eq!(idx.snapshot(5).len(), 0);
        assert_eq!(idx.snapshot(10).len(), 1);
        assert_eq!(idx.snapshot(25).len(), 2);
        assert_eq!(idx.snapshot(25).row(0), row(1, 1.5));
        assert_eq!(idx.version(), 20);
    }

    #[test]
    fn update_tombstones_old_image() {
        let idx = index();
        idx.apply_put(TrxId(1), 10, key(1), &row(1, 1.0)).unwrap();
        idx.apply_put(TrxId(2), 20, key(1), &row(1, 9.0)).unwrap();
        // Old snapshot sees the old image; new sees the new.
        let old = idx.snapshot(15);
        assert_eq!(old.len(), 1);
        assert_eq!(old.row(0), row(1, 1.0));
        let new = idx.snapshot(25);
        assert_eq!(new.len(), 1);
        assert_eq!(new.row(0), row(1, 9.0));
        assert_eq!(idx.physical_rows(), 2, "append-only: both images present");
    }

    #[test]
    fn delete_hides_row() {
        let idx = index();
        idx.apply_put(TrxId(1), 10, key(1), &row(1, 1.0)).unwrap();
        idx.apply_delete(TrxId(2), 20, &key(1));
        assert_eq!(idx.snapshot(15).len(), 1);
        assert_eq!(idx.snapshot(20).len(), 0);
    }

    #[test]
    fn compact_reclaims_tombstones() {
        let idx = index();
        for v in 1..=5u64 {
            idx.apply_put(TrxId(v), v * 10, key(1), &row(1, v as f64)).unwrap();
        }
        assert_eq!(idx.physical_rows(), 5);
        idx.compact(50);
        assert_eq!(idx.physical_rows(), 1);
        // The surviving image is still correct.
        let s = idx.snapshot(100);
        assert_eq!(s.row(0), row(1, 5.0));
        // And updates keep working after the remap.
        idx.apply_put(TrxId(9), 100, key(1), &row(1, 99.0)).unwrap();
        assert_eq!(idx.snapshot(100).row(0), row(1, 99.0));
    }

    #[test]
    fn short_rows_pad_with_null() {
        let idx = index();
        idx.apply_put(TrxId(1), 10, key(1), &Row::new(vec![Value::Int(7)])).unwrap();
        let s = idx.snapshot(10);
        assert_eq!(s.row(0).get(1).unwrap(), &Value::Null);
    }

    #[test]
    fn snapshot_isolated_from_later_changes() {
        let idx = index();
        idx.apply_put(TrxId(1), 10, key(1), &row(1, 1.0)).unwrap();
        let snap = idx.snapshot(10);
        idx.apply_put(TrxId(2), 20, key(2), &row(2, 2.0)).unwrap();
        assert_eq!(snap.len(), 1, "snapshot unaffected by concurrent apply");
    }
}
