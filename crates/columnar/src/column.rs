//! Typed column vectors.

use polardbx_common::{DataType, Error, Result, Value};

/// A column of values in columnar layout: a dense typed vector plus a null
/// bitmap. The vector keeps a slot for NULL rows (default value) so row ids
/// index all columns uniformly.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>, Vec<bool>),
    /// Doubles.
    Double(Vec<f64>, Vec<bool>),
    /// Strings.
    Str(Vec<String>, Vec<bool>),
    /// Dates (days).
    Date(Vec<i32>, Vec<bool>),
}

impl ColumnData {
    /// An empty column of the given type. `Bytes` columns are stored as
    /// strings (lossy) — none of the paper's workloads use raw bytes.
    pub fn new(ty: DataType) -> ColumnData {
        match ty {
            DataType::Int => ColumnData::Int(Vec::new(), Vec::new()),
            DataType::Double => ColumnData::Double(Vec::new(), Vec::new()),
            DataType::Str | DataType::Bytes => ColumnData::Str(Vec::new(), Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new(), Vec::new()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v, _) => v.len(),
            ColumnData::Double(v, _) => v.len(),
            ColumnData::Str(v, _) => v.len(),
            ColumnData::Date(v, _) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value (coercing compatible types); NULL appends a default
    /// slot with the null bit set.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match self {
            ColumnData::Int(data, nulls) => {
                match v {
                    Value::Null => {
                        data.push(0);
                        nulls.push(true);
                    }
                    other => {
                        data.push(other.as_int()?);
                        nulls.push(false);
                    }
                };
            }
            ColumnData::Double(data, nulls) => {
                match v {
                    Value::Null => {
                        data.push(0.0);
                        nulls.push(true);
                    }
                    other => {
                        data.push(other.as_double()?);
                        nulls.push(false);
                    }
                };
            }
            ColumnData::Str(data, nulls) => {
                match v {
                    Value::Null => {
                        data.push(String::new());
                        nulls.push(true);
                    }
                    Value::Str(s) => {
                        data.push(s.clone());
                        nulls.push(false);
                    }
                    Value::Bytes(b) => {
                        data.push(String::from_utf8_lossy(b).into_owned());
                        nulls.push(false);
                    }
                    other => {
                        return Err(Error::execution(format!(
                            "cannot store {other} in string column"
                        )))
                    }
                };
            }
            ColumnData::Date(data, nulls) => {
                match v {
                    Value::Null => {
                        data.push(0);
                        nulls.push(true);
                    }
                    other => {
                        data.push(other.as_date()?);
                        nulls.push(false);
                    }
                };
            }
        }
        Ok(())
    }

    /// Read row `i` back as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v, n) => {
                if n[i] {
                    Value::Null
                } else {
                    Value::Int(v[i])
                }
            }
            ColumnData::Double(v, n) => {
                if n[i] {
                    Value::Null
                } else {
                    Value::Double(v[i])
                }
            }
            ColumnData::Str(v, n) => {
                if n[i] {
                    Value::Null
                } else {
                    Value::Str(v[i].clone())
                }
            }
            ColumnData::Date(v, n) => {
                if n[i] {
                    Value::Null
                } else {
                    Value::Date(v[i])
                }
            }
        }
    }

    /// Is row `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnData::Int(_, n)
            | ColumnData::Double(_, n)
            | ColumnData::Str(_, n)
            | ColumnData::Date(_, n) => n[i],
        }
    }

    /// Dense i64 view (errors on other types) — fast path for kernels.
    pub fn as_int(&self) -> Result<&[i64]> {
        match self {
            ColumnData::Int(v, _) => Ok(v),
            _ => Err(Error::execution("column is not Int")),
        }
    }

    /// Dense f64 view.
    pub fn as_double(&self) -> Result<&[f64]> {
        match self {
            ColumnData::Double(v, _) => Ok(v),
            _ => Err(Error::execution("column is not Double")),
        }
    }

    /// Dense string view.
    pub fn as_str(&self) -> Result<&[String]> {
        match self {
            ColumnData::Str(v, _) => Ok(v),
            _ => Err(Error::execution("column is not Str")),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        match self {
            ColumnData::Int(v, n) => v.len() * 8 + n.len(),
            ColumnData::Double(v, n) => v.len() * 8 + n.len(),
            ColumnData::Str(v, n) => {
                v.iter().map(|s| s.len() + 24).sum::<usize>() + n.len()
            }
            ColumnData::Date(v, n) => v.len() * 4 + n.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_with_nulls() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(&Value::Int(5)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Int(-3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
        assert!(c.is_null(1));
        assert_eq!(c.get(2), Value::Int(-3));
        assert_eq!(c.as_int().unwrap(), &[5, 0, -3]);
    }

    #[test]
    fn double_column_coerces_ints() {
        let mut c = ColumnData::new(DataType::Double);
        c.push(&Value::Int(2)).unwrap();
        c.push(&Value::Double(2.5)).unwrap();
        assert_eq!(c.as_double().unwrap(), &[2.0, 2.5]);
    }

    #[test]
    fn str_column() {
        let mut c = ColumnData::new(DataType::Str);
        c.push(&Value::str("a")).unwrap();
        c.push(&Value::Bytes(vec![b'b'])).unwrap();
        assert_eq!(c.get(1), Value::str("b"));
        assert!(c.push(&Value::Int(5)).is_err());
    }

    #[test]
    fn type_mismatch_accessors() {
        let c = ColumnData::new(DataType::Int);
        assert!(c.as_double().is_err());
        assert!(c.as_str().is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn heap_size_positive() {
        let mut c = ColumnData::new(DataType::Str);
        c.push(&Value::str("hello")).unwrap();
        assert!(c.heap_size() > 5);
    }
}
