//! Redo-log capture with delayed, batched application (§VI-E).
//!
//! "The logical operations on the indexed column are captured from the log
//! and converted to the corresponding operations on the index. … its
//! updates can be delayed and batched. In this case, its version lags
//! behind the row store's, and AP queries run on the version of snapshot
//! subject to the column index."

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use polardbx_common::{Result, TableId, TrxId};
use polardbx_wal::RedoPayload;

use crate::index::ColumnIndex;

/// Decodes committed changes for one table out of the redo stream and
/// applies them to its column index, optionally in delayed batches.
pub struct ColumnIndexMaintainer {
    table: TableId,
    index: Arc<ColumnIndex>,
    /// Uncommitted ops buffered per transaction (like the RO applier).
    pending_txns: Mutex<HashMap<TrxId, Vec<RedoPayload>>>,
    /// Committed batches not yet applied (delayed maintenance).
    backlog: Mutex<Vec<(TrxId, u64, Vec<RedoPayload>)>>,
    /// Apply immediately (batch size 1) or defer until `flush`.
    batch_threshold: usize,
}

impl ColumnIndexMaintainer {
    /// A maintainer applying each commit immediately.
    pub fn immediate(table: TableId, index: Arc<ColumnIndex>) -> ColumnIndexMaintainer {
        Self::with_batching(table, index, 1)
    }

    /// A maintainer that defers application until `batch_threshold`
    /// committed transactions have accumulated (or `flush` is called).
    pub fn with_batching(
        table: TableId,
        index: Arc<ColumnIndex>,
        batch_threshold: usize,
    ) -> ColumnIndexMaintainer {
        ColumnIndexMaintainer {
            table,
            index,
            pending_txns: Mutex::new(HashMap::new()),
            backlog: Mutex::new(Vec::new()),
            batch_threshold: batch_threshold.max(1),
        }
    }

    /// Feed one redo record from the log stream.
    pub fn capture(&self, record: &RedoPayload) -> Result<()> {
        match record {
            RedoPayload::Insert { trx, table, .. }
            | RedoPayload::Update { trx, table, .. }
            | RedoPayload::Delete { trx, table, .. } if *table == self.table => {
                self.pending_txns.lock().entry(*trx).or_default().push(record.clone());
            }
            RedoPayload::TxnCommit { trx, commit_ts } => {
                let ops = self.pending_txns.lock().remove(trx);
                if let Some(ops) = ops {
                    if !ops.is_empty() {
                        let ready = {
                            let mut backlog = self.backlog.lock();
                            backlog.push((*trx, *commit_ts, ops));
                            backlog.len() >= self.batch_threshold
                        };
                        if ready {
                            self.flush()?;
                        }
                    }
                }
            }
            RedoPayload::TxnAbort { trx } => {
                self.pending_txns.lock().remove(trx);
            }
            _ => {}
        }
        Ok(())
    }

    /// Apply everything in the backlog (the batched maintenance step).
    pub fn flush(&self) -> Result<()> {
        let batch: Vec<_> = std::mem::take(&mut *self.backlog.lock());
        for (trx, commit_ts, ops) in batch {
            for op in ops {
                match op {
                    RedoPayload::Insert { key, row, .. }
                    | RedoPayload::Update { key, row, .. } => {
                        let decoded = polardbx_common::Key(row.to_vec()).decode();
                        self.index.apply_put(
                            trx,
                            commit_ts,
                            key,
                            &polardbx_common::Row::new(decoded),
                        )?;
                    }
                    RedoPayload::Delete { key, .. } => {
                        self.index.apply_delete(trx, commit_ts, &key);
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Committed transactions waiting for batched application.
    pub fn backlog_len(&self) -> usize {
        self.backlog.lock().len()
    }

    /// The maintained index.
    pub fn index(&self) -> &Arc<ColumnIndex> {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use polardbx_common::{DataType, Key, Row, Value};

    fn key(n: i64) -> Key {
        Key::encode(&[Value::Int(n)])
    }

    fn row_bytes(a: i64, b: f64) -> Bytes {
        Bytes::from(Key::encode(&[Value::Int(a), Value::Double(b)]).0)
    }

    const T: TableId = TableId(1);

    fn insert(trx: u64, n: i64, b: f64) -> RedoPayload {
        RedoPayload::Insert { trx: TrxId(trx), table: T, key: key(n), row: row_bytes(n, b) }
    }

    fn commit(trx: u64, ts: u64) -> RedoPayload {
        RedoPayload::TxnCommit { trx: TrxId(trx), commit_ts: ts }
    }

    #[test]
    fn immediate_capture_applies_on_commit() {
        let idx = ColumnIndex::new(vec![DataType::Int, DataType::Double]);
        let m = ColumnIndexMaintainer::immediate(T, Arc::clone(&idx));
        m.capture(&insert(1, 5, 2.5)).unwrap();
        assert_eq!(idx.snapshot(u64::MAX).len(), 0, "uncommitted: not applied");
        m.capture(&commit(1, 10)).unwrap();
        assert_eq!(idx.snapshot(10).len(), 1);
        assert_eq!(
            idx.snapshot(10).row(0),
            Row::new(vec![Value::Int(5), Value::Double(2.5)])
        );
    }

    #[test]
    fn aborted_txn_dropped() {
        let idx = ColumnIndex::new(vec![DataType::Int, DataType::Double]);
        let m = ColumnIndexMaintainer::immediate(T, Arc::clone(&idx));
        m.capture(&insert(1, 5, 2.5)).unwrap();
        m.capture(&RedoPayload::TxnAbort { trx: TrxId(1) }).unwrap();
        m.capture(&commit(1, 10)).unwrap(); // late commit for a dropped txn
        assert_eq!(idx.snapshot(u64::MAX).len(), 0);
    }

    #[test]
    fn other_tables_ignored() {
        let idx = ColumnIndex::new(vec![DataType::Int, DataType::Double]);
        let m = ColumnIndexMaintainer::immediate(T, Arc::clone(&idx));
        m.capture(&RedoPayload::Insert {
            trx: TrxId(1),
            table: TableId(99),
            key: key(1),
            row: row_bytes(1, 1.0),
        })
        .unwrap();
        m.capture(&commit(1, 10)).unwrap();
        assert_eq!(idx.snapshot(u64::MAX).len(), 0);
    }

    #[test]
    fn delayed_batching_lags_version() {
        let idx = ColumnIndex::new(vec![DataType::Int, DataType::Double]);
        let m = ColumnIndexMaintainer::with_batching(T, Arc::clone(&idx), 3);
        for t in 1..=2u64 {
            m.capture(&insert(t, t as i64, 1.0)).unwrap();
            m.capture(&commit(t, t * 10)).unwrap();
        }
        // Two commits buffered — the index version lags the row store.
        assert_eq!(m.backlog_len(), 2);
        assert_eq!(idx.version(), 0);
        // Third commit crosses the threshold: all three apply.
        m.capture(&insert(3, 3, 1.0)).unwrap();
        m.capture(&commit(3, 30)).unwrap();
        assert_eq!(m.backlog_len(), 0);
        assert_eq!(idx.version(), 30);
        assert_eq!(idx.snapshot(30).len(), 3);
    }

    #[test]
    fn explicit_flush_drains_backlog() {
        let idx = ColumnIndex::new(vec![DataType::Int, DataType::Double]);
        let m = ColumnIndexMaintainer::with_batching(T, Arc::clone(&idx), 100);
        m.capture(&insert(1, 1, 1.0)).unwrap();
        m.capture(&commit(1, 10)).unwrap();
        assert_eq!(idx.version(), 0);
        m.flush().unwrap();
        assert_eq!(idx.version(), 10);
    }

    #[test]
    fn update_and_delete_capture() {
        let idx = ColumnIndex::new(vec![DataType::Int, DataType::Double]);
        let m = ColumnIndexMaintainer::immediate(T, Arc::clone(&idx));
        m.capture(&insert(1, 5, 1.0)).unwrap();
        m.capture(&commit(1, 10)).unwrap();
        m.capture(&RedoPayload::Update {
            trx: TrxId(2),
            table: T,
            key: key(5),
            row: row_bytes(5, 9.0),
        })
        .unwrap();
        m.capture(&commit(2, 20)).unwrap();
        assert_eq!(
            idx.snapshot(25).row(0),
            Row::new(vec![Value::Int(5), Value::Double(9.0)])
        );
        m.capture(&RedoPayload::Delete { trx: TrxId(3), table: T, key: key(5) }).unwrap();
        m.capture(&commit(3, 30)).unwrap();
        assert_eq!(idx.snapshot(30).len(), 0);
    }
}
