//! Vectorized kernels over column snapshots.
//!
//! These are the primitives behind §VI-E's claim that "in a column store …
//! the execution of certain operations such as filter, join, aggregation
//! becomes much faster": tight loops over dense typed vectors driven by
//! selection vectors, no per-row boxing.

use std::collections::HashMap;

use polardbx_common::{Error, Result, Value};

use crate::column::ColumnData;

/// Comparison operators supported by the filter kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn keep(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Neq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Filter `selection` by comparing `column` against a constant. NULL rows
/// never match.
pub fn filter_cmp(
    column: &ColumnData,
    selection: &[u32],
    op: CmpOp,
    constant: &Value,
) -> Result<Vec<u32>> {
    let mut out = Vec::with_capacity(selection.len() / 2);
    match (column, constant) {
        (ColumnData::Int(data, nulls), c) => {
            let c = c.as_int()?;
            for &id in selection {
                let i = id as usize;
                if !nulls[i] && op.keep(data[i].cmp(&c)) {
                    out.push(id);
                }
            }
        }
        (ColumnData::Double(data, nulls), c) => {
            let c = c.as_double()?;
            for &id in selection {
                let i = id as usize;
                if !nulls[i] {
                    if let Some(ord) = data[i].partial_cmp(&c) {
                        if op.keep(ord) {
                            out.push(id);
                        }
                    }
                }
            }
        }
        (ColumnData::Str(data, nulls), Value::Str(c)) => {
            for &id in selection {
                let i = id as usize;
                if !nulls[i] && op.keep(data[i].as_str().cmp(c.as_str())) {
                    out.push(id);
                }
            }
        }
        (ColumnData::Date(data, nulls), c) => {
            let c = c.as_date()?;
            for &id in selection {
                let i = id as usize;
                if !nulls[i] && op.keep(data[i].cmp(&c)) {
                    out.push(id);
                }
            }
        }
        _ => return Err(Error::execution("filter_cmp: incompatible column/constant")),
    }
    Ok(out)
}

/// Filter by comparing two columns of the same table (`l_receiptdate >
/// l_commitdate` in Q12/Q21). NULL on either side never matches.
pub fn filter_cmp_cols(
    a: &ColumnData,
    b: &ColumnData,
    selection: &[u32],
    op: CmpOp,
) -> Result<Vec<u32>> {
    let mut out = Vec::with_capacity(selection.len() / 2);
    match (a, b) {
        (ColumnData::Int(da, na), ColumnData::Int(db, nb)) => {
            for &id in selection {
                let i = id as usize;
                if !na[i] && !nb[i] && op.keep(da[i].cmp(&db[i])) {
                    out.push(id);
                }
            }
        }
        (ColumnData::Double(da, na), ColumnData::Double(db, nb)) => {
            for &id in selection {
                let i = id as usize;
                if !na[i] && !nb[i] {
                    if let Some(ord) = da[i].partial_cmp(&db[i]) {
                        if op.keep(ord) {
                            out.push(id);
                        }
                    }
                }
            }
        }
        (ColumnData::Date(da, na), ColumnData::Date(db, nb)) => {
            for &id in selection {
                let i = id as usize;
                if !na[i] && !nb[i] && op.keep(da[i].cmp(&db[i])) {
                    out.push(id);
                }
            }
        }
        _ => {
            // Generic fallback through Value comparison.
            for &id in selection {
                let i = id as usize;
                let (va, vb) = (a.get(i), b.get(i));
                if va.is_null() || vb.is_null() {
                    continue;
                }
                if let Some(ord) = va.sql_cmp(&vb) {
                    if op.keep(ord) {
                        out.push(id);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Filter by inclusive range `[lo, hi]` in one pass (common TPC-H shape).
pub fn filter_between(
    column: &ColumnData,
    selection: &[u32],
    lo: &Value,
    hi: &Value,
) -> Result<Vec<u32>> {
    let step = filter_cmp(column, selection, CmpOp::Ge, lo)?;
    filter_cmp(column, &step, CmpOp::Le, hi)
}

/// Filter strings by a `LIKE 'prefix%'`-style prefix.
pub fn filter_prefix(column: &ColumnData, selection: &[u32], prefix: &str) -> Result<Vec<u32>> {
    match column {
        ColumnData::Str(data, nulls) => Ok(selection
            .iter()
            .copied()
            .filter(|&id| {
                let i = id as usize;
                !nulls[i] && data[i].starts_with(prefix)
            })
            .collect()),
        _ => Err(Error::execution("filter_prefix on non-string column")),
    }
}

/// Sum a numeric column over a selection (NULLs skipped).
pub fn sum(column: &ColumnData, selection: &[u32]) -> Result<f64> {
    match column {
        ColumnData::Int(data, nulls) => Ok(selection
            .iter()
            .map(|&id| {
                let i = id as usize;
                if nulls[i] { 0 } else { data[i] }
            })
            .sum::<i64>() as f64),
        ColumnData::Double(data, nulls) => Ok(selection
            .iter()
            .map(|&id| {
                let i = id as usize;
                if nulls[i] { 0.0 } else { data[i] }
            })
            .sum()),
        _ => Err(Error::execution("sum on non-numeric column")),
    }
}

/// Count non-null values over a selection.
pub fn count(column: &ColumnData, selection: &[u32]) -> usize {
    selection.iter().filter(|&&id| !column.is_null(id as usize)).count()
}

/// Min/Max over a selection (None when empty or all NULL).
pub fn min_max(column: &ColumnData, selection: &[u32]) -> (Option<Value>, Option<Value>) {
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    for &id in selection {
        let v = column.get(id as usize);
        if v.is_null() {
            continue;
        }
        match &min {
            None => min = Some(v.clone()),
            Some(m) if v < *m => min = Some(v.clone()),
            _ => {}
        }
        match &max {
            None => max = Some(v),
            Some(m) if v > *m => max = Some(v),
            _ => {}
        }
    }
    (min, max)
}

/// Hash group-by: group `selection` by the values of `keys` columns,
/// returning (group key values → row ids).
pub fn hash_group(
    keys: &[&ColumnData],
    selection: &[u32],
) -> HashMap<Vec<Value>, Vec<u32>> {
    let mut groups: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
    for &id in selection {
        let key: Vec<Value> = keys.iter().map(|c| c.get(id as usize)).collect();
        groups.entry(key).or_default().push(id);
    }
    groups
}

/// In-memory hash join on single columns: returns (build_row, probe_row)
/// pairs. This is the "built-in hash join of column index" that Q12/Q21
/// push down (§VII-C).
pub fn hash_join(
    build: &ColumnData,
    build_sel: &[u32],
    probe: &ColumnData,
    probe_sel: &[u32],
) -> Vec<(u32, u32)> {
    let mut table: HashMap<Value, Vec<u32>> = HashMap::new();
    for &id in build_sel {
        let v = build.get(id as usize);
        if !v.is_null() {
            table.entry(v).or_default().push(id);
        }
    }
    let mut out = Vec::new();
    for &pid in probe_sel {
        let v = probe.get(pid as usize);
        if v.is_null() {
            continue;
        }
        if let Some(bids) = table.get(&v) {
            for &bid in bids {
                out.push((bid, pid));
            }
        }
    }
    out
}

/// Build a bloom-filter-like membership set from a column selection and
/// test another selection against it — the push-down Q8 uses to cut CN↔DN
/// transfer (§VII-C). Returns the surviving probe-side selection.
pub fn semi_join_filter(
    build: &ColumnData,
    build_sel: &[u32],
    probe: &ColumnData,
    probe_sel: &[u32],
) -> Vec<u32> {
    let set: std::collections::HashSet<Value> =
        build_sel.iter().map(|&id| build.get(id as usize)).collect();
    probe_sel
        .iter()
        .copied()
        .filter(|&id| set.contains(&probe.get(id as usize)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polardbx_common::DataType;

    fn int_col(vals: &[Option<i64>]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Int);
        for v in vals {
            c.push(&v.map(Value::Int).unwrap_or(Value::Null)).unwrap();
        }
        c
    }

    fn all(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn filter_cmp_int() {
        let c = int_col(&[Some(1), Some(5), None, Some(10), Some(5)]);
        let sel = all(5);
        assert_eq!(filter_cmp(&c, &sel, CmpOp::Eq, &Value::Int(5)).unwrap(), vec![1, 4]);
        assert_eq!(filter_cmp(&c, &sel, CmpOp::Gt, &Value::Int(4)).unwrap(), vec![1, 3, 4]);
        assert_eq!(filter_cmp(&c, &sel, CmpOp::Le, &Value::Int(1)).unwrap(), vec![0]);
        // NULL row 2 never matches.
        assert_eq!(filter_cmp(&c, &sel, CmpOp::Neq, &Value::Int(-1)).unwrap().len(), 4);
    }

    #[test]
    fn filter_respects_selection_vector() {
        let c = int_col(&[Some(1), Some(2), Some(3)]);
        let sel = vec![0u32, 2];
        assert_eq!(filter_cmp(&c, &sel, CmpOp::Ge, &Value::Int(2)).unwrap(), vec![2]);
    }

    #[test]
    fn between_and_prefix() {
        let c = int_col(&[Some(1), Some(5), Some(8), Some(12)]);
        assert_eq!(
            filter_between(&c, &all(4), &Value::Int(5), &Value::Int(10)).unwrap(),
            vec![1, 2]
        );
        let mut s = ColumnData::new(DataType::Str);
        for v in ["PROMO A", "REGULAR", "PROMO B"] {
            s.push(&Value::str(v)).unwrap();
        }
        assert_eq!(filter_prefix(&s, &all(3), "PROMO").unwrap(), vec![0, 2]);
    }

    #[test]
    fn aggregates() {
        let c = int_col(&[Some(1), Some(2), None, Some(4)]);
        let sel = all(4);
        assert_eq!(sum(&c, &sel).unwrap(), 7.0);
        assert_eq!(count(&c, &sel), 3);
        let (mn, mx) = min_max(&c, &sel);
        assert_eq!(mn, Some(Value::Int(1)));
        assert_eq!(mx, Some(Value::Int(4)));
        let (mn, mx) = min_max(&c, &[]);
        assert_eq!((mn, mx), (None, None));
    }

    #[test]
    fn group_by_hash() {
        let c = int_col(&[Some(1), Some(2), Some(1), Some(2), Some(1)]);
        let groups = hash_group(&[&c], &all(5));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&vec![Value::Int(1)]], vec![0, 2, 4]);
        assert_eq!(groups[&vec![Value::Int(2)]], vec![1, 3]);
    }

    #[test]
    fn cmp_cols_kernel() {
        let a = int_col(&[Some(1), Some(5), Some(3), None]);
        let b = int_col(&[Some(2), Some(4), Some(3), Some(9)]);
        assert_eq!(filter_cmp_cols(&a, &b, &all(4), CmpOp::Lt).unwrap(), vec![0]);
        assert_eq!(filter_cmp_cols(&a, &b, &all(4), CmpOp::Gt).unwrap(), vec![1]);
        assert_eq!(filter_cmp_cols(&a, &b, &all(4), CmpOp::Eq).unwrap(), vec![2]);
    }

    #[test]
    fn join_kernels() {
        let build = int_col(&[Some(1), Some(2), Some(3)]);
        let probe = int_col(&[Some(2), Some(2), Some(4), None]);
        let pairs = hash_join(&build, &all(3), &probe, &all(4));
        assert_eq!(pairs, vec![(1, 0), (1, 1)]);
        let surviving = semi_join_filter(&build, &all(3), &probe, &all(4));
        assert_eq!(surviving, vec![0, 1]);
    }

    #[test]
    fn type_errors_surface() {
        let c = int_col(&[Some(1)]);
        assert!(filter_prefix(&c, &all(1), "x").is_err());
        let mut s = ColumnData::new(DataType::Str);
        s.push(&Value::str("a")).unwrap();
        assert!(sum(&s, &all(1)).is_err());
        assert!(filter_cmp(&c, &all(1), CmpOp::Eq, &Value::str("a")).is_err());
    }
}
