//! In-memory column index (§VI-E of the paper).
//!
//! "PolarDB-X supports an in-memory column index on its DN … implemented
//! as an in-memory columnar representation of the selected or indexed
//! columns in row store. The logical operations on the indexed column are
//! captured from the log and converted to the corresponding operations on
//! the index. … A record in column index has its trx_id being consistent
//! with that in InnoDB," which lets hybrid plans read row and column
//! stores under one snapshot. "To further mitigate the maintenance
//! overhead … its updates can be delayed and batched."
//!
//! * [`mod@column`] — typed column vectors with null bitmaps,
//! * [`index`] — the per-table columnar replica with commit-timestamp
//!   visibility (insert/update/delete as append + tombstone),
//! * [`maintain`] — redo-log capture with delayed, batched application and
//!   a lagging index version,
//! * [`kernels`] — the vectorized scan/filter/aggregate/join primitives the
//!   MPP executor's columnar operators call into.

pub mod column;
pub mod index;
pub mod kernels;
pub mod maintain;

pub use column::ColumnData;
pub use index::{ColumnIndex, ColumnSnapshot};
pub use maintain::ColumnIndexMaintainer;
