//! Lightweight metrics used by the benchmark harnesses.
//!
//! The figure-reproduction binaries need throughput counters (tpmC, qps),
//! latency histograms (percentiles for sysbench/TPC-H latency) and windowed
//! time series (the tpmC-over-time curves of Fig 9a). Everything here is
//! thread-safe and allocation-light on the hot path.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::time::{mono_now, Timer};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (between chaos-test phases / bench rounds).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Latency histogram with logarithmic buckets from 1 µs to ~17 s.
///
/// Percentile queries are approximate (bucket upper bound) which is plenty
/// for reproducing the *shape* of the paper's latency comparisons.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

const BUCKETS: usize = 48; // 2^(i/2) µs spacing covers 1 µs .. ~16 s

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    fn bucket_for(micros: u64) -> usize {
        if micros <= 1 {
            return 0;
        }
        // Two buckets per power of two.
        let log2 = 63 - micros.leading_zeros() as u64;
        let half = if micros >= (1 << log2) + (1 << log2.saturating_sub(1)) { 1 } else { 0 };
        ((log2 * 2 + half) as usize).min(BUCKETS - 1)
    }

    fn bucket_upper(idx: usize) -> u64 {
        let log2 = idx as u64 / 2;
        let base = 1u64 << log2;
        if idx.is_multiple_of(2) { base + base / 2 } else { base * 2 }
    }

    /// Record one latency observation.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros() as u64;
        self.buckets[Self::bucket_for(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        let c = self.count();
        if c == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed) / c)
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros.load(Ordering::Relaxed))
    }

    /// Approximate percentile (0.0..=1.0).
    pub fn percentile(&self, p: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64) * p).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(Self::bucket_upper(i));
            }
        }
        self.max()
    }
}

/// Histogram over plain `u64` values (group sizes, batch byte counts) with
/// the same logarithmic bucketing as [`Histogram`] but value-typed
/// accessors. Used by the group-commit metrics, where "how many committers
/// shared this flush" is a count, not a latency.
#[derive(Debug)]
pub struct ValueHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for ValueHistogram {
    fn default() -> Self {
        ValueHistogram::new()
    }
}

impl ValueHistogram {
    /// New empty histogram.
    pub fn new() -> ValueHistogram {
        ValueHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Histogram::bucket_for(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            return 0.0;
        }
        self.sum() as f64 / c as f64
    }

    /// Maximum observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate percentile (bucket upper bound), 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Histogram::bucket_upper(i);
            }
        }
        self.max()
    }

    /// Reset to empty (between bench rounds).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Windowed throughput series: counts events into fixed-width time windows
/// so harnesses can print "tpmC over time" curves (Fig 9a).
#[derive(Debug)]
pub struct ThroughputSeries {
    start: Duration,
    window: Duration,
    counts: Mutex<Vec<u64>>,
}

impl ThroughputSeries {
    /// Start a series with the given window width.
    pub fn new(window: Duration) -> ThroughputSeries {
        ThroughputSeries { start: mono_now(), window, counts: Mutex::new(Vec::new()) }
    }

    /// Record `n` events at "now".
    pub fn record(&self, n: u64) {
        let elapsed = mono_now().saturating_sub(self.start);
        let idx = (elapsed.as_nanos() / self.window.as_nanos()) as usize;
        let mut counts = self.counts.lock();
        if counts.len() <= idx {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += n;
    }

    /// Snapshot of per-window counts.
    pub fn windows(&self) -> Vec<u64> {
        self.counts.lock().clone()
    }

    /// Per-window rate in events/second.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let w = self.window.as_secs_f64();
        self.windows().iter().map(|&c| c as f64 / w).collect()
    }
}

/// Convenience: time a closure and record it into a histogram.
pub fn timed<T>(hist: &Histogram, f: impl FnOnce() -> T) -> T {
    let t0 = Timer::start();
    let out = f();
    hist.record(t0.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn histogram_percentiles_monotonic() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99, "{p50:?} > {p99:?}");
        assert!(p50 >= Duration::from_micros(400) && p50 <= Duration::from_micros(1200));
        assert!(h.mean() >= Duration::from_micros(300));
        assert!(h.max() >= Duration::from_micros(1000));
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn bucket_mapping_monotonic() {
        let mut prev = 0;
        for micros in [1u64, 2, 3, 7, 8, 100, 1000, 65_536, 10_000_000] {
            let b = Histogram::bucket_for(micros);
            assert!(b >= prev, "bucket decreased at {micros}");
            prev = b;
        }
    }

    #[test]
    fn value_histogram_tracks_counts() {
        let h = ValueHistogram::new();
        for v in [1u64, 1, 2, 4, 32, 32, 32, 64] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 168);
        assert!((h.mean() - 21.0).abs() < 1e-9);
        assert_eq!(h.max(), 64);
        assert!(h.percentile(0.5) >= 2 && h.percentile(0.5) <= 8);
        assert!(h.percentile(1.0) >= 64);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.9), 0);
    }

    #[test]
    fn throughput_series_windows() {
        let s = ThroughputSeries::new(Duration::from_millis(10));
        s.record(5);
        std::thread::sleep(Duration::from_millis(25));
        s.record(3);
        let w = s.windows();
        assert!(w.len() >= 2);
        assert_eq!(w.iter().sum::<u64>(), 8);
    }
}
