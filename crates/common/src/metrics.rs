//! Lightweight metrics used by the benchmark harnesses.
//!
//! The figure-reproduction binaries need throughput counters (tpmC, qps),
//! latency histograms (percentiles for sysbench/TPC-H latency) and windowed
//! time series (the tpmC-over-time curves of Fig 9a). Everything here is
//! thread-safe and allocation-light on the hot path.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::time::{mono_now, Timer};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (between chaos-test phases / bench rounds).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Latency histogram with logarithmic buckets from 1 µs to ~17 s.
///
/// Percentile queries are approximate (bucket upper bound) which is plenty
/// for reproducing the *shape* of the paper's latency comparisons.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

const BUCKETS: usize = 48; // 2^(i/2) µs spacing covers 1 µs .. ~16 s

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    fn bucket_for(micros: u64) -> usize {
        if micros <= 1 {
            return 0;
        }
        // Two buckets per power of two.
        let log2 = 63 - micros.leading_zeros() as u64;
        let half = if micros >= (1 << log2) + (1 << log2.saturating_sub(1)) { 1 } else { 0 };
        ((log2 * 2 + half) as usize).min(BUCKETS - 1)
    }

    fn bucket_upper(idx: usize) -> u64 {
        let log2 = idx as u64 / 2;
        let base = 1u64 << log2;
        if idx.is_multiple_of(2) { base + base / 2 } else { base * 2 }
    }

    /// Record one latency observation.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros() as u64;
        self.buckets[Self::bucket_for(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        let c = self.count();
        if c == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed) / c)
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros.load(Ordering::Relaxed))
    }

    /// Approximate percentile (0.0..=1.0).
    pub fn percentile(&self, p: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64) * p).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(Self::bucket_upper(i));
            }
        }
        self.max()
    }
}

/// Histogram over plain `u64` values (group sizes, batch byte counts) with
/// the same logarithmic bucketing as [`Histogram`] but value-typed
/// accessors. Used by the group-commit metrics, where "how many committers
/// shared this flush" is a count, not a latency.
#[derive(Debug)]
pub struct ValueHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for ValueHistogram {
    fn default() -> Self {
        ValueHistogram::new()
    }
}

impl ValueHistogram {
    /// New empty histogram.
    pub fn new() -> ValueHistogram {
        ValueHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Histogram::bucket_for(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            return 0.0;
        }
        self.sum() as f64 / c as f64
    }

    /// Maximum observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate percentile (bucket upper bound), 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * p).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Histogram::bucket_upper(i);
            }
        }
        self.max()
    }

    /// Reset to empty (between bench rounds).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Windowed throughput series: counts events into fixed-width time windows
/// so harnesses can print "tpmC over time" curves (Fig 9a).
#[derive(Debug)]
pub struct ThroughputSeries {
    start: Duration,
    window: Duration,
    counts: Mutex<Vec<u64>>,
}

impl ThroughputSeries {
    /// Start a series with the given window width.
    pub fn new(window: Duration) -> ThroughputSeries {
        ThroughputSeries { start: mono_now(), window, counts: Mutex::new(Vec::new()) }
    }

    /// Record `n` events at "now".
    pub fn record(&self, n: u64) {
        let elapsed = mono_now().saturating_sub(self.start);
        let idx = (elapsed.as_nanos() / self.window.as_nanos()) as usize;
        let mut counts = self.counts.lock();
        if counts.len() <= idx {
            counts.resize(idx + 1, 0);
        }
        counts[idx] += n;
    }

    /// Snapshot of per-window counts.
    pub fn windows(&self) -> Vec<u64> {
        self.counts.lock().clone()
    }

    /// Per-window rate in events/second.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let w = self.window.as_secs_f64();
        self.windows().iter().map(|&c| c as f64 / w).collect()
    }
}

/// Convenience: time a closure and record it into a histogram.
pub fn timed<T>(hist: &Histogram, f: impl FnOnce() -> T) -> T {
    let t0 = Timer::start();
    let out = f();
    hist.record(t0.elapsed());
    out
}

// ---- HDR-style latency histogram -------------------------------------

/// Linear sub-buckets per octave: 32 → worst-case relative error 1/32
/// (~3.1%), fine enough to compare tail percentiles across scenarios
/// (the coarse [`Histogram`] above has ~41% buckets — fine for shapes,
/// too blunt for a "p99 within 3×" bar).
const HDR_SUB_BITS: u32 = 5;
const HDR_SUBS: usize = 1 << HDR_SUB_BITS;
/// Highest representable exponent: values are clamped to < 2^36 µs (~19 h).
const HDR_MAX_EXP: u32 = 35;
const HDR_LEN: usize = (HDR_MAX_EXP as usize - HDR_SUB_BITS as usize + 2) * HDR_SUBS;

/// HDR-style latency histogram: exact below 32 µs, then 32 linear
/// sub-buckets per power of two, for ≤3.1% relative error at any
/// magnitude. Thread-safe, allocation-free after construction. Used by the
/// front-door load harness for p50/p99/p999 reporting.
#[derive(Debug)]
pub struct HdrHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
    min_micros: AtomicU64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        HdrHistogram::new()
    }
}

impl HdrHistogram {
    /// New empty histogram.
    pub fn new() -> HdrHistogram {
        HdrHistogram {
            counts: (0..HDR_LEN).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
            min_micros: AtomicU64::new(u64::MAX),
        }
    }

    fn index_of(micros: u64) -> usize {
        if micros < HDR_SUBS as u64 {
            return micros as usize;
        }
        let v = micros.min((1u64 << (HDR_MAX_EXP + 1)) - 1);
        let exp = 63 - v.leading_zeros(); // >= HDR_SUB_BITS
        let sub = ((v >> (exp - HDR_SUB_BITS)) & (HDR_SUBS as u64 - 1)) as usize;
        (exp - HDR_SUB_BITS + 1) as usize * HDR_SUBS + sub
    }

    /// Largest value mapping to bucket `idx` (percentiles report this, so
    /// they never under-estimate).
    fn upper_of(idx: usize) -> u64 {
        if idx < HDR_SUBS {
            return idx as u64;
        }
        let exp = (idx / HDR_SUBS) as u32 + HDR_SUB_BITS - 1;
        let sub = (idx % HDR_SUBS) as u64;
        ((sub + HDR_SUBS as u64 + 1) << (exp - HDR_SUB_BITS)) - 1
    }

    /// Record one latency observation.
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros() as u64);
    }

    /// Record a raw microsecond value.
    pub fn record_micros(&self, micros: u64) {
        self.counts[Self::index_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
        self.min_micros.fetch_min(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        let c = self.count();
        if c == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_micros.load(Ordering::Relaxed) / c)
    }

    /// Maximum observed latency.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros.load(Ordering::Relaxed))
    }

    /// Minimum observed latency (zero when empty).
    pub fn min(&self) -> Duration {
        let v = self.min_micros.load(Ordering::Relaxed);
        if v == u64::MAX { Duration::ZERO } else { Duration::from_micros(v) }
    }

    /// Percentile (0.0..=1.0) with ≤3.1% relative error; the exact max is
    /// returned at the top end.
    pub fn percentile(&self, p: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.counts.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(
                    Self::upper_of(i).min(self.max_micros.load(Ordering::Relaxed)),
                );
            }
        }
        self.max()
    }

    /// Fold another histogram's observations into this one.
    pub fn merge(&self, other: &HdrHistogram) {
        for (i, b) in other.counts.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                self.counts[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum_micros.fetch_add(other.sum_micros.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_micros.fetch_max(other.max_micros.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min_micros.fetch_min(other.min_micros.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reset to empty (between bench phases).
    pub fn reset(&self) {
        for b in &self.counts {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micros.store(0, Ordering::Relaxed);
        self.max_micros.store(0, Ordering::Relaxed);
        self.min_micros.store(u64::MAX, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn histogram_percentiles_monotonic() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p99, "{p50:?} > {p99:?}");
        assert!(p50 >= Duration::from_micros(400) && p50 <= Duration::from_micros(1200));
        assert!(h.mean() >= Duration::from_micros(300));
        assert!(h.max() >= Duration::from_micros(1000));
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn bucket_mapping_monotonic() {
        let mut prev = 0;
        for micros in [1u64, 2, 3, 7, 8, 100, 1000, 65_536, 10_000_000] {
            let b = Histogram::bucket_for(micros);
            assert!(b >= prev, "bucket decreased at {micros}");
            prev = b;
        }
    }

    #[test]
    fn value_histogram_tracks_counts() {
        let h = ValueHistogram::new();
        for v in [1u64, 1, 2, 4, 32, 32, 32, 64] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 168);
        assert!((h.mean() - 21.0).abs() < 1e-9);
        assert_eq!(h.max(), 64);
        assert!(h.percentile(0.5) >= 2 && h.percentile(0.5) <= 8);
        assert!(h.percentile(1.0) >= 64);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.9), 0);
    }

    #[test]
    fn hdr_exact_below_32us() {
        let h = HdrHistogram::new();
        for v in 0..32u64 {
            h.record_micros(v);
        }
        for v in 0..32u64 {
            assert_eq!(HdrHistogram::index_of(v), v as usize);
            assert_eq!(HdrHistogram::upper_of(v as usize), v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::from_micros(31));
    }

    #[test]
    fn hdr_relative_error_bounded() {
        // Every representable magnitude maps to a bucket whose upper bound
        // overestimates by at most 1/32 (the HDR guarantee).
        let mut v = 1u64;
        while v < 1 << 35 {
            for off in [0u64, 1, v / 3, v / 2, v - 1] {
                let x = v + off;
                let idx = HdrHistogram::index_of(x);
                let upper = HdrHistogram::upper_of(idx);
                assert!(upper >= x, "upper {upper} < value {x}");
                let err = (upper - x) as f64 / x as f64;
                assert!(err <= 1.0 / 32.0 + 1e-9, "error {err} at {x}");
            }
            v <<= 1;
        }
        // Clamped top end never panics.
        assert!(HdrHistogram::index_of(u64::MAX) < HDR_LEN);
    }

    #[test]
    fn hdr_percentiles_and_merge() {
        let a = HdrHistogram::new();
        let b = HdrHistogram::new();
        for i in 1..=900u64 {
            a.record(Duration::from_micros(i));
        }
        for i in 901..=1000u64 {
            b.record(Duration::from_micros(i * 10));
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.percentile(0.5).as_micros() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        let p999 = a.percentile(0.999);
        assert!(p999 >= Duration::from_micros(9500), "p999 {p999:?}");
        assert!(a.percentile(0.5) <= a.percentile(0.99));
        assert!(a.percentile(0.99) <= a.percentile(0.999));
        assert!(a.percentile(1.0) <= a.max());
        a.reset();
        assert_eq!(a.count(), 0);
        assert_eq!(a.percentile(0.999), Duration::ZERO);
    }

    #[test]
    fn throughput_series_windows() {
        let s = ThroughputSeries::new(Duration::from_millis(10));
        s.record(5);
        std::thread::sleep(Duration::from_millis(25));
        s.record(3);
        let w = s.windows();
        assert!(w.len() >= 2);
        assert_eq!(w.iter().sum::<u64>(), 8);
    }
}
