//! Shared foundation types for the PolarDB-X reproduction.
//!
//! Every other crate in the workspace builds on these definitions: strongly
//! typed identifiers for cluster entities (datacenters, nodes, shards,
//! tenants), log sequence numbers, SQL values and rows with an
//! order-preserving key encoding, table schemas with partitioning metadata,
//! and lightweight metrics used by the benchmark harnesses.

pub mod error;
pub mod history;
pub mod ids;
pub mod key;
pub mod metrics;
pub mod row;
pub mod schema;
pub mod tenant;
pub mod testseed;
pub mod time;
pub mod value;

pub use error::{Error, Result};
pub use history::{HistoryRecorder, TxnEvent, VersionRef};
pub use ids::{DcId, IdGenerator, Lsn, NodeId, ShardId, TableId, TenantId, TrxId};
pub use key::Key;
pub use row::Row;
pub use schema::{ColumnDef, DataType, IndexDef, IndexKind, PartitionSpec, TableSchema};
pub use tenant::{TenantMeta, TenantQuotas};
pub use testseed::{format_seed, seed_from_env};
pub use value::Value;
