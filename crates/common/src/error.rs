//! Unified error type shared across the workspace.

use std::fmt;

/// Result alias used throughout the PolarDB-X reproduction.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by any layer of the system.
///
/// The variants mirror the failure classes the paper's components expose:
/// transaction aborts (write conflicts, SI violations), routing errors
/// (tenant not bound to this RW node), consensus errors (not leader, lease
/// lost), and plain validation/catalog errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A write-write conflict forced the transaction to abort.
    WriteConflict { key: String },
    /// The transaction was aborted (explicitly or by the system).
    TxnAborted { reason: String },
    /// 2PC prepare was rejected by a participant.
    PrepareRejected { participant: String, reason: String },
    /// A statement was routed to a node that does not own the tenant/shard.
    NotOwner { tenant: u64, node: u64 },
    /// The node's lease on a tenant binding or leadership expired.
    LeaseLost { holder: u64 },
    /// A consensus operation was submitted to a non-leader replica.
    NotLeader { leader_hint: Option<u64> },
    /// Quorum could not be reached (partition or too many failures).
    NoQuorum { acks: usize, needed: usize },
    /// Catalog lookup failed.
    UnknownTable { name: String },
    /// Catalog lookup failed for a column.
    UnknownColumn { name: String },
    /// Schema-level validation failure (duplicate table, bad partition count…).
    Schema { message: String },
    /// SQL text could not be parsed.
    Parse { message: String, position: usize },
    /// The planner could not produce a plan for a legal query.
    Plan { message: String },
    /// Executor runtime failure (type mismatch, overflow, missing resource).
    Execution { message: String },
    /// Memory quota for a workload group was exhausted and could not preempt.
    MemoryExhausted { group: String, requested: usize },
    /// A storage-layer invariant failed (corrupt page, bad LSN order…).
    Storage { message: String },
    /// The simulated network dropped or could not route a message.
    Network { message: String },
    /// Row not found when one was required.
    KeyNotFound,
    /// Duplicate key on insert into a unique index / primary key.
    DuplicateKey { key: String },
    /// The operation timed out.
    Timeout { what: String },
    /// Traffic control rejected the statement (concurrency limit reached).
    Throttled { rule: String },
    /// Generic invalid-argument error.
    Invalid { message: String },
    /// A shared reference to one error delivered to many waiters (e.g.
    /// every committer of a failed group-commit era or epoch): cloning is
    /// a refcount bump, not a deep copy of the inner error's strings.
    Shared(std::sync::Arc<Error>),
}

impl Error {
    /// Convenience constructor for execution errors.
    pub fn execution(msg: impl Into<String>) -> Self {
        Error::Execution { message: msg.into() }
    }

    /// Convenience constructor for invalid-argument errors.
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::Invalid { message: msg.into() }
    }

    /// Convenience constructor for storage invariant violations.
    pub fn storage(msg: impl Into<String>) -> Self {
        Error::Storage { message: msg.into() }
    }

    /// The underlying error with any [`Error::Shared`] layers unwrapped.
    /// Callers that match on a kind (`NoQuorum`, `Timeout`, …) should
    /// match on the root, since durability errors fanned out to many
    /// waiters arrive wrapped.
    pub fn root(&self) -> &Error {
        let mut e = self;
        while let Error::Shared(inner) = e {
            e = inner;
        }
        e
    }

    /// True when retrying the whole transaction may succeed (conflicts,
    /// lease races, throttling) as opposed to deterministic failures.
    pub fn is_retryable(&self) -> bool {
        if let Error::Shared(inner) = self {
            return inner.is_retryable();
        }
        matches!(
            self,
            Error::WriteConflict { .. }
                | Error::TxnAborted { .. }
                | Error::PrepareRejected { .. }
                | Error::NotOwner { .. }
                | Error::LeaseLost { .. }
                | Error::NotLeader { .. }
                | Error::Timeout { .. }
                | Error::Throttled { .. }
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::WriteConflict { key } => write!(f, "write-write conflict on key {key}"),
            Error::TxnAborted { reason } => write!(f, "transaction aborted: {reason}"),
            Error::PrepareRejected { participant, reason } => {
                write!(f, "prepare rejected by {participant}: {reason}")
            }
            Error::NotOwner { tenant, node } => {
                write!(f, "tenant {tenant} is not bound to node {node}")
            }
            Error::LeaseLost { holder } => write!(f, "lease lost by node {holder}"),
            Error::NotLeader { leader_hint } => match leader_hint {
                Some(l) => write!(f, "not leader; try node {l}"),
                None => write!(f, "not leader; leader unknown"),
            },
            Error::NoQuorum { acks, needed } => {
                write!(f, "no quorum: {acks} acks, {needed} needed")
            }
            Error::UnknownTable { name } => write!(f, "unknown table '{name}'"),
            Error::UnknownColumn { name } => write!(f, "unknown column '{name}'"),
            Error::Schema { message } => write!(f, "schema error: {message}"),
            Error::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            Error::Plan { message } => write!(f, "plan error: {message}"),
            Error::Execution { message } => write!(f, "execution error: {message}"),
            Error::MemoryExhausted { group, requested } => {
                write!(f, "memory exhausted in group {group} (requested {requested} bytes)")
            }
            Error::Storage { message } => write!(f, "storage error: {message}"),
            Error::Network { message } => write!(f, "network error: {message}"),
            Error::KeyNotFound => write!(f, "key not found"),
            Error::DuplicateKey { key } => write!(f, "duplicate key {key}"),
            Error::Timeout { what } => write!(f, "timeout waiting for {what}"),
            Error::Throttled { rule } => write!(f, "throttled by traffic-control rule {rule}"),
            Error::Invalid { message } => write!(f, "invalid argument: {message}"),
            Error::Shared(inner) => inner.fmt(f),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(Error::WriteConflict { key: "k".into() }.is_retryable());
        assert!(Error::NotLeader { leader_hint: None }.is_retryable());
        assert!(Error::Throttled { rule: "r".into() }.is_retryable());
        assert!(!Error::UnknownTable { name: "t".into() }.is_retryable());
        assert!(!Error::DuplicateKey { key: "k".into() }.is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = Error::NoQuorum { acks: 1, needed: 2 };
        assert!(e.to_string().contains("1 acks"));
        let e = Error::Parse { message: "bad token".into(), position: 7 };
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn shared_forwards_display_and_retryability() {
        let inner = std::sync::Arc::new(Error::NoQuorum { acks: 1, needed: 2 });
        let a = Error::Shared(std::sync::Arc::clone(&inner));
        let b = Error::Shared(inner);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "no quorum: 1 acks, 2 needed");
        assert!(!a.is_retryable());
        assert!(Error::Shared(std::sync::Arc::new(Error::Timeout { what: "t".into() }))
            .is_retryable());
    }
}
