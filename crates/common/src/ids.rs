//! Strongly typed identifiers for cluster entities.
//!
//! The paper's architecture names several kinds of nodes and data units:
//! datacenters (DC1..DC3), CN/DN/SN nodes, shards (hash partitions),
//! tenants (units of RW-node binding in PolarDB-MT), tables, transactions,
//! and redo-log positions (LSN). Newtypes prevent mixing them up.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A datacenter (availability zone). The evaluation deploys three.
    DcId,
    "dc"
);
id_type!(
    /// Any node in the cluster: CN, DN (RW/RO/logger replica) or SN.
    NodeId,
    "node"
);
id_type!(
    /// A hash partition of a table (or of a table group).
    ShardId,
    "shard"
);
id_type!(
    /// A tenant: the unit of binding to an RW node in PolarDB-MT (§V).
    TenantId,
    "tenant"
);
id_type!(
    /// A table in the catalog.
    TableId,
    "table"
);
id_type!(
    /// A transaction id; consistent between row store and column index (§VI-E).
    TrxId,
    "trx"
);

/// Log sequence number: a byte offset into the redo log stream, exactly as
/// InnoDB uses it. Orders redo records; `Lsn::ZERO` is "before any record".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The origin of the log.
    pub const ZERO: Lsn = Lsn(0);
    /// The largest representable LSN, used as an "infinite" bound.
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// Advance by `bytes` of log payload.
    pub fn advance(self, bytes: u64) -> Lsn {
        Lsn(self.0 + bytes)
    }

    /// Raw offset.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// Monotonic id generator, used for transaction ids and implicit primary
/// keys (the paper adds an invisible auto-increment BIGINT when a table has
/// no primary key, §II-B).
#[derive(Debug, Default)]
pub struct IdGenerator {
    next: AtomicU64,
}

impl IdGenerator {
    /// Start from 1 so that 0 can mean "unset".
    pub fn new() -> Self {
        IdGenerator { next: AtomicU64::new(1) }
    }

    /// Start from an explicit value (e.g. after recovery).
    pub fn starting_at(v: u64) -> Self {
        IdGenerator { next: AtomicU64::new(v) }
    }

    /// Allocate the next id.
    pub fn next_id(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Peek without allocating.
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(DcId(2).to_string(), "dc2");
        assert_eq!(TenantId(7).to_string(), "tenant7");
        assert_eq!(Lsn(42).to_string(), "lsn:42");
    }

    #[test]
    fn lsn_orders_and_advances() {
        let a = Lsn(10);
        let b = a.advance(5);
        assert!(a < b);
        assert_eq!(b, Lsn(15));
        assert!(Lsn::ZERO < a && a < Lsn::MAX);
    }

    #[test]
    fn id_generator_is_monotonic() {
        let g = IdGenerator::new();
        let a = g.next_id();
        let b = g.next_id();
        assert!(b > a);
        assert_eq!(g.peek(), b + 1);
    }

    #[test]
    fn id_generator_threads_unique() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let g = Arc::new(IdGenerator::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_id()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(all.len(), 4000);
    }
}
