//! Rows: ordered tuples of values matching a table schema.

use std::fmt;

use crate::error::{Error, Result};
use crate::key::Key;
use crate::value::Value;

/// A row of a table: values positionally aligned with the schema's columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// Empty row (used as a seed for projections).
    pub fn empty() -> Row {
        Row { values: Vec::new() }
    }

    /// Value at column `idx`.
    pub fn get(&self, idx: usize) -> Result<&Value> {
        self.values
            .get(idx)
            .ok_or_else(|| Error::execution(format!("column index {idx} out of range")))
    }

    /// Mutable value at column `idx`.
    pub fn set(&mut self, idx: usize, v: Value) -> Result<()> {
        let slot = self
            .values
            .get_mut(idx)
            .ok_or_else(|| Error::execution(format!("column index {idx} out of range")))?;
        *slot = v;
        Ok(())
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Project the given column indexes into a new row.
    pub fn project(&self, cols: &[usize]) -> Result<Row> {
        let mut vals = Vec::with_capacity(cols.len());
        for &c in cols {
            vals.push(self.get(c)?.clone());
        }
        Ok(Row::new(vals))
    }

    /// Encode the given columns as an order-preserving key.
    pub fn key_of(&self, cols: &[usize]) -> Result<Key> {
        let mut vals = Vec::with_capacity(cols.len());
        for &c in cols {
            vals.push(self.get(c)?.clone());
        }
        Ok(Key::encode(&vals))
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut vals = Vec::with_capacity(self.arity() + other.arity());
        vals.extend_from_slice(&self.values);
        vals.extend_from_slice(&other.values);
        Row::new(vals)
    }

    /// Approximate heap footprint for memory accounting.
    pub fn heap_size(&self) -> usize {
        24 + self.values.iter().map(Value::heap_size).sum::<usize>()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Row {
        Row::new(vec![Value::Int(1), Value::str("bob"), Value::Double(9.5)])
    }

    #[test]
    fn get_set_project() {
        let mut r = sample();
        assert_eq!(r.get(1).unwrap(), &Value::str("bob"));
        r.set(1, Value::str("alice")).unwrap();
        let p = r.project(&[2, 0]).unwrap();
        assert_eq!(p.values(), &[Value::Double(9.5), Value::Int(1)]);
        assert!(r.get(9).is_err());
        assert!(r.project(&[9]).is_err());
    }

    #[test]
    fn key_of_is_order_preserving() {
        let a = Row::new(vec![Value::Int(1), Value::str("a")]);
        let b = Row::new(vec![Value::Int(2), Value::str("a")]);
        assert!(a.key_of(&[0]).unwrap() < b.key_of(&[0]).unwrap());
    }

    #[test]
    fn concat_joins_rows() {
        let j = sample().concat(&Row::new(vec![Value::Null]));
        assert_eq!(j.arity(), 4);
        assert_eq!(j.get(3).unwrap(), &Value::Null);
    }
}
