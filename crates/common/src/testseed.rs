//! Seed plumbing for randomized tests.
//!
//! Chaos/isolation tests draw their RNG seeds through [`seed_from_env`] so
//! a red run is replayable: set `POLARDBX_TEST_SEED` (decimal or `0x`-hex)
//! to pin every seeded harness in the process to that seed, and print the
//! value on failure (the helpers here format it the way the variable
//! expects it back).

use std::env;

/// Environment variable overriding test seeds.
pub const SEED_ENV: &str = "POLARDBX_TEST_SEED";

/// The seed tests should use: `POLARDBX_TEST_SEED` if set and parseable
/// (decimal or `0x`-prefixed hex), otherwise `default`.
pub fn seed_from_env(default: u64) -> u64 {
    match env::var(SEED_ENV) {
        Ok(raw) => parse_seed(&raw).unwrap_or(default),
        Err(_) => default,
    }
}

/// Parse a seed string: decimal or `0x`-prefixed hex (underscores allowed).
pub fn parse_seed(raw: &str) -> Option<u64> {
    let s: String = raw.trim().chars().filter(|c| *c != '_').collect();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u64>().ok()
    }
}

/// Render a seed the way `POLARDBX_TEST_SEED` accepts it back.
pub fn format_seed(seed: u64) -> String {
    format!("0x{seed:x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xBAD_CAB1E"), Some(0xBAD_CAB1E));
        assert_eq!(parse_seed(" 0X10 "), Some(16));
        assert_eq!(parse_seed("nope"), None);
        assert_eq!(parse_seed(&format_seed(0xC4A0_5EED)), Some(0xC4A0_5EED));
    }
}
