//! History recording for isolation checking (Jepsen-style).
//!
//! A [`HistoryRecorder`] collects a totally-ordered log of transaction
//! events — begins, reads (with the version they observed), writes (with
//! the row they installed), per-node commits/aborts and arbiter decisions —
//! from every component willing to report them. The `sitcheck` crate
//! rebuilds per-key version orders and the direct serialization graph from
//! this log and checks Adya's phenomena against it.
//!
//! Recording is strictly opt-in: components hold an
//! `Option<Arc<HistoryRecorder>>` (or an atomic enable flag) that defaults
//! to off, so the production hot path pays nothing beyond a null/flag
//! check. The recorder itself is **lock-order-clean by construction**: its
//! single internal mutex is a leaf — [`HistoryRecorder::record`] never
//! calls back into any other component, so it can be invoked from any
//! context (including while the caller holds its own locks, though taps in
//! this codebase record after releasing theirs).

use parking_lot::Mutex;

use crate::ids::{NodeId, TableId, TrxId};
use crate::key::Key;
use crate::row::Row;

/// The version a read observed: who wrote it and (if the reader could see
/// a decision) the commit timestamp it was stamped with. `commit_ts` is
/// `None` when the reader observed its own uncommitted intent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionRef {
    /// The transaction that produced the observed version.
    pub writer: TrxId,
    /// Its commit timestamp, when decided at observation time.
    pub commit_ts: Option<u64>,
}

/// One event in a recorded history. The recorder's vector index is the
/// event's position in the global observation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnEvent {
    /// A coordinator opened a transaction at `snapshot_ts`.
    Begin {
        /// The transaction.
        trx: TrxId,
        /// The CN (session) that coordinates it.
        session: NodeId,
        /// HLC snapshot timestamp the transaction reads at.
        snapshot_ts: u64,
    },
    /// A snapshot read observed a version (or found the key absent).
    Read {
        /// The reading transaction.
        trx: TrxId,
        /// The node that served the read.
        node: NodeId,
        /// Table read.
        table: TableId,
        /// Key read.
        key: Key,
        /// Snapshot the read executed at.
        snapshot_ts: u64,
        /// The version observed; `None` = key absent at this snapshot.
        observed: Option<VersionRef>,
        /// True when served by an RO replica (apply/log order, not
        /// commit-timestamp order — the checker treats these reads with
        /// read-atomicity rules only).
        replica: bool,
    },
    /// A transaction installed a write intent.
    Write {
        /// The writing transaction.
        trx: TrxId,
        /// The DN that holds the row.
        node: NodeId,
        /// Table written.
        table: TableId,
        /// Key written.
        key: Key,
        /// The row content; `None` = delete (tombstone).
        row: Option<Row>,
    },
    /// A transaction committed (globally at the coordinator, or its local
    /// stamp on one DN — `node` tells which).
    Commit {
        /// The committed transaction.
        trx: TrxId,
        /// The node reporting the commit (CN for the global decision, DN
        /// for the local version stamp).
        node: NodeId,
        /// HLC commit timestamp.
        commit_ts: u64,
    },
    /// A transaction aborted on `node`.
    Abort {
        /// The aborted transaction.
        trx: TrxId,
        /// The node reporting the abort.
        node: NodeId,
    },
    /// The 2PC arbiter durably logged a decision for `trx`
    /// (`commit_ts = None` = abort).
    Decision {
        /// The decided transaction.
        trx: TrxId,
        /// The arbiter node.
        node: NodeId,
        /// Commit timestamp, or `None` for an abort decision.
        commit_ts: Option<u64>,
    },
    /// Free-form annotation (fault injections, leader elections, …) giving
    /// witness reports schedule context.
    Note {
        /// The node the annotation concerns.
        node: NodeId,
        /// Human-readable label.
        label: String,
    },
}

impl TxnEvent {
    /// The transaction this event belongs to, if any.
    pub fn trx(&self) -> Option<TrxId> {
        match self {
            TxnEvent::Begin { trx, .. }
            | TxnEvent::Read { trx, .. }
            | TxnEvent::Write { trx, .. }
            | TxnEvent::Commit { trx, .. }
            | TxnEvent::Abort { trx, .. }
            | TxnEvent::Decision { trx, .. } => Some(*trx),
            TxnEvent::Note { .. } => None,
        }
    }
}

/// Append-only, totally-ordered event log. See the module docs for the
/// locking discipline (single leaf mutex).
#[derive(Default)]
pub struct HistoryRecorder {
    events: Mutex<Vec<TxnEvent>>,
}

impl HistoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> std::sync::Arc<HistoryRecorder> {
        std::sync::Arc::new(HistoryRecorder::default())
    }

    /// Append one event. Leaf lock: never blocks on anything but the
    /// recorder's own mutex.
    pub fn record(&self, ev: TxnEvent) {
        self.events.lock().push(ev);
    }

    /// Append an annotation.
    pub fn note(&self, node: NodeId, label: impl Into<String>) {
        self.record(TxnEvent::Note { node, label: label.into() });
    }

    /// Copy of the history so far, in observation order.
    pub fn snapshot(&self) -> Vec<TxnEvent> {
        self.events.lock().clone()
    }

    /// Drain the history (resets the recorder for the next run).
    pub fn take(&self) -> Vec<TxnEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_drains() {
        let rec = HistoryRecorder::new();
        assert!(rec.is_empty());
        rec.record(TxnEvent::Begin { trx: TrxId(1), session: NodeId(9), snapshot_ts: 5 });
        rec.note(NodeId(2), "leader-elected");
        assert_eq!(rec.len(), 2);
        let events = rec.snapshot();
        assert_eq!(events[0].trx(), Some(TrxId(1)));
        assert_eq!(events[1].trx(), None);
        let drained = rec.take();
        assert_eq!(drained.len(), 2);
        assert!(rec.is_empty());
    }
}
