//! Order-preserving key encoding.
//!
//! Primary keys and secondary-index keys are encoded into byte strings whose
//! lexicographic order equals the SQL order of the underlying values. This is
//! the classic "memcomparable" encoding used by MySQL/InnoDB-compatible
//! distributed stores; hash partitioning (§II-B) hashes these bytes.

use std::fmt;

use crate::value::Value;

/// An encoded, order-preserving key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub Vec<u8>);

const TAG_NULL: u8 = 0x01;
const TAG_INT: u8 = 0x02;
const TAG_DOUBLE: u8 = 0x03;
const TAG_STR: u8 = 0x04;
const TAG_BYTES: u8 = 0x05;
const TAG_DATE: u8 = 0x06;

impl Key {
    /// Encode a composite key from `values`, preserving order.
    pub fn encode(values: &[Value]) -> Key {
        let mut out = Vec::with_capacity(values.len() * 9);
        for v in values {
            encode_value(v, &mut out);
        }
        Key(out)
    }

    /// Encode a single value.
    pub fn from_value(v: &Value) -> Key {
        Key::encode(std::slice::from_ref(v))
    }

    /// Decode the key back into its component values.
    ///
    /// Round-trips everything `encode` produces; used by index scans that
    /// need the original column values without a base-table lookup.
    pub fn decode(&self) -> Vec<Value> {
        let mut vals = Vec::new();
        let mut i = 0;
        let b = &self.0;
        while i < b.len() {
            let tag = b[i];
            i += 1;
            match tag {
                TAG_NULL => vals.push(Value::Null),
                TAG_INT => {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&b[i..i + 8]);
                    i += 8;
                    let flipped = u64::from_be_bytes(buf) ^ (1 << 63);
                    vals.push(Value::Int(flipped as i64));
                }
                TAG_DOUBLE => {
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(&b[i..i + 8]);
                    i += 8;
                    let enc = u64::from_be_bytes(buf);
                    let bits = if enc & (1 << 63) != 0 { enc ^ (1 << 63) } else { !enc };
                    vals.push(Value::Double(f64::from_bits(bits)));
                }
                TAG_STR | TAG_BYTES => {
                    let mut payload = Vec::new();
                    // Escaped encoding: 0x00 0xFF means a literal 0x00;
                    // 0x00 0x00 terminates the string.
                    loop {
                        let c = b[i];
                        i += 1;
                        if c == 0x00 {
                            let esc = b[i];
                            i += 1;
                            if esc == 0x00 {
                                break;
                            }
                            payload.push(0x00);
                        } else {
                            payload.push(c);
                        }
                    }
                    if tag == TAG_STR {
                        vals.push(Value::Str(String::from_utf8_lossy(&payload).into_owned()));
                    } else {
                        vals.push(Value::Bytes(payload));
                    }
                }
                TAG_DATE => {
                    let mut buf = [0u8; 4];
                    buf.copy_from_slice(&b[i..i + 4]);
                    i += 4;
                    let flipped = u32::from_be_bytes(buf) ^ (1 << 31);
                    vals.push(Value::Date(flipped as i32));
                }
                other => panic!("corrupt key encoding: tag {other:#x}"),
            }
        }
        vals
    }

    /// Raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Byte length of the encoded key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no values were encoded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The smallest key strictly greater than every key that has `self` as a
    /// prefix — used as an exclusive upper bound for prefix scans.
    pub fn prefix_successor(&self) -> Key {
        let mut b = self.0.clone();
        b.push(0xFF);
        b.push(0xFF);
        Key(b)
    }

    /// 64-bit hash of the encoded bytes (FNV-1a), used by hash partitioning.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in &self.0 {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            // Flip the sign bit so negative < positive lexicographically.
            let flipped = (*i as u64) ^ (1 << 63);
            out.extend_from_slice(&flipped.to_be_bytes());
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            // IEEE-754 order-preserving transform.
            let bits = d.to_bits();
            let enc = if bits & (1 << 63) == 0 { bits | (1 << 63) } else { !bits };
            out.extend_from_slice(&enc.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_escaped(s.as_bytes(), out);
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            encode_escaped(b, out);
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            let flipped = (*d as u32) ^ (1 << 31);
            out.extend_from_slice(&flipped.to_be_bytes());
        }
    }
}

/// NUL-escaped terminated byte string: 0x00 bytes are escaped to 0x00 0xFF
/// and the string ends with 0x00 0x00, so shorter prefixes order first.
fn encode_escaped(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        if b == 0x00 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key[")?;
        for (i, v) in self.decode().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(vs: &[Value]) -> Key {
        Key::encode(vs)
    }

    #[test]
    fn int_order_preserved() {
        let vals = [-5i64, -1, 0, 1, 100, i64::MIN, i64::MAX];
        let mut keys: Vec<(i64, Key)> =
            vals.iter().map(|&v| (v, k(&[Value::Int(v)]))).collect();
        keys.sort_by(|a, b| a.1.cmp(&b.1));
        let sorted: Vec<i64> = keys.iter().map(|(v, _)| *v).collect();
        let mut expect = vals.to_vec();
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn double_order_preserved() {
        let vals = [-1.5f64, -0.0, 0.0, 0.25, 3.5, f64::MIN, f64::MAX];
        let mut keys: Vec<(f64, Key)> =
            vals.iter().map(|&v| (v, k(&[Value::Double(v)]))).collect();
        keys.sort_by(|a, b| a.1.cmp(&b.1));
        for w in keys.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn string_prefix_orders_first() {
        assert!(k(&[Value::str("ab")]) < k(&[Value::str("abc")]));
        assert!(k(&[Value::str("ab")]) < k(&[Value::str("b")]));
    }

    #[test]
    fn embedded_nul_bytes_roundtrip() {
        let v = Value::Bytes(vec![0x00, 0x01, 0x00, 0x00, 0xFF]);
        let key = k(std::slice::from_ref(&v));
        assert_eq!(key.decode(), vec![v]);
    }

    #[test]
    fn composite_key_component_order_dominates() {
        let a = k(&[Value::Int(1), Value::str("zzz")]);
        let b = k(&[Value::Int(2), Value::str("aaa")]);
        assert!(a < b);
    }

    #[test]
    fn decode_roundtrip_mixed() {
        let vals = vec![
            Value::Null,
            Value::Int(-42),
            Value::Double(2.5),
            Value::str("hello"),
            Value::Bytes(vec![1, 2, 3]),
            Value::Date(19000),
        ];
        assert_eq!(Key::encode(&vals).decode(), vals);
    }

    #[test]
    fn prefix_successor_bounds_prefix_scans() {
        let p = k(&[Value::Int(7)]);
        let inside = k(&[Value::Int(7), Value::str("x")]);
        let outside = k(&[Value::Int(8)]);
        let upper = p.prefix_successor();
        assert!(inside < upper);
        assert!(upper < outside);
    }

    #[test]
    fn hash_is_stable() {
        let a = k(&[Value::Int(123)]);
        let b = k(&[Value::Int(123)]);
        assert_eq!(a.hash64(), b.hash64());
        assert_ne!(a.hash64(), k(&[Value::Int(124)]).hash64());
    }
}
