//! Injected monotonic time.
//!
//! Protocol code must not read ambient clocks (`Instant::now`,
//! `SystemTime::now`): chaos tests replay from a seed, and a wall-clock
//! read is a hidden input that breaks the replay. Instead, durations and
//! deadlines flow through [`mono_now`], a process-local monotonic reading
//! backed by a swappable [`TimeSource`]. Production uses the real
//! monotonic clock anchored at first use; tests may install a
//! [`ManualTime`] and advance it explicitly.
//!
//! This module is the one sanctioned home for the ambient read — it is on
//! polarlint's determinism allowlist, everything else goes through it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A monotonic time source. Readings are durations since an arbitrary
/// (source-local) origin; only differences are meaningful.
pub trait TimeSource: Send + Sync {
    /// Current monotonic reading.
    fn mono_now(&self) -> Duration;
}

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

static SOURCE: RwLock<Option<Arc<dyn TimeSource>>> = RwLock::new(None);

/// Monotonic reading from the installed source (or the real clock).
pub fn mono_now() -> Duration {
    if let Some(src) = SOURCE.read().expect("time source lock").as_ref() {
        return src.mono_now();
    }
    origin().elapsed()
}

/// Install a process-wide time source (tests). Affects every subsequent
/// [`mono_now`] caller; pair with [`reset_time_source`].
pub fn set_time_source(src: Arc<dyn TimeSource>) {
    *SOURCE.write().expect("time source lock") = Some(src);
}

/// Revert to the real monotonic clock.
pub fn reset_time_source() {
    *SOURCE.write().expect("time source lock") = None;
}

/// A hand-cranked time source for deterministic tests.
#[derive(Default)]
pub struct ManualTime {
    nanos: AtomicU64,
}

impl ManualTime {
    /// Starts at zero.
    pub fn new() -> ManualTime {
        ManualTime::default()
    }

    /// Move time forward.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl TimeSource for ManualTime {
    fn mono_now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

/// Elapsed-time measurement over [`mono_now`] — the drop-in replacement
/// for the `let t = Instant::now(); … t.elapsed()` pattern.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Duration,
}

impl Timer {
    /// Start measuring.
    pub fn start() -> Timer {
        Timer { start: mono_now() }
    }

    /// Time since [`Timer::start`].
    pub fn elapsed(&self) -> Duration {
        mono_now().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_now_is_monotonic() {
        let a = mono_now();
        let b = mono_now();
        assert!(b >= a);
    }

    #[test]
    fn manual_time_advances_only_by_hand() {
        let mt = ManualTime::new();
        assert_eq!(mt.mono_now(), Duration::ZERO);
        mt.advance(Duration::from_millis(250));
        assert_eq!(mt.mono_now(), Duration::from_millis(250));
    }

    #[test]
    fn timer_measures_elapsed() {
        let t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.elapsed() >= Duration::from_millis(1));
    }
}
