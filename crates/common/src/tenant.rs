//! Front-door tenant metadata.
//!
//! The SQL front door admits queries per tenant: every wire connection
//! handshakes with a tenant id, and the admission controller enforces that
//! tenant's quotas (token-bucket rate limit, concurrent-query cap,
//! connection cap). The quotas live in the GMS tenant catalog — the
//! control plane owns them, the front door only reads them — so they are
//! defined here in `common`, below both crates in the dependency graph.

use crate::TenantId;

/// Admission-control quotas for one tenant.
///
/// A query is admitted when the tenant's token bucket holds at least one
/// token *and* its in-flight query count is below `max_concurrent`;
/// otherwise it bounces with a retryable `Throttled` error — the front
/// door never queues unboundedly on behalf of a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQuotas {
    /// Token-bucket refill rate: sustained queries per second.
    pub rate_per_sec: f64,
    /// Token-bucket depth: how large a burst is absorbed before rate
    /// limiting kicks in.
    pub burst: f64,
    /// Maximum in-flight queries; the N+1st bounces retryably.
    pub max_concurrent: u32,
    /// Maximum concurrent wire connections.
    pub max_connections: u32,
}

impl TenantQuotas {
    /// Quotas that never throttle (system tenants, benchmark drivers
    /// measuring the un-throttled path).
    pub fn unlimited() -> TenantQuotas {
        TenantQuotas {
            rate_per_sec: f64::INFINITY,
            burst: f64::INFINITY,
            max_concurrent: u32::MAX,
            max_connections: u32::MAX,
        }
    }

    /// Rate-limited quotas with a burst allowance.
    pub fn rate_limited(rate_per_sec: f64, burst: f64) -> TenantQuotas {
        TenantQuotas { rate_per_sec, burst, ..TenantQuotas::unlimited() }
    }

    /// Cap in-flight queries.
    pub fn with_max_concurrent(mut self, n: u32) -> TenantQuotas {
        self.max_concurrent = n;
        self
    }

    /// Cap concurrent connections.
    pub fn with_max_connections(mut self, n: u32) -> TenantQuotas {
        self.max_connections = n;
        self
    }
}

impl Default for TenantQuotas {
    fn default() -> TenantQuotas {
        TenantQuotas::unlimited()
    }
}

/// One tenant catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMeta {
    /// Stable tenant id (the wire handshake carries its raw value).
    pub id: TenantId,
    /// Human-readable name.
    pub name: String,
    /// Admission quotas.
    pub quotas: TenantQuotas,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let q = TenantQuotas::rate_limited(100.0, 10.0)
            .with_max_concurrent(4)
            .with_max_connections(2);
        assert_eq!(q.rate_per_sec, 100.0);
        assert_eq!(q.burst, 10.0);
        assert_eq!(q.max_concurrent, 4);
        assert_eq!(q.max_connections, 2);
        let u = TenantQuotas::unlimited();
        assert!(u.rate_per_sec.is_infinite());
        assert_eq!(u.max_concurrent, u32::MAX);
    }
}
