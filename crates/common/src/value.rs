//! SQL values.
//!
//! A deliberately small, MySQL-flavoured type lattice: 64-bit integers,
//! doubles, strings, raw bytes, dates (days since epoch) and NULL. This is
//! enough to express the sysbench, TPC-C and TPC-H schemas used in the
//! paper's evaluation.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// A single SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares less than every non-null value (index ordering).
    Null,
    /// BIGINT.
    Int(i64),
    /// DOUBLE.
    Double(f64),
    /// VARCHAR / CHAR / TEXT.
    Str(String),
    /// VARBINARY.
    Bytes(Vec<u8>),
    /// DATE stored as days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True when the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as integer, coercing doubles; errors on other types.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Double(v) => Ok(*v as i64),
            other => Err(Error::execution(format!("expected integer, got {other}"))),
        }
    }

    /// Interpret as double, coercing integers; errors on other types.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            Value::Double(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(Error::execution(format!("expected double, got {other}"))),
        }
    }

    /// Interpret as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::execution(format!("expected string, got {other}"))),
        }
    }

    /// Interpret as a date (days since epoch).
    pub fn as_date(&self) -> Result<i32> {
        match self {
            Value::Date(d) => Ok(*d),
            Value::Int(v) => Ok(*v as i32),
            other => Err(Error::execution(format!("expected date, got {other}"))),
        }
    }

    /// Approximate in-memory footprint, used by the executor's memory
    /// accounting (TP/AP memory regions, §VI-D).
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Double(_) | Value::Date(_) => 8,
            Value::Str(s) => s.len() + 24,
            Value::Bytes(b) => b.len() + 24,
        }
    }

    /// SQL comparison with NULL ordered first and numeric cross-type
    /// comparison (Int vs Double) allowed. Returns `None` for incomparable
    /// type pairs (e.g. Int vs Str), which the executor treats as an error.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bytes(a), Bytes(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Date(a), Int(b)) => Some((*a as i64).cmp(b)),
            (Int(a), Date(b)) => Some(a.cmp(&(*b as i64))),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }
}

// Total ordering is required to use Value inside BTree keys; incomparable
// pairs fall back to a type-rank ordering so the total order is consistent.
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sql_cmp(other).unwrap_or_else(|| self.type_rank().cmp(&other.type_rank()))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash numerics through their i64/bit representation so that
            // Int(1) and Double(1.0) — which compare equal — hash equally
            // only when identical variant; grouping keys normalize first.
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Double(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                4u8.hash(state);
                b.hash(state);
            }
            Value::Date(d) => {
                5u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl Value {
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Double(_) => 2,
            Value::Str(_) => 3,
            Value::Bytes(_) => 4,
            Value::Date(_) => 5,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => write!(f, "x'{}'", b.iter().map(|x| format!("{x:02x}")).collect::<String>()),
            Value::Date(d) => write!(f, "date({d})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(-100)), Some(Ordering::Less));
        assert_eq!(Value::Int(0).sql_cmp(&Value::Null), Some(Ordering::Greater));
        assert_eq!(Value::Null.sql_cmp(&Value::Null), Some(Ordering::Equal));
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Double(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(2).sql_cmp(&Value::Double(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Double(3.0).sql_cmp(&Value::Int(2)), Some(Ordering::Greater));
    }

    #[test]
    fn incomparable_types_are_none_but_total_order_holds() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("a")), None);
        // Ord falls back to type rank so sorting mixed vectors is stable.
        let mut v = [Value::str("a"), Value::Int(1), Value::Null];
        v.sort();
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Int(1));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Double(3.7).as_int().unwrap(), 3);
        assert_eq!(Value::Int(3).as_double().unwrap(), 3.0);
        assert!(Value::str("x").as_int().is_err());
        assert_eq!(Value::Date(100).as_date().unwrap(), 100);
    }

    #[test]
    fn heap_size_tracks_payload() {
        assert!(Value::str("hello world").heap_size() > Value::Int(1).heap_size());
        assert_eq!(Value::Null.heap_size(), 0);
    }
}
