//! Table schemas, partitioning specifications and index definitions.
//!
//! Mirrors §II-B of the paper: tables are hash-partitioned on the primary
//! key (an implicit auto-increment BIGINT key is added when none is
//! declared); indexes are either *local* (partitioned like the table, no
//! distributed transaction on update) or *global* (partitioned by the
//! indexed columns, stored as a hidden table, optionally *clustered* to
//! carry all columns); and tables sharing a partition key can be grouped
//! into a *table group* so equi-joins become partition-wise.


use crate::error::{Error, Result};
use crate::ids::TableId;
use crate::key::Key;
use crate::row::Row;
use crate::value::Value;

/// Column data types (MySQL-flavoured subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer (BIGINT / INT).
    Int,
    /// Double-precision float (DOUBLE / DECIMAL approximated).
    Double,
    /// Variable-length string (VARCHAR / CHAR / TEXT).
    Str,
    /// Raw bytes (VARBINARY).
    Bytes,
    /// Days-since-epoch date (DATE).
    Date,
}

impl DataType {
    /// Whether `v` inhabits this type (NULL inhabits every type).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (DataType::Int, Value::Int(_))
                | (DataType::Double, Value::Double(_))
                | (DataType::Double, Value::Int(_))
                | (DataType::Str, Value::Str(_))
                | (DataType::Bytes, Value::Bytes(_))
                | (DataType::Date, Value::Date(_))
                | (DataType::Date, Value::Int(_))
        )
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-insensitive in SQL; stored lowercase).
    pub name: String,
    /// Data type.
    pub ty: DataType,
    /// NOT NULL constraint.
    pub not_null: bool,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> ColumnDef {
        ColumnDef { name: name.into().to_ascii_lowercase(), ty, not_null: false }
    }

    /// Mark NOT NULL.
    pub fn not_null(mut self) -> ColumnDef {
        self.not_null = true;
        self
    }
}

/// How a table (or global index) is split into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Hash partitioning on the named columns into `shards` partitions —
    /// the default in PolarDB-X (§II-B) because it spreads load and avoids
    /// the last-shard hotspot of range partitioning on ascending keys.
    Hash { columns: Vec<String>, shards: u32 },
    /// A single unpartitioned shard (small dimension tables, system tables).
    Single,
}

impl PartitionSpec {
    /// Number of shards this spec produces.
    pub fn shard_count(&self) -> u32 {
        match self {
            PartitionSpec::Hash { shards, .. } => *shards,
            PartitionSpec::Single => 1,
        }
    }

    /// Partition columns (empty for `Single`).
    pub fn columns(&self) -> &[String] {
        match self {
            PartitionSpec::Hash { columns, .. } => columns,
            PartitionSpec::Single => &[],
        }
    }
}

/// Kinds of secondary indexes (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Partitioned by the table's partition key; maintained locally within
    /// the shard, so no distributed transaction is needed on update.
    Local,
    /// Partitioned by the indexed columns; stored as a hidden table and
    /// maintained inside the same distributed transaction as the base row.
    /// Holds the indexed columns + primary key.
    GlobalNonClustered,
    /// Like `GlobalNonClustered` but carries *all* columns so lookups never
    /// fan out to the primary index shards.
    GlobalClustered,
}

/// A secondary index definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name.
    pub name: String,
    /// Indexed column names, in key order.
    pub columns: Vec<String>,
    /// Local / global (clustered or not).
    pub kind: IndexKind,
    /// Unique constraint.
    pub unique: bool,
}

/// A table schema with partitioning and indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Catalog id (assigned by GMS).
    pub id: TableId,
    /// Table name (stored lowercase).
    pub name: String,
    /// Columns in declaration order. If the user declared no primary key, a
    /// trailing invisible `__implicit_pk` BIGINT column is appended.
    pub columns: Vec<ColumnDef>,
    /// Indexes of the primary-key columns within `columns`.
    pub primary_key: Vec<usize>,
    /// True when the primary key was synthesized (invisible to users).
    pub implicit_pk: bool,
    /// Partitioning rule.
    pub partition: PartitionSpec,
    /// Secondary indexes.
    pub indexes: Vec<IndexDef>,
    /// Optional table group name; members share partition rule + placement.
    pub table_group: Option<String>,
}

impl TableSchema {
    /// Build a schema, validating the primary key and appending an implicit
    /// one when `primary_key` is empty (as PolarDB-X does, §II-B).
    pub fn new(
        id: TableId,
        name: impl Into<String>,
        mut columns: Vec<ColumnDef>,
        primary_key: Vec<String>,
        partition: PartitionSpec,
    ) -> Result<TableSchema> {
        let name = name.into().to_ascii_lowercase();
        if columns.is_empty() {
            return Err(Error::Schema { message: format!("table {name} has no columns") });
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(Error::Schema {
                    message: format!("duplicate column {} in table {name}", c.name),
                });
            }
        }
        let (pk_idx, implicit_pk) = if primary_key.is_empty() {
            columns.push(ColumnDef::new("__implicit_pk", DataType::Int).not_null());
            (vec![columns.len() - 1], true)
        } else {
            let mut idx = Vec::with_capacity(primary_key.len());
            for pk in &primary_key {
                let pk = pk.to_ascii_lowercase();
                let pos = columns
                    .iter()
                    .position(|c| c.name == pk)
                    .ok_or_else(|| Error::UnknownColumn { name: pk.clone() })?;
                idx.push(pos);
            }
            (idx, false)
        };
        // Validate partition columns exist.
        for pc in partition.columns() {
            let pc = pc.to_ascii_lowercase();
            if !columns.iter().any(|c| c.name == pc) {
                return Err(Error::UnknownColumn { name: pc });
            }
        }
        if partition.shard_count() == 0 {
            return Err(Error::Schema { message: "shard count must be positive".into() });
        }
        Ok(TableSchema {
            id,
            name,
            columns,
            primary_key: pk_idx,
            implicit_pk,
            partition,
            indexes: Vec::new(),
            table_group: None,
        })
    }

    /// Default partitioning: hash on the primary key (§II-B).
    pub fn hash_on_pk(
        id: TableId,
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: Vec<String>,
        shards: u32,
    ) -> Result<TableSchema> {
        let pk_cols = if primary_key.is_empty() {
            vec!["__implicit_pk".to_string()]
        } else {
            primary_key.clone()
        };
        let mut s = TableSchema::new(
            id,
            name,
            columns,
            primary_key,
            PartitionSpec::Hash { columns: pk_cols, shards },
        )?;
        // When the PK was implicit, `new` validated partition columns after
        // appending the implicit column, so this always succeeds.
        s.partition = PartitionSpec::Hash {
            columns: s.primary_key.iter().map(|&i| s.columns[i].name.clone()).collect(),
            shards,
        };
        Ok(s)
    }

    /// Column index by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        let lname = name.to_ascii_lowercase();
        self.columns
            .iter()
            .position(|c| c.name == lname)
            .ok_or(Error::UnknownColumn { name: lname })
    }

    /// Number of user-visible columns (excludes the implicit PK).
    pub fn visible_arity(&self) -> usize {
        if self.implicit_pk { self.columns.len() - 1 } else { self.columns.len() }
    }

    /// Full arity including the implicit PK.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Positions of the partition columns within `columns`.
    pub fn partition_col_indexes(&self) -> Vec<usize> {
        self.partition
            .columns()
            .iter()
            .map(|c| self.column_index(c).expect("validated at construction"))
            .collect()
    }

    /// Encoded primary key of `row`.
    pub fn pk_of(&self, row: &Row) -> Result<Key> {
        row.key_of(&self.primary_key)
    }

    /// Shard that `row` belongs to under this schema's partition rule.
    pub fn shard_of(&self, row: &Row) -> Result<u32> {
        match &self.partition {
            PartitionSpec::Single => Ok(0),
            PartitionSpec::Hash { shards, .. } => {
                let key = row.key_of(&self.partition_col_indexes())?;
                Ok((key.hash64() % *shards as u64) as u32)
            }
        }
    }

    /// Shard for an explicit partition-key value tuple.
    pub fn shard_of_key(&self, partition_values: &[Value]) -> u32 {
        match &self.partition {
            PartitionSpec::Single => 0,
            PartitionSpec::Hash { shards, .. } => {
                let key = Key::encode(partition_values);
                (key.hash64() % *shards as u64) as u32
            }
        }
    }

    /// Validate that `row` matches the schema's arity, types and NOT NULL
    /// constraints.
    pub fn validate_row(&self, row: &Row) -> Result<()> {
        if row.arity() != self.arity() {
            return Err(Error::Schema {
                message: format!(
                    "row arity {} does not match table {} arity {}",
                    row.arity(),
                    self.name,
                    self.arity()
                ),
            });
        }
        for (i, col) in self.columns.iter().enumerate() {
            let v = row.get(i)?;
            if v.is_null() && col.not_null {
                return Err(Error::Schema {
                    message: format!("NULL in NOT NULL column {}", col.name),
                });
            }
            if !col.ty.admits(v) {
                return Err(Error::Schema {
                    message: format!("value {v} does not fit column {} type", col.name),
                });
            }
        }
        Ok(())
    }

    /// Add a secondary index definition (validates the columns exist).
    pub fn with_index(mut self, index: IndexDef) -> Result<TableSchema> {
        for c in &index.columns {
            self.column_index(c)?;
        }
        if self.indexes.iter().any(|i| i.name == index.name) {
            return Err(Error::Schema { message: format!("duplicate index {}", index.name) });
        }
        self.indexes.push(index);
        Ok(self)
    }

    /// Assign this table to a table group (shared partition rule, §II-B).
    pub fn in_table_group(mut self, group: impl Into<String>) -> TableSchema {
        self.table_group = Some(group.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols() -> Vec<ColumnDef> {
        vec![
            ColumnDef::new("id", DataType::Int).not_null(),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("balance", DataType::Double),
        ]
    }

    #[test]
    fn explicit_pk() {
        let s = TableSchema::hash_on_pk(TableId(1), "accounts", cols(), vec!["id".into()], 8)
            .unwrap();
        assert_eq!(s.primary_key, vec![0]);
        assert!(!s.implicit_pk);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.partition.shard_count(), 8);
    }

    #[test]
    fn implicit_pk_appended_and_invisible() {
        let s = TableSchema::hash_on_pk(TableId(1), "t", cols(), vec![], 4).unwrap();
        assert!(s.implicit_pk);
        assert_eq!(s.arity(), 4);
        assert_eq!(s.visible_arity(), 3);
        assert_eq!(s.columns.last().unwrap().name, "__implicit_pk");
        assert_eq!(s.partition.columns(), &["__implicit_pk".to_string()]);
    }

    #[test]
    fn shard_routing_is_deterministic_and_in_range() {
        let s = TableSchema::hash_on_pk(TableId(1), "t", cols(), vec!["id".into()], 16).unwrap();
        for id in 0..1000i64 {
            let row = Row::new(vec![Value::Int(id), Value::str("x"), Value::Double(0.0)]);
            let a = s.shard_of(&row).unwrap();
            let b = s.shard_of_key(&[Value::Int(id)]);
            assert_eq!(a, b);
            assert!(a < 16);
        }
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        // The paper's motivation for hash partitioning: an auto-increment key
        // must not pile onto the last shard.
        let s = TableSchema::hash_on_pk(TableId(1), "t", cols(), vec!["id".into()], 8).unwrap();
        let mut counts = [0usize; 8];
        for id in 0..8000i64 {
            counts[s.shard_of_key(&[Value::Int(id)]) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "shard starved: {counts:?}");
        }
    }

    #[test]
    fn validate_row_checks_types_nulls_arity() {
        let s = TableSchema::hash_on_pk(TableId(1), "t", cols(), vec!["id".into()], 2).unwrap();
        let ok = Row::new(vec![Value::Int(1), Value::str("a"), Value::Double(1.0)]);
        s.validate_row(&ok).unwrap();
        let null_pk = Row::new(vec![Value::Null, Value::str("a"), Value::Double(1.0)]);
        assert!(s.validate_row(&null_pk).is_err());
        let bad_type = Row::new(vec![Value::Int(1), Value::Int(2), Value::Double(1.0)]);
        assert!(s.validate_row(&bad_type).is_err());
        let short = Row::new(vec![Value::Int(1)]);
        assert!(s.validate_row(&short).is_err());
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut c = cols();
        c.push(ColumnDef::new("id", DataType::Int));
        assert!(TableSchema::hash_on_pk(TableId(1), "t", c, vec!["id".into()], 2).is_err());
    }

    #[test]
    fn index_validation() {
        let s = TableSchema::hash_on_pk(TableId(1), "t", cols(), vec!["id".into()], 2)
            .unwrap()
            .with_index(IndexDef {
                name: "by_name".into(),
                columns: vec!["name".into()],
                kind: IndexKind::GlobalNonClustered,
                unique: false,
            })
            .unwrap();
        assert!(s
            .clone()
            .with_index(IndexDef {
                name: "bad".into(),
                columns: vec!["nope".into()],
                kind: IndexKind::Local,
                unique: false,
            })
            .is_err());
        assert!(s
            .with_index(IndexDef {
                name: "by_name".into(),
                columns: vec!["name".into()],
                kind: IndexKind::Local,
                unique: false,
            })
            .is_err());
    }
}
