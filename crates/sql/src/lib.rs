//! SQL front end: lexer, parser, expressions and logical plans.
//!
//! PolarDB-X is MySQL-compatible; this crate implements the dialect subset
//! the paper's workloads need — DDL with hash partitioning, table groups
//! and global/local indexes (§II-B), DML, and SELECT with joins,
//! aggregation, ordering and limits (enough to express sysbench, TPC-C and
//! the 22 TPC-H query shapes).
//!
//! Pipeline: text → [`token::tokenize`] → [`parser::Parser`] → [`ast`] →
//! [`plan::build_plan`] → [`plan::LogicalPlan`]. Expressions resolve column
//! names against an output schema ([`expr::Expr::resolve`]) and then
//! evaluate against rows without further name lookups.

pub mod ast;
pub mod expr;
pub mod parser;
pub mod plan;
pub mod token;

pub use ast::Statement;
pub use expr::{AggFunc, Expr};
pub use parser::parse;
pub use plan::{build_plan, LogicalPlan};
