//! Logical plans: SELECT ASTs become operator trees.
//!
//! The planner resolves all column references to positions, decomposes ON
//! conditions into equi-join keys, and splits aggregation into an
//! `Aggregate` node (group keys + aggregate specs) with scalar expressions
//! rewritten on top — the representation the optimizer (cost-based choices,
//! push-down) and the executor (vectorized operators, MPP fragments)
//! consume.

use polardbx_common::{Error, Result};

use crate::ast::{Select, SelectItem};
use crate::expr::{AggFunc, BinOp, Expr};

/// Supplies table schemas during planning (the GMS catalog implements this).
pub trait SchemaProvider {
    /// Bare column names of `table`, in order.
    fn table_columns(&self, table: &str) -> Result<Vec<String>>;
}

/// One aggregate computed by an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Argument, resolved against the aggregate's input (None = COUNT(*)).
    pub arg: Option<Expr>,
    /// DISTINCT flag.
    pub distinct: bool,
}

/// A logical operator tree. All embedded expressions are resolved
/// (positional) against the node's input schema.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Full scan of a table; output columns are `alias.column`.
    Scan {
        /// Catalog table name.
        table: String,
        /// Output schema (qualified names).
        schema: Vec<String>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Scalar projection.
    Project {
        /// Input.
        input: Box<LogicalPlan>,
        /// Output expressions over the input schema.
        exprs: Vec<Expr>,
        /// Output column names.
        names: Vec<String>,
    },
    /// Join. `on` pairs are (left column, right column) positions; an empty
    /// list is a cross join (the optimizer may later lift equi conditions
    /// out of a filter above it).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Equi-join key positions.
        on: Vec<(usize, usize)>,
        /// Residual non-equi condition over the concatenated schema.
        filter: Option<Expr>,
    },
    /// Group-by + aggregates. Output schema = group columns then aggregates.
    Aggregate {
        /// Input.
        input: Box<LogicalPlan>,
        /// Group expressions over the input schema.
        group_by: Vec<Expr>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
        /// Output names.
        names: Vec<String>,
    },
    /// Sort by keys over the input schema (bool = descending).
    Sort {
        /// Input.
        input: Box<LogicalPlan>,
        /// Sort keys.
        keys: Vec<(Expr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        n: usize,
    },
}

impl LogicalPlan {
    /// Output schema (column names) of this node.
    pub fn schema(&self) -> Vec<String> {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Project { names, .. } => names.clone(),
            LogicalPlan::Join { left, right, .. } => {
                let mut s = left.schema();
                s.extend(right.schema());
                s
            }
            LogicalPlan::Aggregate { names, .. } => names.clone(),
        }
    }

    /// All tables referenced (left-to-right).
    pub fn tables(&self) -> Vec<String> {
        match self {
            LogicalPlan::Scan { table, .. } => vec![table.clone()],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.tables(),
            LogicalPlan::Join { left, right, .. } => {
                let mut t = left.tables();
                t.extend(right.tables());
                t
            }
        }
    }

    /// Pretty one-line-per-node rendering (for EXPLAIN-style output).
    pub fn explain(&self) -> String {
        fn rec(p: &LogicalPlan, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match p {
                LogicalPlan::Scan { table, .. } => {
                    out.push_str(&format!("{pad}Scan {table}\n"))
                }
                LogicalPlan::Filter { input, predicate } => {
                    out.push_str(&format!("{pad}Filter {predicate}\n"));
                    rec(input, indent + 1, out);
                }
                LogicalPlan::Project { input, names, .. } => {
                    out.push_str(&format!("{pad}Project [{}]\n", names.join(", ")));
                    rec(input, indent + 1, out);
                }
                LogicalPlan::Join { left, right, on, .. } => {
                    out.push_str(&format!("{pad}Join on {on:?}\n"));
                    rec(left, indent + 1, out);
                    rec(right, indent + 1, out);
                }
                LogicalPlan::Aggregate { input, group_by, aggs, .. } => {
                    out.push_str(&format!(
                        "{pad}Aggregate groups={} aggs={}\n",
                        group_by.len(),
                        aggs.len()
                    ));
                    rec(input, indent + 1, out);
                }
                LogicalPlan::Sort { input, keys } => {
                    out.push_str(&format!("{pad}Sort ({} keys)\n", keys.len()));
                    rec(input, indent + 1, out);
                }
                LogicalPlan::Limit { input, n } => {
                    out.push_str(&format!("{pad}Limit {n}\n"));
                    rec(input, indent + 1, out);
                }
            }
        }
        let mut s = String::new();
        rec(self, 0, &mut s);
        s
    }
}

/// Split an expression into its AND-ed conjuncts.
pub fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary { op: BinOp::And, left, right } = e {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// Re-AND a list of conjuncts (None when empty).
pub fn conjoin(mut parts: Vec<Expr>) -> Option<Expr> {
    let mut acc = parts.pop()?;
    while let Some(p) = parts.pop() {
        acc = Expr::binary(BinOp::And, p, acc);
    }
    Some(acc)
}

/// Build a logical plan for a SELECT.
pub fn build_plan(select: &Select, provider: &dyn SchemaProvider) -> Result<LogicalPlan> {
    // 1. FROM: left-deep tree; comma tables are cross joins, explicit JOINs
    //    carry ON conditions.
    let mut plan = scan(provider, &select.from[0])?;
    for t in &select.from[1..] {
        let right = scan(provider, t)?;
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            on: vec![],
            filter: None,
        };
    }
    for j in &select.joins {
        let right = scan(provider, &j.table)?;
        let left_schema = plan.schema();
        let right_schema = right.schema();
        let (on, residual) = decompose_on(&j.on, &left_schema, &right_schema)?;
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            on,
            filter: residual,
        };
    }

    // 2. WHERE.
    if let Some(pred) = &select.predicate {
        let resolved = pred.resolve(&plan.schema())?;
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate: resolved };
    }

    // 3. Aggregation.
    let has_agg = select_items_have_agg(select) || !select.group_by.is_empty();
    let mut output_exprs: Vec<Expr> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    if has_agg {
        let input_schema = plan.schema();
        let groups: Vec<Expr> = select
            .group_by
            .iter()
            .map(|g| g.resolve(&input_schema))
            .collect::<Result<_>>()?;
        // Collect every aggregate application in select + having + order by.
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut collect = |e: &Expr| -> Result<()> {
            let resolved = e.resolve(&input_schema)?;
            collect_aggs(&resolved, &input_schema, &mut aggs)?;
            Ok(())
        };
        for item in &select.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr)?;
            }
        }
        if let Some(h) = &select.having {
            collect(h)?;
        }
        for (e, _) in &select.order_by {
            // Order-by may reference select aliases — those carry no new
            // aggregates; ignore resolution failures here.
            let _ = collect(e);
        }
        // Aggregate node output names.
        let mut agg_names: Vec<String> = Vec::new();
        for (i, g) in select.group_by.iter().enumerate() {
            agg_names.push(display_name(g, i));
        }
        for (j, a) in aggs.iter().enumerate() {
            agg_names.push(format!("agg_{j}_{:?}", a.func).to_ascii_lowercase());
        }
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: groups.clone(),
            aggs: aggs.clone(),
            names: agg_names.clone(),
        };
        // Rewrite select items over the aggregate output.
        for (i, item) in select.items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    return Err(Error::Plan {
                        message: "SELECT * with aggregation is not supported".into(),
                    })
                }
                SelectItem::Expr { expr, alias } => {
                    let resolved = expr.resolve(&plan_input_schema_for_rewrite(
                        &groups,
                        select,
                        provider,
                    )?)?;
                    let rewritten = rewrite_post_agg(&resolved, &groups, &aggs)?;
                    output_names.push(
                        alias.clone().unwrap_or_else(|| display_name(expr, i)),
                    );
                    output_exprs.push(rewritten);
                }
            }
        }
        // HAVING above the aggregate (rewritten the same way).
        if let Some(h) = &select.having {
            let resolved =
                h.resolve(&plan_input_schema_for_rewrite(&groups, select, provider)?)?;
            let rewritten = rewrite_post_agg(&resolved, &groups, &aggs)?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: rewritten };
        }
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: output_exprs,
            names: output_names.clone(),
        };
    } else {
        // Plain projection.
        let input_schema = plan.schema();
        let mut all_star = true;
        for (i, item) in select.items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    for (idx, name) in input_schema.iter().enumerate() {
                        output_exprs.push(Expr::ColumnIdx(idx));
                        output_names.push(name.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    all_star = false;
                    output_exprs.push(expr.resolve(&input_schema)?);
                    output_names
                        .push(alias.clone().unwrap_or_else(|| display_name(expr, i)));
                }
            }
        }
        let identity = all_star && select.items.len() == 1;
        if !identity {
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs: output_exprs,
                names: output_names.clone(),
            };
        }
    }

    // 4. ORDER BY against the output schema (aliases and group columns).
    if !select.order_by.is_empty() {
        let schema = plan.schema();
        let mut keys = Vec::new();
        for (e, desc) in &select.order_by {
            let resolved = e.resolve(&schema).or_else(|_| {
                // Aggregates in ORDER BY: match the projected expression by
                // display text (e.g. ORDER BY SUM(x) where SUM(x) is
                // projected under a generated name).
                let text = display_name(e, usize::MAX);
                schema
                    .iter()
                    .position(|n| *n == text)
                    .map(Expr::ColumnIdx)
                    .ok_or(Error::Plan { message: format!("cannot order by {e}") })
            })?;
            keys.push((resolved, *desc));
        }
        plan = LogicalPlan::Sort { input: Box::new(plan), keys };
    }

    // 5. LIMIT.
    if let Some(n) = select.limit {
        plan = LogicalPlan::Limit { input: Box::new(plan), n };
    }
    Ok(plan)
}

/// The schema select-item expressions resolve against before post-agg
/// rewriting: the *join/filter input* schema (aggregate args and group
/// expressions reference it).
fn plan_input_schema_for_rewrite(
    _groups: &[Expr],
    select: &Select,
    provider: &dyn SchemaProvider,
) -> Result<Vec<String>> {
    // Rebuild the pre-aggregation schema: FROM + JOIN concatenation.
    let mut schema = Vec::new();
    for t in &select.from {
        let cols = provider.table_columns(&t.name)?;
        let alias = t.effective_name();
        schema.extend(cols.iter().map(|c| format!("{alias}.{c}")));
    }
    for j in &select.joins {
        let cols = provider.table_columns(&j.table.name)?;
        let alias = j.table.effective_name();
        schema.extend(cols.iter().map(|c| format!("{alias}.{c}")));
    }
    Ok(schema)
}

fn scan(provider: &dyn SchemaProvider, t: &crate::ast::TableRef) -> Result<LogicalPlan> {
    let cols = provider.table_columns(&t.name)?;
    let alias = t.effective_name();
    Ok(LogicalPlan::Scan {
        table: t.name.clone(),
        schema: cols.iter().map(|c| format!("{alias}.{c}")).collect(),
    })
}

/// Equi-join column pairs plus the residual (non-equi) condition.
type EquiJoinSplit = (Vec<(usize, usize)>, Option<Expr>);

/// Split an ON condition into equi-join pairs and a residual.
fn decompose_on(
    on: &Expr,
    left_schema: &[String],
    right_schema: &[String],
) -> Result<EquiJoinSplit> {
    let mut conjuncts = Vec::new();
    split_conjuncts(on, &mut conjuncts);
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    let combined: Vec<String> =
        left_schema.iter().chain(right_schema.iter()).cloned().collect();
    for c in conjuncts {
        if let Expr::Binary { op: BinOp::Eq, left, right } = &c {
            let l_in_left = left.resolve(left_schema);
            let r_in_right = right.resolve(right_schema);
            if let (Ok(Expr::ColumnIdx(li)), Ok(Expr::ColumnIdx(ri))) =
                (&l_in_left, &r_in_right)
            {
                pairs.push((*li, *ri));
                continue;
            }
            let l_in_right = left.resolve(right_schema);
            let r_in_left = right.resolve(left_schema);
            if let (Ok(Expr::ColumnIdx(ri)), Ok(Expr::ColumnIdx(li))) =
                (&l_in_right, &r_in_left)
            {
                pairs.push((*li, *ri));
                continue;
            }
        }
        residual.push(c.resolve(&combined)?);
    }
    Ok((pairs, conjoin(residual)))
}

fn select_items_have_agg(select: &Select) -> bool {
    let has = |e: &Expr| {
        let mut found = false;
        e.visit(&mut |x| {
            if matches!(x, Expr::Agg { .. }) {
                found = true;
            }
        });
        found
    };
    select.items.iter().any(|i| matches!(i, SelectItem::Expr { expr, .. } if has(expr)))
        || select.having.as_ref().is_some_and(has)
}

/// Register every distinct aggregate application found in `e` (resolved
/// against the aggregate input schema).
fn collect_aggs(e: &Expr, _schema: &[String], out: &mut Vec<AggSpec>) -> Result<()> {
    e.visit(&mut |x| {
        if let Expr::Agg { func, arg, distinct } = x {
            let spec = AggSpec {
                func: *func,
                arg: arg.as_deref().cloned(),
                distinct: *distinct,
            };
            if !out.contains(&spec) {
                out.push(spec);
            }
        }
    });
    Ok(())
}

/// Rewrite a resolved expression over the aggregate output: group
/// expressions become `ColumnIdx(i)`, aggregate applications become
/// `ColumnIdx(n_groups + j)`; any other remaining column reference is a
/// GROUP BY violation.
fn rewrite_post_agg(e: &Expr, groups: &[Expr], aggs: &[AggSpec]) -> Result<Expr> {
    // Top-down so whole group expressions match before their leaves.
    if let Some(i) = groups.iter().position(|g| g == e) {
        return Ok(Expr::ColumnIdx(i));
    }
    if let Expr::Agg { func, arg, distinct } = e {
        let spec =
            AggSpec { func: *func, arg: arg.as_deref().cloned(), distinct: *distinct };
        let j = aggs
            .iter()
            .position(|a| *a == spec)
            .ok_or(Error::Plan { message: format!("uncollected aggregate {e}") })?;
        return Ok(Expr::ColumnIdx(groups.len() + j));
    }
    match e {
        Expr::ColumnIdx(_) | Expr::Column(_) => Err(Error::Plan {
            message: format!("column {e} appears outside GROUP BY and aggregates"),
        }),
        Expr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(rewrite_post_agg(left, groups, aggs)?),
            right: Box::new(rewrite_post_agg(right, groups, aggs)?),
        }),
        Expr::Not(x) => Ok(Expr::Not(Box::new(rewrite_post_agg(x, groups, aggs)?))),
        Expr::Neg(x) => Ok(Expr::Neg(Box::new(rewrite_post_agg(x, groups, aggs)?))),
        Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(rewrite_post_agg(expr, groups, aggs)?),
            negated: *negated,
        }),
        Expr::Between { expr, low, high } => Ok(Expr::Between {
            expr: Box::new(rewrite_post_agg(expr, groups, aggs)?),
            low: Box::new(rewrite_post_agg(low, groups, aggs)?),
            high: Box::new(rewrite_post_agg(high, groups, aggs)?),
        }),
        Expr::InList { expr, list, negated } => Ok(Expr::InList {
            expr: Box::new(rewrite_post_agg(expr, groups, aggs)?),
            list: list
                .iter()
                .map(|x| rewrite_post_agg(x, groups, aggs))
                .collect::<Result<_>>()?,
            negated: *negated,
        }),
        Expr::Like { expr, pattern } => Ok(Expr::Like {
            expr: Box::new(rewrite_post_agg(expr, groups, aggs)?),
            pattern: pattern.clone(),
        }),
        Expr::Case { when, otherwise } => Ok(Expr::Case {
            when: when
                .iter()
                .map(|(c, v)| {
                    Ok((
                        rewrite_post_agg(c, groups, aggs)?,
                        rewrite_post_agg(v, groups, aggs)?,
                    ))
                })
                .collect::<Result<_>>()?,
            otherwise: match otherwise {
                Some(x) => Some(Box::new(rewrite_post_agg(x, groups, aggs)?)),
                None => None,
            },
        }),
        leaf => Ok(leaf.clone()),
    }
}

fn display_name(e: &Expr, i: usize) -> String {
    match e {
        Expr::Column(c) => c.rsplit('.').next().unwrap_or(c).to_string(),
        Expr::Agg { func, arg, .. } => match arg {
            Some(a) => format!("{func:?}({a})").to_ascii_lowercase(),
            None => format!("{func:?}(*)").to_ascii_lowercase(),
        },
        _ if i != usize::MAX => format!("col{i}"),
        _ => format!("{e}").to_ascii_lowercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Statement;
    use std::collections::HashMap;

    struct Fixture {
        tables: HashMap<String, Vec<String>>,
    }

    impl SchemaProvider for Fixture {
        fn table_columns(&self, table: &str) -> Result<Vec<String>> {
            self.tables
                .get(table)
                .cloned()
                .ok_or(Error::UnknownTable { name: table.into() })
        }
    }

    fn fixture() -> Fixture {
        let mut tables = HashMap::new();
        tables.insert(
            "lineitem".to_string(),
            vec!["l_okey".into(), "l_qty".into(), "l_price".into(), "l_flag".into()],
        );
        tables.insert("orders".to_string(), vec!["o_okey".into(), "o_cust".into()]);
        tables.insert("customer".to_string(), vec!["c_id".into(), "c_name".into()]);
        Fixture { tables }
    }

    fn plan_of(sql: &str) -> LogicalPlan {
        let Statement::Select(sel) = parse(sql).unwrap() else { panic!() };
        build_plan(&sel, &fixture()).unwrap()
    }

    #[test]
    fn simple_select_star() {
        let p = plan_of("SELECT * FROM lineitem");
        assert!(matches!(p, LogicalPlan::Scan { .. }));
        assert_eq!(p.schema().len(), 4);
        assert_eq!(p.schema()[0], "lineitem.l_okey");
    }

    #[test]
    fn filter_and_project_resolved() {
        let p = plan_of("SELECT l_qty, l_price * 2 AS dbl FROM lineitem WHERE l_okey = 5");
        let LogicalPlan::Project { input, exprs, names } = &p else { panic!("{p:?}") };
        assert_eq!(names, &vec!["l_qty".to_string(), "dbl".to_string()]);
        assert_eq!(exprs[0], Expr::ColumnIdx(1));
        let LogicalPlan::Filter { predicate, .. } = input.as_ref() else { panic!() };
        // Fully positional — no names left.
        let mut cols = Vec::new();
        predicate.columns(&mut cols);
        assert!(cols.is_empty());
    }

    #[test]
    fn explicit_join_decomposed_to_equi_pairs() {
        let p = plan_of(
            "SELECT o_cust FROM lineitem JOIN orders ON l_okey = o_okey AND l_qty > 1",
        );
        let LogicalPlan::Project { input, .. } = &p else { panic!() };
        let LogicalPlan::Join { on, filter, .. } = input.as_ref() else { panic!() };
        assert_eq!(on, &vec![(0usize, 0usize)]);
        assert!(filter.is_some(), "non-equi conjunct kept as residual");
    }

    #[test]
    fn comma_join_is_cross() {
        let p = plan_of("SELECT c_name FROM orders, customer WHERE o_cust = c_id");
        let LogicalPlan::Project { input, .. } = &p else { panic!() };
        let LogicalPlan::Filter { input: join, .. } = input.as_ref() else { panic!() };
        let LogicalPlan::Join { on, .. } = join.as_ref() else { panic!() };
        assert!(on.is_empty(), "comma join starts as cross; optimizer lifts keys");
    }

    #[test]
    fn aggregation_plan_shape() {
        let p = plan_of(
            "SELECT l_flag, SUM(l_qty) AS total, COUNT(*) FROM lineitem \
             GROUP BY l_flag HAVING SUM(l_qty) > 10 ORDER BY total DESC LIMIT 3",
        );
        let LogicalPlan::Limit { input, n } = &p else { panic!("{p:?}") };
        assert_eq!(*n, 3);
        let LogicalPlan::Sort { input, keys } = input.as_ref() else { panic!() };
        assert!(keys[0].1, "descending");
        let LogicalPlan::Project { input, names, exprs } = input.as_ref() else { panic!() };
        assert_eq!(names.len(), 3);
        // total = agg output index 1 (after 1 group col).
        assert_eq!(exprs[1], Expr::ColumnIdx(1));
        let LogicalPlan::Filter { input, .. } = input.as_ref() else { panic!() };
        let LogicalPlan::Aggregate { group_by, aggs, .. } = input.as_ref() else { panic!() };
        assert_eq!(group_by.len(), 1);
        assert_eq!(aggs.len(), 2); // SUM(l_qty) shared by select+having, COUNT(*)
    }

    #[test]
    fn scalar_over_aggregates() {
        // Q14-style: arithmetic over two aggregates.
        let p = plan_of(
            "SELECT 100.0 * SUM(CASE WHEN l_flag = 'P' THEN l_price ELSE 0 END) / SUM(l_price) \
             FROM lineitem",
        );
        let LogicalPlan::Project { input, exprs, .. } = &p else { panic!() };
        let LogicalPlan::Aggregate { aggs, group_by, .. } = input.as_ref() else { panic!() };
        assert!(group_by.is_empty());
        assert_eq!(aggs.len(), 2);
        // The projection references both agg outputs positionally.
        let mut idxs = Vec::new();
        exprs[0].visit(&mut |e| {
            if let Expr::ColumnIdx(i) = e {
                idxs.push(*i);
            }
        });
        idxs.sort();
        assert_eq!(idxs, vec![0, 1]);
    }

    #[test]
    fn group_by_violation_detected() {
        let Statement::Select(sel) =
            parse("SELECT l_qty, SUM(l_price) FROM lineitem GROUP BY l_flag").unwrap()
        else {
            panic!()
        };
        let err = build_plan(&sel, &fixture()).unwrap_err();
        assert!(matches!(err, Error::Plan { .. }), "{err:?}");
    }

    #[test]
    fn unknown_table_and_column() {
        let Statement::Select(sel) = parse("SELECT x FROM nope").unwrap() else { panic!() };
        assert!(build_plan(&sel, &fixture()).is_err());
        let Statement::Select(sel) = parse("SELECT nope FROM lineitem").unwrap() else {
            panic!()
        };
        assert!(build_plan(&sel, &fixture()).is_err());
    }

    #[test]
    fn aliases_qualify_columns() {
        let p = plan_of("SELECT l.l_qty FROM lineitem l JOIN orders o ON l.l_okey = o.o_okey");
        assert!(p.schema().len() == 1);
        assert_eq!(p.tables(), vec!["lineitem".to_string(), "orders".to_string()]);
    }

    #[test]
    fn explain_renders() {
        let p = plan_of("SELECT l_flag, COUNT(*) FROM lineitem GROUP BY l_flag");
        let text = p.explain();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Scan lineitem"));
    }

    #[test]
    fn conjunct_utilities() {
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Eq, Expr::col("a"), Expr::int(1)),
            Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::Gt, Expr::col("b"), Expr::int(2)),
                Expr::binary(BinOp::Lt, Expr::col("c"), Expr::int(3)),
            ),
        );
        let mut parts = Vec::new();
        split_conjuncts(&e, &mut parts);
        assert_eq!(parts.len(), 3);
        let back = conjoin(parts).unwrap();
        let mut again = Vec::new();
        split_conjuncts(&back, &mut again);
        assert_eq!(again.len(), 3);
        assert!(conjoin(vec![]).is_none());
    }
}
