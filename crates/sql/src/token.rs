//! SQL lexer.

use polardbx_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (uppercased check via `is_kw`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// Punctuation / operators.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// Does this token match keyword `kw` (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `input` into a vector ending with `Token::Eof`. Byte positions
/// accompany each token for error reporting.
pub fn tokenize(input: &str) -> Result<Vec<(Token, usize)>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => push(&mut out, Symbol::LParen, &mut i),
            ')' => push(&mut out, Symbol::RParen, &mut i),
            ',' => push(&mut out, Symbol::Comma, &mut i),
            ';' => push(&mut out, Symbol::Semi, &mut i),
            '.' => push(&mut out, Symbol::Dot, &mut i),
            '*' => push(&mut out, Symbol::Star, &mut i),
            '+' => push(&mut out, Symbol::Plus, &mut i),
            '-' => {
                // `--` line comment.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    push(&mut out, Symbol::Minus, &mut i)
                }
            }
            '/' => push(&mut out, Symbol::Slash, &mut i),
            '%' => push(&mut out, Symbol::Percent, &mut i),
            '=' => push(&mut out, Symbol::Eq, &mut i),
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Symbol(Symbol::Neq), i));
                    i += 2;
                } else {
                    return Err(Error::Parse { message: "lone '!'".into(), position: i });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push((Token::Symbol(Symbol::Le), i));
                    i += 2;
                }
                Some(&b'>') => {
                    out.push((Token::Symbol(Symbol::Neq), i));
                    i += 2;
                }
                _ => push(&mut out, Symbol::Lt, &mut i),
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Symbol(Symbol::Ge), i));
                    i += 2;
                } else {
                    push(&mut out, Symbol::Gt, &mut i)
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(Error::Parse {
                                message: "unterminated string".into(),
                                position: start,
                            })
                        }
                        Some(&b'\'') => {
                            // Doubled quote escapes a quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push((Token::Str(s), start));
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || (bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| Error::Parse {
                        message: format!("bad float {text}"),
                        position: start,
                    })?;
                    out.push((Token::Float(v), start));
                } else {
                    let v = text.parse::<i64>().map_err(|_| Error::Parse {
                        message: format!("bad integer {text}"),
                        position: start,
                    })?;
                    out.push((Token::Int(v), start));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' | '`' => {
                let start = i;
                let quoted = c == '`';
                if quoted {
                    i += 1;
                }
                let id_start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let id = input[id_start..i].to_string();
                if quoted {
                    if bytes.get(i) != Some(&b'`') {
                        return Err(Error::Parse {
                            message: "unterminated `identifier`".into(),
                            position: start,
                        });
                    }
                    i += 1;
                }
                out.push((Token::Ident(id), start));
            }
            other => {
                return Err(Error::Parse {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                })
            }
        }
    }
    out.push((Token::Eof, input.len()));
    Ok(out)
}

fn push(out: &mut Vec<(Token, usize)>, sym: Symbol, i: &mut usize) {
    out.push((Token::Symbol(sym), *i));
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn basic_select() {
        let t = toks("SELECT a, b FROM t WHERE a >= 10;");
        assert!(t[0].is_kw("select"));
        assert_eq!(t[1], Token::Ident("a".into()));
        assert!(t.contains(&Token::Symbol(Symbol::Ge)));
        assert_eq!(t.last(), Some(&Token::Eof));
    }

    #[test]
    fn numbers_and_strings() {
        let t = toks("42 3.25 'it''s'");
        assert_eq!(t[0], Token::Int(42));
        assert_eq!(t[1], Token::Float(3.25));
        assert_eq!(t[2], Token::Str("it's".into()));
    }

    #[test]
    fn operators() {
        let t = toks("a != b <> c <= d >= e < f > g = h");
        let syms: Vec<_> = t
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![
                Symbol::Neq,
                Symbol::Neq,
                Symbol::Le,
                Symbol::Ge,
                Symbol::Lt,
                Symbol::Gt,
                Symbol::Eq
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT -- comment here\n 1");
        assert_eq!(t.len(), 3); // SELECT, 1, EOF
    }

    #[test]
    fn backtick_identifiers() {
        let t = toks("`order` . `key`");
        assert_eq!(t[0], Token::Ident("order".into()));
        assert_eq!(t[2], Token::Ident("key".into()));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("`broken").is_err());
        assert!(tokenize("99999999999999999999").is_err());
    }
}
