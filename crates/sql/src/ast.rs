//! Abstract syntax tree for the supported SQL subset.

use polardbx_common::DataType;

use crate::expr::Expr;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE … [PARTITION BY HASH(cols) PARTITIONS n] [TABLEGROUP g]`
    CreateTable(CreateTable),
    /// `CREATE [GLOBAL|LOCAL] [CLUSTERED] [UNIQUE] INDEX …`
    CreateIndex(CreateIndex),
    /// `INSERT INTO t [(cols)] VALUES (…), (…)`
    Insert(Insert),
    /// `SELECT …`
    Select(Select),
    /// `UPDATE t SET … [WHERE …]`
    Update(Update),
    /// `DELETE FROM t [WHERE …]`
    Delete(Delete),
}

/// CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Columns: (name, type, not_null).
    pub columns: Vec<(String, DataType, bool)>,
    /// PRIMARY KEY column names (empty = implicit PK, §II-B).
    pub primary_key: Vec<String>,
    /// `PARTITION BY HASH(cols) PARTITIONS n`.
    pub partition: Option<(Vec<String>, u32)>,
    /// `TABLEGROUP name` (§II-B table groups).
    pub table_group: Option<String>,
}

/// Index placement, mirroring [`polardbx_common::IndexKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexPlacement {
    /// Local (partitioned like the base table).
    Local,
    /// Global, non-clustered.
    Global,
    /// Global clustered (covers all columns).
    GlobalClustered,
}

/// CREATE INDEX.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Base table.
    pub table: String,
    /// Indexed columns.
    pub columns: Vec<String>,
    /// Placement.
    pub placement: IndexPlacement,
    /// UNIQUE flag.
    pub unique: bool,
}

/// INSERT.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list (None = all columns in order).
    pub columns: Option<Vec<String>>,
    /// Rows of value expressions.
    pub values: Vec<Vec<Expr>>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Alias (`FROM lineitem l`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name other clauses refer to this table by.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One item in the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with optional alias (may contain aggregates).
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// An explicit `JOIN … ON …`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// The ON condition.
    pub on: Expr,
}

/// SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// First FROM table plus comma-joined tables.
    pub from: Vec<TableRef>,
    /// Explicit JOINs (applied after the comma list, left-deep).
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY (expr, descending).
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// UPDATE.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET col = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
}

/// DELETE.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
}
