//! Scalar expressions: representation, resolution and evaluation.

use std::fmt;

use polardbx_common::{Error, Result, Row, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(x)`
    Count,
    /// `SUM(x)`
    Sum,
    /// `AVG(x)`
    Avg,
    /// `MIN(x)`
    Min,
    /// `MAX(x)`
    Max,
}

impl AggFunc {
    /// Parse an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// A scalar expression. Parsed expressions reference columns by name
/// ([`Expr::Column`]); [`Expr::resolve`] rewrites them to positional
/// [`Expr::ColumnIdx`] against an output schema so evaluation is
/// lookup-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column by (optionally qualified) name, e.g. `l_qty` or `lineitem.l_qty`.
    Column(String),
    /// Column by position (after resolution).
    ColumnIdx(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `x IS NULL` / `x IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `x BETWEEN lo AND hi`.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
    /// `x IN (v1, v2, …)`.
    InList {
        /// Operand.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `x LIKE 'pat%'` — supports `%` and `_` wildcards.
    Like {
        /// Operand.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
    },
    /// `CASE WHEN c1 THEN v1 [WHEN …] [ELSE e] END`.
    Case {
        /// (condition, result) arms.
        when: Vec<(Expr, Expr)>,
        /// ELSE result (NULL when absent).
        otherwise: Option<Box<Expr>>,
    },
    /// An aggregate application, e.g. `SUM(l_qty * l_price)`. Only legal in
    /// select/having position; the planner rewrites it into an aggregate
    /// node output before execution.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Argument (`None` for `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// DISTINCT flag.
        distinct: bool,
    },
}

impl Expr {
    /// Shorthand: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Shorthand: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into().to_ascii_lowercase())
    }

    /// Shorthand: binary expression.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// Resolve column names to positions against `schema` (lowercased
    /// column names; qualified names match their suffix after `.`).
    pub fn resolve(&self, schema: &[String]) -> Result<Expr> {
        let lookup = |name: &str| -> Result<usize> {
            let lname = name.to_ascii_lowercase();
            // Exact match first, then unqualified-suffix match.
            if let Some(i) = schema.iter().position(|c| *c == lname) {
                return Ok(i);
            }
            let suffix = lname.rsplit('.').next().unwrap_or(&lname);
            let mut hit = None;
            for (i, c) in schema.iter().enumerate() {
                let csuffix = c.rsplit('.').next().unwrap_or(c);
                if csuffix == suffix {
                    if hit.is_some() {
                        return Err(Error::Plan {
                            message: format!("ambiguous column {name}"),
                        });
                    }
                    hit = Some(i);
                }
            }
            hit.ok_or(Error::UnknownColumn { name: lname })
        };
        self.transform(&|e| match e {
            Expr::Column(name) => Ok(Expr::ColumnIdx(lookup(name)?)),
            other => Ok(other.clone()),
        })
    }

    /// Bottom-up transformation.
    pub fn transform(&self, f: &impl Fn(&Expr) -> Result<Expr>) -> Result<Expr> {
        let rebuilt = match self {
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.transform(f)?),
                right: Box::new(right.transform(f)?),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.transform(f)?)),
            Expr::Neg(e) => Expr::Neg(Box::new(e.transform(f)?)),
            Expr::IsNull { expr, negated } => {
                Expr::IsNull { expr: Box::new(expr.transform(f)?), negated: *negated }
            }
            Expr::Between { expr, low, high } => Expr::Between {
                expr: Box::new(expr.transform(f)?),
                low: Box::new(low.transform(f)?),
                high: Box::new(high.transform(f)?),
            },
            Expr::InList { expr, list, negated } => Expr::InList {
                expr: Box::new(expr.transform(f)?),
                list: list.iter().map(|e| e.transform(f)).collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::Like { expr, pattern } => {
                Expr::Like { expr: Box::new(expr.transform(f)?), pattern: pattern.clone() }
            }
            Expr::Case { when, otherwise } => Expr::Case {
                when: when
                    .iter()
                    .map(|(c, v)| Ok((c.transform(f)?, v.transform(f)?)))
                    .collect::<Result<_>>()?,
                otherwise: match otherwise {
                    Some(e) => Some(Box::new(e.transform(f)?)),
                    None => None,
                },
            },
            Expr::Agg { func, arg, distinct } => Expr::Agg {
                func: *func,
                arg: match arg {
                    Some(e) => Some(Box::new(e.transform(f)?)),
                    None => None,
                },
                distinct: *distinct,
            },
            leaf => leaf.clone(),
        };
        f(&rebuilt)
    }

    /// Walk the tree, invoking `f` on every node (children first).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Not(e) | Expr::Neg(e) => e.visit(f),
            Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => expr.visit(f),
            Expr::Between { expr, low, high } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Case { when, otherwise } => {
                for (c, v) in when {
                    c.visit(f);
                    v.visit(f);
                }
                if let Some(e) = otherwise {
                    e.visit(f);
                }
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.visit(f);
                }
            }
            Expr::Literal(_) | Expr::Column(_) | Expr::ColumnIdx(_) => {}
        }
        f(self);
    }

    /// Collect all referenced column names (pre-resolution).
    pub fn columns(&self, out: &mut Vec<String>) {
        self.visit(&mut |e| {
            if let Expr::Column(name) = e {
                out.push(name.clone());
            }
        });
    }

    /// Evaluate against `row`. Requires resolution ([`Expr::ColumnIdx`]);
    /// unresolved columns are an execution error.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(name) => {
                Err(Error::execution(format!("unresolved column {name}")))
            }
            Expr::ColumnIdx(i) => Ok(row.get(*i)?.clone()),
            Expr::Binary { op, left, right } => {
                let l = left.eval(row)?;
                // Short-circuit logic operators.
                match op {
                    BinOp::And => {
                        return if !truthy(&l) {
                            Ok(Value::Int(0))
                        } else {
                            Ok(Value::Int(truthy(&right.eval(row)?) as i64))
                        }
                    }
                    BinOp::Or => {
                        return if truthy(&l) {
                            Ok(Value::Int(1))
                        } else {
                            Ok(Value::Int(truthy(&right.eval(row)?) as i64))
                        }
                    }
                    _ => {}
                }
                let r = right.eval(row)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Not(e) => Ok(Value::Int(!truthy(&e.eval(row)?) as i64)),
            Expr::Neg(e) => match e.eval(row)? {
                Value::Int(v) => Ok(Value::Int(-v)),
                Value::Double(v) => Ok(Value::Double(-v)),
                other => Err(Error::execution(format!("cannot negate {other}"))),
            },
            Expr::IsNull { expr, negated } => {
                let isnull = expr.eval(row)?.is_null();
                Ok(Value::Int((isnull != *negated) as i64))
            }
            Expr::Between { expr, low, high } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                let ge = matches!(
                    v.sql_cmp(&lo),
                    Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                );
                let le = matches!(
                    v.sql_cmp(&hi),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                );
                Ok(Value::Int((ge && le) as i64))
            }
            Expr::InList { expr, list, negated } => {
                let v = expr.eval(row)?;
                let mut found = false;
                for cand in list {
                    if v == cand.eval(row)? {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Int((found != *negated) as i64))
            }
            Expr::Like { expr, pattern } => {
                let v = expr.eval(row)?;
                let s = v.as_str()?;
                Ok(Value::Int(like_match(s, pattern) as i64))
            }
            Expr::Case { when, otherwise } => {
                for (cond, result) in when {
                    if truthy(&cond.eval(row)?) {
                        return result.eval(row);
                    }
                }
                match otherwise {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
            Expr::Agg { .. } => {
                Err(Error::execution("aggregate evaluated outside aggregation"))
            }
        }
    }

    /// Evaluate as a boolean predicate.
    pub fn eval_bool(&self, row: &Row) -> Result<bool> {
        Ok(truthy(&self.eval(row)?))
    }
}

/// SQL truthiness: non-zero numeric, NULL is false.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Int(i) => *i != 0,
        Value::Double(d) => *d != 0.0,
        Value::Str(s) => !s.is_empty(),
        Value::Bytes(b) => !b.is_empty(),
        Value::Date(_) => true,
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    // NULL propagates through arithmetic and comparisons.
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Add | Sub | Mul | Div | Mod => {
            // Integer arithmetic when both sides are Int; else double.
            if let (Value::Int(a), Value::Int(b)) = (l, r) {
                let v = match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    Mul => a.wrapping_mul(*b),
                    Div => {
                        if *b == 0 {
                            return Ok(Value::Null);
                        }
                        a / b
                    }
                    Mod => {
                        if *b == 0 {
                            return Ok(Value::Null);
                        }
                        a % b
                    }
                    _ => unreachable!(),
                };
                return Ok(Value::Int(v));
            }
            let a = l.as_double()?;
            let b = r.as_double()?;
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Double(v))
        }
        Eq | Neq | Lt | Le | Gt | Ge => {
            let ord = l
                .sql_cmp(r)
                .ok_or_else(|| Error::execution(format!("cannot compare {l} and {r}")))?;
            use std::cmp::Ordering::*;
            let b = match op {
                Eq => ord == Equal,
                Neq => ord != Equal,
                Lt => ord == Less,
                Le => ord != Greater,
                Gt => ord == Greater,
                Ge => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Int(b as i64))
        }
        And | Or => unreachable!("handled in eval"),
    }
}

/// SQL LIKE with `%` (any run) and `_` (single char), case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Try every split point.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::ColumnIdx(i) => write!(f, "#{i}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op:?} {right})"),
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Between { expr, low, high } => write!(f, "{expr} BETWEEN {low} AND {high}"),
            Expr::InList { expr, list, negated } => {
                write!(f, "{expr} {}IN ({} items)", if *negated { "NOT " } else { "" }, list.len())
            }
            Expr::Like { expr, pattern } => write!(f, "{expr} LIKE '{pattern}'"),
            Expr::Case { when, .. } => write!(f, "CASE ({} arms)", when.len()),
            Expr::Agg { func, arg, .. } => match arg {
                Some(a) => write!(f, "{func:?}({a})"),
                None => write!(f, "{func:?}(*)"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::new(vec![Value::Int(10), Value::str("hello"), Value::Double(2.5), Value::Null])
    }

    #[test]
    fn arithmetic() {
        let e = Expr::binary(BinOp::Add, Expr::ColumnIdx(0), Expr::int(5));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(15));
        let e = Expr::binary(BinOp::Mul, Expr::ColumnIdx(2), Expr::Literal(Value::Double(2.0)));
        assert_eq!(e.eval(&row()).unwrap(), Value::Double(5.0));
        // Mixed int/double promotes.
        let e = Expr::binary(BinOp::Add, Expr::ColumnIdx(0), Expr::ColumnIdx(2));
        assert_eq!(e.eval(&row()).unwrap(), Value::Double(12.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::binary(BinOp::Div, Expr::int(5), Expr::int(0));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagation() {
        let e = Expr::binary(BinOp::Add, Expr::ColumnIdx(3), Expr::int(1));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        let e = Expr::binary(BinOp::Eq, Expr::ColumnIdx(3), Expr::ColumnIdx(3));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null, "NULL = NULL is NULL");
    }

    #[test]
    fn comparisons_and_logic() {
        let gt = Expr::binary(BinOp::Gt, Expr::ColumnIdx(0), Expr::int(5));
        assert!(gt.eval_bool(&row()).unwrap());
        let and = Expr::binary(
            BinOp::And,
            gt.clone(),
            Expr::binary(BinOp::Lt, Expr::ColumnIdx(0), Expr::int(20)),
        );
        assert!(and.eval_bool(&row()).unwrap());
        let not = Expr::Not(Box::new(gt));
        assert!(!not.eval_bool(&row()).unwrap());
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // RHS would fail (unresolved column), but LHS already decides.
        let e = Expr::binary(
            BinOp::And,
            Expr::int(0),
            Expr::Column("nope".into()),
        );
        assert!(!e.eval_bool(&row()).unwrap());
        let e = Expr::binary(BinOp::Or, Expr::int(1), Expr::Column("nope".into()));
        assert!(e.eval_bool(&row()).unwrap());
    }

    #[test]
    fn is_null_between_in() {
        let isnull = Expr::IsNull { expr: Box::new(Expr::ColumnIdx(3)), negated: false };
        assert!(isnull.eval_bool(&row()).unwrap());
        let between = Expr::Between {
            expr: Box::new(Expr::ColumnIdx(0)),
            low: Box::new(Expr::int(5)),
            high: Box::new(Expr::int(10)),
        };
        assert!(between.eval_bool(&row()).unwrap());
        let inlist = Expr::InList {
            expr: Box::new(Expr::ColumnIdx(0)),
            list: vec![Expr::int(1), Expr::int(10)],
            negated: false,
        };
        assert!(inlist.eval_bool(&row()).unwrap());
        let notin = Expr::InList {
            expr: Box::new(Expr::ColumnIdx(0)),
            list: vec![Expr::int(1)],
            negated: true,
        };
        assert!(notin.eval_bool(&row()).unwrap());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(!like_match("hello", "h_"));
        assert!(like_match("", "%"));
        assert!(!like_match("x", ""));
    }

    #[test]
    fn case_expression() {
        let e = Expr::Case {
            when: vec![
                (Expr::binary(BinOp::Gt, Expr::ColumnIdx(0), Expr::int(100)), Expr::int(1)),
                (Expr::binary(BinOp::Gt, Expr::ColumnIdx(0), Expr::int(5)), Expr::int(2)),
            ],
            otherwise: Some(Box::new(Expr::int(3))),
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(2));
        let no_else = Expr::Case {
            when: vec![(Expr::int(0), Expr::int(1))],
            otherwise: None,
        };
        assert_eq!(no_else.eval(&row()).unwrap(), Value::Null);
    }

    #[test]
    fn resolution_qualified_and_ambiguous() {
        let schema = vec!["t.a".to_string(), "t.b".to_string(), "u.a".to_string()];
        // Qualified exact match.
        let e = Expr::col("t.a").resolve(&schema).unwrap();
        assert_eq!(e, Expr::ColumnIdx(0));
        // Unqualified unique suffix.
        let e = Expr::col("b").resolve(&schema).unwrap();
        assert_eq!(e, Expr::ColumnIdx(1));
        // Unqualified ambiguous suffix.
        assert!(Expr::col("a").resolve(&schema).is_err());
        // Unknown.
        assert!(Expr::col("zzz").resolve(&schema).is_err());
    }

    #[test]
    fn columns_collection() {
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Eq, Expr::col("x"), Expr::int(1)),
            Expr::binary(BinOp::Lt, Expr::col("y"), Expr::col("z")),
        );
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols, vec!["x", "y", "z"]);
    }
}
