//! Recursive-descent parser for the SQL subset.

use polardbx_common::{DataType, Error, Result, Value};

use crate::ast::*;
use crate::expr::{AggFunc, BinOp, Expr};
use crate::token::{tokenize, Symbol, Token};

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Symbol::Semi); // optional trailing semicolon
    p.expect_eof()?;
    Ok(stmt)
}

/// The parser state.
pub struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].0
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse { message: msg.into(), position: self.position() }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if *self.peek() == Token::Symbol(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        match self.peek() {
            Token::Eof => Ok(()),
            other => Err(self.err(format!("unexpected trailing {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s.to_ascii_lowercase()),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn integer(&mut self) -> Result<i64> {
        match self.bump() {
            Token::Int(v) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    // ------------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement> {
        if self.peek().is_kw("select") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("insert") {
            self.insert()
        } else if self.eat_kw("update") {
            self.update()
        } else if self.eat_kw("delete") {
            self.delete()
        } else if self.eat_kw("create") {
            self.create()
        } else {
            Err(self.err(format!("unsupported statement start {:?}", self.peek())))
        }
    }

    fn create(&mut self) -> Result<Statement> {
        if self.eat_kw("table") {
            return self.create_table();
        }
        // CREATE [GLOBAL|LOCAL] [CLUSTERED] [UNIQUE] INDEX
        let mut placement = IndexPlacement::Global;
        let mut unique = false;
        let mut saw_placement = false;
        loop {
            if self.eat_kw("global") {
                placement = IndexPlacement::Global;
                saw_placement = true;
            } else if self.eat_kw("local") {
                placement = IndexPlacement::Local;
                saw_placement = true;
            } else if self.eat_kw("clustered") {
                placement = IndexPlacement::GlobalClustered;
                saw_placement = true;
            } else if self.eat_kw("unique") {
                unique = true;
            } else {
                break;
            }
        }
        let _ = saw_placement;
        self.expect_kw("index")?;
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let columns = self.ident_list()?;
        self.expect_symbol(Symbol::RParen)?;
        Ok(Statement::CreateIndex(CreateIndex { name, table, columns, placement, unique }))
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        let mut out = vec![self.ident()?];
        while self.eat_symbol(Symbol::Comma) {
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        // Optional length suffix like VARCHAR(32) / DECIMAL(12,2).
        if self.eat_symbol(Symbol::LParen) {
            let _ = self.integer()?;
            if self.eat_symbol(Symbol::Comma) {
                let _ = self.integer()?;
            }
            self.expect_symbol(Symbol::RParen)?;
        }
        match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" | "tinyint" => Ok(DataType::Int),
            "double" | "float" | "decimal" | "numeric" | "real" => Ok(DataType::Double),
            "varchar" | "char" | "text" | "string" => Ok(DataType::Str),
            "varbinary" | "blob" | "bytes" => Ok(DataType::Bytes),
            "date" | "datetime" | "timestamp" => Ok(DataType::Date),
            other => Err(self.err(format!("unknown type {other}"))),
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                self.expect_symbol(Symbol::LParen)?;
                primary_key = self.ident_list()?;
                self.expect_symbol(Symbol::RParen)?;
            } else {
                let col = self.ident()?;
                let ty = self.data_type()?;
                let mut not_null = false;
                if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    not_null = true;
                } else {
                    let _ = self.eat_kw("null");
                }
                columns.push((col, ty, not_null));
            }
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        let mut partition = None;
        let mut table_group = None;
        loop {
            if self.eat_kw("partition") {
                self.expect_kw("by")?;
                self.expect_kw("hash")?;
                self.expect_symbol(Symbol::LParen)?;
                let cols = self.ident_list()?;
                self.expect_symbol(Symbol::RParen)?;
                self.expect_kw("partitions")?;
                let n = self.integer()?;
                if n <= 0 {
                    return Err(self.err("PARTITIONS must be positive"));
                }
                partition = Some((cols, n as u32));
            } else if self.eat_kw("tablegroup") {
                table_group = Some(self.ident()?);
            } else {
                break;
            }
        }
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
            partition,
            table_group,
        }))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.eat_symbol(Symbol::LParen) {
            let cols = self.ident_list()?;
            self.expect_symbol(Symbol::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut values = Vec::new();
        loop {
            self.expect_symbol(Symbol::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                row.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            values.push(row);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert { table, columns, values }))
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Symbol::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Update(Update { table, assignments, predicate }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("from")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete(Delete { table, predicate }))
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        // Optional alias: bare identifier that is not a clause keyword.
        let alias = match self.peek() {
            Token::Ident(s)
                if !is_clause_kw(s) =>
            {
                Some(self.ident()?)
            }
            _ => {
                if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                }
            }
        };
        Ok(TableRef { name, alias })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(Symbol::Star) {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    // Bare alias (not a clause keyword).
                    match self.peek() {
                        Token::Ident(s) if !is_clause_kw(s) => Some(self.ident()?),
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        let mut joins = Vec::new();
        loop {
            if self.eat_symbol(Symbol::Comma) {
                from.push(self.table_ref()?);
            } else if self.eat_kw("join") || {
                if self.eat_kw("inner") {
                    self.expect_kw("join")?;
                    true
                } else {
                    false
                }
            } {
                let table = self.table_ref()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                joins.push(Join { table, on });
            } else {
                break;
            }
        }
        let predicate = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(Symbol::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    let _ = self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            let n = self.integer()?;
            if n < 0 {
                return Err(self.err("negative LIMIT"));
            }
            Some(n as usize)
        } else {
            None
        };
        Ok(Select { items, from, joins, predicate, group_by, having, order_by, limit })
    }

    // ------------------------------------------------------------ expressions
    // Precedence: OR < AND < NOT < comparison/IS/BETWEEN/IN/LIKE < +- < */% < unary < primary.

    /// Parse an expression (public for tests).
    pub fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = self.eat_kw("not");
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            let between =
                Expr::Between { expr: Box::new(left), low: Box::new(low), high: Box::new(high) };
            return Ok(if negated { Expr::Not(Box::new(between)) } else { between });
        }
        if self.eat_kw("in") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("like") {
            let pattern = match self.bump() {
                Token::Str(s) => s,
                other => return Err(self.err(format!("LIKE needs a string, got {other:?}"))),
            };
            let like = Expr::Like { expr: Box::new(left), pattern };
            return Ok(if negated { Expr::Not(Box::new(like)) } else { like });
        }
        if negated {
            return Err(self.err("dangling NOT"));
        }
        let op = match self.peek() {
            Token::Symbol(Symbol::Eq) => Some(BinOp::Eq),
            Token::Symbol(Symbol::Neq) => Some(BinOp::Neq),
            Token::Symbol(Symbol::Lt) => Some(BinOp::Lt),
            Token::Symbol(Symbol::Le) => Some(BinOp::Le),
            Token::Symbol(Symbol::Gt) => Some(BinOp::Gt),
            Token::Symbol(Symbol::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Symbol::Plus) => BinOp::Add,
                Token::Symbol(Symbol::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Symbol::Star) => BinOp::Mul,
                Token::Symbol(Symbol::Slash) => BinOp::Div,
                Token::Symbol(Symbol::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else if self.eat_symbol(Symbol::Plus) {
            self.unary()
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            Token::Float(v) => Ok(Expr::Literal(Value::Double(v))),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::Symbol(Symbol::LParen) => {
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            Token::Ident(id) => {
                let lid = id.to_ascii_lowercase();
                if lid == "null" {
                    return Ok(Expr::Literal(Value::Null));
                }
                if lid == "true" {
                    return Ok(Expr::int(1));
                }
                if lid == "false" {
                    return Ok(Expr::int(0));
                }
                if lid == "case" {
                    return self.case_expr();
                }
                // Function call?
                if *self.peek() == Token::Symbol(Symbol::LParen) {
                    self.bump();
                    let func = AggFunc::from_name(&lid)
                        .ok_or_else(|| self.err(format!("unknown function {lid}")))?;
                    // COUNT(*), possibly DISTINCT.
                    if self.eat_symbol(Symbol::Star) {
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::Agg { func, arg: None, distinct: false });
                    }
                    let distinct = self.eat_kw("distinct");
                    let arg = self.expr()?;
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::Agg { func, arg: Some(Box::new(arg)), distinct });
                }
                // Qualified column?
                if self.eat_symbol(Symbol::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column(format!("{lid}.{col}")));
                }
                Ok(Expr::Column(lid))
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut when = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let result = self.expr()?;
            when.push((cond, result));
        }
        if when.is_empty() {
            return Err(self.err("CASE needs at least one WHEN"));
        }
        let otherwise =
            if self.eat_kw("else") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("end")?;
        Ok(Expr::Case { when, otherwise })
    }
}

fn is_clause_kw(s: &str) -> bool {
    matches!(
        s.to_ascii_lowercase().as_str(),
        "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "limit"
            | "join"
            | "inner"
            | "on"
            | "as"
            | "and"
            | "or"
            | "not"
            | "asc"
            | "desc"
            | "set"
            | "values"
            | "between"
            | "in"
            | "like"
            | "is"
            | "when"
            | "then"
            | "else"
            | "end"
            | "partition"
            | "tablegroup"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_partitioning() {
        let s = parse(
            "CREATE TABLE orders (o_id BIGINT NOT NULL, o_cust INT, o_total DECIMAL(12,2), \
             PRIMARY KEY (o_id)) PARTITION BY HASH(o_id) PARTITIONS 16 TABLEGROUP g1",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else { panic!() };
        assert_eq!(ct.name, "orders");
        assert_eq!(ct.columns.len(), 3);
        assert!(ct.columns[0].2, "NOT NULL parsed");
        assert_eq!(ct.primary_key, vec!["o_id"]);
        assert_eq!(ct.partition, Some((vec!["o_id".into()], 16)));
        assert_eq!(ct.table_group, Some("g1".into()));
    }

    #[test]
    fn create_index_placements() {
        let s = parse("CREATE GLOBAL INDEX idx_c ON orders (o_cust)").unwrap();
        let Statement::CreateIndex(ci) = s else { panic!() };
        assert_eq!(ci.placement, IndexPlacement::Global);
        let s = parse("CREATE LOCAL INDEX i ON t (a, b)").unwrap();
        let Statement::CreateIndex(ci) = s else { panic!() };
        assert_eq!(ci.placement, IndexPlacement::Local);
        assert_eq!(ci.columns.len(), 2);
        let s = parse("CREATE CLUSTERED UNIQUE INDEX i ON t (a)").unwrap();
        let Statement::CreateIndex(ci) = s else { panic!() };
        assert_eq!(ci.placement, IndexPlacement::GlobalClustered);
        assert!(ci.unique);
    }

    #[test]
    fn insert_multi_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert(ins) = s else { panic!() };
        assert_eq!(ins.columns, Some(vec!["a".into(), "b".into()]));
        assert_eq!(ins.values.len(), 2);
        assert_eq!(ins.values[1][0], Expr::int(2));
    }

    #[test]
    fn select_full_clause_set() {
        let s = parse(
            "SELECT a, SUM(b * 2) AS total FROM t WHERE a > 5 AND b IN (1,2,3) \
             GROUP BY a HAVING SUM(b * 2) > 10 ORDER BY total DESC, a LIMIT 7",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.items.len(), 2);
        assert!(sel.predicate.is_some());
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].1, "DESC parsed");
        assert!(!sel.order_by[1].1);
        assert_eq!(sel.limit, Some(7));
    }

    #[test]
    fn joins_and_aliases() {
        let s = parse(
            "SELECT l.a, o.b FROM lineitem l JOIN orders o ON l.okey = o.okey, customer \
             WHERE customer.id = o.cust",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.from[0].effective_name(), "l");
        assert_eq!(sel.joins.len(), 1);
        assert_eq!(sel.joins[0].table.effective_name(), "o");
    }

    #[test]
    fn update_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 'z' WHERE id = 5").unwrap();
        let Statement::Update(u) = s else { panic!() };
        assert_eq!(u.assignments.len(), 2);
        assert!(u.predicate.is_some());
        let s = parse("DELETE FROM t WHERE id BETWEEN 1 AND 10").unwrap();
        let Statement::Delete(d) = s else { panic!() };
        assert!(d.predicate.is_some());
    }

    #[test]
    fn expression_precedence() {
        let s = parse("SELECT a + b * c FROM t").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        // a + (b * c)
        let Expr::Binary { op: BinOp::Add, right, .. } = expr else { panic!("{expr:?}") };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn case_and_aggregates() {
        let s = parse(
            "SELECT 100.0 * SUM(CASE WHEN p LIKE 'PROMO%' THEN e ELSE 0 END) / SUM(e) \
             FROM lineitem",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        let mut agg_count = 0;
        expr.visit(&mut |e| {
            if matches!(e, Expr::Agg { .. }) {
                agg_count += 1;
            }
        });
        assert_eq!(agg_count, 2);
    }

    #[test]
    fn count_star_and_distinct() {
        let s = parse("SELECT COUNT(*), COUNT(DISTINCT a) FROM t").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else { panic!() };
        assert!(matches!(expr, Expr::Agg { arg: None, .. }));
        let SelectItem::Expr { expr, .. } = &sel.items[1] else { panic!() };
        assert!(matches!(expr, Expr::Agg { distinct: true, .. }));
    }

    #[test]
    fn not_between_and_not_in() {
        let s = parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2 AND b NOT IN (3)").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.predicate.is_some());
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
        assert!(parse("CREATE TABLE t (a INT) PARTITION BY HASH(a) PARTITIONS 0").is_err());
        assert!(parse("SELECT 1 FROM t WHERE").is_err());
        assert!(parse("SELECT 1 FROM t LIMIT 2 3").is_err());
        assert!(parse("INSERT INTO").is_err());
    }
}
