//! Umbrella package for the PolarDB-X reproduction: hosts the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/`. The actual system lives in the `crates/` workspace members.
pub use polardbx;
