//! Crash-recovery suite: the crashpoint torture harness run end to end.
//!
//! Each test crashes a DN at a seeded point, restarts it with *amnesia*
//! (nothing survives but the durable log sink), and requires the full
//! acceptance gate from the recovery harness:
//!
//! * **RPO = 0** — every commit acked to the client before the crash is
//!   still there after recovery (the per-transfer ledger row survives);
//! * **replay idempotence** — replaying the recovered log a second time
//!   registers nothing new;
//! * **conserved sum** — the bank total is intact, both read live and
//!   re-derived from the recorded history;
//! * **clean history** — the Adya checker reports zero anomalies over the
//!   whole run, crash and restart included.
//!
//! Seeds come from `POLARDBX_TEST_SEED` (hex or decimal) when set, so a CI
//! failure's seed line can be replayed locally.

use polardbx_common::testseed::seed_from_env;
use polardbx_sitcheck::recovery::{run_crashpoint, CrashPoint, RecoveryConfig};

const BASE_SEED: u64 = 0x7EA2_0C0F;

fn run(seed_offset: u64, cp: CrashPoint, torn_tail: bool) {
    let seed = seed_from_env(BASE_SEED).wrapping_add(seed_offset);
    let mut cfg = RecoveryConfig::quick(seed, cp);
    cfg.torn_tail = torn_tail;
    let r = run_crashpoint(&cfg);
    assert!(
        r.recovered_in_time,
        "{} seed {seed:#x}: victim never served again",
        cp.label()
    );
    assert_eq!(
        r.lost_acked, 0,
        "{} seed {seed:#x}: {} acked commit(s) lost — RPO violated",
        cp.label(),
        r.lost_acked
    );
    assert!(
        r.replay_idempotent,
        "{} seed {seed:#x}: second replay was not a no-op",
        cp.label()
    );
    assert!(
        r.conserved_ok,
        "{} seed {seed:#x}: conserved sum broken ({} vs {})",
        cp.label(),
        r.observed_total,
        r.expected_total
    );
    assert!(
        r.report.is_clean(),
        "{} seed {seed:#x}: anomalies across the restart boundary: {:?}",
        cp.label(),
        r.report.anomalies
    );
    assert!(r.passed());
}

#[test]
fn mid_group_flush_crash_with_torn_tail() {
    run(0, CrashPoint::MidGroupFlush, true);
}

#[test]
fn mid_group_flush_crash_with_clean_tail() {
    run(1, CrashPoint::MidGroupFlush, false);
}

#[test]
fn crash_between_prepare_and_commit_recovers_the_acked_commit() {
    // The sharp case: the client holds an ack for a commit whose phase-two
    // post to the victim was lost. Recovery surfaces the PREPARED txn as
    // in-doubt and the resolver re-commits it from the arbiter's log.
    run(2, CrashPoint::BetweenPrepareAndCommit, true);
}

#[test]
fn crash_during_paxos_drain_rejoins_from_durable_frames() {
    run(3, CrashPoint::DuringPaxosDrain, true);
}

#[test]
fn torture_matrix_two_seeds_all_crashpoints() {
    // The quick matrix the CI recovery-torture job runs via
    // `recovery_bench --quick`, inlined here so `cargo test` alone
    // exercises every (crashpoint × tail) combination.
    for offset in [10u64, 11] {
        for cp in CrashPoint::all() {
            run(offset, cp, true);
        }
    }
}
