//! Tier-1 gate: the workspace must lint clean under polarlint.
//!
//! Every finding must either be fixed or carry a
//! `// lint:allow(<rule>, "reason")` justification, and the lock-order
//! graph must stay acyclic. Run `cargo run -p polardbx-lint -- --workspace`
//! for the full report.

use polardbx_lint::{lint_workspace, LintConfig};

#[test]
fn workspace_lints_clean() {
    let root = env!("CARGO_MANIFEST_DIR");
    let report = lint_workspace(root.as_ref(), &LintConfig::default())
        .expect("walk workspace sources");
    assert!(
        report.files > 0,
        "linter found no source files under {root}"
    );
    assert!(report.clean(), "\n{}", report.render());
}
