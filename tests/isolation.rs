//! Isolation suite: the history-based SI checker run over the seeded
//! schedule explorer, plus the checker's own self-validation.
//!
//! Two halves:
//!
//! 1. **Unmutated matrix** — the quick (seed × schedule) sweep must report
//!    zero anomalies, and every derived conserved-sum audit must equal the
//!    seeded bank total. The protocol is presumed correct; a failure here
//!    is either a real isolation bug or a checker false positive, and the
//!    printed witness cycle says which transaction pair to look at.
//!
//! 2. **Mutation tests** — re-run deterministic scenarios with one
//!    protocol step disabled. Each mutation must surface its named anomaly
//!    class *with a witness*, and the identical unmutated twin must come
//!    back clean. A checker that cannot see a planted violation proves
//!    nothing when it reports CLEAN.
//!
//! Seeds come from `POLARDBX_TEST_SEED` (hex or decimal) when set, so a CI
//! failure's seed line can be replayed locally:
//!
//! ```text
//! POLARDBX_TEST_SEED=0x51c4ec cargo test -q --test isolation
//! ```

use polardbx_common::testseed::{format_seed, seed_from_env};
use polardbx_sitcheck::explorer::{self, ExplorerConfig};
use polardbx_sitcheck::report::render_report;
use polardbx_sitcheck::{AnomalyKind, Mutation, Schedule};

/// Default base seed; override with POLARDBX_TEST_SEED.
const BASE_SEED: u64 = 0x51_C4EC;

#[test]
fn quick_matrix_reports_zero_anomalies() {
    let base = seed_from_env(BASE_SEED);
    for offset in 0..2u64 {
        let seed = base.wrapping_add(offset);
        for &schedule in Schedule::quick() {
            let run = explorer::run(&ExplorerConfig::quick(seed, schedule));
            assert!(
                run.report.is_clean(),
                "seed {} schedule {} found anomalies (replay with \
                 POLARDBX_TEST_SEED={}):\n{}",
                format_seed(seed),
                schedule.label(),
                format_seed(seed),
                render_report(&run),
            );
            let cfg = ExplorerConfig::quick(seed, schedule);
            let expected = cfg.accounts as i64 * cfg.initial;
            assert!(
                !run.audit_totals.is_empty(),
                "seed {} schedule {}: no full-bank audit completed",
                format_seed(seed),
                schedule.label(),
            );
            for (trx, total) in &run.audit_totals {
                assert_eq!(
                    *total,
                    expected,
                    "seed {} schedule {}: audit {trx} summed {total}, expected {expected} \
                     (replay with POLARDBX_TEST_SEED={})",
                    format_seed(seed),
                    schedule.label(),
                    format_seed(seed),
                );
            }
        }
    }
}

/// Shared shape of the three mutation assertions: the mutated run surfaces
/// `expect` with a witness, the unmutated twin is clean.
fn assert_mutation_detected(m: Mutation, expect: AnomalyKind) {
    let seed = seed_from_env(BASE_SEED);
    let mutated = explorer::run_mutated(m, seed);
    let found = mutated.report.of_kind(expect);
    assert!(
        !found.is_empty(),
        "{}: expected a {} anomaly, checker reported:\n{}",
        m.label(),
        expect.name(),
        render_report(&mutated),
    );
    assert!(
        found.iter().any(|a| !a.cycle.is_empty() || !a.txns.is_empty()),
        "{}: {} anomaly carries no witness:\n{}",
        m.label(),
        expect.name(),
        render_report(&mutated),
    );
    let twin = explorer::run_unmutated_twin(m, seed);
    assert!(
        twin.report.is_clean(),
        "{}: unmutated twin must be clean — otherwise the detection above \
         is noise, not signal:\n{}",
        m.label(),
        render_report(&twin),
    );
}

#[test]
fn mutation_skip_commit_clock_update_yields_gsib() {
    // Without the coordinator's commit-time absorb (step ⑥), the session's
    // next snapshot falls below its own commit — a missed effect.
    assert_mutation_detected(Mutation::SkipCommitClockUpdate, AnomalyKind::GSIb);
}

#[test]
fn mutation_ignore_prepared_reads_yields_gsia() {
    // Reading below the snapshot watermark (skipping PREPARED versions)
    // observes half of a two-DN transfer — a fractured read.
    assert_mutation_detected(Mutation::IgnorePreparedReads, AnomalyKind::GSIa);
}

#[test]
fn mutation_drop_prepare_yields_lost_write() {
    // A participant silently dropped from 2PC commits nowhere while the
    // rest of the transaction commits — its write is lost.
    assert_mutation_detected(Mutation::DropPrepare, AnomalyKind::LostWrite);
}

#[test]
fn mutation_skip_routing_epoch_fence_yields_lost_update() {
    // A transaction that routed before a placement cutover commits to the
    // old home with the epoch fence disabled: it and the cutover's copy
    // transaction both read the pre-move version and both committed writes
    // over it — a lost update split across two DNs.
    assert_mutation_detected(Mutation::SkipRoutingEpochFence, AnomalyKind::LostUpdate);
}
