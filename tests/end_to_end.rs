//! Cross-crate integration tests: the whole system driven through the
//! public `PolarDbx` API, exercising every layer the paper describes —
//! SQL front end, GMS catalog + routing, distributed transactions, HTAP
//! classification, RO replicas, column index, workloads.

use polardbx::{ClusterConfig, PolarDbx};
use polardbx_common::{DcId, Value};
use polardbx_optimizer::WorkloadClass;

fn cluster(dns: u32) -> PolarDbx {
    PolarDbx::build(ClusterConfig { dns, default_shards: 8, ..Default::default() }).unwrap()
}

#[test]
fn full_sql_lifecycle_across_shards() {
    let db = cluster(3);
    let s = db.connect(DcId(1));
    s.execute(
        "CREATE TABLE users (id BIGINT NOT NULL, name VARCHAR(24), score DOUBLE, \
         PRIMARY KEY (id)) PARTITION BY HASH(id) PARTITIONS 12",
    )
    .unwrap();
    // 120 rows spread over 12 shards on 3 DNs.
    for chunk in 0..4 {
        let values: Vec<String> = (0..30)
            .map(|i| {
                let id = chunk * 30 + i;
                format!("({id}, 'user{id}', {}.5)", id % 10)
            })
            .collect();
        s.execute(&format!("INSERT INTO users (id, name, score) VALUES {}", values.join(",")))
            .unwrap();
    }
    assert_eq!(db.count_rows("users").unwrap(), 120);

    // Point read, range aggregate, group-by, sort/limit — all via SQL.
    let r = s.query("SELECT name FROM users WHERE id = 77").unwrap();
    assert_eq!(r[0].get(0).unwrap(), &Value::str("user77"));
    let r = s.query("SELECT COUNT(*) FROM users WHERE score >= 5.0").unwrap();
    assert_eq!(r[0].get(0).unwrap(), &Value::Int(60));
    let r = s
        .query("SELECT score, COUNT(*) AS n FROM users GROUP BY score ORDER BY n DESC, score LIMIT 3")
        .unwrap();
    assert_eq!(r.len(), 3);
    assert_eq!(r[0].get(1).unwrap(), &Value::Int(12));

    // Predicate update touching many shards in one distributed txn.
    let n = s.execute("UPDATE users SET score = score + 100 WHERE id < 10").unwrap();
    assert_eq!(n, 10);
    let r = s.query("SELECT COUNT(*) FROM users WHERE score > 99").unwrap();
    assert_eq!(r[0].get(0).unwrap(), &Value::Int(10));

    // Delete and verify.
    let n = s.execute("DELETE FROM users WHERE score > 99").unwrap();
    assert_eq!(n, 10);
    assert_eq!(db.count_rows("users").unwrap(), 110);
    db.shutdown();
}

#[test]
fn snapshot_isolation_money_conservation_via_sql() {
    let db = cluster(2);
    let s = db.connect(DcId(1));
    s.execute(
        "CREATE TABLE bank (id BIGINT NOT NULL, balance BIGINT, PRIMARY KEY (id)) \
         PARTITION BY HASH(id) PARTITIONS 8",
    )
    .unwrap();
    let values: Vec<String> = (0..16).map(|i| format!("({i}, 100)")).collect();
    s.execute(&format!("INSERT INTO bank (id, balance) VALUES {}", values.join(","))).unwrap();

    // Concurrent transfers via SQL while auditors read the total.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let violations = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..2 {
            let db = db.clone();
            let stop = &stop;
            scope.spawn(move || {
                let s = db.connect(DcId(1));
                let mut i = t;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    i = (i + 7) % 16;
                    let j = (i + 3) % 16;
                    // Best-effort transfer; conflicts simply retry later.
                    let _ = s.execute(&format!(
                        "UPDATE bank SET balance = balance - 1 WHERE id = {i}"
                    ));
                    let _ = s.execute(&format!(
                        "UPDATE bank SET balance = balance + 1 WHERE id = {j}"
                    ));
                }
            });
        }
        {
            let db = db.clone();
            let violations = &violations;
            let stop = &stop;
            scope.spawn(move || {
                let s = db.connect(DcId(1));
                for _ in 0..20 {
                    if let Ok(r) = s.query("SELECT SUM(balance) FROM bank") {
                        let total = r[0].get(0).unwrap().as_int().unwrap();
                        // Single-statement transfers are not atomic pairs, so
                        // totals may transiently differ by the in-flight gap;
                        // but each SUM is one snapshot: it must never tear a
                        // single UPDATE (which is atomic).
                        if !(1500..=1700).contains(&total) {
                            violations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    assert_eq!(violations.load(std::sync::atomic::Ordering::Relaxed), 0);
    db.shutdown();
}

#[test]
fn htap_classification_and_column_index_agree_with_row_path() {
    let db = cluster(2);
    let s = db.connect(DcId(1));
    s.execute(
        "CREATE TABLE metrics (id BIGINT NOT NULL, grp BIGINT, v DOUBLE, PRIMARY KEY (id)) \
         PARTITION BY HASH(id) PARTITIONS 8",
    )
    .unwrap();
    let values: Vec<String> =
        (0..300).map(|i| format!("({i}, {}, {}.25)", i % 7, i % 13)).collect();
    s.execute(&format!("INSERT INTO metrics (id, grp, v) VALUES {}", values.join(",")))
        .unwrap();
    db.gms().record_rows("metrics", 5_000_000); // classifier sees production scale

    let agg_sql = "SELECT grp, COUNT(*) AS n, SUM(v) AS total FROM metrics GROUP BY grp ORDER BY grp";
    let (row_result, class) = s.query_classified(agg_sql).unwrap();
    assert_eq!(class, WorkloadClass::Ap);

    db.enable_column_index("metrics").unwrap();
    let (col_result, _) = s.query_classified(agg_sql).unwrap();
    assert_eq!(row_result, col_result, "columnar path must agree with row path");

    let (_, class) = s.query_classified("SELECT v FROM metrics WHERE id = 5").unwrap();
    assert_eq!(class, WorkloadClass::Tp);
    db.shutdown();
}

#[test]
fn ro_replicas_serve_fresh_reads() {
    let db = PolarDbx::build(ClusterConfig { dns: 2, ros_per_dn: 2, ..Default::default() })
        .unwrap();
    let s = db.connect(DcId(1));
    s.execute("CREATE TABLE kv (k BIGINT NOT NULL, v BIGINT, PRIMARY KEY (k))").unwrap();
    s.execute("INSERT INTO kv (k, v) VALUES (1, 10), (2, 20), (3, 30)").unwrap();
    db.ship_now();
    // Every RO replica of every DN holds the replicated rows.
    for dn in db.dns() {
        for ro in dn.rw.ros() {
            let applied = ro.applied_lsn();
            assert!(applied.raw() > 0, "replica {} never applied", ro.id);
        }
    }
    // AP route reads hit the RO engines and still see all data.
    db.gms().record_rows("kv", 10_000_000);
    let (rows, class) = s.query_classified("SELECT COUNT(*), SUM(v) FROM kv").unwrap();
    assert_eq!(class, WorkloadClass::Ap);
    assert_eq!(rows[0].get(0).unwrap(), &Value::Int(3));
    assert_eq!(rows[0].get(1).unwrap(), &Value::Int(60));
    db.shutdown();
}

#[test]
fn traffic_control_guards_the_endpoint() {
    let db = cluster(1);
    let s = db.connect(DcId(1));
    s.execute("CREATE TABLE t (id BIGINT NOT NULL, PRIMARY KEY (id))").unwrap();
    // A DBA limit on one statement shape.
    let fp = polardbx::traffic::fingerprint("SELECT id FROM t WHERE id = 1");
    db.traffic().limit(&fp, 0);
    let err = s.query("SELECT id FROM t WHERE id = 42").unwrap_err();
    assert!(matches!(err, polardbx_common::Error::Throttled { .. }));
    // Other shapes unaffected.
    s.query("SELECT COUNT(*) FROM t").unwrap();
    db.traffic().unlimit(&fp);
    s.query("SELECT id FROM t WHERE id = 42").unwrap();
    db.shutdown();
}

#[test]
fn sysbench_tpcc_tpch_smoke() {
    use polardbx_workloads::{tpcc, tpch};
    use rand::SeedableRng;

    let db = cluster(2);
    // TPC-C.
    let driver = tpcc::TpccDriver::setup(
        &db,
        tpcc::TpccConfig {
            warehouses: 1,
            districts: 2,
            customers: 10,
            items: 20,
            ..Default::default()
        },
    )
    .unwrap();
    let s = db.connect(DcId(1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut committed = 0;
    for _ in 0..40 {
        if let Ok(true) = driver.transaction(&s, &mut rng) {
            committed += 1;
        }
    }
    assert!(committed > 0);

    // TPC-H (all 22 queries on a tiny scale).
    tpch::create_schema(&s, 4).unwrap();
    tpch::load(&db, tpch::ScaleFactor(0.002), 3).unwrap();
    for q in 1..=22 {
        s.query(tpch::query_sql(q)).unwrap_or_else(|e| panic!("Q{q}: {e}"));
    }
    db.shutdown();
}

#[test]
fn locality_aware_load_balancer() {
    let db = PolarDbx::build(ClusterConfig {
        dcs: 3,
        cns_per_dc: 2,
        dns: 3,
        ..Default::default()
    })
    .unwrap();
    for dc in 1..=3u64 {
        assert_eq!(db.connect(DcId(dc)).cn_dc(), DcId(dc));
    }
    db.shutdown();
}

#[test]
fn index_advisor_on_live_workload() {
    let db = cluster(1);
    let s = db.connect(DcId(1));
    s.execute(
        "CREATE TABLE orders2 (id BIGINT NOT NULL, cust BIGINT, total DOUBLE, PRIMARY KEY (id))",
    )
    .unwrap();
    db.gms().record_rows("orders2", 2_000_000);
    // The workload keeps filtering on `cust` — the advisor should notice.
    let workload: Vec<_> = (0..5)
        .map(|i| {
            polardbx_sql::parse(&format!("SELECT total FROM orders2 WHERE cust = {i}")).unwrap()
        })
        .collect();
    let recs =
        polardbx_optimizer::recommend_indexes(&workload, &db.gms().statistics(), 2);
    assert!(!recs.is_empty());
    assert_eq!(recs[0].table, "orders2");
    assert_eq!(recs[0].columns, vec!["cust"]);
    db.shutdown();
}

#[test]
fn shard_rebalancing_moves_data_without_copy() {
    let db = cluster(3);
    let s = db.connect(DcId(1));
    s.execute(
        "CREATE TABLE events (id BIGINT NOT NULL, v BIGINT, PRIMARY KEY (id)) \
         PARTITION BY HASH(id) PARTITIONS 6",
    )
    .unwrap();
    let values: Vec<String> = (0..120).map(|i| format!("({i}, {i})")).collect();
    s.execute(&format!("INSERT INTO events (id, v) VALUES {}", values.join(","))).unwrap();
    db.ship_now();

    // Move shard 0 somewhere else explicitly.
    let schema = db.gms().table("events").unwrap();
    let src = db.gms().shard_dn(schema.id, 0).unwrap();
    let dest = db.dns().into_iter().map(|d| d.id).find(|&id| id != src).unwrap();
    db.move_shard("events", 0, dest).unwrap();
    assert_eq!(db.gms().shard_dn(schema.id, 0).unwrap(), dest);

    // All data still present and queryable after the move.
    assert_eq!(db.count_rows("events").unwrap(), 120);
    let r = s.query("SELECT COUNT(*), SUM(v) FROM events").unwrap();
    assert_eq!(r[0].get(0).unwrap(), &Value::Int(120));
    assert_eq!(r[0].get(1).unwrap(), &Value::Int((0..120).sum::<i64>()));

    // Writes keep flowing to the moved shard via fresh GMS routing.
    s.execute("INSERT INTO events (id, v) VALUES (1000, 1000)").unwrap();
    assert_eq!(db.count_rows("events").unwrap(), 121);

    // Full rebalance is a no-op-or-better and preserves every row.
    db.rebalance("events").unwrap();
    assert_eq!(db.count_rows("events").unwrap(), 121);
    let r = s.query("SELECT COUNT(*) FROM events WHERE id < 120").unwrap();
    assert_eq!(r[0].get(0).unwrap(), &Value::Int(120));
    db.shutdown();
}

#[test]
fn hotspot_detection_drives_rebalance() {
    use polardbx::hotspot::{detect_dn_hotspots, HotspotPolicy, ShardLoad};
    use std::collections::HashMap;

    let db = cluster(2);
    let s = db.connect(DcId(1));
    s.execute(
        "CREATE TABLE hot (id BIGINT NOT NULL, PRIMARY KEY (id)) \
         PARTITION BY HASH(id) PARTITIONS 4",
    )
    .unwrap();
    let values: Vec<String> = (0..40).map(|i| format!("({i})")).collect();
    s.execute(&format!("INSERT INTO hot (id) VALUES {}", values.join(","))).unwrap();

    // Telemetry says one DN takes nearly all traffic.
    let schema = db.gms().table("hot").unwrap();
    let mut placements = HashMap::new();
    let mut loads = HashMap::new();
    for shard in 0..4u32 {
        let dn = db.gms().shard_dn(schema.id, shard).unwrap();
        placements.insert(shard, dn);
        loads.insert(
            shard,
            ShardLoad { rows: 10, accesses: if shard == 0 { 10_000 } else { 100 } },
        );
    }
    let hotspots = detect_dn_hotspots(&placements, &loads, &HotspotPolicy::default());
    assert!(!hotspots.is_empty(), "skewed telemetry must flag a hotspot");

    // Remediate: move the hot shard off the overloaded DN.
    let hot_dn = placements[&0];
    let dest = db.dns().into_iter().map(|d| d.id).find(|&id| id != hot_dn).unwrap();
    db.move_shard("hot", 0, dest).unwrap();
    assert_eq!(db.count_rows("hot").unwrap(), 40);
    db.shutdown();
}

#[test]
fn explain_reports_class_and_storage_choice() {
    let db = cluster(1);
    let s = db.connect(DcId(1));
    s.execute("CREATE TABLE big (id BIGINT NOT NULL, v DOUBLE, PRIMARY KEY (id))").unwrap();
    db.gms().record_rows("big", 8_000_000);
    db.gms().set_column_index("big", true);

    let plan = s.explain("SELECT v FROM big WHERE id = 7").unwrap();
    assert!(plan.contains("class: Tp"), "{plan}");
    assert!(plan.contains("RowStore"), "point query stays on the row store: {plan}");

    let plan = s.explain("SELECT COUNT(*), SUM(v) FROM big").unwrap();
    assert!(plan.contains("class: Ap"), "{plan}");
    assert!(plan.contains("ColumnIndex"), "bulk aggregate prefers the column index: {plan}");
    assert!(plan.contains("Aggregate"), "{plan}");
    assert!(plan.contains("Scan big"), "{plan}");
    db.shutdown();
}

#[test]
fn ap_memory_region_limits_and_tp_preempts()  {
    let db = cluster(1);
    let s = db.connect(DcId(1));
    s.execute("CREATE TABLE m (id BIGINT NOT NULL, PRIMARY KEY (id))").unwrap();
    s.execute("INSERT INTO m (id) VALUES (1), (2), (3)").unwrap();
    db.gms().record_rows("m", 50_000_000); // huge estimate → large AP reservation

    // Exhaust the AP region; the AP query must fail with MemoryExhausted,
    // not hang or thrash.
    let hog = (0..13)
        .map(|_| {
            polardbx_executor::memory::Reservation::ap(db.memory().clone(), 64 << 20)
        })
        .take_while(|r| r.is_ok())
        .collect::<Vec<_>>();
    let err = s.query("SELECT COUNT(*) FROM m").unwrap_err();
    assert!(matches!(err, polardbx_common::Error::MemoryExhausted { .. }), "{err}");
    drop(hog);
    // With the region free again the query runs.
    let rows = s.query("SELECT COUNT(*) FROM m").unwrap();
    assert_eq!(rows[0].get(0).unwrap(), &Value::Int(3));

    // TP is privileged: it preempts AP headroom rather than failing.
    let (_, _ap_used, before_max) = db.memory().usage();
    let _tp = polardbx_executor::memory::Reservation::tp(db.memory().clone(), 380 << 20)
        .expect("TP preempts");
    let (_, _, after_max) = db.memory().usage();
    assert!(after_max < before_max, "AP budget shrank under TP pressure");
    db.shutdown();
}

#[test]
fn errors_are_structured_across_the_stack() {
    let db = cluster(1);
    let s = db.connect(DcId(1));

    // Parse errors carry positions.
    assert!(matches!(
        s.execute("CREATE TABLLE oops (id BIGINT)"),
        Err(polardbx_common::Error::Parse { .. })
    ));
    // Unknown tables and columns are catalog errors, not panics.
    assert!(matches!(
        s.query("SELECT x FROM missing"),
        Err(polardbx_common::Error::UnknownTable { .. })
    ));
    s.execute("CREATE TABLE t2 (id BIGINT NOT NULL, PRIMARY KEY (id))").unwrap();
    assert!(matches!(
        s.query("SELECT missing_col FROM t2"),
        Err(polardbx_common::Error::UnknownColumn { .. })
    ));
    // Schema violations: NULL into NOT NULL, arity mismatch.
    assert!(s.execute("INSERT INTO t2 (id) VALUES (NULL)").is_err());
    assert!(s.execute("INSERT INTO t2 (id) VALUES (1, 2)").is_err());
    // SELECT through execute() and DML through query() are rejected.
    assert!(s.execute("SELECT id FROM t2").is_err());
    assert!(s.query("INSERT INTO t2 (id) VALUES (1)").is_err());
    // GROUP BY violations surface as plan errors.
    s.execute("INSERT INTO t2 (id) VALUES (7)").unwrap();
    assert!(matches!(
        s.query("SELECT id, COUNT(*) FROM t2 GROUP BY id + 1"),
        Err(polardbx_common::Error::Plan { .. })
    ));
    // And the cluster still works after all that abuse.
    let r = s.query("SELECT COUNT(*) FROM t2").unwrap();
    assert_eq!(r[0].get(0).unwrap(), &Value::Int(1));
    db.shutdown();
}

#[test]
fn table_group_colocates_and_serves_partition_wise_join() {
    let db = cluster(3);
    let s = db.connect(DcId(1));
    s.execute(
        "CREATE TABLE orders3 (o_id BIGINT NOT NULL, total DOUBLE, PRIMARY KEY (o_id)) \
         PARTITION BY HASH(o_id) PARTITIONS 6 TABLEGROUP g3",
    )
    .unwrap();
    s.execute(
        "CREATE TABLE lines3 (o_id BIGINT NOT NULL, line BIGINT NOT NULL, qty BIGINT, \
         PRIMARY KEY (o_id, line)) PARTITION BY HASH(o_id) PARTITIONS 6 TABLEGROUP g3",
    )
    .unwrap();
    // Same shard of both tables lives on the same DN (§II-B partition group).
    let a = db.gms().table("orders3").unwrap();
    let b = db.gms().table("lines3").unwrap();
    for shard in 0..6 {
        assert_eq!(
            db.gms().shard_dn(a.id, shard).unwrap(),
            db.gms().shard_dn(b.id, shard).unwrap()
        );
    }
    // Equi-join on the partition key returns correct results.
    for o in 0..12i64 {
        s.execute(&format!("INSERT INTO orders3 (o_id, total) VALUES ({o}, {o}.5)")).unwrap();
        s.execute(&format!(
            "INSERT INTO lines3 (o_id, line, qty) VALUES ({o}, 0, {}), ({o}, 1, {})",
            o + 1,
            o + 2
        ))
        .unwrap();
    }
    let r = s
        .query(
            "SELECT COUNT(*), SUM(qty) FROM orders3 JOIN lines3 ON orders3.o_id = lines3.o_id",
        )
        .unwrap();
    assert_eq!(r[0].get(0).unwrap(), &Value::Int(24));
    let expect: i64 = (0..12).map(|o| (o + 1) + (o + 2)).sum();
    assert_eq!(r[0].get(1).unwrap(), &Value::Int(expect));
    db.shutdown();
}
